//! Workspace-level integration tests: determinism, cross-platform
//! equivalence, and the full specification→policy→execution pipeline.

use bas::core::platform::linux::{build_linux, LinuxOverrides};
use bas::core::platform::minix::{build_minix, MinixOverrides};
use bas::core::platform::sel4::{build_sel4, Sel4Overrides};
use bas::core::scenario::{Scenario, ScenarioConfig};
use bas::sim::time::SimDuration;

/// The whole simulation is deterministic: same seed, same everything.
#[test]
fn same_seed_reproduces_bit_identical_runs() {
    let config = ScenarioConfig::default();

    let run = |cfg: &ScenarioConfig| {
        let mut s = build_minix(cfg, MinixOverrides::default());
        s.run_for(SimDuration::from_mins(20));
        let plant = s.plant();
        let trace: Vec<String> = plant
            .borrow()
            .trace()
            .iter()
            .map(|p| format!("{p:?}"))
            .collect();
        (format!("{:?}", s.metrics()), trace, s.now())
    };

    let (m1, t1, now1) = run(&config);
    let (m2, t2, now2) = run(&config);
    assert_eq!(m1, m2, "kernel metrics differ between identical runs");
    assert_eq!(t1, t2, "plant traces differ between identical runs");
    assert_eq!(now1, now2);

    // A different seed perturbs the sensor noise and therefore the trace.
    let other = ScenarioConfig { seed: 43, ..config };
    let (_, t3, _) = run(&other);
    assert_ne!(t1, t3, "different seeds should differ somewhere");
}

/// All three platforms implement the same control behavior: after the
/// same benign run they agree on the regulated temperature to within the
/// control band.
#[test]
fn platforms_agree_on_physical_behavior() {
    let config = ScenarioConfig::quiet();
    let mut finals = Vec::new();
    {
        let mut s = build_minix(&config, MinixOverrides::default());
        s.run_for(SimDuration::from_mins(20));
        finals.push(("minix", s.plant().borrow().temperature_c()));
    }
    {
        let mut s = build_sel4(&config, Sel4Overrides::default());
        s.run_for(SimDuration::from_mins(20));
        finals.push(("sel4", s.plant().borrow().temperature_c()));
    }
    {
        let mut s = build_linux(&config, LinuxOverrides::default());
        s.run_for(SimDuration::from_mins(20));
        finals.push(("linux", s.plant().borrow().temperature_c()));
    }
    for (name, t) in &finals {
        assert!((21.0..=23.0).contains(t), "{name} regulated to {t:.2}°C");
    }
    let spread = finals
        .iter()
        .map(|(_, t)| *t)
        .fold(f64::NEG_INFINITY, f64::max)
        - finals.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
    assert!(
        spread < 1.0,
        "platforms disagree by {spread:.2}°C: {finals:?}"
    );
}

/// Specification to execution: the AADL source compiles through every
/// backend, the CAmkES output realizes on seL4, and the generated ACM is
/// exactly the hand policy the MINIX kernel enforces at runtime.
#[test]
fn aadl_to_execution_pipeline_is_consistent() {
    let model = bas::aadl::parse(bas::core::policy::SCENARIO_AADL).unwrap();
    model.validate().unwrap();

    // ACM backend == the policy the running MINIX kernel enforces.
    let generated = bas::aadl::backends::acm::compile(&model).unwrap();
    assert_eq!(generated, bas::core::policy::scenario_app_acm());

    // CAmkES backend → CapDL → realizable system.
    let assembly = bas::aadl::backends::camkes::compile(&model).unwrap();
    let (spec, _glue) = bas::camkes::codegen::compile(&assembly).unwrap();
    let mut kernel = bas::sel4::kernel::Sel4Kernel::new(bas::sel4::kernel::Sel4Config::default());
    let mut loader = |_: &str| -> Option<bas::sel4::kernel::Sel4Thread> {
        Some(Box::new(bas::sim::script::Script::<
            bas::sel4::syscall::Syscall,
            bas::sel4::syscall::Reply,
        >::new(vec![])))
    };
    let sys = bas::capdl::realize(&spec, &mut kernel, &mut loader).unwrap();
    assert!(bas::capdl::verify(&spec, &kernel, &sys).is_empty());

    // Linux backend covers every connected in-port.
    let plan = bas::aadl::backends::linux_plan::compile(&model).unwrap();
    assert_eq!(plan.queues.len(), 5);
}

/// The attack harness is itself deterministic, so EXPERIMENTS.md numbers
/// are reproducible.
#[test]
fn attack_outcomes_are_deterministic() {
    use bas::attack::harness::{run_attack, AttackRunConfig};
    use bas::attack::model::{AttackId, AttackerModel};
    use bas::core::scenario::Platform;

    let config = AttackRunConfig::default();
    let a = run_attack(
        Platform::Linux,
        AttackerModel::ArbitraryCode,
        AttackId::SpoofSensorData,
        &config,
    );
    let b = run_attack(
        Platform::Linux,
        AttackerModel::ArbitraryCode,
        AttackId::SpoofSensorData,
        &config,
    );
    assert_eq!(a, b);
}
