//! Offline stand-in for the `serde` facade.
//!
//! The reproduction container has no network access to crates.io, so this
//! crate provides the *API shape* the workspace relies on — the
//! [`Serialize`]/[`Deserialize`] marker traits and the matching derive
//! macros — without any wire format. Every type is trivially serializable:
//! the traits are blanket-implemented and the derives expand to nothing.
//!
//! Code that needs actual serialization (e.g. the policy-audit JSON report)
//! emits its format by hand; the derives exist so that type definitions
//! keep the same annotations they would carry against real serde, making a
//! future swap-in a one-line Cargo.toml change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`. Blanket-implemented.
pub trait Deserialize<'de> {}
impl<T: ?Sized> Deserialize<'_> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`. Blanket-implemented.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirror of `serde::ser` far enough for `use serde::ser::Serialize` paths.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirror of `serde::de` far enough for `use serde::de::Deserialize` paths.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}
