//! No-op derive macros for the offline `serde` stand-in.
//!
//! The companion `serde` crate blanket-implements its marker traits for all
//! types, so the derives only need to *exist* (and accept `#[serde(...)]`
//! helper attributes) — they expand to nothing.

use proc_macro::TokenStream;

/// `#[derive(Serialize)]` — expands to nothing; the marker trait is
/// blanket-implemented in the `serde` stand-in.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// `#[derive(Deserialize)]` — expands to nothing; the marker trait is
/// blanket-implemented in the `serde` stand-in.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
