//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups,
//! `Bencher::iter`/`iter_batched`, `black_box`, `BatchSize`) with a simple
//! fixed-budget timing loop instead of criterion's statistical machinery.
//! Results print as `name: mean ns/iter (iters)` — good enough to compare
//! runs by eye, with zero external dependencies.

use std::time::{Duration, Instant};

/// Opaque value barrier; defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Mirrors `criterion::BatchSize`; ignored by the stub's timing loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Fresh setup for every routine invocation.
    PerIteration,
}

/// Per-benchmark timing context handed to the closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times repeated calls of `routine` under a fixed wall-clock budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        while start.elapsed() < budget {
            let t = Instant::now();
            black_box(routine());
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` with per-batch `setup` excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        while start.elapsed() < budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name}: no iterations");
        } else {
            let mean = self.total.as_nanos() / self.iters as u128;
            println!("{name}: {mean} ns/iter ({} iters)", self.iters);
        }
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub's budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group (name is prefixed with the group's).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{name}", self.name));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
