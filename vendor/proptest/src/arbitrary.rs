//! `any::<T>()` — canonical strategies for primitive types.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, spanning several orders of magnitude.
        (rng.next_f64() - 0.5) * 2.0e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII with occasional wider code points.
        if rng.next_u64().is_multiple_of(4) {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{fffd}')
        } else {
            (0x20 + rng.below(0x5f) as u8) as char
        }
    }
}
