//! Deterministic RNG for case generation (SplitMix64).

/// A SplitMix64 generator; small, fast, and good enough for test-case
/// generation (we never need cryptographic quality here).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is irrelevant for
        // test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `i128` in `[lo, hi]` (inclusive both ends).
    pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128;
        if span == u128::MAX {
            return self.next_u64() as i128 | ((self.next_u64() as i128) << 64);
        }
        let span = span + 1;
        let draw = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
        lo + draw as i128
    }
}

/// FNV-1a hash of a string; used to derive per-test seeds from test names.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
