//! The [`Strategy`] trait and the core combinators/strategies.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::rng::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe core (`generate`) plus sized combinators, so trait objects
/// (`BoxedStrategy`) work while `prop_map` and friends stay ergonomic.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Generates an intermediate value and derives a second strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn Strategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive cases: {}",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range_i128(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_range_i128(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start() + (self.end() - self.start()) * rng.next_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
