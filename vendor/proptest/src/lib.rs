//! Offline mini-proptest.
//!
//! A dependency-free, deterministic re-implementation of the slice of the
//! `proptest` API this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_filter`/`boxed`, range / tuple / collection / sample
//! strategies, [`any`](arbitrary::any), `Just`, the `prop_oneof!` /
//! `prop_assert*!` / `prop_assume!` macros, and the [`proptest!`] test
//! harness macro.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its case number and the
//!   deterministic seed, which is enough to replay because…
//! - **Fully deterministic.** The RNG seed is derived from the test-function
//!   name (FNV-1a), so a given test explores the same cases on every run and
//!   machine. Set `PROPTEST_CASES` to change the case count (default 64).
//! - **Rejection via `Result`.** `prop_assume!`/`prop_assert!` expand to
//!   early `return Err(..)` inside the harness closure, exactly like real
//!   proptest, so no panic-catching machinery is needed.

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod runner;
pub mod sample;
pub mod strategy;
pub mod string;

/// The `prop` pseudo-module, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::runner::TestCaseError;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property test; on failure the current case
/// is reported (with its deterministic seed) and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left != right) {
            return ::core::result::Result::Err($crate::runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Discards the current case (without counting it) when the precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::runner::TestCaseError::Reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Chooses uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]` function that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            $vis fn $name() {
                let strategy = ($($strat,)*);
                $crate::runner::run(stringify!($name), &strategy, |values| {
                    let ($($arg,)*) = values;
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}
