//! `prop::sample::*` — choosing among concrete values.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy that picks one element of `values` uniformly.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(
        !values.is_empty(),
        "sample::select needs at least one value"
    );
    Select { values }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.values.len() as u64) as usize;
        self.values[idx].clone()
    }
}
