//! String strategies from a small regex subset.
//!
//! Real proptest interprets a `&str` strategy as a full regex; the stub
//! supports the subset the workspace (and most tests) actually use:
//! literal characters, `.`, character classes `[a-z0-9_]`, and the
//! quantifiers `{m,n}` / `{n}` / `*` / `+` / `?`. Groups and alternation
//! are rejected loudly rather than silently mis-generated.

use crate::rng::TestRng;
use crate::strategy::Strategy;

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any char except newline (mostly printable ASCII here).
    Dot,
    /// A literal character.
    Literal(char),
    /// A character class; each entry is an inclusive range.
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// A compiled regex-subset strategy producing `String`s.
#[derive(Debug, Clone)]
pub struct RegexStrategy {
    pieces: Vec<Piece>,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Dot,
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("checked");
                            let hi = chars.next().expect("range end");
                            ranges.push((lo, hi));
                        }
                        Some(ch) => {
                            if let Some(p) = prev.replace(ch) {
                                ranges.push((p, p));
                            }
                        }
                        None => panic!("unterminated class in regex strategy: {pattern}"),
                    }
                }
                if let Some(p) = prev {
                    ranges.push((p, p));
                }
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(chars.next().expect("escape target")),
            '(' | ')' | '|' => {
                panic!("regex strategy subset does not support groups/alternation: {pattern}")
            }
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&ch| ch != '}').collect();
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl RegexStrategy {
    /// Compiles `pattern` (panicking on unsupported syntax).
    pub fn new(pattern: &str) -> Self {
        RegexStrategy {
            pieces: parse(pattern),
        }
    }
}

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Dot => {
            // Mostly printable ASCII; occasionally tabs or high code points
            // to stress parsers, never '\n' (regex `.` excludes it).
            match rng.below(10) {
                0 => '\t',
                1 => char::from_u32(0x80 + rng.below(0x2000) as u32).unwrap_or('\u{fffd}'),
                _ => (0x20 + rng.below(0x5f) as u8) as char,
            }
        }
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
            char::from_u32(rng.in_range_i128(lo as i128, hi as i128) as u32).unwrap_or(lo)
        }
    }
}

impl Strategy for RegexStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = rng.in_range_i128(piece.min as i128, piece.max as i128) as u32;
            for _ in 0..n {
                out.push(gen_atom(&piece.atom, rng));
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        RegexStrategy::new(self).generate(rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        RegexStrategy::new(self).generate(rng)
    }
}
