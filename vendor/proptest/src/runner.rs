//! The case-execution loop behind the `proptest!` macro.

use crate::rng::{fnv1a, TestRng};
use crate::strategy::Strategy;

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's preconditions were not met (`prop_assume!`); it is skipped
    /// without counting toward the case budget.
    Reject(&'static str),
    /// A property assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Number of passing cases each property must accumulate.
fn case_budget() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Runs `body` over deterministically generated cases of `strategy`.
///
/// The seed derives from `name`, so every run of a given test explores the
/// identical case sequence — failures are reproducible by construction.
pub fn run<S, F>(name: &str, strategy: &S, body: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let budget = case_budget();
    let seed = fnv1a(name);
    let mut rng = TestRng::new(seed);
    let mut passed = 0u64;
    let mut rejected = 0u64;
    let mut case = 0u64;
    while passed < budget {
        case += 1;
        let value = strategy.generate(&mut rng);
        match body(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected < budget * 16,
                    "{name}: too many rejected cases ({rejected}); last: {why}"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed at case #{case} (seed {seed:#x}): {msg}");
            }
        }
    }
}
