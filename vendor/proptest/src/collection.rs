//! Collection strategies (`prop::collection::*`).

use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// A size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.in_range_i128(self.lo as i128, self.hi as i128) as usize
    }
}

/// `Vec` strategy with element strategy and size range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` strategy; the size range bounds *attempted* insertions, so the
/// result may be smaller when duplicates collide (as in real proptest).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `HashSet` strategy; size bounds attempted insertions.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
