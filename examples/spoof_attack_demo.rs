//! The paper's headline attack, live: a compromised web interface
//! impersonates the temperature sensor. On Linux the forged readings are
//! indistinguishable from real ones and the physical world overheats with
//! the alarm suppressed; on MINIX 3 + ACM the kernel drops every forged
//! message; on seL4 the controller rejects the attacker's badge.
//!
//! Run: `cargo run --release --example spoof_attack_demo`

use bas::attack::harness::{run_attack, AttackRunConfig};
use bas::attack::model::{AttackId, AttackerModel};
use bas::core::scenario::Platform;

fn main() {
    let config = AttackRunConfig::default();
    println!(
        "attack: impersonate the sensor with forged 'everything is normal' readings (A1)\n\
         timeline: 600s benign warmup, attack + heat disturbance, 120s observation\n"
    );

    for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
        let o = run_attack(
            platform,
            AttackerModel::ArbitraryCode,
            AttackId::SpoofSensorData,
            &config,
        );
        println!("── {} ──", platform);
        println!("   mechanism : {}", o.mechanism);
        println!(
            "   evidence  : {} attempts, {} accepted, {} denied, {} errors",
            o.evidence.attempts, o.evidence.successes, o.evidence.denials, o.evidence.errors
        );
        println!(
            "   physical  : final {:.2}°C, max deviation {:.2}°C, alarm {}, fan switched {}x",
            o.physical.final_temp_c,
            o.physical.max_deviation_c,
            if o.physical.alarm_on { "ON" } else { "off" },
            o.physical.fan_switches,
        );
        println!(
            "   verdict   : {}\n",
            if o.compromised() {
                "COMPROMISED — safety property violated"
            } else {
                "protected — control loop unaffected"
            }
        );
    }

    println!(
        "paper (§IV-D): \"We show through experiment that when the non-critical applications\n\
         are compromised in both MINIX 3 and seL4, the critical processes that impact the\n\
         physical world are not affected. Whereas in Linux, the compromised applications can\n\
         easily disrupt the physical processes.\""
    );
}
