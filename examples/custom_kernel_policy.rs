//! Building your own MINIX system with a custom ACM — the paper's Fig. 3
//! example as live processes: App1 and App3 expose RPCs as message types,
//! App2 may call only the functions the matrix allows it.
//!
//! Run: `cargo run --release --example custom_kernel_policy`

use bas::acm::fig3::{fig3_matrix, APP1, APP2, APP3};
use bas::minix::kernel::{MinixConfig, MinixKernel};
use bas::minix::script::{collected_replies, ScriptProcess};
use bas::minix::syscall::{Reply, Syscall};
use bas::sim::process::{Action, Process};

/// A tiny RPC server: receives a request, replies with an ack (type 0)
/// carrying the invoked function number, forever.
struct RpcApp {
    name: &'static str,
}

impl Process for RpcApp {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match reply {
            Some(Reply::Msg(m)) if m.mtype != 0 => {
                // Acknowledge: echo the function number in the payload.
                let mut payload = bas::minix::message::Payload::zeroed();
                payload.write_u32(0, 0); // ack subtag
                payload.write_u32(4, m.mtype);
                Action::Syscall(Syscall::Send {
                    dest: m.source,
                    mtype: 0,
                    payload,
                })
            }
            _ => Action::Syscall(Syscall::Receive { from: None }),
        }
    }

    fn name(&self) -> &str {
        self.name
    }
}

fn main() {
    // The exact matrix of the paper's Figure 3.
    let acm = fig3_matrix();
    println!("access-control matrix (Fig. 3):\n{}", acm.render_table(4));

    let mut kernel = MinixKernel::new(MinixConfig {
        acm,
        ..MinixConfig::default()
    });
    let app1 = kernel
        .spawn("app1", APP1, 1000, Box::new(RpcApp { name: "app1" }))
        .unwrap();
    let _app3 = kernel
        .spawn("app3", APP3, 1000, Box::new(RpcApp { name: "app3" }))
        .unwrap();

    // App2 invokes App1's functions 1, 2, 3 in turn via sendrec.
    let (caller, log) = ScriptProcess::new(vec![
        Syscall::sendrec(app1, 1, []), // app1_f1 — reserved for App3: DENIED
        Syscall::sendrec(app1, 2, []), // app1_f2 — allowed
        Syscall::sendrec(app1, 3, []), // app1_f3 — allowed
    ])
    .logged();
    kernel.spawn("app2", APP2, 1000, Box::new(caller)).unwrap();
    kernel.run_to_quiescence();

    println!("App2's three calls against App1:");
    for (f, reply) in (1..=3).zip(collected_replies(&log)) {
        match reply {
            Reply::Msg(m) => println!(
                "  app1_f{f}() -> ack for function {}",
                m.payload.read_u32(4)
            ),
            Reply::Err(e) => println!("  app1_f{f}() -> {e}"),
            other => println!("  app1_f{f}() -> {other:?}"),
        }
    }
    println!(
        "\nkernel counters: {} (one ACM denial for the reserved function)",
        kernel.metrics()
    );
    assert_eq!(kernel.metrics().access_denied, 1);
}
