//! Scaling the architecture: two building zones, each with its own
//! sensor/controller/fan/alarm chain, on one seL4 kernel — the kind of
//! growth the paper's intro motivates ("State-of-the-art BAS have many
//! networked entities"). Each zone is capability-confined to its own
//! devices and endpoints; zone A's processes cannot touch zone B's.
//!
//! Run: `cargo run --release --example multi_zone`

use std::cell::RefCell;
use std::rc::Rc;

use bas::camkes::assembly::Assembly;
use bas::camkes::codegen::compile;
use bas::camkes::component::{Component, Procedure};
use bas::camkes::glue::{RpcClient, RpcServer};
use bas::capdl::{realize, verify};
use bas::core::logic::control::{ControlConfig, ControlCore, Directive};
use bas::plant::devices::{AlarmDevice, FanDevice, SensorDevice};
use bas::plant::world::{PlantConfig, PlantWorld};
use bas::sel4::cap::CPtr;
use bas::sel4::kernel::{Sel4Config, Sel4Kernel, Sel4Thread};
use bas::sel4::rights::CapRights;
use bas::sel4::syscall::{Reply, Syscall};
use bas::sim::device::DeviceId;
use bas::sim::process::{Action, Process};
use bas::sim::time::{SimDuration, SimTime};

/// Device ids per zone: zone 0 uses 10/11/12, zone 1 uses 20/21/22.
fn zone_devices(zone: u32) -> (DeviceId, DeviceId, DeviceId) {
    let base = (zone + 1) * 10;
    (
        DeviceId::new(base),
        DeviceId::new(base + 1),
        DeviceId::new(base + 2),
    )
}

// --- minimal per-zone threads (sensor → controller → fan/alarm) ----------

struct ZoneSensor {
    dev: CPtr,
    ctrl: RpcClient,
    reading_pending: bool,
}

impl Process for ZoneSensor {
    type Syscall = Syscall;
    type Reply = Reply;
    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        if self.reading_pending {
            self.reading_pending = false;
            if let Some(Reply::DevValue(v)) = reply {
                return Action::Syscall(self.ctrl.call(0, vec![u64::from(v as u32)]));
            }
            return Action::Exit(1);
        }
        match reply {
            None | Some(Reply::Msg(_)) => {
                // Pace, then sample.
                Action::Syscall(Syscall::Sleep {
                    duration: SimDuration::from_secs(1),
                })
            }
            Some(Reply::Ok) => {
                self.reading_pending = true;
                Action::Syscall(Syscall::DevRead { dev: self.dev })
            }
            Some(_) => Action::Exit(1),
        }
    }
}

struct ZoneController {
    core: ControlCore,
    server: RpcServer,
    fan: RpcClient,
    alarm: RpcClient,
    outbox: std::collections::VecDeque<Syscall>,
    awaiting_time: Option<i32>,
}

impl Process for ZoneController {
    type Syscall = Syscall;
    type Reply = Reply;
    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        if let Some(milli_c) = self.awaiting_time.take() {
            let now = match reply {
                Some(Reply::Time(t)) => t,
                _ => SimTime::ZERO,
            };
            for d in self.core.on_sensor_reading(now, milli_c) {
                match d {
                    Directive::SetFan(on) => {
                        self.outbox.push_back(self.fan.call(0, vec![u64::from(on)]))
                    }
                    Directive::SetAlarm(on) => self
                        .outbox
                        .push_back(self.alarm.call(0, vec![u64::from(on)])),
                }
            }
            self.outbox.push_back(self.server.reply(0, vec![]));
        }
        if let Some(Reply::Msg(m)) = &reply {
            if m.reply_expected {
                self.awaiting_time = Some(m.words[0] as u32 as i32);
                return Action::Syscall(Syscall::GetTime);
            }
        }
        match self.outbox.pop_front() {
            Some(sys) => Action::Syscall(sys),
            None => Action::Syscall(self.server.next_request()),
        }
    }
}

struct ZoneActuator {
    server: RpcServer,
    dev: CPtr,
    awaiting_write: bool,
}

impl Process for ZoneActuator {
    type Syscall = Syscall;
    type Reply = Reply;
    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        if self.awaiting_write {
            self.awaiting_write = false;
            return Action::Syscall(self.server.reply(0, vec![]));
        }
        match reply {
            Some(Reply::Msg(m)) if !m.words.is_empty() => {
                self.awaiting_write = true;
                Action::Syscall(Syscall::DevWrite {
                    dev: self.dev,
                    value: i64::from(m.words[0] != 0),
                })
            }
            _ => Action::Syscall(self.server.next_request()),
        }
    }
}

fn main() {
    // One assembly, two zones: component instances are cheap to stamp out.
    let ctrl_api = Procedure::new("zone_ctrl", ["report"]);
    let act_api = Procedure::new("actuator", ["set"]);
    let mut assembly = Assembly::new();
    for zone in 0..2u32 {
        let (dev_sensor, dev_fan, dev_alarm) = zone_devices(zone);
        let z = |name: &str| format!("z{zone}_{name}");
        assembly = assembly
            .instance(
                z("ctrl"),
                Component::new("ZoneController")
                    .provides("api", ctrl_api.clone())
                    .uses("fan", act_api.clone())
                    .uses("alarm", act_api.clone()),
            )
            .instance(
                z("sensor"),
                Component::new("ZoneSensor")
                    .uses("api", ctrl_api.clone())
                    .hardware("temp", dev_sensor, CapRights::READ),
            )
            .instance(
                z("fan"),
                Component::new("ZoneFan")
                    .provides("cmd", act_api.clone())
                    .hardware("fan", dev_fan, CapRights::WRITE),
            )
            .instance(
                z("alarm"),
                Component::new("ZoneAlarm")
                    .provides("cmd", act_api.clone())
                    .hardware("alarm", dev_alarm, CapRights::WRITE),
            );
        let zc = z("ctrl");
        assembly = assembly
            .rpc_connection(format!("z{zone}_c1"), (&z("sensor"), "api"), (&zc, "api"))
            .rpc_connection(format!("z{zone}_c2"), (&zc, "fan"), (&z("fan"), "cmd"))
            .rpc_connection(format!("z{zone}_c3"), (&zc, "alarm"), (&z("alarm"), "cmd"));
    }

    let (spec, glue) = compile(&assembly).expect("two-zone assembly compiles");
    println!(
        "compiled: {} kernel objects, {} capabilities across {} threads",
        spec.objects.len(),
        spec.caps.len(),
        spec.threads.len()
    );

    // Two independent physical zones with different thermal loads.
    let mut kernel = Sel4Kernel::new(Sel4Config::default());
    let mut plants = Vec::new();
    for zone in 0..2u32 {
        let mut config = PlantConfig {
            setpoint_c: 22.0,
            ..PlantConfig::default()
        };
        config.room.external_heat_w = if zone == 0 { 300.0 } else { 450.0 };
        let plant = Rc::new(RefCell::new(PlantWorld::new(config, 100 + u64::from(zone))));
        let (dev_sensor, dev_fan, dev_alarm) = zone_devices(zone);
        kernel
            .devices_mut()
            .register(dev_sensor, Box::new(SensorDevice(plant.clone())));
        kernel
            .devices_mut()
            .register(dev_fan, Box::new(FanDevice(plant.clone())));
        kernel
            .devices_mut()
            .register(dev_alarm, Box::new(AlarmDevice(plant.clone())));
        plants.push(plant);
    }

    let mut loader = |name: &str| -> Option<Sel4Thread> {
        let g = &glue;
        let parts: Vec<&str> = name.splitn(2, '_').collect();
        let role = *parts.get(1)?;
        match role {
            "ctrl" => Some(Box::new(ZoneController {
                core: ControlCore::new(ControlConfig::default()),
                server: RpcServer::new(g.server_slot(name, "api")?),
                fan: RpcClient::new(g.client_slot(name, "fan")?),
                alarm: RpcClient::new(g.client_slot(name, "alarm")?),
                outbox: Default::default(),
                awaiting_time: None,
            })),
            "sensor" => Some(Box::new(ZoneSensor {
                dev: g.device_slot(name, "temp")?,
                ctrl: RpcClient::new(g.client_slot(name, "api")?),
                reading_pending: false,
            })),
            "fan" => Some(Box::new(ZoneActuator {
                server: RpcServer::new(g.server_slot(name, "cmd")?),
                dev: g.device_slot(name, "fan")?,
                awaiting_write: false,
            })),
            "alarm" => Some(Box::new(ZoneActuator {
                server: RpcServer::new(g.server_slot(name, "cmd")?),
                dev: g.device_slot(name, "alarm")?,
                awaiting_write: false,
            })),
            _ => None,
        }
    };
    let sys = realize(&spec, &mut kernel, &mut loader).expect("realizes");
    assert!(verify(&spec, &kernel, &sys).is_empty(), "boot audit clean");
    for pid in sys.threads.values() {
        kernel.start_thread(*pid);
    }

    // Run kernel and both plants in lockstep for 30 simulated minutes.
    let chunk = SimDuration::from_millis(100);
    let end = SimTime::ZERO + SimDuration::from_mins(30);
    while kernel.now() < end {
        let target = kernel.now() + chunk;
        kernel.run_until(target);
        let now = kernel.now();
        for plant in &plants {
            plant.borrow_mut().step_to(now);
        }
    }

    println!("\nafter 30 simulated minutes:");
    for (zone, plant) in plants.iter().enumerate() {
        let p = plant.borrow();
        println!(
            "zone {zone}: temp {:.2}°C | fan {} ({} switches) | alarm {} | safety {}",
            p.temperature_c(),
            if p.fan().is_on() { "ON" } else { "off" },
            p.fan().switch_count(),
            if p.alarm().is_on() { "ON" } else { "off" },
            if p.safety_report().is_safe() {
                "OK"
            } else {
                "VIOLATED"
            },
        );
        assert!(
            (21.0..=23.0).contains(&p.temperature_c()),
            "zone {zone} regulated"
        );
        assert!(p.safety_report().is_safe());
    }
    println!(
        "\nisolation check: zone 0's sensor holds {} caps — its zone only",
        kernel
            .cspace_of(sys.threads["z0_sensor"])
            .unwrap()
            .occupied()
    );
}
