//! Building a new capability-confined system with the CAmkES/CapDL
//! toolchain — the workflow a downstream user follows to add their own
//! subsystem (here: a door-lock controller with a badge reader and a
//! lock actuator, a second classic BAS function).
//!
//! Run: `cargo run --release --example custom_component_system`

use bas::camkes::assembly::Assembly;
use bas::camkes::codegen::compile;
use bas::camkes::component::{Component, Procedure};
use bas::camkes::glue::{RpcClient, RpcServer};
use bas::capdl::{realize, verify};
use bas::sel4::kernel::{Sel4Config, Sel4Kernel, Sel4Thread};
use bas::sel4::syscall::{Reply, Syscall};
use bas::sim::process::{Action, Process};
use bas::sim::script::{replies, Script};

/// The lock controller: grants access when the badge id is on the
/// allowlist, and never exposes anything else.
struct LockController {
    server: RpcServer,
    allowlist: Vec<u64>,
}

impl Process for LockController {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match reply {
            Some(Reply::Msg(m)) => {
                let req = self.server.decode(&m);
                let granted = req.label == 0 // request_entry
                    && req.args.first().is_some_and(|id| self.allowlist.contains(id));
                Action::Syscall(
                    self.server
                        .reply(u64::from(!granted), vec![u64::from(granted)]),
                )
            }
            _ => Action::Syscall(self.server.next_request()),
        }
    }

    fn name(&self) -> &str {
        "lock_controller"
    }
}

fn main() {
    // 1. Describe the architecture.
    let lock_api = Procedure::new("lock_api", ["request_entry"]);
    let assembly = Assembly::new()
        .instance(
            "lock",
            Component::new("LockController").provides("api", lock_api.clone()),
        )
        .instance(
            "reader",
            Component::new("BadgeReader").uses("api", lock_api.clone()),
        )
        .instance(
            "kiosk",
            Component::new("VisitorKiosk").uses("api", lock_api),
        )
        .rpc_connection("c_reader", ("reader", "api"), ("lock", "api"))
        .rpc_connection("c_kiosk", ("kiosk", "api"), ("lock", "api"));

    // 2. Compile to a capability distribution.
    let (spec, glue) = compile(&assembly).expect("assembly is valid");
    println!("compiled CapDL:\n{}", spec.to_text());

    // 3. Realize on the kernel with the application logic.
    let mut kernel = Sel4Kernel::new(Sel4Config::default());
    let reader_stub = RpcClient::new(glue.client_slot("reader", "api").unwrap());
    let kiosk_stub = RpcClient::new(glue.client_slot("kiosk", "api").unwrap());
    let (reader, reader_log) =
        Script::<Syscall, Reply>::new(vec![reader_stub.call(0, vec![7])]).logged();
    let (kiosk, kiosk_log) =
        Script::<Syscall, Reply>::new(vec![kiosk_stub.call(0, vec![999])]).logged();

    let mut reader = Some(reader);
    let mut kiosk = Some(kiosk);
    let server_slot = glue.server_slot("lock", "api").unwrap();
    let mut loader = |name: &str| -> Option<Sel4Thread> {
        match name {
            "lock" => Some(Box::new(LockController {
                server: RpcServer::new(server_slot),
                allowlist: vec![7, 8, 9],
            })),
            "reader" => reader.take().map(|s| Box::new(s) as Sel4Thread),
            "kiosk" => kiosk.take().map(|s| Box::new(s) as Sel4Thread),
            _ => None,
        }
    };
    let sys = realize(&spec, &mut kernel, &mut loader).expect("realizes");

    // 4. Machine-verify the distribution before starting anything.
    assert!(verify(&spec, &kernel, &sys).is_empty(), "boot audit clean");
    for name in ["lock", "reader", "kiosk"] {
        kernel.start_thread(sys.threads[name]);
    }
    kernel.run_to_quiescence();

    // 5. Observe: badge 7 admitted, badge 999 refused — and the kiosk
    //    could never reach anything but the lock API.
    let reader_result = replies(&reader_log);
    let kiosk_result = replies(&kiosk_log);
    println!("badge reader (id 7):   {:?}", reader_result[0]);
    println!("visitor kiosk (id 999): {:?}", kiosk_result[0]);
    assert_eq!(
        reader_result[0].message().unwrap().words,
        vec![1],
        "entry granted"
    );
    assert_eq!(
        kiosk_result[0].message().unwrap().words,
        vec![0],
        "entry refused"
    );
    println!(
        "\ncapability audit after serving: {:?}",
        verify(&spec, &kernel, &sys)
    );
}
