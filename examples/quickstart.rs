//! Quickstart: boot the paper's five-process temperature-control scenario
//! on all three platforms and watch it regulate.
//!
//! Run: `cargo run --release --example quickstart`

use bas::core::platform::linux::{build_linux, LinuxOverrides};
use bas::core::platform::minix::{build_minix, MinixOverrides};
use bas::core::platform::sel4::{build_sel4, Sel4Overrides};
use bas::core::scenario::{critical_alive, Scenario, ScenarioConfig};
use bas::sim::time::SimDuration;

fn main() {
    // One configuration drives all three implementations — the same
    // control logic, sensor pacing, and physical world.
    let config = ScenarioConfig::default();

    let mut scenarios: Vec<Box<dyn Scenario>> = vec![
        Box::new(build_minix(&config, MinixOverrides::default())),
        Box::new(build_sel4(&config, Sel4Overrides::default())),
        Box::new(build_linux(&config, LinuxOverrides::default())),
    ];

    println!("running 30 simulated minutes on each platform...\n");
    println!(
        "{:<14} {:>9} {:>6} {:>7} {:>8} {:>12} {:>10}",
        "platform", "temp[°C]", "fan", "alarm", "safe?", "ipc msgs", "critical"
    );
    for s in &mut scenarios {
        s.run_for(SimDuration::from_mins(30));
        let plant = s.plant();
        let plant = plant.borrow();
        println!(
            "{:<14} {:>9.2} {:>6} {:>7} {:>8} {:>12} {:>10}",
            s.platform().to_string(),
            plant.temperature_c(),
            if plant.fan().is_on() { "ON" } else { "off" },
            if plant.alarm().is_on() { "ON" } else { "off" },
            if plant.safety_report().is_safe() {
                "yes"
            } else {
                "NO"
            },
            s.metrics().ipc_messages,
            if critical_alive(s.as_ref()) {
                "alive"
            } else {
                "LOST"
            },
        );
    }

    println!("\nadministrator sessions (the web interface's responses):");
    for s in &scenarios {
        println!("  {:<12} {:?}", s.platform().to_string(), s.web_responses());
    }
}
