//! # bas — microkernel-based BAS controller platforms
//!
//! Facade crate for the reproduction of *Enhanced Security of Building
//! Automation Systems Through Microkernel-Based Controller Platforms*
//! (Wang et al., 2017). Re-exports every workspace crate under one root so
//! examples and integration tests can address the whole system:
//!
//! - [`sim`] — deterministic execution substrate
//! - [`plant`] — simulated physical world (room, sensor, fan, alarm)
//! - [`acm`] — the paper's access-control-matrix contribution
//! - [`minix`] — MINIX 3 microkernel model with ACM enforcement
//! - [`sel4`] — seL4 capability-kernel model
//! - [`capdl`] — CapDL-style capability-distribution specs
//! - [`camkes`] — CAmkES-style component assemblies
//! - [`linux`] — monolithic-kernel baseline with POSIX message queues
//! - [`aadl`] — AADL-subset architecture language and policy backends
//! - [`core`] — the temperature-control scenario on all three platforms
//! - [`attack`] — attacker models, attack library and outcome harness
//! - [`faults`] — fault-schedule DSL, injection and degradation campaigns
//! - [`analysis`] — static policy IR, attack prediction and policy linter
//! - [`fleet`] — parallel fleet engine with deterministic reports
//! - [`traffic`] — E18 multi-tenant traffic front-end over the fleet
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full inventory.

pub use bas_aadl as aadl;
pub use bas_acm as acm;
pub use bas_analysis as analysis;
pub use bas_attack as attack;
pub use bas_camkes as camkes;
pub use bas_capdl as capdl;
pub use bas_core as core;
pub use bas_faults as faults;
pub use bas_fleet as fleet;
pub use bas_linux as linux;
pub use bas_minix as minix;
pub use bas_plant as plant;
pub use bas_sel4 as sel4;
pub use bas_sim as sim;
pub use bas_traffic as traffic;
