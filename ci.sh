#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, and a smoke run
# of every experiment binary. Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings; covers the bas-analysis mc module) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== experiment smoke (every exp_* binary, --quick) =="
cargo build -q --release -p bas-bench
for bin in crates/bench/src/bin/exp_*.rs; do
  name="$(basename "$bin" .rs)"
  echo "-- $name --quick"
  "./target/release/$name" --quick > /dev/null
done

echo "== model check (E14: exhaustive bounded verification, capped state budget) =="
# Exits nonzero on any cell disagreement, truncated exploration, reachable
# internal invariant, POR verdict divergence, or failed counterexample replay.
./target/release/exp_model_check --quick --state-budget 500000 > /dev/null

echo "CI OK"
