#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, and a smoke run
# of every experiment binary. Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings; covers the bas-analysis mc module) =="
cargo clippy --workspace --all-targets -- -D warnings \
  -W clippy::redundant_clone -W clippy::needless_collect \
  -W clippy::large_enum_variant

echo "== cargo clippy (bas-analysis + bas-faults + bas-fleet: no unwrap in the analyzers) =="
# The static analyzer is the crate whose own soundness claims the repo
# leans on, bas-faults drives the churn schedules the race detector
# trusts, and bas-fleet is the long-running executor where a stray panic
# takes down a whole worker pool; panicking escape hatches are held to a
# stricter bar in all three.
cargo clippy -p bas-analysis -p bas-faults -p bas-fleet -p bas-traffic --all-targets -- -D warnings \
  -W clippy::unwrap_used

echo "== cargo test =="
cargo test -q --workspace

echo "== experiment smoke (every exp_* binary, --quick) =="
cargo build -q --release -p bas-bench
for bin in crates/bench/src/bin/exp_*.rs; do
  name="$(basename "$bin" .rs)"
  echo "-- $name --quick"
  "./target/release/$name" --quick > /dev/null
done

echo "== fault campaign (E16) + multi-platform recovery (A3) =="
# The campaign report must be byte-stable across worker counts; this
# regenerates the committed BENCH_faults.json and checks the determinism
# contract cheaply on top of the smoke run above.
./target/release/exp_fault_campaign --quick --json --workers 1 > /dev/null
mv BENCH_faults.json /tmp/BENCH_faults.w1.json
./target/release/exp_fault_campaign --quick --json --workers 4 > /dev/null
cmp /tmp/BENCH_faults.w1.json BENCH_faults.json \
  || { echo "** BENCH_faults.json differs across worker counts **"; exit 1; }
for platform in linux minix sel4; do
  echo "-- exp_recovery --quick --platform $platform"
  ./target/release/exp_recovery --quick --platform "$platform" > /dev/null
done

echo "== capability-flow differential (E17: static analyzer vs model checker) =="
# Exits nonzero if any of the 54 matrix cells or the seeded derivation
# scenarios disagree between the static witness analysis and the bounded
# checker, in either direction. --json writes BENCH_cap_flow.json.
./target/release/exp_cap_flow --quick --json --state-budget 500000 > /dev/null

echo "== capability-churn races (E19: detector vs model checker vs static leaks) =="
# Exits nonzero on any missed race, false positive in a churn-free trace,
# CAPABILITY_RACE bit in a plain matrix cell, unmapped revocation leak, or
# unconfirmed witness. The report itself carries no wall-clock values, so
# it must be byte-identical across worker counts.
./target/release/exp_cap_races --quick --json --workers 1 > /dev/null
mv BENCH_races.json /tmp/BENCH_races.w1.json
./target/release/exp_cap_races --quick --json --workers 4 > /dev/null
cmp /tmp/BENCH_races.w1.json BENCH_races.json \
  || { echo "** BENCH_races.json differs across worker counts **"; exit 1; }

echo "== race-detector perf gate (trace events/sec vs committed baseline, 30% floor) =="
# Guards the engine-driven churn sweep: replaying the full 21-scenario
# catalog must keep its trace-events/sec within 30% of the committed
# BENCH_races_baseline.json (refresh the baseline deliberately when the
# machine or the engine changes for good reason).
current=$(grep -m1 -o '"events_per_second": *[0-9.eE+-]*' BENCH_races_perf.json | sed 's/.*: *//')
baseline=$(grep -m1 -o '"events_per_second": *[0-9.eE+-]*' BENCH_races_baseline.json | sed 's/.*: *//')
awk -v cur="$current" -v base="$baseline" 'BEGIN {
  floor = base * 0.7;
  printf "events/sec: current %.0f, baseline %.0f, floor %.0f\n", cur, base, floor;
  if (cur < floor) { print "** race-detector throughput regressed >30% **"; exit 1 }
}'

echo "== model check (E14: exhaustive bounded verification, capped state budget) =="
# Exits nonzero on any cell disagreement, truncated exploration, reachable
# internal invariant, POR verdict divergence, parallel/sequential divergence,
# or failed counterexample replay. --json writes BENCH_mc.json.
./target/release/exp_model_check --quick --json --state-budget 500000 > /dev/null

echo "== model-check perf gate (states/sec vs committed baseline, 30% floor) =="
# Guards the explorer's hot path: the --quick sweep's states/sec must stay
# within 30% of the committed BENCH_mc_baseline.json (refresh the baseline
# deliberately when the machine or the explorer changes for good reason).
current=$(grep -m1 -o '"states_per_second": *[0-9.eE+-]*' BENCH_mc.json | sed 's/.*: *//')
baseline=$(grep -m1 -o '"states_per_second": *[0-9.eE+-]*' BENCH_mc_baseline.json | sed 's/.*: *//')
awk -v cur="$current" -v base="$baseline" 'BEGIN {
  floor = base * 0.7;
  printf "states/sec: current %.0f, baseline %.0f, floor %.0f\n", cur, base, floor;
  if (cur < floor) { print "** model-check throughput regressed >30% **"; exit 1 }
}'

echo "== fleet perf gate (IPC hot path + throughput vs committed baseline, 30% floor) =="
# Guards the arena IPC hot path and the persistent-pool fleet executor:
# the --quick sweep's rates must stay within 30% of the committed
# BENCH_fleet_baseline.json (refresh the baseline deliberately when the
# machine or the executor changes for good reason).
./target/release/exp_fleet_scale --quick > /dev/null
for metric in '"messages_per_second"' '"fleet_ipc_messages_per_wall_second"'; do
  current=$(grep -m1 -o "$metric: *[0-9.eE+-]*" BENCH_fleet.json | sed 's/.*: *//')
  baseline=$(grep -m1 -o "$metric: *[0-9.eE+-]*" BENCH_fleet_baseline.json | sed 's/.*: *//')
  awk -v cur="$current" -v base="$baseline" -v name="$metric" 'BEGIN {
    floor = base * 0.7;
    printf "%s: current %.0f, baseline %.0f, floor %.0f\n", name, cur, base, floor;
    if (cur < floor) { print "** fleet throughput regressed >30% **"; exit 1 }
  }'
done
# Snapshot-fork boot gates: instances/sec has a floor like the other
# rates; bytes/instance is a regression in the *upward* direction, so it
# gets a ceiling instead. The leading quote anchors each grep to the
# snapshot-path keys (the cold-path ones are "cold_..."-prefixed).
current=$(grep -m1 -o '"boot_instances_per_sec": *[0-9.eE+-]*' BENCH_fleet.json | sed 's/.*: *//')
baseline=$(grep -m1 -o '"boot_instances_per_sec": *[0-9.eE+-]*' BENCH_fleet_baseline.json | sed 's/.*: *//')
awk -v cur="$current" -v base="$baseline" 'BEGIN {
  floor = base * 0.7;
  printf "boot_instances_per_sec: current %.0f, baseline %.0f, floor %.0f\n", cur, base, floor;
  if (cur < floor) { print "** snapshot boot throughput regressed >30% **"; exit 1 }
}'
current=$(grep -m1 -o '"bytes_per_instance": *[0-9.eE+-]*' BENCH_fleet.json | sed 's/.*: *//')
baseline=$(grep -m1 -o '"bytes_per_instance": *[0-9.eE+-]*' BENCH_fleet_baseline.json | sed 's/.*: *//')
awk -v cur="$current" -v base="$baseline" 'BEGIN {
  ceiling = base * 1.3;
  printf "bytes_per_instance: current %.0f, baseline %.0f, ceiling %.0f\n", cur, base, ceiling;
  if (cur > ceiling) { print "** snapshot boot memory per instance regressed >30% **"; exit 1 }
}'
# The 2-worker speedup floor needs real cores; on a single-CPU host the
# determinism and throughput gates above still ran.
cores=$(grep -m1 -o '"cores": *[0-9]*' BENCH_fleet.json | sed 's/.*: *//')
if [ "$cores" -ge 2 ]; then
  speedup=$(grep -m1 -o '"speedup_2_workers": *[0-9.eE+-]*' BENCH_fleet.json | sed 's/.*: *//')
  awk -v s="$speedup" 'BEGIN {
    printf "2-worker speedup: %.2fx (>1.2x required)\n", s;
    if (s < 1.2) { print "** 2-worker fleet speedup below floor **"; exit 1 }
  }'
else
  echo "2-worker speedup floor skipped ($cores core(s))"
fi
# Leave the committed full-mode BENCH_fleet.json (256-instance sweep) in
# place rather than the quick file the gate just measured.
./target/release/exp_fleet_scale > /dev/null

echo "== traffic perf gate (E18: requests/sec vs committed baseline, 30% floor) =="
# exp_traffic itself asserts the deterministic TrafficReport is
# byte-identical across every worker count it sweeps (a file-level cmp
# would trip on the wall-clock sweep numbers, so the check lives inside
# the binary). The gate here adds the throughput floor: the --quick
# sustained requests/sec must stay within 30% of the committed
# BENCH_traffic_baseline.json (refresh the baseline deliberately when
# the machine or the front-end changes for good reason).
./target/release/exp_traffic --quick > /dev/null
current=$(grep -m1 -o '"requests_per_wall_second": *[0-9.eE+-]*' BENCH_traffic.json | sed 's/.*: *//')
baseline=$(grep -m1 -o '"requests_per_wall_second": *[0-9.eE+-]*' BENCH_traffic_baseline.json | sed 's/.*: *//')
awk -v cur="$current" -v base="$baseline" 'BEGIN {
  floor = base * 0.7;
  printf "requests/sec: current %.0f, baseline %.0f, floor %.0f\n", cur, base, floor;
  if (cur < floor) { print "** traffic throughput regressed >30% **"; exit 1 }
}'
# Leave the committed full-mode BENCH_traffic.json (1 024-instance run,
# which also enforces the 100k requests/sec floor) in place.
./target/release/exp_traffic > /dev/null

echo "CI OK"
