//! The fleet runner: N independent buildings across worker threads.
//!
//! Each instance is a complete scenario — kernel stack plus plant —
//! booted and driven entirely on one worker thread (scenarios hold
//! `Rc<RefCell<…>>` plant state and never cross threads). The fleet is
//! split into *contiguous per-worker batches*: each persistent
//! [`WorkerPool`] thread boots its batch once, keeps the engines
//! resident in an [`EngineBatch`] (struct-of-arrays hot state), and
//! sweeps them epoch by epoch to the horizon; only the final report
//! merge synchronizes. Thread scheduling decides only *when* a batch
//! computes, never *what* it computes: every per-instance RNG seed
//! derives from the root seed and instance index alone, and the epoch
//! schedule is worker-independent, which is what makes the
//! [`FleetReport`] deterministic under any worker count.
//!
//! The older ticket-claiming executor survives as [`run_cells`] for
//! sweeps whose cells are one-shot (fault campaigns, the model
//! checker's cross-validation), where batch residency buys nothing.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bas_attack::harness::{run_attack, AttackRunConfig};
use bas_attack::model::{AttackId, AttackerModel};
use bas_core::scenario::{critical_alive, plant_snapshot, Platform, ScenarioConfig};
use bas_core::EngineSnapshot;
use bas_sim::time::SimDuration;

use crate::batch::EngineBatch;
use crate::instances::InstancePool;
use crate::pool::WorkerPool;
use crate::report::{AttackCell, FleetReport, InstanceReport, RequestStats};
use crate::seed::instance_seed;

/// An attack campaign: every instance runs the same attack under the
/// same attacker model, each with its own derived seed.
#[derive(Clone)]
pub struct Campaign {
    /// The attack to run on every instance.
    pub attack: AttackId,
    /// The attacker model.
    pub attacker: AttackerModel,
    /// Timing and scenario template for the attack runs (the campaign
    /// uses `run.scenario`, not [`FleetConfig::template`], so the
    /// heat-burst disturbance of [`AttackRunConfig::default`] survives).
    pub run: AttackRunConfig,
}

impl Campaign {
    /// A campaign with the paper's standard attack-run timing.
    pub fn new(attack: AttackId, attacker: AttackerModel) -> Campaign {
        Campaign {
            attack,
            attacker,
            run: AttackRunConfig::default(),
        }
    }
}

/// How benign fleet instances come into existence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BootMode {
    /// Boot one warm template per fleet, fork instances from it and
    /// recycle idle engines in place (the default; byte-identical to
    /// [`BootMode::Cold`] by the `bas-core` snapshot soundness guards).
    #[default]
    Snapshot,
    /// Boot every instance from scratch (the pre-snapshot path; kept as
    /// the reference the byte-identity tests compare against).
    Cold,
}

/// A [`FleetConfig`] shape the validated constructors reject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetConfigError {
    /// `instances == 0`: a fleet needs at least one building.
    ZeroInstances,
}

impl std::fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetConfigError::ZeroInstances => {
                write!(f, "fleet needs at least one instance")
            }
        }
    }
}

impl std::error::Error for FleetConfigError {}

/// Configuration of one fleet run.
#[derive(Clone)]
pub struct FleetConfig {
    /// Platform every instance runs on.
    pub platform: Platform,
    /// Number of building instances.
    pub instances: usize,
    /// Worker threads (clamped to `1..=instances`).
    pub workers: usize,
    /// Root seed; instance `i` runs with
    /// [`instance_seed`]`(root_seed, i)`.
    pub root_seed: u64,
    /// Simulated horizon per benign instance (campaigns use the
    /// campaign's own warmup/window/cooldown instead).
    pub horizon: SimDuration,
    /// Scenario template for benign instances (seed is overwritten
    /// per instance).
    pub template: ScenarioConfig,
    /// How benign instances boot (campaigns always boot cold through
    /// the attack harness).
    pub boot: BootMode,
    /// Engines resident per worker at once. Benign fleets larger than
    /// `workers × max_resident` run in cohorts, recycling engines
    /// between cohorts, which bounds memory at ~`max_resident` stacks
    /// per worker no matter the fleet size.
    pub max_resident: usize,
    /// `Some` turns the fleet into an attack campaign.
    pub campaign: Option<Campaign>,
}

/// Default for [`FleetConfig::max_resident`]: large enough that the
/// BENCH-quoted 256-instance fleet stays fully resident on one worker,
/// small enough that a 100k fleet fits comfortably in memory.
pub const DEFAULT_MAX_RESIDENT: usize = 256;

impl FleetConfig {
    /// A benign fleet with the default quiet scenario and a 30-minute
    /// horizon.
    ///
    /// # Panics
    ///
    /// Panics when the shape is invalid (`instances == 0`); use
    /// [`FleetConfig::try_benign`] to handle that as a value.
    pub fn benign(platform: Platform, instances: usize, workers: usize) -> FleetConfig {
        FleetConfig::try_benign(platform, instances, workers).expect("valid benign fleet shape")
    }

    /// A benign fleet, validated at construction: rejects
    /// `instances == 0` and clamps `workers` into `1..=instances`.
    pub fn try_benign(
        platform: Platform,
        instances: usize,
        workers: usize,
    ) -> Result<FleetConfig, FleetConfigError> {
        if instances == 0 {
            return Err(FleetConfigError::ZeroInstances);
        }
        Ok(FleetConfig {
            platform,
            instances,
            workers: workers.clamp(1, instances),
            root_seed: 42,
            horizon: SimDuration::from_mins(30),
            template: ScenarioConfig::quiet(),
            boot: BootMode::default(),
            max_resident: DEFAULT_MAX_RESIDENT,
            campaign: None,
        })
    }

    /// Checks the invariants [`FleetConfig::try_benign`] establishes
    /// (fields are public, so hand-built configs can break them).
    pub fn validate(&self) -> Result<(), FleetConfigError> {
        if self.instances == 0 {
            return Err(FleetConfigError::ZeroInstances);
        }
        Ok(())
    }
}

/// Wall-clock throughput of a fleet run. Deliberately *outside*
/// [`FleetReport`]: timing and worker count vary run to run, the report
/// must not.
#[derive(Debug, Clone, PartialEq)]
pub struct WallStats {
    /// Worker threads actually used.
    pub workers: usize,
    /// Instances resident per worker batch (last batch may be smaller).
    pub batch_size: usize,
    /// Elapsed wall-clock seconds.
    pub wall_seconds: f64,
    /// Simulated seconds advanced per wall-clock second.
    pub sim_seconds_per_wall_second: f64,
    /// IPC messages delivered per wall-clock second.
    pub ipc_messages_per_wall_second: f64,
    /// Web requests completed per wall-clock second (0 for fleets
    /// without traffic; the E18 headline number).
    pub requests_per_wall_second: f64,
    /// Per-worker busy fraction (batch compute time / run wall time),
    /// one entry per worker; tail imbalance shows up here.
    pub worker_utilization: Vec<f64>,
}

/// A completed fleet run: the deterministic report plus wall-clock
/// throughput.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Simulation outcome (pure function of the configuration).
    pub report: FleetReport,
    /// Wall-clock throughput (varies run to run).
    pub wall: WallStats,
}

/// Tickets claimed per fetch: large enough to keep workers off the
/// shared counter's cache line most of the time, small enough that a
/// straggler chunk cannot idle the other workers at the tail. Capped at
/// each worker's fair share, `instances / workers`, so no single claim
/// can swallow more items than the smallest even split — without the
/// cap a caller with `workers > instances / chunk` could see one worker
/// drain the whole counter while the rest never claim a ticket.
fn claim_chunk(instances: usize, workers: usize) -> usize {
    let workers = workers.max(1);
    let fair_share = (instances / workers).max(1);
    (instances / (workers * 8)).clamp(1, 64).min(fair_share)
}

/// Runs `count` independent work items across `workers` threads and
/// returns their results in index order — the fleet's ticket-claiming
/// worker pool, factored out so other sweeps (`bas-faults` campaigns)
/// inherit the same determinism argument: workers claim *chunks* of
/// indices from one atomic ticket counter and buffer results locally;
/// buffers are merged and index-sorted only after every worker joins, so
/// thread scheduling decides who computes an item, never what the item
/// computes.
pub fn run_cells<T, F>(count: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, count);
    let next = AtomicUsize::new(0);
    let chunk = claim_chunk(count, workers);

    let mut results: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::with_capacity(count / workers + chunk);
                    loop {
                        let begin = next.fetch_add(chunk, Ordering::Relaxed);
                        if begin >= count {
                            break;
                        }
                        for index in begin..(begin + chunk).min(count) {
                            local.push((index, run(index)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .flat_map(|(w, h)| match h.join() {
                Ok(local) => local,
                // Re-panic with the worker's own payload text plus its
                // index — `.expect(..)` here would report only
                // "Any { .. }", losing the panicking instance's message.
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    panic!("fleet worker {w} panicked: {msg}");
                }
            })
            .collect()
    });

    // Completion order depends on scheduling; result order must not.
    results.sort_by_key(|(index, _)| *index);
    results.into_iter().map(|(_, item)| item).collect()
}

/// Runs the fleet on a freshly spawned [`WorkerPool`] and aggregates
/// the report. Harnesses that sweep many configurations should create
/// one pool and call [`run_fleet_with`] to reuse its threads.
pub fn run_fleet(config: &FleetConfig) -> FleetRun {
    let pool = WorkerPool::new(config.workers.clamp(1, config.instances.max(1)));
    run_fleet_with(&pool, config)
}

/// Virtual time each worker advances its resident batch per sweep: a
/// fixed multiple of the scenario's lockstep chunk, so epoch boundaries
/// land exactly on chunk boundaries and the chunked advance computes
/// the same instance trajectory as a single `run_for(horizon)` — and
/// the schedule never depends on the worker count.
fn epoch_duration(config: &FleetConfig) -> SimDuration {
    const CHUNKS_PER_EPOCH: u64 = 600;
    SimDuration::from_nanos(config.template.lockstep_chunk.as_nanos() * CHUNKS_PER_EPOCH)
}

/// Runs the fleet on an existing pool and aggregates the report.
///
/// Instances are split into contiguous batches — one per worker, each
/// resident on its thread for the whole run — so the report is a pure
/// function of the configuration regardless of worker count or pool
/// size.
pub fn run_fleet_with(pool: &WorkerPool, config: &FleetConfig) -> FleetRun {
    // Degenerate shapes are rejected at construction (`try_benign`); a
    // hand-built empty config still gets an empty report, not a panic.
    if config.validate().is_err() {
        return FleetRun {
            report: FleetReport::aggregate(
                config.platform,
                config.root_seed,
                config.campaign.as_ref().map(|c| (c.attack, c.attacker)),
                Vec::new(),
            ),
            wall: WallStats {
                workers: 0,
                batch_size: 0,
                wall_seconds: 0.0,
                sim_seconds_per_wall_second: 0.0,
                ipc_messages_per_wall_second: 0.0,
                requests_per_wall_second: 0.0,
                worker_utilization: Vec::new(),
            },
        };
    }
    let workers = config.workers.clamp(1, config.instances).min(pool.size());
    let batch_size = config.instances.div_ceil(workers);
    // The warm template boots once per fleet; every worker forks its
    // instances from the same shared snapshot. Campaigns and cold mode
    // skip the capture (their instances never touch it).
    let snapshot = match (&config.campaign, config.boot) {
        (None, BootMode::Snapshot) => Some(Arc::new(EngineSnapshot::capture(
            config.platform,
            &config.template,
        ))),
        _ => None,
    };
    let start = Instant::now();

    let jobs: Vec<_> = (0..workers)
        .map(|w| {
            let config = config.clone();
            let snapshot = snapshot.clone();
            let range = (w * batch_size)..((w + 1) * batch_size).min(config.instances);
            move || run_batch(&config, snapshot, range)
        })
        .collect();
    let batches = pool.run(jobs);

    let wall_seconds = start.elapsed().as_secs_f64();
    let mut per_instance = Vec::with_capacity(config.instances);
    let mut worker_utilization = Vec::with_capacity(workers);
    for (reports, busy_seconds) in batches {
        per_instance.extend(reports);
        worker_utilization.push((busy_seconds / wall_seconds.max(1e-9)).min(1.0));
    }

    let report = FleetReport::aggregate(
        config.platform,
        config.root_seed,
        config.campaign.as_ref().map(|c| (c.attack, c.attacker)),
        per_instance,
    );
    let denom = wall_seconds.max(1e-9);
    let wall = WallStats {
        workers,
        batch_size,
        wall_seconds,
        sim_seconds_per_wall_second: report.totals.sim_seconds / denom,
        ipc_messages_per_wall_second: report.totals.ipc_messages as f64 / denom,
        requests_per_wall_second: report.totals.requests as f64 / denom,
        worker_utilization,
    };
    FleetRun { report, wall }
}

/// One worker's whole run: materialize cohorts of at most
/// [`FleetConfig::max_resident`] instances from the pool, sweep each to
/// the horizon in epochs, recycle its engines into the next cohort.
/// Returns the index-ordered reports plus the busy seconds spent (for
/// [`WallStats::worker_utilization`]).
fn run_batch(
    config: &FleetConfig,
    snapshot: Option<Arc<EngineSnapshot>>,
    range: Range<usize>,
) -> (Vec<InstanceReport>, f64) {
    let t0 = Instant::now();
    let reports = match &config.campaign {
        None => {
            let mut pool = InstancePool::for_config(config, snapshot);
            let epoch_ns = epoch_duration(config).as_nanos().max(1);
            let total_ns = config.horizon.as_nanos();
            let cohort = config.max_resident.max(1);
            let mut reports = Vec::with_capacity(range.len());
            let mut begin = range.start;
            while begin < range.end {
                let end = (begin + cohort).min(range.end);
                let mut batch = EngineBatch::materialize(&mut pool, config, begin..end);
                let mut done_ns = 0;
                while done_ns < total_ns {
                    let step = (total_ns - done_ns).min(epoch_ns);
                    batch.advance(SimDuration::from_nanos(step));
                    done_ns += step;
                }
                reports.extend(batch.finish_into(&mut pool));
                begin = end;
            }
            reports
        }
        // Attack campaigns drive each instance through the attack
        // harness's own warmup/window/cooldown phases; they cannot be
        // epoch-stepped externally, so the batch runs them one-shot.
        Some(_) => range.map(|index| run_instance(config, index)).collect(),
    };
    (reports, t0.elapsed().as_secs_f64())
}

/// Boots, runs, and snapshots one instance, entirely on the calling
/// thread.
fn run_instance(config: &FleetConfig, index: usize) -> InstanceReport {
    let seed = instance_seed(config.root_seed, index);
    match &config.campaign {
        None => {
            let mut scenario_cfg = config.template.clone();
            scenario_cfg.seed = seed;
            let mut s = bas_core::boot_platform(config.platform, &scenario_cfg);
            s.run_for(config.horizon);
            InstanceReport {
                index,
                seed,
                sim_seconds: s.now().as_secs_f64(),
                critical_alive: critical_alive(s.as_ref()),
                metrics: s.metrics(),
                plant: plant_snapshot(s.as_ref()),
                attack: None,
                requests: RequestStats::from_samples(&s.request_samples()),
            }
        }
        Some(campaign) => {
            let mut run = campaign.run.clone();
            run.scenario.seed = seed;
            let outcome = run_attack(config.platform, campaign.attacker, campaign.attack, &run);
            let cell = AttackCell {
                mechanism_succeeded: outcome.mechanism.succeeded(),
                compromised: outcome.compromised(),
            };
            InstanceReport {
                index,
                seed,
                sim_seconds: (run.warmup + run.window + run.cooldown).as_secs_f64(),
                critical_alive: outcome.critical_alive,
                metrics: outcome.metrics,
                plant: outcome.plant,
                attack: Some(cell),
                requests: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_fleet_runs_and_aggregates() {
        let mut config = FleetConfig::benign(Platform::Minix, 3, 2);
        config.horizon = SimDuration::from_mins(5);
        let run = run_fleet(&config);
        assert_eq!(run.report.instances, 3);
        assert_eq!(run.report.per_instance.len(), 3);
        assert!(run.report.totals.ipc_messages > 0);
        assert_eq!(run.report.totals.critical_losses, 0);
        assert!(run.report.per_instance.iter().all(|r| r.critical_alive));
        // Indices are dense and ordered regardless of completion order.
        for (i, r) in run.report.per_instance.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.seed, instance_seed(config.root_seed, i));
        }
        assert!(run.wall.workers == 2);
        assert!(run.wall.sim_seconds_per_wall_second > 0.0);
    }

    #[test]
    fn chunked_claiming_covers_every_instance_exactly_once() {
        // Awkward instance/worker ratios must still produce dense,
        // ordered indices (chunk arithmetic cannot drop or double-run).
        for (instances, workers) in [(1, 1), (5, 2), (16, 3), (17, 4), (33, 8)] {
            let mut config = FleetConfig::benign(Platform::Minix, instances, workers);
            config.horizon = SimDuration::from_mins(1);
            let run = run_fleet(&config);
            assert_eq!(run.report.per_instance.len(), instances);
            for (i, r) in run.report.per_instance.iter().enumerate() {
                assert_eq!(r.index, i, "{instances}x{workers}");
                assert_eq!(r.seed, instance_seed(config.root_seed, i));
            }
        }
    }

    #[test]
    fn zero_instance_fleet_is_rejected_at_construction() {
        assert_eq!(
            FleetConfig::try_benign(Platform::Minix, 0, 4).err(),
            Some(FleetConfigError::ZeroInstances)
        );
        assert!(FleetConfigError::ZeroInstances
            .to_string()
            .contains("one instance"));
    }

    #[test]
    fn try_benign_clamps_workers_into_instance_range() {
        let config = FleetConfig::try_benign(Platform::Minix, 3, 99).expect("valid");
        assert_eq!(config.workers, 3);
        let config = FleetConfig::try_benign(Platform::Minix, 3, 0).expect("valid");
        assert_eq!(config.workers, 1);
    }

    #[test]
    fn degenerate_config_yields_empty_run_not_panic() {
        // Fields are public; a hand-built zero-instance config must not
        // bring down the runner.
        let mut config = FleetConfig::benign(Platform::Minix, 1, 1);
        config.instances = 0;
        let run = run_fleet(&config);
        assert_eq!(run.report.instances, 0);
        assert!(run.report.per_instance.is_empty());
    }

    #[test]
    fn claim_chunk_never_exceeds_smallest_worker_share() {
        // Regression: a claim larger than `instances / workers` lets one
        // worker drain the ticket counter while others idle.
        for instances in [1, 2, 7, 9, 16, 65, 100, 513, 4096, 100_000] {
            for workers in [1, 2, 3, 4, 8, 16, 64, 200] {
                let chunk = claim_chunk(instances, workers);
                assert!(chunk >= 1, "{instances}x{workers}");
                let fair_share = (instances / workers).max(1);
                assert!(
                    chunk <= fair_share,
                    "claim_chunk({instances}, {workers}) = {chunk} > fair share {fair_share}"
                );
                assert!(chunk <= 64, "{instances}x{workers}");
            }
        }
    }

    #[test]
    fn run_cells_preserves_worker_panic_payload() {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cells(4, 1, |index| {
                if index == 2 {
                    panic!("instance {index} exploded");
                }
                index
            })
        }))
        .expect_err("worker panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("formatted panic payload");
        assert!(msg.contains("fleet worker 0"), "{msg}");
        assert!(msg.contains("instance 2 exploded"), "{msg}");
    }

    #[test]
    fn snapshot_and_cold_boot_agree_across_cohorts() {
        // max_resident smaller than the fleet forces recycling through
        // the freelist; the reports must still be byte-identical.
        let mut config = FleetConfig::benign(Platform::Minix, 5, 2);
        config.horizon = SimDuration::from_mins(2);
        config.max_resident = 2;
        let snap = run_fleet(&config);
        config.boot = BootMode::Cold;
        let cold = run_fleet(&config);
        assert_eq!(snap.report.to_json(), cold.report.to_json());
    }

    #[test]
    fn campaign_fleet_reports_cells() {
        let mut config = FleetConfig::benign(Platform::Sel4, 2, 1);
        config.campaign = Some(Campaign::new(
            AttackId::SpoofSensorData,
            AttackerModel::ArbitraryCode,
        ));
        let run = run_fleet(&config);
        let campaign = run.report.campaign.expect("campaign summary");
        // seL4 blocks sensor spoofing for every instance (E6).
        assert_eq!(campaign.mechanism_succeeded, 0);
        assert_eq!(campaign.compromised, 0);
        assert!(run
            .report
            .per_instance
            .iter()
            .all(|r| r.attack.is_some() && r.critical_alive));
    }
}
