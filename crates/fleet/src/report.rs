//! Fleet report types and their deterministic JSON form.
//!
//! [`FleetReport`] is the *simulation outcome* of a fleet run: everything
//! in it — and therefore every byte of [`FleetReport::to_json`] — is a
//! pure function of the fleet configuration and root seed. Wall-clock
//! timing and worker count live in [`crate::engine::WallStats`] instead,
//! precisely so the report stays byte-identical no matter how many
//! threads computed it (the determinism guard in `tests/determinism.rs`).

use bas_attack::model::{AttackId, AttackerModel};
use bas_core::scenario::{PlantSnapshot, Platform};
use bas_sim::metrics::KernelMetrics;
use serde::{Deserialize, Serialize};

use crate::json::Json;

/// A fixed-width histogram of latencies, seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Width of each bin, seconds.
    pub bin_width_s: f64,
    /// `counts[i]` covers `[i·w, (i+1)·w)`.
    pub counts: Vec<u64>,
    /// Samples at or beyond the last bin edge.
    pub overflow: u64,
    /// Non-finite samples (NaN/±inf) rejected by [`record`]: they carry
    /// no latency information, so they are counted here and excluded
    /// from `samples`, `sum_s`, and `max_s`.
    ///
    /// [`record`]: LatencyHistogram::record
    pub invalid: u64,
    /// Total samples recorded (excludes `invalid`).
    pub samples: u64,
    /// Sum of all samples (for the mean), seconds.
    pub sum_s: f64,
    /// Largest sample, seconds.
    pub max_s: f64,
}

impl LatencyHistogram {
    /// Alarm latencies cluster around the paper's ~300 s deadline; 30 s
    /// bins over 0–600 s resolve that region well.
    pub const DEFAULT_BIN_WIDTH_S: f64 = 30.0;
    /// Default bin count (covers 0–600 s).
    pub const DEFAULT_BINS: usize = 20;

    /// An empty histogram with the given geometry.
    pub fn new(bin_width_s: f64, bins: usize) -> Self {
        LatencyHistogram {
            bin_width_s,
            counts: vec![0; bins],
            overflow: 0,
            invalid: 0,
            samples: 0,
            sum_s: 0.0,
            max_s: 0.0,
        }
    }

    /// Records one latency sample.
    ///
    /// Non-finite samples count only toward `invalid` — a NaN must not
    /// masquerade as a slow request in `overflow`, and adding it to
    /// `sum_s`/`max_s` would poison the mean and max forever. Negative
    /// samples (clock-skew artifacts) clamp to bin 0 and contribute
    /// zero latency to the sum, so `overflow` keeps its documented
    /// meaning: at or beyond the last bin edge, nothing else.
    pub fn record(&mut self, latency_s: f64) {
        if !latency_s.is_finite() {
            self.invalid += 1;
            return;
        }
        let v = latency_s.max(0.0);
        let bin = v / self.bin_width_s;
        if bin.is_finite() && (bin.floor() as usize) < self.counts.len() {
            self.counts[bin.floor() as usize] += 1;
        } else {
            // Beyond the last edge — including the degenerate
            // bin_width_s <= 0 geometry, where every bin is empty.
            self.overflow += 1;
        }
        self.samples += 1;
        self.sum_s += v;
        if v > self.max_s {
            self.max_s = v;
        }
    }

    /// Mean latency, seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_s / self.samples as f64
        }
    }

    /// Folds `other` into `self`. Both histograms must share a geometry.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(
            (self.bin_width_s, self.counts.len()),
            (other.bin_width_s, other.counts.len()),
            "merging histograms with different geometries"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.invalid += other.invalid;
        self.samples += other.samples;
        self.sum_s += other.sum_s;
        if other.max_s > self.max_s {
            self.max_s = other.max_s;
        }
    }

    /// The latency at quantile `p` (e.g. `0.99`), estimated as the upper
    /// edge of the bin holding the rank-`ceil(p·samples)` sample — a
    /// conservative (never understating) bound given fixed-width bins.
    /// Ranks landing in the overflow region report `max_s`; an empty
    /// histogram reports 0.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let rank = ((p * self.samples as f64).ceil() as u64).clamp(1, self.samples);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (i + 1) as f64 * self.bin_width_s;
            }
        }
        self.max_s
    }

    /// The histogram as a [`Json`] tree (for embedding in reports).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bin_width_s", Json::Num(self.bin_width_s)),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::UInt(c)).collect()),
            ),
            ("overflow", Json::UInt(self.overflow)),
            ("invalid", Json::UInt(self.invalid)),
            ("samples", Json::UInt(self.samples)),
            ("mean_s", Json::Num(self.mean_s())),
            ("max_s", Json::Num(self.max_s)),
        ])
    }
}

/// Web-request accounting for one instance (the E18 traffic runs).
///
/// Latency is `completed - scheduled` per request — open-loop time in
/// queue plus the RPC round trip — binned at sub-millisecond geometry
/// ([`RequestStats::BIN_WIDTH_S`]) since kernel round trips sit far
/// below the 30 s alarm-latency bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestStats {
    /// Requests completed (a response came back, ok or error).
    pub requests: u64,
    /// Requests whose response decoded as a success.
    pub ok: u64,
    /// Request-latency distribution, seconds.
    pub latency: LatencyHistogram,
}

impl RequestStats {
    /// 1 ms bins over 0–200 ms: queueing under overload shows up as
    /// mass marching right; overflow means multi-epoch stalls.
    pub const BIN_WIDTH_S: f64 = 1e-3;
    /// Default bin count for request latencies.
    pub const BINS: usize = 200;

    /// An empty accounting block with the standard geometry.
    pub fn new() -> RequestStats {
        RequestStats {
            requests: 0,
            ok: 0,
            latency: LatencyHistogram::new(Self::BIN_WIDTH_S, Self::BINS),
        }
    }

    /// Folds one completed request in.
    pub fn push(&mut self, latency_s: f64, ok: bool) {
        self.requests += 1;
        if ok {
            self.ok += 1;
        }
        self.latency.record(latency_s);
    }

    /// Folds `other` into `self` (same geometry required).
    pub fn merge(&mut self, other: &RequestStats) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.latency.merge(&other.latency);
    }

    /// Accounts a scenario's completed-request log; `None` when the
    /// instance logged nothing (so quiet fleets keep `requests: null`).
    pub fn from_samples(samples: &[bas_core::logic::web::RequestSample]) -> Option<RequestStats> {
        if samples.is_empty() {
            return None;
        }
        let mut stats = RequestStats::new();
        for s in samples {
            stats.push((s.completed - s.scheduled).as_secs_f64(), s.ok);
        }
        Some(stats)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("requests", Json::UInt(self.requests)),
            ("ok", Json::UInt(self.ok)),
            ("latency", self.latency.to_json()),
        ])
    }
}

impl Default for RequestStats {
    fn default() -> Self {
        RequestStats::new()
    }
}

/// Attack-campaign verdict for one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackCell {
    /// The kernel accepted the malicious operations.
    pub mechanism_succeeded: bool,
    /// Safety violated or a critical process lost.
    pub compromised: bool,
}

/// Outcome of one building instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceReport {
    /// Instance index within the fleet (0-based).
    pub index: usize,
    /// Derived scenario seed (see [`crate::seed::instance_seed`]).
    pub seed: u64,
    /// Simulated seconds this instance advanced.
    pub sim_seconds: f64,
    /// Every critical process survived.
    pub critical_alive: bool,
    /// Kernel counters at the end of the run.
    pub metrics: KernelMetrics,
    /// Plant safety snapshot at the end of the run.
    pub plant: PlantSnapshot,
    /// Campaign verdict (`None` for benign fleets).
    pub attack: Option<AttackCell>,
    /// Web-request accounting (`None` when the instance logged no
    /// requests — quiet schedules, attacker-replaced webs).
    pub requests: Option<RequestStats>,
}

impl InstanceReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("index", Json::UInt(self.index as u64)),
            ("seed", Json::UInt(self.seed)),
            ("sim_seconds", Json::Num(self.sim_seconds)),
            ("critical_alive", Json::Bool(self.critical_alive)),
            ("metrics", metrics_to_json(&self.metrics)),
            ("plant", plant_to_json(&self.plant)),
        ];
        fields.push((
            "attack",
            match &self.attack {
                None => Json::Null,
                Some(cell) => Json::obj(vec![
                    ("mechanism_succeeded", Json::Bool(cell.mechanism_succeeded)),
                    ("compromised", Json::Bool(cell.compromised)),
                ]),
            },
        ));
        fields.push((
            "requests",
            match &self.requests {
                None => Json::Null,
                Some(stats) => stats.to_json(),
            },
        ));
        Json::obj(fields)
    }
}

/// Fleet-wide sums over the per-instance reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetTotals {
    /// Total simulated seconds across all instances.
    pub sim_seconds: f64,
    /// Total IPC messages delivered.
    pub ipc_messages: u64,
    /// Total IPC payload bytes.
    pub ipc_bytes: u64,
    /// Total kernel entries.
    pub kernel_entries: u64,
    /// Total context switches.
    pub context_switches: u64,
    /// Total operations denied by access control.
    pub access_denied: u64,
    /// Total processes created.
    pub processes_created: u64,
    /// Total IPC hot-path heap events (arena growth + spills); a warm
    /// fleet holds this at the boot-time baseline.
    pub hot_path_allocs: u64,
    /// Total sends that had to block (receiver absent / queue full) —
    /// the fleet-wide backpressure signal E18 watches.
    pub ipc_waits: u64,
    /// Total web requests completed across the fleet.
    pub requests: u64,
    /// Web requests whose response decoded as a success.
    pub requests_ok: u64,
    /// Instances whose safety property was violated.
    pub safety_violations: usize,
    /// Instances that lost a critical process.
    pub critical_losses: usize,
}

impl FleetTotals {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("sim_seconds", Json::Num(self.sim_seconds)),
            ("ipc_messages", Json::UInt(self.ipc_messages)),
            ("ipc_bytes", Json::UInt(self.ipc_bytes)),
            ("kernel_entries", Json::UInt(self.kernel_entries)),
            ("context_switches", Json::UInt(self.context_switches)),
            ("access_denied", Json::UInt(self.access_denied)),
            ("processes_created", Json::UInt(self.processes_created)),
            ("hot_path_allocs", Json::UInt(self.hot_path_allocs)),
            ("ipc_waits", Json::UInt(self.ipc_waits)),
            ("requests", Json::UInt(self.requests)),
            ("requests_ok", Json::UInt(self.requests_ok)),
            (
                "safety_violations",
                Json::UInt(self.safety_violations as u64),
            ),
            ("critical_losses", Json::UInt(self.critical_losses as u64)),
        ])
    }
}

/// Campaign identity and aggregate verdict counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// The attack every instance ran.
    pub attack: AttackId,
    /// The attacker model.
    pub attacker: AttackerModel,
    /// Instances where the mechanism succeeded.
    pub mechanism_succeeded: usize,
    /// Instances compromised (safety violated or critical loss).
    pub compromised: usize,
}

/// The deterministic outcome of a fleet run.
///
/// Contains *only* simulation-derived data — no wall-clock, no worker
/// count — so [`FleetReport::to_json`] is byte-identical for the same
/// `(config, root_seed)` regardless of parallelism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Platform every instance ran on.
    pub platform: Platform,
    /// Root seed the per-instance seeds derive from.
    pub root_seed: u64,
    /// Number of building instances.
    pub instances: usize,
    /// Campaign summary (`None` for benign fleets).
    pub campaign: Option<CampaignSummary>,
    /// Fleet-wide sums.
    pub totals: FleetTotals,
    /// Excursion→alarm latency distribution across the fleet.
    pub alarm_latency: LatencyHistogram,
    /// Web-request latency distribution merged across instances
    /// (empty geometry with zero samples for fleets without traffic).
    pub request_latency: LatencyHistogram,
    /// Per-instance outcomes, ordered by instance index.
    pub per_instance: Vec<InstanceReport>,
}

impl FleetReport {
    /// Aggregates per-instance reports (must be sorted by index) into the
    /// fleet report.
    ///
    /// The merge is addition-only over end-of-run counter snapshots, so
    /// it cannot underflow. The invariant callers must keep: instance
    /// metrics are sampled once, at the end of the run, from a kernel
    /// that is never `reset()` mid-run (intra-run phase deltas go through
    /// `KernelMetrics::delta_since`, which saturates instead).
    pub fn aggregate(
        platform: Platform,
        root_seed: u64,
        campaign: Option<(AttackId, AttackerModel)>,
        per_instance: Vec<InstanceReport>,
    ) -> FleetReport {
        let mut totals = FleetTotals::default();
        let mut hist = LatencyHistogram::new(
            LatencyHistogram::DEFAULT_BIN_WIDTH_S,
            LatencyHistogram::DEFAULT_BINS,
        );
        let mut req_hist = LatencyHistogram::new(RequestStats::BIN_WIDTH_S, RequestStats::BINS);
        let mut mech = 0usize;
        let mut comp = 0usize;
        for r in &per_instance {
            totals.sim_seconds += r.sim_seconds;
            totals.ipc_messages += r.metrics.ipc_messages;
            totals.ipc_bytes += r.metrics.ipc_bytes;
            totals.kernel_entries += r.metrics.kernel_entries;
            totals.context_switches += r.metrics.context_switches;
            totals.access_denied += r.metrics.access_denied;
            totals.processes_created += r.metrics.processes_created;
            totals.hot_path_allocs += r.metrics.hot_path_allocs;
            totals.ipc_waits += r.metrics.ipc_waits;
            if let Some(stats) = &r.requests {
                totals.requests += stats.requests;
                totals.requests_ok += stats.ok;
                req_hist.merge(&stats.latency);
            }
            if r.plant.safety_violated {
                totals.safety_violations += 1;
            }
            if !r.critical_alive {
                totals.critical_losses += 1;
            }
            for &lat in &r.plant.alarm_latencies_s {
                hist.record(lat);
            }
            if let Some(cell) = &r.attack {
                if cell.mechanism_succeeded {
                    mech += 1;
                }
                if cell.compromised {
                    comp += 1;
                }
            }
        }
        FleetReport {
            platform,
            root_seed,
            instances: per_instance.len(),
            campaign: campaign.map(|(attack, attacker)| CampaignSummary {
                attack,
                attacker,
                mechanism_succeeded: mech,
                compromised: comp,
            }),
            totals,
            alarm_latency: hist,
            request_latency: req_hist,
            per_instance,
        }
    }

    /// Renders the report as deterministic JSON (stable key order, stable
    /// float formatting, no wall-clock data).
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The report as a [`Json`] tree (for embedding in larger reports).
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str("bas-fleet-report/v2".into())),
            ("platform", Json::Str(self.platform.to_string())),
            ("root_seed", Json::UInt(self.root_seed)),
            ("instances", Json::UInt(self.instances as u64)),
            (
                "campaign",
                match &self.campaign {
                    None => Json::Null,
                    Some(c) => Json::obj(vec![
                        ("attack", Json::Str(c.attack.to_string())),
                        ("attacker", Json::Str(c.attacker.to_string())),
                        (
                            "mechanism_succeeded",
                            Json::UInt(c.mechanism_succeeded as u64),
                        ),
                        ("compromised", Json::UInt(c.compromised as u64)),
                    ]),
                },
            ),
            ("totals", self.totals.to_json()),
            ("alarm_latency", self.alarm_latency.to_json()),
            ("request_latency", self.request_latency.to_json()),
            (
                "per_instance",
                Json::Arr(self.per_instance.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }
}

/// Kernel counters as a JSON object (shared by fleet and bench reports).
pub fn metrics_to_json(m: &KernelMetrics) -> Json {
    Json::obj(vec![
        ("context_switches", Json::UInt(m.context_switches)),
        ("kernel_entries", Json::UInt(m.kernel_entries)),
        ("ipc_messages", Json::UInt(m.ipc_messages)),
        ("ipc_bytes", Json::UInt(m.ipc_bytes)),
        ("access_denied", Json::UInt(m.access_denied)),
        ("syscall_errors", Json::UInt(m.syscall_errors)),
        ("processes_created", Json::UInt(m.processes_created)),
        ("processes_reaped", Json::UInt(m.processes_reaped)),
        ("hot_path_allocs", Json::UInt(m.hot_path_allocs)),
        ("ipc_waits", Json::UInt(m.ipc_waits)),
    ])
}

/// Plant safety snapshot as a JSON object.
pub fn plant_to_json(p: &PlantSnapshot) -> Json {
    Json::obj(vec![
        ("safety_violated", Json::Bool(p.safety_violated)),
        ("max_deviation_c", Json::Num(p.max_deviation_c)),
        ("in_band_fraction", Json::Num(p.in_band_fraction)),
        ("final_temp_c", Json::Num(p.final_temp_c)),
        ("alarm_on", Json::Bool(p.alarm_on)),
        ("fan_switches", Json::UInt(p.fan_switches as u64)),
        (
            "alarm_latencies_s",
            Json::Arr(p.alarm_latencies_s.iter().map(|&l| Json::Num(l)).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = LatencyHistogram::new(30.0, 20);
        h.record(0.0);
        h.record(29.9);
        h.record(30.0);
        h.record(599.9);
        h.record(600.0);
        h.record(1e9);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[19], 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.invalid, 0);
        assert_eq!(h.samples, 6);
        assert!(h.max_s >= 1e9);
    }

    #[test]
    fn histogram_rejects_nan_without_poisoning_stats() {
        let mut h = LatencyHistogram::new(30.0, 20);
        h.record(f64::NAN);
        // The old code folded NaN into `overflow` and added it to
        // `sum_s`, making every later mean NaN.
        assert_eq!(h.overflow, 0);
        assert_eq!(h.invalid, 1);
        assert_eq!(h.samples, 0);
        assert!(h.mean_s().is_finite());
        h.record(45.0);
        assert_eq!(h.samples, 1);
        assert_eq!(h.mean_s(), 45.0);
        assert_eq!(h.max_s, 45.0);
    }

    #[test]
    fn histogram_rejects_infinities() {
        let mut h = LatencyHistogram::new(30.0, 20);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.invalid, 2);
        assert_eq!(h.overflow, 0);
        assert_eq!(h.samples, 0);
        assert_eq!(h.sum_s, 0.0);
        assert_eq!(h.max_s, 0.0);
    }

    #[test]
    fn histogram_clamps_negative_to_first_bin() {
        let mut h = LatencyHistogram::new(30.0, 20);
        h.record(-5.0);
        // The old code sent negatives to `overflow` ("at or beyond the
        // last bin edge") and subtracted them from `sum_s`.
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.overflow, 0);
        assert_eq!(h.samples, 1);
        assert_eq!(h.sum_s, 0.0);
        assert_eq!(h.mean_s(), 0.0);
    }

    #[test]
    fn histogram_exact_bin_edges() {
        let mut h = LatencyHistogram::new(10.0, 3);
        h.record(0.0);
        h.record(10.0);
        h.record(20.0);
        h.record(30.0); // == last edge → overflow
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.overflow, 1);
    }

    #[test]
    fn histogram_zero_bin_width_is_all_overflow() {
        let mut h = LatencyHistogram::new(0.0, 4);
        h.record(0.0);
        h.record(1.0);
        h.record(f64::NAN);
        assert_eq!(h.counts, vec![0, 0, 0, 0]);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.invalid, 1);
        assert_eq!(h.samples, 2);
        assert_eq!(h.sum_s, 1.0);
    }

    #[test]
    fn histogram_merge_and_percentiles() {
        let mut a = LatencyHistogram::new(1.0, 10);
        let mut b = LatencyHistogram::new(1.0, 10);
        for _ in 0..90 {
            a.record(0.5);
        }
        for _ in 0..10 {
            b.record(8.5);
        }
        b.record(f64::NAN);
        a.merge(&b);
        assert_eq!(a.samples, 100);
        assert_eq!(a.invalid, 1);
        assert_eq!(a.percentile(0.50), 1.0);
        assert_eq!(a.percentile(0.90), 1.0);
        assert_eq!(a.percentile(0.95), 9.0);
        assert_eq!(a.percentile(0.99), 9.0);
        // Empty histogram: every percentile is 0.
        assert_eq!(LatencyHistogram::new(1.0, 4).percentile(0.99), 0.0);
        // Rank in the overflow region reports the observed max.
        let mut o = LatencyHistogram::new(1.0, 2);
        o.record(7.5);
        assert_eq!(o.percentile(0.99), 7.5);
    }

    proptest! {
        #[test]
        fn histogram_accounting_is_conserved(
            samples in prop::collection::vec(-1e6f64..1e6, 0..200),
            nans in 0usize..4,
        ) {
            let mut h = LatencyHistogram::new(30.0, 20);
            for &s in &samples {
                h.record(s);
            }
            for _ in 0..nans {
                h.record(f64::NAN);
            }
            let binned: u64 = h.counts.iter().sum();
            prop_assert_eq!(binned + h.overflow, h.samples);
            prop_assert_eq!(h.samples, samples.len() as u64);
            prop_assert_eq!(h.invalid, nans as u64);
            prop_assert!(h.sum_s.is_finite() && h.sum_s >= 0.0);
            prop_assert!(h.max_s.is_finite() && h.max_s >= 0.0);
            prop_assert!(h.mean_s().is_finite());
        }

        #[test]
        fn histogram_percentile_is_monotone(
            samples in prop::collection::vec(0.0f64..700.0, 1..100),
        ) {
            let mut h = LatencyHistogram::new(30.0, 20);
            for &s in &samples {
                h.record(s);
            }
            let p50 = h.percentile(0.50);
            let p95 = h.percentile(0.95);
            let p99 = h.percentile(0.99);
            prop_assert!(p50 <= p95 && p95 <= p99);
            prop_assert!(p99 <= h.max_s.max(20.0 * 30.0));
        }
    }

    #[test]
    fn aggregate_counts_violations_and_campaign() {
        let make =
            |index: usize, violated: bool, alive: bool, cell: Option<AttackCell>| InstanceReport {
                index,
                seed: index as u64,
                sim_seconds: 10.0,
                critical_alive: alive,
                metrics: KernelMetrics {
                    ipc_messages: 5,
                    ..KernelMetrics::default()
                },
                plant: PlantSnapshot {
                    safety_violated: violated,
                    max_deviation_c: 0.5,
                    in_band_fraction: 1.0,
                    final_temp_c: 22.0,
                    alarm_on: false,
                    fan_switches: 0,
                    alarm_latencies_s: vec![300.0],
                },
                attack: cell,
                requests: None,
            };
        let cell = AttackCell {
            mechanism_succeeded: true,
            compromised: false,
        };
        let report = FleetReport::aggregate(
            Platform::Minix,
            42,
            Some((AttackId::ForkBomb, AttackerModel::ArbitraryCode)),
            vec![
                make(0, false, true, Some(cell)),
                make(1, true, false, Some(cell)),
            ],
        );
        assert_eq!(report.instances, 2);
        assert_eq!(report.totals.ipc_messages, 10);
        assert_eq!(report.totals.safety_violations, 1);
        assert_eq!(report.totals.critical_losses, 1);
        assert_eq!(report.alarm_latency.samples, 2);
        let c = report.campaign.expect("campaign totals present");
        assert_eq!(c.mechanism_succeeded, 2);
        assert_eq!(c.compromised, 0);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bas-fleet-report/v2\""));
        assert!(json.contains("\"fork-bomb\""));
        assert_eq!(json, report.to_json());
    }

    #[test]
    fn aggregate_merges_request_stats() {
        let make = |index: usize, stats: Option<RequestStats>| InstanceReport {
            index,
            seed: index as u64,
            sim_seconds: 10.0,
            critical_alive: true,
            metrics: KernelMetrics {
                ipc_waits: 2,
                ..KernelMetrics::default()
            },
            plant: PlantSnapshot {
                safety_violated: false,
                max_deviation_c: 0.1,
                in_band_fraction: 1.0,
                final_temp_c: 22.0,
                alarm_on: false,
                fan_switches: 0,
                alarm_latencies_s: vec![],
            },
            attack: None,
            requests: stats,
        };
        let mut a = RequestStats::new();
        a.push(0.0005, true);
        a.push(0.0015, true);
        let mut b = RequestStats::new();
        b.push(0.150, false);
        let report = FleetReport::aggregate(
            Platform::Sel4,
            7,
            None,
            vec![make(0, Some(a)), make(1, Some(b)), make(2, None)],
        );
        assert_eq!(report.totals.requests, 3);
        assert_eq!(report.totals.requests_ok, 2);
        assert_eq!(report.totals.ipc_waits, 6);
        assert_eq!(report.request_latency.samples, 3);
        assert!(report.request_latency.percentile(0.99) >= 0.150);
        let json = report.to_json();
        assert!(json.contains("\"request_latency\""));
        assert!(json.contains("\"ipc_waits\": 6"));
    }
}
