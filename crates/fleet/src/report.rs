//! Fleet report types and their deterministic JSON form.
//!
//! [`FleetReport`] is the *simulation outcome* of a fleet run: everything
//! in it — and therefore every byte of [`FleetReport::to_json`] — is a
//! pure function of the fleet configuration and root seed. Wall-clock
//! timing and worker count live in [`crate::engine::WallStats`] instead,
//! precisely so the report stays byte-identical no matter how many
//! threads computed it (the determinism guard in `tests/determinism.rs`).

use bas_attack::model::{AttackId, AttackerModel};
use bas_core::scenario::{PlantSnapshot, Platform};
use bas_sim::metrics::KernelMetrics;
use serde::{Deserialize, Serialize};

use crate::json::Json;

/// A fixed-width histogram of excursion→alarm latencies, seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Width of each bin, seconds.
    pub bin_width_s: f64,
    /// `counts[i]` covers `[i·w, (i+1)·w)`.
    pub counts: Vec<u64>,
    /// Samples at or beyond the last bin edge.
    pub overflow: u64,
    /// Total samples recorded.
    pub samples: u64,
    /// Sum of all samples (for the mean), seconds.
    pub sum_s: f64,
    /// Largest sample, seconds.
    pub max_s: f64,
}

impl LatencyHistogram {
    /// Alarm latencies cluster around the paper's ~300 s deadline; 30 s
    /// bins over 0–600 s resolve that region well.
    pub const DEFAULT_BIN_WIDTH_S: f64 = 30.0;
    /// Default bin count (covers 0–600 s).
    pub const DEFAULT_BINS: usize = 20;

    /// An empty histogram with the given geometry.
    pub fn new(bin_width_s: f64, bins: usize) -> Self {
        LatencyHistogram {
            bin_width_s,
            counts: vec![0; bins],
            overflow: 0,
            samples: 0,
            sum_s: 0.0,
            max_s: 0.0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency_s: f64) {
        let bin = (latency_s / self.bin_width_s).floor();
        if bin >= 0.0 && (bin as usize) < self.counts.len() {
            self.counts[bin as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.samples += 1;
        self.sum_s += latency_s;
        if latency_s > self.max_s {
            self.max_s = latency_s;
        }
    }

    /// Mean latency, seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_s / self.samples as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bin_width_s", Json::Num(self.bin_width_s)),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::UInt(c)).collect()),
            ),
            ("overflow", Json::UInt(self.overflow)),
            ("samples", Json::UInt(self.samples)),
            ("mean_s", Json::Num(self.mean_s())),
            ("max_s", Json::Num(self.max_s)),
        ])
    }
}

/// Attack-campaign verdict for one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackCell {
    /// The kernel accepted the malicious operations.
    pub mechanism_succeeded: bool,
    /// Safety violated or a critical process lost.
    pub compromised: bool,
}

/// Outcome of one building instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceReport {
    /// Instance index within the fleet (0-based).
    pub index: usize,
    /// Derived scenario seed (see [`crate::seed::instance_seed`]).
    pub seed: u64,
    /// Simulated seconds this instance advanced.
    pub sim_seconds: f64,
    /// Every critical process survived.
    pub critical_alive: bool,
    /// Kernel counters at the end of the run.
    pub metrics: KernelMetrics,
    /// Plant safety snapshot at the end of the run.
    pub plant: PlantSnapshot,
    /// Campaign verdict (`None` for benign fleets).
    pub attack: Option<AttackCell>,
}

impl InstanceReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("index", Json::UInt(self.index as u64)),
            ("seed", Json::UInt(self.seed)),
            ("sim_seconds", Json::Num(self.sim_seconds)),
            ("critical_alive", Json::Bool(self.critical_alive)),
            ("metrics", metrics_to_json(&self.metrics)),
            ("plant", plant_to_json(&self.plant)),
        ];
        fields.push((
            "attack",
            match &self.attack {
                None => Json::Null,
                Some(cell) => Json::obj(vec![
                    ("mechanism_succeeded", Json::Bool(cell.mechanism_succeeded)),
                    ("compromised", Json::Bool(cell.compromised)),
                ]),
            },
        ));
        Json::obj(fields)
    }
}

/// Fleet-wide sums over the per-instance reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetTotals {
    /// Total simulated seconds across all instances.
    pub sim_seconds: f64,
    /// Total IPC messages delivered.
    pub ipc_messages: u64,
    /// Total IPC payload bytes.
    pub ipc_bytes: u64,
    /// Total kernel entries.
    pub kernel_entries: u64,
    /// Total context switches.
    pub context_switches: u64,
    /// Total operations denied by access control.
    pub access_denied: u64,
    /// Total processes created.
    pub processes_created: u64,
    /// Total IPC hot-path heap events (arena growth + spills); a warm
    /// fleet holds this at the boot-time baseline.
    pub hot_path_allocs: u64,
    /// Instances whose safety property was violated.
    pub safety_violations: usize,
    /// Instances that lost a critical process.
    pub critical_losses: usize,
}

impl FleetTotals {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("sim_seconds", Json::Num(self.sim_seconds)),
            ("ipc_messages", Json::UInt(self.ipc_messages)),
            ("ipc_bytes", Json::UInt(self.ipc_bytes)),
            ("kernel_entries", Json::UInt(self.kernel_entries)),
            ("context_switches", Json::UInt(self.context_switches)),
            ("access_denied", Json::UInt(self.access_denied)),
            ("processes_created", Json::UInt(self.processes_created)),
            ("hot_path_allocs", Json::UInt(self.hot_path_allocs)),
            (
                "safety_violations",
                Json::UInt(self.safety_violations as u64),
            ),
            ("critical_losses", Json::UInt(self.critical_losses as u64)),
        ])
    }
}

/// Campaign identity and aggregate verdict counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// The attack every instance ran.
    pub attack: AttackId,
    /// The attacker model.
    pub attacker: AttackerModel,
    /// Instances where the mechanism succeeded.
    pub mechanism_succeeded: usize,
    /// Instances compromised (safety violated or critical loss).
    pub compromised: usize,
}

/// The deterministic outcome of a fleet run.
///
/// Contains *only* simulation-derived data — no wall-clock, no worker
/// count — so [`FleetReport::to_json`] is byte-identical for the same
/// `(config, root_seed)` regardless of parallelism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Platform every instance ran on.
    pub platform: Platform,
    /// Root seed the per-instance seeds derive from.
    pub root_seed: u64,
    /// Number of building instances.
    pub instances: usize,
    /// Campaign summary (`None` for benign fleets).
    pub campaign: Option<CampaignSummary>,
    /// Fleet-wide sums.
    pub totals: FleetTotals,
    /// Excursion→alarm latency distribution across the fleet.
    pub alarm_latency: LatencyHistogram,
    /// Per-instance outcomes, ordered by instance index.
    pub per_instance: Vec<InstanceReport>,
}

impl FleetReport {
    /// Aggregates per-instance reports (must be sorted by index) into the
    /// fleet report.
    ///
    /// The merge is addition-only over end-of-run counter snapshots, so
    /// it cannot underflow. The invariant callers must keep: instance
    /// metrics are sampled once, at the end of the run, from a kernel
    /// that is never `reset()` mid-run (intra-run phase deltas go through
    /// `KernelMetrics::delta_since`, which saturates instead).
    pub fn aggregate(
        platform: Platform,
        root_seed: u64,
        campaign: Option<(AttackId, AttackerModel)>,
        per_instance: Vec<InstanceReport>,
    ) -> FleetReport {
        let mut totals = FleetTotals::default();
        let mut hist = LatencyHistogram::new(
            LatencyHistogram::DEFAULT_BIN_WIDTH_S,
            LatencyHistogram::DEFAULT_BINS,
        );
        let mut mech = 0usize;
        let mut comp = 0usize;
        for r in &per_instance {
            totals.sim_seconds += r.sim_seconds;
            totals.ipc_messages += r.metrics.ipc_messages;
            totals.ipc_bytes += r.metrics.ipc_bytes;
            totals.kernel_entries += r.metrics.kernel_entries;
            totals.context_switches += r.metrics.context_switches;
            totals.access_denied += r.metrics.access_denied;
            totals.processes_created += r.metrics.processes_created;
            totals.hot_path_allocs += r.metrics.hot_path_allocs;
            if r.plant.safety_violated {
                totals.safety_violations += 1;
            }
            if !r.critical_alive {
                totals.critical_losses += 1;
            }
            for &lat in &r.plant.alarm_latencies_s {
                hist.record(lat);
            }
            if let Some(cell) = &r.attack {
                if cell.mechanism_succeeded {
                    mech += 1;
                }
                if cell.compromised {
                    comp += 1;
                }
            }
        }
        FleetReport {
            platform,
            root_seed,
            instances: per_instance.len(),
            campaign: campaign.map(|(attack, attacker)| CampaignSummary {
                attack,
                attacker,
                mechanism_succeeded: mech,
                compromised: comp,
            }),
            totals,
            alarm_latency: hist,
            per_instance,
        }
    }

    /// Renders the report as deterministic JSON (stable key order, stable
    /// float formatting, no wall-clock data).
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The report as a [`Json`] tree (for embedding in larger reports).
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str("bas-fleet-report/v1".into())),
            ("platform", Json::Str(self.platform.to_string())),
            ("root_seed", Json::UInt(self.root_seed)),
            ("instances", Json::UInt(self.instances as u64)),
            (
                "campaign",
                match &self.campaign {
                    None => Json::Null,
                    Some(c) => Json::obj(vec![
                        ("attack", Json::Str(c.attack.to_string())),
                        ("attacker", Json::Str(c.attacker.to_string())),
                        (
                            "mechanism_succeeded",
                            Json::UInt(c.mechanism_succeeded as u64),
                        ),
                        ("compromised", Json::UInt(c.compromised as u64)),
                    ]),
                },
            ),
            ("totals", self.totals.to_json()),
            ("alarm_latency", self.alarm_latency.to_json()),
            (
                "per_instance",
                Json::Arr(self.per_instance.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }
}

/// Kernel counters as a JSON object (shared by fleet and bench reports).
pub fn metrics_to_json(m: &KernelMetrics) -> Json {
    Json::obj(vec![
        ("context_switches", Json::UInt(m.context_switches)),
        ("kernel_entries", Json::UInt(m.kernel_entries)),
        ("ipc_messages", Json::UInt(m.ipc_messages)),
        ("ipc_bytes", Json::UInt(m.ipc_bytes)),
        ("access_denied", Json::UInt(m.access_denied)),
        ("syscall_errors", Json::UInt(m.syscall_errors)),
        ("processes_created", Json::UInt(m.processes_created)),
        ("processes_reaped", Json::UInt(m.processes_reaped)),
        ("hot_path_allocs", Json::UInt(m.hot_path_allocs)),
    ])
}

/// Plant safety snapshot as a JSON object.
pub fn plant_to_json(p: &PlantSnapshot) -> Json {
    Json::obj(vec![
        ("safety_violated", Json::Bool(p.safety_violated)),
        ("max_deviation_c", Json::Num(p.max_deviation_c)),
        ("in_band_fraction", Json::Num(p.in_band_fraction)),
        ("final_temp_c", Json::Num(p.final_temp_c)),
        ("alarm_on", Json::Bool(p.alarm_on)),
        ("fan_switches", Json::UInt(p.fan_switches as u64)),
        (
            "alarm_latencies_s",
            Json::Arr(p.alarm_latencies_s.iter().map(|&l| Json::Num(l)).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = LatencyHistogram::new(30.0, 20);
        h.record(0.0);
        h.record(29.9);
        h.record(30.0);
        h.record(599.9);
        h.record(600.0);
        h.record(1e9);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[19], 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.samples, 6);
        assert!(h.max_s >= 1e9);
    }

    #[test]
    fn aggregate_counts_violations_and_campaign() {
        let make =
            |index: usize, violated: bool, alive: bool, cell: Option<AttackCell>| InstanceReport {
                index,
                seed: index as u64,
                sim_seconds: 10.0,
                critical_alive: alive,
                metrics: KernelMetrics {
                    ipc_messages: 5,
                    ..KernelMetrics::default()
                },
                plant: PlantSnapshot {
                    safety_violated: violated,
                    max_deviation_c: 0.5,
                    in_band_fraction: 1.0,
                    final_temp_c: 22.0,
                    alarm_on: false,
                    fan_switches: 0,
                    alarm_latencies_s: vec![300.0],
                },
                attack: cell,
            };
        let cell = AttackCell {
            mechanism_succeeded: true,
            compromised: false,
        };
        let report = FleetReport::aggregate(
            Platform::Minix,
            42,
            Some((AttackId::ForkBomb, AttackerModel::ArbitraryCode)),
            vec![
                make(0, false, true, Some(cell)),
                make(1, true, false, Some(cell)),
            ],
        );
        assert_eq!(report.instances, 2);
        assert_eq!(report.totals.ipc_messages, 10);
        assert_eq!(report.totals.safety_violations, 1);
        assert_eq!(report.totals.critical_losses, 1);
        assert_eq!(report.alarm_latency.samples, 2);
        let c = report.campaign.expect("campaign totals present");
        assert_eq!(c.mechanism_succeeded, 2);
        assert_eq!(c.compromised, 0);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bas-fleet-report/v1\""));
        assert!(json.contains("\"fork-bomb\""));
        assert_eq!(json, report.to_json());
    }
}
