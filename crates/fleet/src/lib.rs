//! # bas-fleet — parallel fleets of building instances
//!
//! Scales the single-building scenario of `bas-core` out to a *fleet*:
//! N independent building instances, each a full kernel stack plus
//! plant with its own deterministic virtual clock and a per-instance
//! RNG seed derived from one root seed, executed across `std::thread`
//! workers and aggregated into one serializable [`FleetReport`].
//!
//! The load-bearing property is **determinism under parallelism**: the
//! report (and its [`report::FleetReport::to_json`] bytes) depends only
//! on the fleet configuration and root seed — never on worker count,
//! thread scheduling, or wall-clock time. Wall-clock throughput is
//! reported separately in [`engine::WallStats`].
//!
//! - [`seed`] — per-instance seed derivation (SplitMix64 over
//!   root + index·γ),
//! - [`pool`] — the persistent [`pool::WorkerPool`] threads,
//! - [`instances`] — [`instances::InstancePool`], the snapshot/fork
//!   boot path: per-worker engine recycling against one shared
//!   [`bas_core::EngineSnapshot`],
//! - [`batch`] — [`batch::EngineBatch`], a worker's resident instances
//!   in struct-of-arrays layout,
//! - [`engine`] — [`engine::FleetConfig`], [`engine::run_fleet`], and
//!   the one-shot [`engine::run_cells`] executor,
//! - [`report`] — [`FleetReport`] and friends, with hand-rolled
//!   deterministic JSON,
//! - [`json`] — the tiny ordered JSON writer the reports (and
//!   `bas-bench`) serialize through.
//!
//! ```no_run
//! use bas_core::scenario::Platform;
//! use bas_fleet::{run_fleet, FleetConfig};
//!
//! let run = run_fleet(&FleetConfig::benign(Platform::Minix, 16, 4));
//! assert_eq!(run.report.totals.critical_losses, 0);
//! println!("{}", run.report.to_json());
//! ```

pub mod batch;
pub mod engine;
pub mod instances;
pub mod json;
pub mod pool;
pub mod report;
pub mod seed;

pub use batch::EngineBatch;
pub use engine::{
    run_cells, run_fleet, run_fleet_with, BootMode, Campaign, FleetConfig, FleetConfigError,
    FleetRun, WallStats, DEFAULT_MAX_RESIDENT,
};
pub use instances::InstancePool;
pub use json::Json;
pub use pool::WorkerPool;
pub use report::{FleetReport, FleetTotals, InstanceReport, LatencyHistogram, RequestStats};
pub use seed::instance_seed;
