//! Per-instance seed derivation.
//!
//! Every building in a fleet gets its own RNG stream, derived from the
//! fleet's root seed and the instance index — never from thread identity
//! or scheduling order. The derivation is one SplitMix64 step (the same
//! mixer `bas_sim::rng::SimRng` uses internally) over
//! `root + index · golden_gamma`, so neighbouring indices land in
//! well-separated stream positions and the mapping is O(1) per instance.

use bas_sim::rng::SimRng;

/// Weyl increment of SplitMix64 (2^64 / φ, odd).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the scenario seed for instance `index` of a fleet rooted at
/// `root`. Deterministic, order-free, and collision-resistant for any
/// realistic fleet size.
pub fn instance_seed(root: u64, index: usize) -> u64 {
    let mut rng = SimRng::seed_from(root.wrapping_add((index as u64).wrapping_mul(GOLDEN_GAMMA)));
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..256 {
            assert!(seen.insert(instance_seed(42, i)), "collision at {i}");
        }
        // Stable across calls (pure function of root and index).
        assert_eq!(instance_seed(42, 7), instance_seed(42, 7));
        assert_ne!(instance_seed(42, 7), instance_seed(43, 7));
    }
}
