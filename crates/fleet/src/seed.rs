//! Per-instance seed derivation.
//!
//! Every building in a fleet gets its own RNG stream, derived from the
//! fleet's root seed and the instance index — never from thread identity
//! or scheduling order. The derivation is one SplitMix64 step (the same
//! mixer `bas_sim::rng::SimRng` uses internally) over
//! `root + index · golden_gamma`, so neighbouring indices land in
//! well-separated stream positions and the mapping is O(1) per instance.

use bas_sim::rng::SimRng;

/// Weyl increment of SplitMix64 (2^64 / φ, odd).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the scenario seed for instance `index` of a fleet rooted at
/// `root`. Deterministic, order-free, and collision-resistant for any
/// realistic fleet size.
pub fn instance_seed(root: u64, index: usize) -> u64 {
    let mut rng = SimRng::seed_from(root.wrapping_add((index as u64).wrapping_mul(GOLDEN_GAMMA)));
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..256 {
            assert!(seen.insert(instance_seed(42, i)), "collision at {i}");
        }
        // Stable across calls (pure function of root and index).
        assert_eq!(instance_seed(42, 7), instance_seed(42, 7));
        assert_ne!(instance_seed(42, 7), instance_seed(43, 7));
    }

    #[test]
    fn zero_root_yields_distinct_nonzero_streams() {
        // Root 0 is the all-defaults fleet; it must not degenerate into
        // identical or zero per-instance seeds.
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1024 {
            let seed = instance_seed(0, i);
            assert_ne!(seed, 0, "zero seed at index {i}");
            assert!(seen.insert(seed), "collision at {i}");
        }
    }

    #[test]
    fn max_root_wraps_without_collapsing() {
        // root + index·γ overflows u64 immediately at u64::MAX; the
        // wrapping arithmetic must keep the streams distinct, stable and
        // different from the low-root streams.
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1024 {
            assert!(seen.insert(instance_seed(u64::MAX, i)), "collision at {i}");
        }
        assert_eq!(instance_seed(u64::MAX, 9), instance_seed(u64::MAX, 9));
        assert_ne!(instance_seed(u64::MAX, 0), instance_seed(0, 0));
        // u64::MAX ≡ 0 − 1: one less than root 0, not an alias of it.
        assert_ne!(instance_seed(u64::MAX, 1), instance_seed(0, 1));
    }

    #[test]
    fn adjacent_instances_and_roots_do_not_alias() {
        // SplitMix64 is a bijection over root + index·γ (γ odd), so
        // neighbours in either argument must map to different seeds —
        // including the aliasing-prone pair root+γ ↔ index+1.
        for root in [0, 1, 42, u64::MAX - 1, u64::MAX] {
            for i in 0..64usize {
                assert_ne!(
                    instance_seed(root, i),
                    instance_seed(root, i + 1),
                    "adjacent-index alias at root {root}, index {i}"
                );
                assert_ne!(
                    instance_seed(root, i),
                    instance_seed(root.wrapping_add(1), i),
                    "adjacent-root alias at root {root}, index {i}"
                );
            }
            // The one deliberate alias of the scheme: shifting the root by
            // exactly γ is the same stream shifted by one index. Document
            // it so a future derivation change is a conscious decision.
            assert_eq!(
                instance_seed(root.wrapping_add(GOLDEN_GAMMA), 0),
                instance_seed(root, 1)
            );
        }
    }
}
