//! A resident batch of scenario engines in struct-of-arrays layout.
//!
//! One [`EngineBatch`] lives on one worker thread for an entire fleet
//! run (the boxed scenario stacks hold `Rc<RefCell<…>>` plant state and
//! never migrate). The boxed engines are the *cold* array-of-structs
//! side; the per-tick state a worker actually sweeps every epoch —
//! virtual time, delivered-message counters — lives in dense parallel
//! columns, so the epoch sweep walks contiguous memory instead of
//! chasing one boxed kernel stack per field read.
//!
//! Invariants: all columns have the same length as `engines`, lane `i`
//! always describes `engines[i]` (fleet instance `base_index + i`), and
//! columns are refreshed at every [`EngineBatch::advance`] epoch
//! boundary, so [`EngineBatch::finish`] can assemble reports from the
//! columns without touching the engines again (except for the final
//! plant snapshot, taken once).

use std::ops::Range;

use bas_core::scenario::{critical_alive, plant_snapshot, Scenario};
use bas_sim::time::SimDuration;

use crate::engine::FleetConfig;
use crate::instances::InstancePool;
use crate::report::{InstanceReport, RequestStats};
use crate::seed::instance_seed;

/// A worker's resident instances: cold boxed engines plus hot
/// struct-of-arrays per-tick state.
pub struct EngineBatch {
    base_index: usize,
    engines: Vec<Box<dyn Scenario>>,
    // Hot columns, one lane per resident instance.
    seeds: Vec<u64>,
    now_s: Vec<f64>,
    ipc_messages: Vec<u64>,
}

impl EngineBatch {
    /// Boots every instance in `range` cold on the calling thread.
    pub fn boot(config: &FleetConfig, range: Range<usize>) -> EngineBatch {
        EngineBatch::materialize(&mut InstancePool::new(None), config, range)
    }

    /// Draws every instance in `range` from `pool` — recycled, forked,
    /// or cold-booted per the pool's boot mode — on the calling thread.
    pub fn materialize(
        pool: &mut InstancePool,
        config: &FleetConfig,
        range: Range<usize>,
    ) -> EngineBatch {
        let base_index = range.start;
        let len = range.len();
        let mut engines = Vec::with_capacity(len);
        let mut seeds = Vec::with_capacity(len);
        for index in range {
            engines.push(pool.checkout(config, index));
            seeds.push(instance_seed(config.root_seed, index));
        }
        EngineBatch {
            base_index,
            engines,
            seeds,
            now_s: vec![0.0; len],
            ipc_messages: vec![0; len],
        }
    }

    /// Number of resident instances.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True if the batch holds no instances.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// IPC messages delivered so far across the batch (column sum).
    pub fn ipc_messages(&self) -> u64 {
        self.ipc_messages.iter().sum()
    }

    /// Advances every resident instance by `d` of virtual time, then
    /// refreshes the hot columns in one contiguous sweep.
    pub fn advance(&mut self, d: SimDuration) {
        for engine in &mut self.engines {
            engine.run_for(d);
        }
        for (i, engine) in self.engines.iter().enumerate() {
            self.now_s[i] = engine.now().as_secs_f64();
            self.ipc_messages[i] = engine.metrics().ipc_messages;
        }
    }

    /// Snapshots every instance into index-ordered reports, consuming
    /// the batch.
    pub fn finish(self) -> Vec<InstanceReport> {
        self.reports(|_| {})
    }

    /// Like [`EngineBatch::finish`], but returns the spent engines to
    /// `pool` for recycling into the next cohort.
    pub fn finish_into(self, pool: &mut InstancePool) -> Vec<InstanceReport> {
        self.reports(|engine| pool.checkin(engine))
    }

    fn reports(self, mut retire: impl FnMut(Box<dyn Scenario>)) -> Vec<InstanceReport> {
        let EngineBatch {
            base_index,
            engines,
            seeds,
            now_s,
            ..
        } = self;
        engines
            .into_iter()
            .enumerate()
            .map(|(i, engine)| {
                let report = InstanceReport {
                    index: base_index + i,
                    seed: seeds[i],
                    sim_seconds: now_s[i],
                    critical_alive: critical_alive(engine.as_ref()),
                    metrics: engine.metrics(),
                    plant: plant_snapshot(engine.as_ref()),
                    attack: None,
                    requests: RequestStats::from_samples(&engine.request_samples()),
                };
                retire(engine);
                report
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use bas_core::scenario::Platform;

    use super::*;

    #[test]
    fn columns_track_engines_lane_by_lane() {
        let config = FleetConfig::benign(Platform::Minix, 4, 1);
        let mut batch = EngineBatch::boot(&config, 1..4);
        assert_eq!(batch.len(), 3);
        batch.advance(SimDuration::from_mins(2));
        batch.advance(SimDuration::from_mins(2));
        assert!(batch.ipc_messages() > 0);
        let reports = batch.finish();
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, 1 + i);
            assert_eq!(r.seed, instance_seed(config.root_seed, 1 + i));
            assert!((r.sim_seconds - 240.0).abs() < 1e-9);
            assert!(r.critical_alive);
        }
    }

    #[test]
    fn chunked_advance_equals_one_shot_advance() {
        // Epoch stepping must not change what an instance computes: the
        // lockstep chunk sequence is identical either way.
        let config = FleetConfig::benign(Platform::Minix, 2, 1);
        let mut chunked = EngineBatch::boot(&config, 0..2);
        for _ in 0..5 {
            chunked.advance(SimDuration::from_mins(2));
        }
        let mut oneshot = EngineBatch::boot(&config, 0..2);
        oneshot.advance(SimDuration::from_mins(10));
        let a = chunked.finish();
        let b = oneshot.finish();
        assert_eq!(a, b);
    }
}
