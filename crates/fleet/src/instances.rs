//! Per-worker instance pool: the fleet side of snapshot/fork boot.
//!
//! A fleet run at 100k+ instances cannot keep every engine resident at
//! once, and cold-booting each one repeats policy lowering and kernel
//! construction 100k times. An [`InstancePool`] owns one worker's supply
//! of engines: checked-out engines come from a recycling freelist
//! (reset in place to the boot image via
//! [`bas_core::EngineSnapshot::recycle`]) or, when the freelist is dry,
//! are forked fresh from the shared snapshot; checked-in engines return
//! to the freelist for the next cohort. In [`BootMode::Cold`] the pool
//! degenerates to plain `boot_platform` per checkout and drops on
//! checkin, which is exactly the pre-snapshot fleet — the two modes
//! produce byte-identical reports (guarded by `tests/snapshot_fork.rs`).
//!
//! The pool is strictly thread-local (engines hold `Rc` plant state);
//! only the [`bas_core::EngineSnapshot`] behind the `Arc` is shared
//! across workers.

use std::sync::Arc;

use bas_core::scenario::Scenario;
use bas_core::EngineSnapshot;

use crate::engine::{BootMode, FleetConfig};
use crate::seed::instance_seed;

/// One worker's engine supply: a shared boot snapshot plus a local
/// freelist of idle engines awaiting recycling.
pub struct InstancePool {
    snapshot: Option<Arc<EngineSnapshot>>,
    free: Vec<Box<dyn Scenario>>,
    materialized: u64,
    recycled: u64,
}

impl InstancePool {
    /// A pool forking from `snapshot`; pass `None` for cold-boot mode.
    pub fn new(snapshot: Option<Arc<EngineSnapshot>>) -> InstancePool {
        InstancePool {
            snapshot,
            free: Vec::new(),
            materialized: 0,
            recycled: 0,
        }
    }

    /// Builds the pool a fleet worker should use under `config`:
    /// campaigns and [`BootMode::Cold`] get a cold pool, benign
    /// snapshot-mode fleets fork from `snapshot`.
    pub fn for_config(config: &FleetConfig, snapshot: Option<Arc<EngineSnapshot>>) -> InstancePool {
        match config.boot {
            BootMode::Snapshot => InstancePool::new(snapshot),
            BootMode::Cold => InstancePool::new(None),
        }
    }

    /// Produces the engine for fleet instance `index`, seeded with
    /// [`instance_seed`]`(config.root_seed, index)`: recycled from the
    /// freelist when possible, forked from the snapshot otherwise, and
    /// cold-booted when the pool has no snapshot.
    pub fn checkout(&mut self, config: &FleetConfig, index: usize) -> Box<dyn Scenario> {
        let seed = instance_seed(config.root_seed, index);
        let Some(snapshot) = &self.snapshot else {
            self.materialized += 1;
            let mut scenario_cfg = config.template.clone();
            scenario_cfg.seed = seed;
            return bas_core::boot_platform(config.platform, &scenario_cfg);
        };
        while let Some(mut engine) = self.free.pop() {
            if snapshot.recycle(engine.as_mut(), seed) {
                self.recycled += 1;
                return engine;
            }
            // A non-forkable engine slipped into the freelist (custom
            // overrides); drop it and fall through to a fresh fork.
        }
        self.materialized += 1;
        snapshot.materialize(seed)
    }

    /// Returns an idle engine to the freelist for recycling. Cold pools
    /// drop it: without a snapshot there is no sound reset target.
    pub fn checkin(&mut self, engine: Box<dyn Scenario>) {
        if self.snapshot.is_some() {
            self.free.push(engine);
        }
    }

    /// Engines booted from scratch (cold boots plus snapshot forks).
    pub fn materialized(&self) -> u64 {
        self.materialized
    }

    /// Engines reused via in-place reset.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Idle engines currently awaiting recycling.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use bas_core::scenario::Platform;

    use super::*;

    #[test]
    fn snapshot_pool_recycles_after_checkin() {
        let config = FleetConfig::benign(Platform::Minix, 4, 1);
        let snapshot = Arc::new(EngineSnapshot::capture(config.platform, &config.template));
        let mut pool = InstancePool::new(Some(snapshot));
        let a = pool.checkout(&config, 0);
        let b = pool.checkout(&config, 1);
        assert_eq!(pool.materialized(), 2);
        assert_eq!(pool.recycled(), 0);
        pool.checkin(a);
        pool.checkin(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.checkout(&config, 2);
        assert_eq!(pool.materialized(), 2);
        assert_eq!(pool.recycled(), 1);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn cold_pool_drops_on_checkin() {
        let config = FleetConfig::benign(Platform::Linux, 2, 1);
        let mut pool = InstancePool::new(None);
        let a = pool.checkout(&config, 0);
        pool.checkin(a);
        assert_eq!(pool.idle(), 0);
        let _b = pool.checkout(&config, 1);
        assert_eq!(pool.materialized(), 2);
        assert_eq!(pool.recycled(), 0);
    }
}
