//! A tiny deterministic JSON writer.
//!
//! The vendored `serde` is a marker-only stand-in (derives expand to
//! nothing), so every report in this workspace serializes by hand. This
//! module centralizes that: build a [`Json`] tree, call [`Json::render`].
//! Object keys keep insertion order and floats use Rust's shortest
//! round-trip formatting, so the same tree always renders to the same
//! bytes — the property the fleet determinism guard asserts on.

/// An ordered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Keys render in insertion order (no map reordering).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest round-trip form; deterministic per value.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&esc(s));
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    out.push('"');
                    out.push_str(&esc(k));
                    out.push_str("\": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Escapes a string for embedding in a JSON literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministically() {
        let j = Json::obj(vec![
            ("b", Json::UInt(2)),
            ("a", Json::Num(1.5)),
            ("s", Json::Str("x\"y".into())),
            ("arr", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Obj(Vec::new())),
        ]);
        let one = j.render();
        let two = j.render();
        assert_eq!(one, two);
        // Insertion order preserved: "b" before "a".
        assert!(one.find("\"b\"").expect("b key") < one.find("\"a\"").expect("a key"));
        assert!(one.contains("\\\"y"));
        assert!(one.ends_with('\n'));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(esc("a\u{1}b"), "a\\u0001b");
        assert_eq!(esc("a\tb\nc"), "a\\tb\\nc");
    }
}
