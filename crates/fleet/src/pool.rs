//! A persistent worker pool.
//!
//! Unlike the per-sweep scoped threads the fleet used before, a
//! [`WorkerPool`] spawns its threads once and keeps them parked on a
//! channel between dispatches, so a harness sweeping many fleet
//! configurations (`exp_fleet_scale`, the BENCH gate) reuses the same
//! OS threads across runs instead of paying spawn/join per sweep point.
//!
//! Jobs are dispatched round-robin in submission order and results are
//! returned in submission order — the pool decides *when* a job runs,
//! never *what* it computes, which is what lets the fleet keep its
//! byte-identical-report guarantee while owning resident instance
//! batches inside each job.

use std::sync::mpsc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads.
pub struct WorkerPool {
    senders: Vec<mpsc::Sender<Job>>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` (at least one) persistent threads.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut threads = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("fleet-worker-{w}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn fleet worker"),
            );
        }
        WorkerPool { senders, threads }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Dispatches `jobs` round-robin (job `j` to worker `j % size`) and
    /// blocks until all complete, returning results in submission order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread died mid-job (a job panicked).
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let expected = jobs.len();
        let (result_tx, result_rx) = mpsc::channel::<(usize, T)>();
        for (j, job) in jobs.into_iter().enumerate() {
            let tx = result_tx.clone();
            self.senders[j % self.senders.len()]
                .send(Box::new(move || {
                    let out = job();
                    let _ = tx.send((j, out));
                }))
                .expect("worker thread alive");
        }
        drop(result_tx);
        // The iterator ends when every job's sender clone is gone —
        // normally after `expected` results, early if a worker panicked.
        let mut out: Vec<(usize, T)> = result_rx.iter().collect();
        assert_eq!(out.len(), expected, "a fleet worker panicked");
        out.sort_by_key(|&(j, _)| j);
        out.into_iter().map(|(_, t)| t).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels lets each worker's `recv` fail and the
        // thread exit; then reap them.
        self.senders.clear();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_submission_order() {
        let pool = WorkerPool::new(3);
        let jobs: Vec<_> = (0..10u64).map(|i| move || i * i).collect();
        assert_eq!(
            pool.run(jobs),
            (0..10u64).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pool_survives_repeated_dispatches() {
        let pool = WorkerPool::new(2);
        for round in 0..5u64 {
            let jobs: Vec<_> = (0..4u64).map(|i| move || round * 10 + i).collect();
            let got = pool.run(jobs);
            assert_eq!(
                got,
                vec![round * 10, round * 10 + 1, round * 10 + 2, round * 10 + 3]
            );
        }
    }

    #[test]
    fn empty_dispatch_is_fine() {
        let pool = WorkerPool::new(1);
        let got: Vec<u8> = pool.run(Vec::<fn() -> u8>::new());
        assert!(got.is_empty());
    }
}
