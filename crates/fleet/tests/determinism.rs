//! The fleet determinism guard.
//!
//! Two fleet runs with the same root seed must produce *byte-identical*
//! `FleetReport` JSON regardless of worker count: parallelism may only
//! change who computes an instance, never what the instance computes.

use bas_attack::model::{AttackId, AttackerModel};
use bas_core::scenario::Platform;
use bas_fleet::{run_fleet, Campaign, FleetConfig};
use bas_sim::time::SimDuration;

fn small_fleet(platform: Platform, workers: usize) -> FleetConfig {
    let mut config = FleetConfig::benign(platform, 6, workers);
    config.horizon = SimDuration::from_mins(10);
    config
}

#[test]
fn same_seed_same_json_across_worker_counts() {
    for platform in [Platform::Minix, Platform::Sel4, Platform::Linux] {
        let serial = run_fleet(&small_fleet(platform, 1)).report.to_json();
        let parallel = run_fleet(&small_fleet(platform, 4)).report.to_json();
        assert_eq!(
            serial, parallel,
            "{platform}: report must not depend on worker count"
        );
        let again = run_fleet(&small_fleet(platform, 4)).report.to_json();
        assert_eq!(parallel, again, "{platform}: report must be reproducible");
    }
}

#[test]
fn large_fleet_is_byte_identical_at_every_worker_count() {
    // The BENCH-quoted configuration: a 256-instance fleet under the
    // persistent-pool executor. Batch boundaries move with the worker
    // count (256, 128, 64, ... instances per batch); the report bytes
    // must not.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1usize, 2, 4];
    if !counts.contains(&cores) {
        counts.push(cores);
    }
    let mut reference: Option<String> = None;
    for workers in counts {
        let mut config = FleetConfig::benign(Platform::Minix, 256, workers);
        config.horizon = SimDuration::from_mins(2);
        let json = run_fleet(&config).report.to_json();
        match &reference {
            None => reference = Some(json),
            Some(expected) => assert_eq!(
                expected, &json,
                "256-instance report diverged at workers={workers}"
            ),
        }
    }
}

#[test]
fn different_root_seed_changes_the_report() {
    let mut a = small_fleet(Platform::Minix, 2);
    let mut b = small_fleet(Platform::Minix, 2);
    a.root_seed = 1;
    b.root_seed = 2;
    let ja = run_fleet(&a).report.to_json();
    let jb = run_fleet(&b).report.to_json();
    assert_ne!(ja, jb, "root seed must reach every instance");
}

#[test]
fn campaign_fleet_is_deterministic_too() {
    let mk = |workers: usize| {
        let mut config = small_fleet(Platform::Linux, workers);
        config.instances = 4;
        config.campaign = Some(Campaign::new(
            AttackId::SpoofSensorData,
            AttackerModel::ArbitraryCode,
        ));
        run_fleet(&config).report
    };
    let serial = mk(1);
    let parallel = mk(4);
    assert_eq!(serial.to_json(), parallel.to_json());
    // Linux fails to contain sensor spoofing on every instance (E6).
    let campaign = parallel.campaign.expect("campaign summary");
    assert_eq!(campaign.mechanism_succeeded, 4);
    assert_eq!(campaign.compromised, 4);
}
