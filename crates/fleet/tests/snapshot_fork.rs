//! Property guard for the snapshot/fork boot path: a fleet forked from
//! a warm template produces the byte-identical `FleetReport` JSON a
//! cold-booted fleet produces — across all three platforms, random root
//! seeds, every worker count, and cohort sizes small enough to force
//! engine recycling through the freelist. This is the fleet-level face
//! of the `bas-core` snapshot soundness argument; if it ever fails, a
//! `reset_to_boot` implementation left residue behind.

use bas_core::scenario::Platform;
use bas_fleet::{run_fleet, BootMode, FleetConfig};
use bas_sim::time::SimDuration;
use proptest::prelude::*;

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop_oneof![
        Just(Platform::Minix),
        Just(Platform::Sel4),
        Just(Platform::Linux),
    ]
}

proptest! {
    /// Snapshot-forked and cold-booted fleets render identical reports.
    #[test]
    fn snapshot_fork_matches_cold_boot(
        platform in arb_platform(),
        root_seed in any::<u64>(),
        workers in prop_oneof![Just(1usize), Just(2), Just(4)],
        instances in 1usize..=5,
        max_resident in 1usize..=3,
        horizon_mins in 1u64..=2,
    ) {
        let mut config = FleetConfig::try_benign(platform, instances, workers)
            .expect("instances >= 1");
        config.root_seed = root_seed;
        config.horizon = SimDuration::from_mins(horizon_mins);
        // Smaller than the fleet whenever instances > max_resident, so
        // later cohorts run on recycled engines, not fresh forks.
        config.max_resident = max_resident;

        config.boot = BootMode::Snapshot;
        let snapshot = run_fleet(&config);
        config.boot = BootMode::Cold;
        let cold = run_fleet(&config);

        prop_assert_eq!(snapshot.report.to_json(), cold.report.to_json());
    }
}
