//! B: wall-clock cost of simulating IPC round trips on each platform
//! model (simulator throughput, complementing `exp_ipc_overhead`'s
//! virtual-time numbers).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bas_acm::{AcId, AccessControlMatrix};
use bas_sim::process::{Action, Process};

const ROUNDTRIPS: u64 = 1_000;

fn minix_pingpong() -> u64 {
    use bas_minix::kernel::{MinixConfig, MinixKernel};
    use bas_minix::syscall::{Reply, Syscall};

    struct Server;
    impl Process for Server {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
            match reply {
                Some(Reply::Msg(m)) => Action::Syscall(Syscall::send(m.source, 0, [])),
                _ => Action::Syscall(Syscall::Receive { from: None }),
            }
        }
    }
    struct Client {
        server: bas_minix::endpoint::Endpoint,
        remaining: u64,
    }
    impl Process for Client {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
            if self.remaining == 0 {
                return Action::Exit(0);
            }
            self.remaining -= 1;
            Action::Syscall(Syscall::sendrec(self.server, 1, []))
        }
    }

    let acm = AccessControlMatrix::builder()
        .allow_all_types(AcId::new(1), AcId::new(2))
        .allow_all_types(AcId::new(2), AcId::new(1))
        .build();
    let mut k = MinixKernel::new(MinixConfig {
        acm,
        ..MinixConfig::default()
    });
    k.disable_trace();
    let server = k
        .spawn("server", AcId::new(2), 0, Box::new(Server))
        .unwrap();
    k.spawn(
        "client",
        AcId::new(1),
        0,
        Box::new(Client {
            server,
            remaining: ROUNDTRIPS,
        }),
    )
    .unwrap();
    k.run_to_quiescence();
    k.metrics().ipc_messages
}

fn sel4_pingpong() -> u64 {
    use bas_sel4::cap::CPtr;
    use bas_sel4::kernel::{Sel4Config, Sel4Kernel};
    use bas_sel4::message::IpcMessage;
    use bas_sel4::rights::CapRights;
    use bas_sel4::syscall::{Reply, Syscall};

    struct Server;
    impl Process for Server {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
            match reply {
                Some(Reply::Msg(_)) => Action::Syscall(Syscall::Reply {
                    msg: IpcMessage::with_label(0),
                }),
                _ => Action::Syscall(Syscall::Recv { ep: CPtr::new(0) }),
            }
        }
    }
    struct Client {
        remaining: u64,
    }
    impl Process for Client {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
            if self.remaining == 0 {
                return Action::Exit(0);
            }
            self.remaining -= 1;
            Action::Syscall(Syscall::Call {
                ep: CPtr::new(0),
                msg: IpcMessage::with_label(1),
            })
        }
    }

    let mut k = Sel4Kernel::new(Sel4Config::default());
    k.disable_trace();
    let ep = k.create_endpoint();
    let server = k.create_thread("server", Box::new(Server));
    let client = k.create_thread(
        "client",
        Box::new(Client {
            remaining: ROUNDTRIPS,
        }),
    );
    k.grant_endpoint(server, ep, CapRights::READ, 0).unwrap();
    k.grant_endpoint(client, ep, CapRights::WRITE_GRANT, 1)
        .unwrap();
    k.start_thread(server);
    k.start_thread(client);
    k.run_to_quiescence();
    k.metrics().ipc_messages
}

fn linux_pingpong() -> u64 {
    use bas_linux::cred::{Mode, Uid};
    use bas_linux::kernel::{LinuxConfig, LinuxKernel};
    use bas_linux::syscall::{MqAccess, Reply, Syscall};

    struct Server {
        state: u8,
    }
    impl Process for Server {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
            match self.state {
                0 => {
                    self.state = 1;
                    Action::Syscall(Syscall::MqOpen {
                        name: "/req".into(),
                        access: MqAccess::READ,
                        create: None,
                    })
                }
                1 => {
                    self.state = 2;
                    Action::Syscall(Syscall::MqOpen {
                        name: "/resp".into(),
                        access: MqAccess::WRITE,
                        create: None,
                    })
                }
                _ => match reply {
                    Some(Reply::Data { .. }) => Action::Syscall(Syscall::MqSend {
                        qd: 1,
                        data: vec![0],
                        priority: 0,
                        nonblocking: false,
                    }),
                    _ => Action::Syscall(Syscall::MqReceive {
                        qd: 0,
                        nonblocking: false,
                    }),
                },
            }
        }
    }
    struct Client {
        state: u8,
        awaiting: bool,
        remaining: u64,
    }
    impl Process for Client {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
            match self.state {
                0 => {
                    self.state = 1;
                    Action::Syscall(Syscall::MqOpen {
                        name: "/req".into(),
                        access: MqAccess::WRITE,
                        create: None,
                    })
                }
                1 => {
                    self.state = 2;
                    Action::Syscall(Syscall::MqOpen {
                        name: "/resp".into(),
                        access: MqAccess::READ,
                        create: None,
                    })
                }
                _ => {
                    if self.awaiting {
                        self.awaiting = false;
                        return Action::Syscall(Syscall::MqReceive {
                            qd: 1,
                            nonblocking: false,
                        });
                    }
                    if self.remaining == 0 {
                        return Action::Exit(0);
                    }
                    self.remaining -= 1;
                    self.awaiting = true;
                    Action::Syscall(Syscall::MqSend {
                        qd: 0,
                        data: vec![1],
                        priority: 0,
                        nonblocking: false,
                    })
                }
            }
        }
    }

    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.disable_trace();
    let owner = Uid::new(1);
    k.create_queue("/req", owner, Mode::new(0o666), 8);
    k.create_queue("/resp", owner, Mode::new(0o666), 8);
    k.spawn("server", 1, Box::new(Server { state: 0 })).unwrap();
    k.spawn(
        "client",
        1,
        Box::new(Client {
            state: 0,
            awaiting: false,
            remaining: ROUNDTRIPS,
        }),
    )
    .unwrap();
    k.run_to_quiescence();
    k.metrics().ipc_messages
}

fn bench_ipc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipc_roundtrips_1k");
    group.bench_function("minix_sendrec", |b| {
        b.iter_batched(|| (), |_| minix_pingpong(), BatchSize::SmallInput)
    });
    group.bench_function("sel4_call_reply", |b| {
        b.iter_batched(|| (), |_| sel4_pingpong(), BatchSize::SmallInput)
    });
    group.bench_function("linux_mq_roundtrip", |b| {
        b.iter_batched(|| (), |_| linux_pingpong(), BatchSize::SmallInput)
    });
    group.finish();
}

criterion_group!(benches, bench_ipc);
criterion_main!(benches);
