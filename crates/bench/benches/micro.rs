//! B1–B5: primitive micro-benchmarks — ACM lookup, CSpace lookup, mq
//! enqueue/dequeue, plant integration step, and protocol codecs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_acm_lookup(c: &mut Criterion) {
    use bas_acm::fig3::{fig3_matrix, APP1, APP2};
    use bas_acm::MsgType;
    let acm = fig3_matrix();
    c.bench_function("acm_check", |b| {
        b.iter(|| {
            black_box(acm.check(black_box(APP2), black_box(APP1), black_box(MsgType::new(2))))
        })
    });
}

fn bench_cspace_lookup(c: &mut Criterion) {
    use bas_sel4::cap::{CPtr, Capability};
    use bas_sel4::cspace::CSpace;
    use bas_sel4::objects::ObjId;
    use bas_sel4::rights::CapRights;
    let mut cs = CSpace::new(64);
    for i in 0..16 {
        cs.insert(Capability::to_object(
            ObjId::new(i),
            CapRights::RW,
            u64::from(i),
        ))
        .unwrap();
    }
    c.bench_function("cspace_lookup", |b| {
        b.iter(|| black_box(cs.lookup(black_box(CPtr::new(7)))))
    });
}

fn bench_mq_ops(c: &mut Criterion) {
    use bas_linux::cred::{Mode, Uid};
    use bas_linux::mq::{MessageQueue, MqMessage};
    use bas_sim::arena::MsgArena;
    c.bench_function("mq_push_pop", |b| {
        let mut arena = MsgArena::with_capacity(8);
        let mut q = MessageQueue::new("/bench", Uid::new(1), Mode::new(0o600), 64);
        b.iter(|| {
            let msg = arena.alloc(&[1, 2, 3, 4]);
            q.push(MqMessage::new(0, msg));
            let m = q.pop().unwrap();
            arena.free(m.msg);
            black_box(m.priority)
        })
    });
}

fn bench_plant_step(c: &mut Criterion) {
    use bas_plant::world::{PlantConfig, PlantWorld};
    use bas_sim::time::{SimDuration, SimTime};
    c.bench_function("plant_step_1s", |b| {
        let mut world = PlantWorld::new(PlantConfig::default(), 1);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_secs(1);
            world.step_to(t);
            black_box(world.temperature_c())
        })
    });
}

fn bench_proto_codec(c: &mut Criterion) {
    use bas_core::proto::BasMsg;
    let msg = BasMsg::SensorReading {
        milli_c: 21_500,
        seq: 42,
    };
    c.bench_function("proto_minix_roundtrip", |b| {
        b.iter(|| {
            let (t, p) = black_box(msg).to_minix();
            black_box(BasMsg::from_minix(t, &p).unwrap())
        })
    });
    c.bench_function("proto_bytes_roundtrip", |b| {
        b.iter(|| {
            let bytes = black_box(msg).to_bytes();
            black_box(BasMsg::from_bytes(&bytes).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_acm_lookup,
    bench_cspace_lookup,
    bench_mq_ops,
    bench_plant_step,
    bench_proto_codec
);
criterion_main!(benches);
