//! End-to-end simulation throughput: one simulated minute of the full
//! five-process scenario per platform.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bas_core::platform::linux::{build_linux, LinuxOverrides};
use bas_core::platform::minix::{build_minix, MinixOverrides};
use bas_core::platform::sel4::{build_sel4, Sel4Overrides};
use bas_core::scenario::{Scenario, ScenarioConfig};
use bas_sim::time::SimDuration;

fn bench_scenario(c: &mut Criterion) {
    let config = ScenarioConfig::quiet();
    let mut group = c.benchmark_group("scenario_minute");
    group.sample_size(20);

    group.bench_function("minix", |b| {
        b.iter_batched(
            || build_minix(&config, MinixOverrides::default()),
            |mut s| {
                s.run_for(SimDuration::from_mins(1));
                s.metrics().ipc_messages
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("sel4", |b| {
        b.iter_batched(
            || build_sel4(&config, Sel4Overrides::default()),
            |mut s| {
                s.run_for(SimDuration::from_mins(1));
                s.metrics().ipc_messages
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("linux", |b| {
        b.iter_batched(
            || build_linux(&config, LinuxOverrides::default()),
            |mut s| {
                s.run_for(SimDuration::from_mins(1));
                s.metrics().ipc_messages
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_scenario);
criterion_main!(benches);
