//! # bas-bench — experiment binaries and benchmarks
//!
//! One binary per paper artifact (see `DESIGN.md`'s experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `exp_scenario_baseline` | E1 — Fig. 2 temperature-control time series |
//! | `exp_fig3_acm` | E2 — Fig. 3 ACM worked example |
//! | `exp_attack_matrix` | E3–E6 — §IV-D attack outcomes, paper-vs-measured |
//! | `exp_physical_impact` | E7 — physical safety metrics per attack |
//! | `exp_ipc_overhead` | E8 — microkernel-vs-monolithic IPC cost |
//! | `exp_aadl_pipeline` | E9 — AADL → per-platform policy artifacts |
//! | `exp_capdl_verify` | E10 — CapDL spec-vs-live-system audit |
//! | `exp_ablation_acm` | A1 — ACM enforcement ablation |
//! | `exp_ablation_caps` | A2 — capability over-grant ablation |
//! | `exp_alarm_latency` | E11 — alarm-latency distribution |
//! | `exp_cost_sensitivity` | E8b — context-switch cost sweep |
//! | `exp_recovery` | A3 — driver-crash recovery on all three platforms |
//! | `exp_policy_audit` | E12 — static policy audit: predicted matrix + lint |
//! | `exp_fleet_scale` | E13 — fleet scaling: N buildings × worker threads |
//! | `exp_model_check` | E14 — bounded model checking + counterexample replay |
//! | `exp_fault_campaign` | E16 — fault campaign: plans × platforms scorecard |
//! | `exp_cap_flow` | E17 — capability-flow analyzer vs model checker differential |
//! | `exp_traffic` | E18 — multi-tenant traffic front-end under attack mix |
//! | `exp_cap_races` | E19 — capability-churn races: detector vs checker vs static leaks |
//!
//! Every binary drives a [`Harness`], which owns the shared experiment
//! plumbing: flag parsing (`--quick`, `--json`, `--platform`), platform
//! iteration, scenario construction through the `PlatformKernel` trait,
//! and table/JSON emission. The binaries keep only experiment-specific
//! logic.
//!
//! Criterion benches (`benches/`): `ipc` (round-trip cost per platform),
//! `micro` (ACM/CSpace/mq/plant primitives), `scenario` (end-to-end
//! simulation throughput).

use std::path::PathBuf;

use bas_core::engine::PlatformKernel;
use bas_core::scenario::{Platform, Scenario, ScenarioConfig};
use bas_core::{boot_platform, ScenarioEngine};
use bas_fleet::Json;

/// Shared plumbing for every `exp_*` binary.
///
/// Construct one with [`Harness::new`] at the top of `main`; it parses
/// the process arguments once:
///
/// - `--quick` — smoke-test mode (CI): shrink iteration counts via
///   [`Harness::scale`] / [`Harness::quick`], keep every assertion.
/// - `--json` — additionally write `BENCH_<name>.json` via
///   [`Harness::emit_json`].
/// - `--platform linux|minix|sel4` — restrict [`Harness::platforms`].
/// - `--workers N` — worker threads for parallel experiments
///   ([`Harness::workers`]; defaults to the available cores).
pub struct Harness {
    name: &'static str,
    quick: bool,
    json: bool,
    platform_filter: Option<Platform>,
    workers: usize,
}

impl Harness {
    /// Parses the process arguments. `name` becomes the JSON file stem.
    pub fn new(name: &'static str) -> Harness {
        let args: Vec<String> = std::env::args().collect();
        let platform_filter = args.iter().position(|a| a == "--platform").map(|idx| {
            match args.get(idx + 1).map(String::as_str) {
                Some("linux") => Platform::Linux,
                Some("minix") => Platform::Minix,
                Some("sel4") => Platform::Sel4,
                other => {
                    eprintln!("unknown platform {other:?}; expected linux|minix|sel4");
                    std::process::exit(2);
                }
            }
        });
        let workers = args
            .iter()
            .position(|a| a == "--workers")
            .and_then(|idx| args.get(idx + 1)?.parse().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Harness {
            name,
            quick: args.iter().any(|a| a == "--quick"),
            json: args.iter().any(|a| a == "--json"),
            platform_filter,
            workers: workers.max(1),
        }
    }

    /// True when `--quick` was passed.
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// True when `--json` was passed.
    pub fn json(&self) -> bool {
        self.json
    }

    /// `full` normally, `quick` under `--quick`.
    pub fn scale(&self, full: u64, quick: u64) -> u64 {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// The platform filter, if `--platform` was passed.
    pub fn platform_filter(&self) -> Option<Platform> {
        self.platform_filter
    }

    /// Worker threads for parallel experiments: `--workers N`, else the
    /// available cores (at least 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The platforms this run covers, in canonical matrix order.
    pub fn platforms(&self) -> Vec<Platform> {
        [Platform::Linux, Platform::Minix, Platform::Sel4]
            .into_iter()
            .filter(|p| self.platform_filter.is_none_or(|f| f == *p))
            .collect()
    }

    /// Boots the default scenario stack for `platform` — the one-liner
    /// replacing the per-binary three-way `build_*` match.
    pub fn build(&self, platform: Platform, config: &ScenarioConfig) -> Box<dyn Scenario> {
        boot_platform(platform, config)
    }

    /// Boots a *typed* stack with experiment-specific overrides, through
    /// the same [`PlatformKernel`] trait the generic path uses. For
    /// experiments that must reach into the stack (CapDL audits, crash
    /// injection, attacker processes).
    pub fn build_stack<K: PlatformKernel>(
        &self,
        config: &ScenarioConfig,
        overrides: K::Overrides,
    ) -> ScenarioEngine<K> {
        ScenarioEngine::boot(config, overrides)
    }

    /// Writes `BENCH_<name>.json` in the current directory when `--json`
    /// was passed; returns the path if written.
    pub fn emit_json(&self, value: &Json) -> Option<PathBuf> {
        if !self.json {
            return None;
        }
        Some(self.write_json(value))
    }

    /// Unconditionally writes `BENCH_<name>.json` in the current
    /// directory (for experiments whose artifact *is* the JSON).
    pub fn write_json(&self, value: &Json) -> PathBuf {
        let path = PathBuf::from(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, value.render()).expect("write benchmark JSON");
        println!("\nwrote {}", path.display());
        path
    }
}

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints a horizontal rule sized to typical table width.
pub fn rule() {
    println!("{}", "-".repeat(100));
}

/// Formats a boolean as a fixed-width verdict.
pub fn verdict(b: bool, yes: &str, no: &str) -> String {
    if b {
        yes.to_string()
    } else {
        no.to_string()
    }
}
