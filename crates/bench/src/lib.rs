//! # bas-bench — experiment binaries and benchmarks
//!
//! One binary per paper artifact (see `DESIGN.md`'s experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `exp_scenario_baseline` | E1 — Fig. 2 temperature-control time series |
//! | `exp_fig3_acm` | E2 — Fig. 3 ACM worked example |
//! | `exp_attack_matrix` | E3–E6 — §IV-D attack outcomes, paper-vs-measured |
//! | `exp_physical_impact` | E7 — physical safety metrics per attack |
//! | `exp_ipc_overhead` | E8 — microkernel-vs-monolithic IPC cost |
//! | `exp_aadl_pipeline` | E9 — AADL → per-platform policy artifacts |
//! | `exp_capdl_verify` | E10 — CapDL spec-vs-live-system audit |
//! | `exp_ablation_acm` | A1 — ACM enforcement ablation |
//! | `exp_ablation_caps` | A2 — capability over-grant ablation |
//! | `exp_alarm_latency` | E11 — alarm-latency distribution |
//! | `exp_cost_sensitivity` | E8b — context-switch cost sweep |
//! | `exp_recovery` | A3 — MINIX self-repair under driver crash |
//! | `exp_policy_audit` | E12 — static policy audit: predicted matrix + lint |
//!
//! Criterion benches (`benches/`): `ipc` (round-trip cost per platform),
//! `micro` (ACM/CSpace/mq/plant primitives), `scenario` (end-to-end
//! simulation throughput).

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints a horizontal rule sized to typical table width.
pub fn rule() {
    println!("{}", "-".repeat(100));
}

/// Formats a boolean as a fixed-width verdict.
pub fn verdict(b: bool, yes: &str, no: &str) -> String {
    if b {
        yes.to_string()
    } else {
        no.to_string()
    }
}
