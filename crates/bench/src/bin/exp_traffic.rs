//! E18: the multi-tenant traffic front-end. Replays deterministic
//! open-loop tenant load (status reads + setpoint writes) against a
//! fleet of building controllers while an attacker slice — drawn from
//! the dos Santos et al. traffic mix — runs its campaigns, and measures
//! what the platform sustains: requests/sec, p50/p95/p99 request
//! latency, kernel backpressure (`ipc_waits`), and attack outcomes
//! under load.
//!
//! The deterministic `TrafficReport` must be byte-identical at every
//! worker count (asserted here each run); `ci.sh` additionally gates
//! `requests_per_wall_second` against `BENCH_traffic_baseline.json` and
//! re-checks the worker byte-identity on the quick artifact.
//!
//! Full mode runs the headline configuration: a 1 024-instance MINIX
//! fleet (~1 000 benign after the 2% attacker draw), four tenants per
//! instance for 10 simulated minutes, and asserts the single-worker
//! sustained rate stays at or above 100 000 requests/sec.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_traffic [-- --quick --platform minix]`

use bas_bench::{rule, section, Harness};
use bas_core::logic::traffic::TrafficProfile;
use bas_core::scenario::Platform;
use bas_fleet::{Json, WorkerPool};
use bas_sim::time::{SimDuration, SimTime};
use bas_traffic::{run_traffic, TrafficConfig, TrafficRun};

fn main() {
    let h = Harness::new("traffic");
    // One platform keeps the sweep readable; default MINIX (the paper's
    // primary platform), overridable with --platform.
    let platform = h.platform_filter().unwrap_or(Platform::Minix);
    let instances = h.scale(1024, 32) as usize;
    let worker_counts: &[usize] = if h.quick() { &[1, 2] } else { &[1, 2, 4] };

    let mut profile = TrafficProfile::default();
    if h.quick() {
        profile.duration = SimDuration::from_secs(60);
        profile.mean_interarrival_s = 2.0;
    }
    let mut config = TrafficConfig::new(platform, instances, 1);
    config.horizon =
        (profile.start - SimTime::ZERO) + profile.duration + SimDuration::from_secs(60);
    config.profile = profile;
    config.attacker_fraction = if h.quick() { 0.1 } else { 0.02 };
    if h.quick() {
        config.attack_run.warmup = SimDuration::from_secs(60);
        config.attack_run.window = SimDuration::from_secs(120);
        config.attack_run.cooldown = SimDuration::from_secs(30);
    }

    section(&format!(
        "traffic front-end on {platform}: {instances} instances, {} tenants × {:.0} s, \
         {:.0}% writes, attacker fraction {:.0}%",
        config.profile.tenants,
        config.profile.duration.as_secs_f64(),
        config.profile.write_fraction * 100.0,
        config.attacker_fraction * 100.0,
    ));
    println!(
        "{:>8} {:>11} {:>12} {:>13} {:>9} {:>9} {:>9} {:>10}",
        "workers", "wall[ms]", "req/s", "ipc-msg/s", "p50[ms]", "p95[ms]", "p99[ms]", "ipc_waits"
    );
    rule();

    let pool = WorkerPool::new(worker_counts.iter().copied().max().unwrap_or(1));
    let mut reference_json: Option<String> = None;
    let mut headline: Option<TrafficRun> = None;
    let mut sweep = Vec::new();
    for &workers in worker_counts {
        config.workers = workers;
        let run = run_traffic(&pool, &config);

        // The report is simulation outcome only: any worker count must
        // compute the identical bytes.
        let json = run.report.to_json();
        match &reference_json {
            None => reference_json = Some(json),
            Some(reference) => assert_eq!(
                reference, &json,
                "traffic report must not depend on worker count"
            ),
        }

        let wall_ms = (run.wall.benign.wall_seconds + run.wall.attack_wall_seconds) * 1e3;
        println!(
            "{:>8} {:>11.1} {:>12.0} {:>13.0} {:>9.3} {:>9.3} {:>9.3} {:>10}",
            workers,
            wall_ms,
            run.wall.benign.requests_per_wall_second,
            run.wall.benign.ipc_messages_per_wall_second,
            run.report.latency_percentile(0.50) * 1e3,
            run.report.latency_percentile(0.95) * 1e3,
            run.report.latency_percentile(0.99) * 1e3,
            run.report.fleet.totals.ipc_waits,
        );
        sweep.push(Json::obj(vec![
            ("workers", Json::UInt(workers as u64)),
            ("wall_seconds", Json::Num(run.wall.benign.wall_seconds)),
            (
                "attack_wall_seconds",
                Json::Num(run.wall.attack_wall_seconds),
            ),
            (
                "requests_per_wall_second",
                Json::Num(run.wall.benign.requests_per_wall_second),
            ),
            (
                "ipc_messages_per_wall_second",
                Json::Num(run.wall.benign.ipc_messages_per_wall_second),
            ),
        ]));
        if workers == 1 {
            headline = Some(run);
        }
    }
    rule();

    let run = headline.expect("the sweep always includes one worker");
    let report = &run.report;
    assert!(report.benign_instances > 0, "role draw produced no tenants");
    assert!(
        report.attacker_instances > 0,
        "role draw produced no attackers"
    );
    assert_eq!(
        report.attacks.iter().map(|l| l.instances).sum::<usize>(),
        report.attacker_instances,
        "every attacker instance lands in exactly one mix lane"
    );
    // In-band tenant traffic must complete cleanly on the benign fleet:
    // nothing refused, nothing unsafe, every sample accounted for.
    assert!(report.fleet.totals.requests > 0);
    assert_eq!(
        report.fleet.totals.requests,
        report.fleet.totals.requests_ok
    );
    assert_eq!(report.fleet.totals.safety_violations, 0);
    assert_eq!(report.fleet.totals.critical_losses, 0);
    assert_eq!(report.fleet.request_latency.invalid, 0);
    assert_eq!(
        report.fleet.request_latency.samples,
        report.fleet.totals.requests
    );

    section("attack outcomes under load (dos Santos traffic mix)");
    println!(
        "{:<22} {:>9} {:>10} {:>12}",
        "attack", "instances", "mechanism", "compromised"
    );
    rule();
    for lane in &report.attacks {
        println!(
            "{:<22} {:>9} {:>10} {:>12}",
            lane.attack.to_string(),
            lane.instances,
            lane.mechanism_succeeded,
            lane.compromised
        );
    }

    let rate = run.wall.benign.requests_per_wall_second;
    println!(
        "\nsustained: {:.0} requests/sec on 1 worker ({} requests, {} benign instances)",
        rate, report.fleet.totals.requests, report.benign_instances
    );
    if !h.quick() && platform == Platform::Minix {
        assert!(
            rate >= 100_000.0,
            "E18 floor: expected >=100k requests/sec on the benign fleet, got {rate:.0}"
        );
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    h.write_json(&Json::obj(vec![
        ("schema", Json::Str("bas-traffic-scale/v1".into())),
        ("platform", Json::Str(platform.to_string())),
        ("cores", Json::UInt(cores as u64)),
        ("instances", Json::UInt(instances as u64)),
        ("horizon_s", Json::Num(config.horizon.as_secs_f64())),
        ("requests_per_wall_second", Json::Num(rate)),
        (
            "ipc_messages_per_wall_second",
            Json::Num(run.wall.benign.ipc_messages_per_wall_second),
        ),
        ("sweep", Json::Arr(sweep)),
        ("report", report.to_json_value()),
    ]));
}
