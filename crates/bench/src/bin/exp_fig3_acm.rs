//! E2 (paper Fig. 3): the ACM worked example — three applications,
//! message types 0–3, the exact bitmap matrix from the figure — replayed
//! decision by decision through the same kernel-side check the MINIX
//! model uses.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_fig3_acm`

use bas_acm::fig3::{fig3_matrix, APP1, APP2, APP3};
use bas_acm::{AcId, MsgType};
use bas_bench::{rule, section, Harness};

fn main() {
    // Static experiment; the harness only standardizes flag handling.
    let _h = Harness::new("fig3_acm");
    let acm = fig3_matrix();

    section("Figure 3 access-control matrix (bitmap over message types 3..0)");
    print!("{}", acm.render_table(4));

    section("per-request decisions (sender -> receiver, message type)");
    let apps: [(AcId, &str); 3] = [(APP1, "App1"), (APP2, "App2"), (APP3, "App3")];
    println!(
        "{:>6} {:>6} {:>6} {:>10}",
        "sender", "recv", "mtype", "decision"
    );
    rule();
    for (s, s_name) in apps {
        for (r, r_name) in apps {
            if s == r {
                continue;
            }
            for t in 0..4u32 {
                let d = acm.check(s, r, MsgType::new(t));
                println!("{s_name:>6} {r_name:>6} {t:>6} {:>10}", d.to_string());
            }
        }
    }

    section("the paper's narrative example");
    println!(
        "App2 -> App1 with m_type 2: {}   (paper: \"the message will be allowed\")",
        acm.check(APP2, APP1, MsgType::new(2))
    );
    println!(
        "App2 -> App1 with m_type 1: {}   (paper: \"the message will be denied and the request \
         will be dropped\")",
        acm.check(APP2, APP1, MsgType::new(1))
    );
}
