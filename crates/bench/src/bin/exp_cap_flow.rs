//! E17: capability-flow static analysis, cross-validated against the
//! bounded model checker in both directions.
//!
//! The flow analyzer walks the Policy IR's derivation forest with a
//! worklist fixpoint and emits shortest escalation witnesses
//! `subject → cap hops → asset`. This experiment checks that the static
//! story and the dynamic story are the same story:
//!
//! 1. **Matrix differential (54 cells).** For every platform × attacker
//!    × attack cell, the presence of a relevant escalation witness must
//!    equal the taint verdict, the model checker's verdict, and the
//!    paper table. Forward: every witness's predicted property bits
//!    intersect what the checker actually reached. Reverse: every
//!    compromise counterexample the checker minimizes is covered by a
//!    witness predicting that property.
//! 2. **Derivation scenarios (21).** Each seeded anomaly — amplified
//!    mint, incomplete revocation, stale expiry, masquerading handle,
//!    plus clean controls — must produce exactly the expected flow
//!    findings and witnesses statically, and exactly the expected
//!    `OBJECT_MASQUERADE`/`DERIVATION_BREACH` reachability dynamically.
//!
//! Run:
//! `cargo run --release -p bas-bench --bin exp_cap_flow [-- --quick] [-- --json] [-- --workers N] [-- --state-budget N]`
//!
//! Exits nonzero on any static/dynamic disagreement, unexpected flow
//! finding, missed witness, truncation, or internal-invariant hit.

use bas_analysis::flow::{
    closure, derivation_scenarios, escalation_witnesses, witnesses_for_attack,
};
use bas_analysis::mc::verdict::props;
use bas_analysis::mc::{check_cells, matrix_cells, ExploreOpts, ScenarioModel};
use bas_analysis::scenario::model_for;
use bas_attack::expectations::Expectation;
use bas_attack::{AttackId, AttackerModel};
use bas_bench::{rule, section, verdict, Harness};
use bas_core::platform::linux::UidScheme;
use bas_fleet::Json;

fn state_budget_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let idx = args.iter().position(|a| a == "--state-budget")?;
    args.get(idx + 1)?.parse().ok()
}

fn is_resource_attack(a: AttackId) -> bool {
    matches!(
        a,
        AttackId::ForkBomb | AttackId::BruteForceHandles | AttackId::FloodLegitChannel
    )
}

fn main() {
    let h = Harness::new("cap_flow");
    let scheme = UidScheme::SharedAccount;
    let opts = ExploreOpts {
        use_por: true,
        state_budget: state_budget_arg().unwrap_or(if h.quick() { 500_000 } else { 2_000_000 }),
        workers: 1,
    };
    let sweep_workers = h.workers();
    let mut failures = 0usize;

    // ----------------------------------------------------------------
    // 1. Matrix differential: static witnesses vs taint vs checker vs
    //    paper, over every cell.
    // ----------------------------------------------------------------
    section(&format!(
        "static/dynamic differential over the attack matrix \
         (state budget {}, {sweep_workers} sweep worker(s))",
        opts.state_budget
    ));
    println!(
        "{:<8} {:<12} {:<22} {:>9} {:<13} {:<13} {:>4}  ok?",
        "platform", "attacker", "attack", "witnesses", "mc-verdict", "taint", "fwd",
    );
    rule();

    let cells = matrix_cells(&h.platforms());
    let reports = check_cells(&cells, scheme, &opts, sweep_workers);
    let mut cells_json = Vec::new();
    for r in &reports {
        let model = model_for(r.platform, r.attacker, scheme);
        let ws = escalation_witnesses(&model);
        let relevant = witnesses_for_attack(&ws, r.attack, &model);
        let static_compromise = !relevant.is_empty();

        // Verdict agreement. Resource attacks have no escalation
        // witness by definition; their check is that nobody claims
        // compromise for them either.
        let agree = if is_resource_attack(r.attack) {
            relevant.is_empty()
                && r.mc != Expectation::Compromised
                && r.paper != Expectation::Compromised
        } else {
            static_compromise == (r.mc == Expectation::Compromised)
                && static_compromise == (r.paper == Expectation::Compromised)
                && static_compromise == (r.taint == Expectation::Compromised)
        };

        // Forward: each witness's predicted property bits must be
        // reachable in the checker's state space.
        let forward = relevant
            .iter()
            .all(|w| w.asset.property_bits() & r.reached != 0);

        // Reverse: a minimized compromise counterexample must be
        // predicted by some witness.
        let reverse = match &r.counterexample {
            Some(cx) if props::COMPROMISE & cx.property.bit() != 0 => relevant
                .iter()
                .any(|w| w.asset.property_bits() & cx.property.bit() != 0),
            _ => true,
        };

        let ok = agree && forward && reverse && !r.stats.truncated && !r.invariant_violated();
        failures += usize::from(!ok);
        println!(
            "{:<8} {:<12} {:<22} {:>9} {:<13} {:<13} {:>4}  {}",
            r.platform.to_string(),
            r.attacker.to_string(),
            r.attack.to_string(),
            relevant.len(),
            format!("{:?}", r.mc),
            format!("{:?}", r.taint),
            if forward { "yes" } else { "NO" },
            if ok { "yes" } else { "** NO **" },
        );
        cells_json.push(Json::obj(vec![
            ("platform", Json::Str(r.platform.to_string())),
            ("attacker", Json::Str(r.attacker.to_string())),
            ("attack", Json::Str(r.attack.to_string())),
            ("witnesses", Json::UInt(relevant.len() as u64)),
            (
                "witness_paths",
                Json::Arr(relevant.iter().map(|w| Json::Str(w.render())).collect()),
            ),
            ("static_compromise", Json::Bool(static_compromise)),
            ("mc", Json::Str(format!("{:?}", r.mc))),
            ("paper", Json::Str(format!("{:?}", r.paper))),
            ("taint", Json::Str(format!("{:?}", r.taint))),
            ("forward_confirmed", Json::Bool(forward)),
            ("reverse_covered", Json::Bool(reverse)),
            ("ok", Json::Bool(ok)),
        ]));
    }
    rule();
    let matrix_ok = reports.len() - failures.min(reports.len());
    println!(
        "matrix differential: {matrix_ok}/{} cells agree in both directions",
        reports.len()
    );

    // ----------------------------------------------------------------
    // 2. Seeded derivation scenarios: exact findings statically, exact
    //    new-property reachability dynamically.
    // ----------------------------------------------------------------
    section("seeded derivation scenarios: static findings vs checker reachability");
    println!(
        "{:<24} {:<34} {:>7} {:>10} {:>10}  ok?",
        "scenario", "expected findings", "witness", "expected", "reached",
    );
    rule();
    let new_bits = props::OBJECT_MASQUERADE | props::DERIVATION_BREACH;
    let mut scenario_json = Vec::new();
    let scenarios = derivation_scenarios();
    let scenario_total = scenarios.len();
    for s in scenarios {
        let cl = closure(&s.model.caps);
        let codes: Vec<&str> = cl.findings.iter().map(|f| f.kind.code()).collect();
        let codes_ok = codes == s.expect_codes;
        let ws = escalation_witnesses(&s.model);
        let witness = ws.iter().any(|w| w.via_caps);
        let witness_ok = witness == s.expect_witness;

        let name = s.name.clone();
        let platform = s.platform;
        let report = bas_analysis::mc::check_cell(
            &ScenarioModel::with_ir(
                platform,
                AttackerModel::ArbitraryCode,
                AttackId::BruteForceHandles,
                UidScheme::PerProcessHardened,
                s.model,
            ),
            &opts,
        );
        let reached = report.reached & new_bits;
        let reach_ok =
            reached == s.expect_flags && !report.stats.truncated && !report.invariant_violated();

        let ok = codes_ok && witness_ok && reach_ok;
        failures += usize::from(!ok);
        println!(
            "{:<24} {:<34} {:>7} {:>#10x} {:>#10x}  {}",
            name,
            if s.expect_codes.is_empty() {
                "(clean)".to_string()
            } else {
                s.expect_codes.join(",")
            },
            if witness { "yes" } else { "no" },
            s.expect_flags,
            reached,
            if ok { "yes" } else { "** NO **" },
        );
        scenario_json.push(Json::obj(vec![
            ("name", Json::Str(name)),
            ("platform", Json::Str(platform.to_string())),
            (
                "expected_codes",
                Json::Arr(
                    s.expect_codes
                        .iter()
                        .map(|c| Json::Str((*c).into()))
                        .collect(),
                ),
            ),
            (
                "actual_codes",
                Json::Arr(codes.iter().map(|c| Json::Str((*c).into())).collect()),
            ),
            ("witness_expected", Json::Bool(s.expect_witness)),
            ("witness_found", Json::Bool(witness)),
            ("flags_expected", Json::UInt(u64::from(s.expect_flags))),
            ("flags_reached", Json::UInt(u64::from(reached))),
            ("states", Json::UInt(report.stats.states as u64)),
            ("note", Json::Str(s.note.into())),
            ("ok", Json::Bool(ok)),
        ]));
    }
    rule();
    println!(
        "derivation scenarios: {}/{scenario_total} agree statically and dynamically",
        scenario_total - failures.min(scenario_total),
    );

    println!(
        "verdict: {}",
        verdict(
            failures == 0,
            "flow analyzer and model checker agree on every cell and scenario",
            &format!("{failures} check(s) failed"),
        )
    );

    h.emit_json(&Json::obj(vec![
        ("schema", Json::Str("bas-cap-flow/v1".into())),
        ("state_budget", Json::UInt(opts.state_budget as u64)),
        ("matrix_cells", Json::UInt(reports.len() as u64)),
        ("scenarios", Json::UInt(scenario_total as u64)),
        ("cells", Json::Arr(cells_json)),
        ("derivation_scenarios", Json::Arr(scenario_json)),
        ("failures", Json::UInt(failures as u64)),
    ]));

    if failures > 0 {
        std::process::exit(1);
    }
}
