//! E7: physical-impact detail per attack — the safety oracle's view.
//! For each platform and attack (attacker model A1), prints max
//! deviation, alarm latency, in-band fraction, actuator churn, and the
//! final verdict; the data behind "the critical processes that impact the
//! physical world are not affected".
//!
//! Run: `cargo run --release -p bas-bench --bin exp_physical_impact [-- --json]`

use bas_attack::harness::{run_attack, AttackRunConfig};
use bas_attack::model::{AttackId, AttackerModel};
use bas_bench::{rule, section, Harness};
use bas_fleet::Json;

fn main() {
    let h = Harness::new("physical_impact");
    let config = AttackRunConfig::default();
    let mut cells = Vec::new();

    section("physical impact under attack (attacker model A1, heat burst mid-window)");
    println!(
        "{:<22} {:<12} {:<9} {:<10} {:<9} {:<12} {:<8}",
        "attack", "platform", "maxdev°C", "final°C", "alarm", "fan-switch", "safety"
    );
    rule();
    for attack in AttackId::ALL {
        for platform in h.platforms() {
            let o = run_attack(platform, AttackerModel::ArbitraryCode, attack, &config);
            println!(
                "{:<22} {:<12} {:<9.2} {:<10.2} {:<9} {:<12} {:<8}",
                attack.to_string(),
                platform.to_string(),
                o.physical.max_deviation_c,
                o.physical.final_temp_c,
                if o.physical.alarm_on { "ON" } else { "off" },
                o.physical.fan_switches,
                if o.physical.safety_violated {
                    "VIOLATED"
                } else {
                    "ok"
                },
            );
            cells.push(Json::obj(vec![
                ("platform", Json::Str(platform.to_string())),
                ("attack", Json::Str(attack.to_string())),
                (
                    "attacker",
                    Json::Str(AttackerModel::ArbitraryCode.to_string()),
                ),
                ("max_deviation_c", Json::Num(o.physical.max_deviation_c)),
                ("final_temp_c", Json::Num(o.physical.final_temp_c)),
                ("alarm_on", Json::Bool(o.physical.alarm_on)),
                ("fan_switches", Json::UInt(o.physical.fan_switches as u64)),
                ("safety_violated", Json::Bool(o.physical.safety_violated)),
            ]));
        }
        rule();
    }
    println!(
        "note: a *healthy* run of the disturbance scenario ends hot (≈24°C) with the alarm ON \
         and no violation — the burst exceeds the fan's authority, so raising the alarm within \
         the deadline is the correct response. 'VIOLATED' means the alarm was suppressed or \
         nobody was left to raise it."
    );

    h.emit_json(&Json::obj(vec![
        ("schema", Json::Str("bas-physical-impact/v1".into())),
        ("cells", Json::Arr(cells)),
    ]));
}
