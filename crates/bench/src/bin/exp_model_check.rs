//! E14 + E15: bounded explicit-state model checking of the attack
//! matrix, and the scaling of its parallel exploration.
//!
//! Where E3–E6 *run* each matrix cell on one schedule, E14 *proves* it:
//! every interleaving of the five processes and the attacker's
//! primitives is explored to the bounded horizon, each operation
//! dual-adjudicated by the Policy IR and the kernel artifacts. The
//! experiment reports per-cell verdicts against the paper table and the
//! taint analyzer, the partial-order-reduction factor at equal depth,
//! and minimized counterexample traces — each replayed through the real
//! dynamic engine to confirm the violation manifests.
//!
//! E15 measures the two parallel axes introduced with the sharded
//! explorer: cell-level sweep scaling (the 54 cells across a worker
//! pool) and layer-level BFS scaling inside a single cell (workers ×
//! {POR on, POR off}), asserting byte-identical verdicts at every
//! worker count.
//!
//! Run:
//! `cargo run --release -p bas-bench --bin exp_model_check [-- --quick] [-- --json] [-- --workers N] [-- --state-budget N]`
//!
//! Exits nonzero if any cell disagrees, any exploration truncates, an
//! internal invariant (gate mismatch / quota breach) is reachable, any
//! parallel run diverges from the sequential one, or a counterexample
//! fails to replay dynamically.

use std::time::Instant;

use bas_analysis::mc::{
    check_cell, check_cells, matrix_cells, replay_counterexample, CellReport, ExploreOpts,
    ExploreStats, McAction, ScenarioModel,
};
use bas_attack::expectations::Expectation;
use bas_attack::{AttackId, AttackerModel};
use bas_bench::{rule, section, verdict, Harness};
use bas_core::platform::linux::UidScheme;
use bas_core::scenario::Platform;
use bas_fleet::Json;

fn state_budget_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let idx = args.iter().position(|a| a == "--state-budget")?;
    args.get(idx + 1)?.parse().ok()
}

fn expectation_str(e: Expectation) -> &'static str {
    match e {
        Expectation::Compromised => "Compromised",
        Expectation::ResourceExhaustionOnly => "ResourceOnly",
        Expectation::Stopped => "Stopped",
    }
}

fn cell_json(r: &CellReport, scheme: UidScheme) -> Json {
    Json::obj(vec![
        ("platform", Json::Str(r.platform.to_string())),
        ("attacker", Json::Str(r.attacker.to_string())),
        ("attack", Json::Str(r.attack.to_string())),
        ("uid_scheme", Json::Str(format!("{scheme:?}"))),
        ("mc", Json::Str(expectation_str(r.mc).into())),
        ("paper", Json::Str(expectation_str(r.paper).into())),
        ("taint", Json::Str(expectation_str(r.taint).into())),
        ("agrees", Json::Bool(r.agrees())),
        ("states", Json::UInt(r.stats.states as u64)),
        ("transitions", Json::UInt(r.stats.transitions as u64)),
        ("max_depth", Json::UInt(r.stats.max_depth as u64)),
        ("ample_states", Json::UInt(r.stats.ample_states as u64)),
        ("truncated", Json::Bool(r.stats.truncated)),
        ("invariant_violated", Json::Bool(r.invariant_violated())),
        (
            "counterexample",
            match &r.counterexample {
                None => Json::Null,
                Some(cx) => Json::obj(vec![
                    ("property", Json::Str(cx.property.to_string())),
                    (
                        "trace",
                        Json::Arr(cx.trace.iter().map(|a| Json::Str(a.to_string())).collect()),
                    ),
                ]),
            },
        ),
    ])
}

fn main() {
    let h = Harness::new("mc");
    let scheme = UidScheme::SharedAccount;
    // Per-cell layer parallelism stays off by default: the matrix
    // parallelizes at the cell boundary (54 independent explorations),
    // which scales without barriers, while intra-cell layer-BFS is
    // bounded by per-layer width and loses outright when workers
    // oversubscribe the machine. E15b below measures it honestly at
    // each worker count; the JSON carries the default so downstream
    // dashboards don't assume layer parallelism contributed.
    let opts = ExploreOpts {
        use_por: true,
        state_budget: state_budget_arg().unwrap_or(2_000_000),
        workers: 1,
    };
    let sweep_workers = h.workers();
    let mut failures = 0usize;
    let mut cells_json = Vec::new();

    section(&format!(
        "bounded model checking: 7 rounds, response bound k=4, attacker budget 6, \
         state budget {} (POR on), {sweep_workers} sweep worker(s)",
        opts.state_budget
    ));
    println!(
        "{:<8} {:<12} {:<22} {:<13} {:<13} {:<13} {:>8} {:>6} {:>6}  agrees?",
        "platform",
        "attacker",
        "attack",
        "mc-verdict",
        "paper",
        "taint",
        "states",
        "depth",
        "ample",
    );
    rule();

    let cells = matrix_cells(&h.platforms());
    let sweep_start = Instant::now();
    let reports = check_cells(&cells, scheme, &opts, sweep_workers);
    let wall_seconds = sweep_start.elapsed().as_secs_f64();
    for r in &reports {
        let ok = r.agrees() && !r.stats.truncated && !r.invariant_violated();
        failures += usize::from(!ok);
        println!(
            "{:<8} {:<12} {:<22} {:<13} {:<13} {:<13} {:>8} {:>6} {:>6}  {}",
            r.platform.to_string(),
            r.attacker.to_string(),
            r.attack.to_string(),
            expectation_str(r.mc),
            expectation_str(r.paper),
            expectation_str(r.taint),
            r.stats.states,
            r.stats.max_depth,
            r.stats.ample_states,
            if ok { "yes" } else { "** NO **" },
        );
        cells_json.push(cell_json(r, scheme));
    }
    rule();
    let agreed = reports.iter().filter(|r| r.agrees()).count();
    let exhaustive = reports.iter().filter(|r| !r.stats.truncated).count();
    let total_states: usize = reports.iter().map(|r| r.stats.states).sum();
    let states_per_second = total_states as f64 / wall_seconds.max(1e-9);
    let bytes_per_state = ExploreStats::bytes_per_state::<McAction>();
    println!(
        "three-way agreement (checker == paper == taint): {agreed}/{} cells, \
         {exhaustive}/{} proved exhaustively at the bound",
        reports.len(),
        reports.len()
    );
    println!(
        "sweep: {total_states} states in {:.3}s ({:.0} states/s, {sweep_workers} worker(s)); \
         store: {bytes_per_state} B/state (node + fingerprint, depth-independent)",
        wall_seconds, states_per_second
    );

    // ----------------------------------------------------------------
    // E15a: cell-sweep scaling. Full mode re-runs the matrix strictly
    // sequentially to measure the parallel speedup on this machine;
    // quick mode (CI) keeps the single parallel run.
    // ----------------------------------------------------------------
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut sweep_speedup = Json::Null;
    if !h.quick() && sweep_workers > 1 {
        section("E15a: cell-sweep scaling (54 cells across the worker pool)");
        let seq_start = Instant::now();
        let seq_reports = check_cells(&cells, scheme, &opts, 1);
        let seq_wall = seq_start.elapsed().as_secs_f64();
        let identical = seq_reports
            .iter()
            .zip(&reports)
            .all(|(a, b)| a.mc == b.mc && a.stats == b.stats && a.reached == b.reached);
        failures += usize::from(!identical);
        let speedup = seq_wall / wall_seconds.max(1e-9);
        println!(
            "sequential: {seq_wall:.3}s   {sweep_workers} workers: {wall_seconds:.3}s   \
             speedup {speedup:.2}x   reports {}",
            if identical {
                "identical"
            } else {
                "** DIVERGED **"
            }
        );
        // The ≥3x claim needs real cores; on a small host the sweep
        // still runs (and determinism still holds), but the wall-clock
        // assertion would be meaningless.
        if cores >= 4 && sweep_workers >= 4 {
            if speedup < 3.0 {
                println!("** expected >=3x sweep speedup at >=4 workers on {cores} cores **");
                failures += 1;
            } else {
                println!("speedup check: {speedup:.2}x on {cores} cores (>=3x required) — OK");
            }
        } else {
            println!("speedup check skipped ({cores} core(s), {sweep_workers} worker(s))");
        }
        sweep_speedup = Json::obj(vec![
            ("sequential_wall_seconds", Json::Num(seq_wall)),
            ("parallel_wall_seconds", Json::Num(wall_seconds)),
            ("speedup", Json::Num(speedup)),
            ("reports_identical", Json::Bool(identical)),
        ]);
    }

    // ----------------------------------------------------------------
    // E15b: layer-parallel BFS inside one cell, workers × {POR on/off}.
    // Verdict/counter equality at every worker count is asserted; the
    // speedup column is informational (layer barriers bound it by the
    // width of each layer).
    // ----------------------------------------------------------------
    section("E15b: layer-parallel exploration (single cell, workers x POR)");
    let bfs_cells: &[(Platform, AttackId)] = if h.quick() {
        &[(Platform::Linux, AttackId::SpoofActuatorCommands)]
    } else {
        &[
            (Platform::Linux, AttackId::SpoofActuatorCommands),
            (Platform::Minix, AttackId::FloodLegitChannel),
            (Platform::Sel4, AttackId::ReplaySetpoint),
        ]
    };
    let worker_counts: &[usize] = if h.quick() { &[1, 2] } else { &[1, 2, 4] };
    println!(
        "{:<8} {:<22} {:>4} {:>8} {:>10} {:>10} {:>8}  identical?",
        "platform", "attack", "por", "workers", "states", "wall[ms]", "speedup"
    );
    rule();
    let mut bfs_json = Vec::new();
    for &(platform, attack) in bfs_cells {
        let model = ScenarioModel::new(platform, AttackerModel::ArbitraryCode, attack, scheme);
        for use_por in [true, false] {
            let mut baseline: Option<(f64, CellReport)> = None;
            for &workers in worker_counts {
                let run_opts = ExploreOpts {
                    use_por,
                    state_budget: opts.state_budget,
                    workers,
                };
                let t0 = Instant::now();
                let r = check_cell(&model, &run_opts);
                let wall = t0.elapsed().as_secs_f64();
                let (identical, speedup) = match &baseline {
                    None => (true, 1.0), // workers == 1 defines the baseline
                    Some((base_wall, base)) => (
                        r.mc == base.mc && r.stats == base.stats && r.reached == base.reached,
                        base_wall / wall.max(1e-9),
                    ),
                };
                failures += usize::from(!identical);
                println!(
                    "{:<8} {:<22} {:>4} {:>8} {:>10} {:>10.1} {:>7.2}x  {}",
                    platform.to_string(),
                    attack.to_string(),
                    if use_por { "on" } else { "off" },
                    workers,
                    r.stats.states,
                    wall * 1e3,
                    speedup,
                    if identical { "yes" } else { "** NO **" },
                );
                bfs_json.push(Json::obj(vec![
                    ("platform", Json::Str(platform.to_string())),
                    ("attack", Json::Str(attack.to_string())),
                    ("por", Json::Bool(use_por)),
                    ("workers", Json::UInt(workers as u64)),
                    ("states", Json::UInt(r.stats.states as u64)),
                    ("wall_seconds", Json::Num(wall)),
                    ("speedup_vs_one_worker", Json::Num(speedup)),
                    ("identical", Json::Bool(identical)),
                ]));
                if baseline.is_none() {
                    baseline = Some((wall, r));
                }
            }
        }
    }
    rule();

    // ----------------------------------------------------------------
    // POR reduction factor: reduced vs unreduced at equal depth, with
    // verdict equivalence as the empirical soundness check.
    // ----------------------------------------------------------------
    section("partial-order reduction: reduced vs full exploration at equal depth");
    let por_cells: Vec<(Platform, AttackId)> = if h.quick() {
        vec![
            (Platform::Linux, AttackId::SpoofSensorData),
            (Platform::Minix, AttackId::FloodLegitChannel),
            (Platform::Sel4, AttackId::ReplaySetpoint),
        ]
    } else {
        let mut v = Vec::new();
        for p in [Platform::Linux, Platform::Minix, Platform::Sel4] {
            for a in [
                AttackId::SpoofSensorData,
                AttackId::KillCritical,
                AttackId::FloodLegitChannel,
                AttackId::ReplaySetpoint,
            ] {
                v.push((p, a));
            }
        }
        v
    };
    println!(
        "{:<8} {:<22} {:>10} {:>10} {:>8}  verdicts",
        "platform", "attack", "full", "reduced", "factor"
    );
    rule();
    let (mut total_full, mut total_reduced) = (0usize, 0usize);
    let mut por_json = Vec::new();
    for (platform, attack) in por_cells {
        let model = ScenarioModel::new(platform, AttackerModel::ArbitraryCode, attack, scheme);
        let reduced = check_cell(&model, &opts);
        let full = check_cell(
            &model,
            &ExploreOpts {
                use_por: false,
                ..opts
            },
        );
        let equivalent = reduced.mc == full.mc && reduced.reached == full.reached;
        let effective = reduced.stats.states < full.stats.states;
        failures += usize::from(!equivalent || !effective || full.stats.truncated);
        let factor = full.stats.states as f64 / reduced.stats.states.max(1) as f64;
        println!(
            "{:<8} {:<22} {:>10} {:>10} {:>7.2}x  {}",
            platform.to_string(),
            attack.to_string(),
            full.stats.states,
            reduced.stats.states,
            factor,
            if equivalent {
                "identical"
            } else {
                "** DIVERGED **"
            },
        );
        total_full += full.stats.states;
        total_reduced += reduced.stats.states;
        por_json.push(Json::obj(vec![
            ("platform", Json::Str(platform.to_string())),
            ("attack", Json::Str(attack.to_string())),
            ("full_states", Json::UInt(full.stats.states as u64)),
            ("reduced_states", Json::UInt(reduced.stats.states as u64)),
            ("factor", Json::Num(factor)),
            ("verdicts_identical", Json::Bool(equivalent)),
        ]));
    }
    rule();
    let overall_factor = total_full as f64 / total_reduced.max(1) as f64;
    println!(
        "overall reduction: {total_full} -> {total_reduced} states ({overall_factor:.2}x), \
         all verdicts identical"
    );

    // ----------------------------------------------------------------
    // Counterexample replay through the dynamic engine. Quick mode
    // replays the seeded Linux-DAC violations; full mode replays every
    // counterexample the matrix produced.
    // ----------------------------------------------------------------
    section("counterexample replay into the dynamic engine");
    let mut replayed = 0usize;
    let mut confirmed = 0usize;
    let mut replay_json = Vec::new();
    for r in &reports {
        let Some(cx) = &r.counterexample else {
            continue;
        };
        // The Linux DAC cells are the paper's seeded violations; quick
        // mode replays those for Linux A1 and skips the rest.
        let seeded_linux = r.platform == Platform::Linux
            && r.attacker == AttackerModel::ArbitraryCode
            && matches!(
                r.attack,
                AttackId::KillCritical | AttackId::SpoofSensorData | AttackId::DirectDeviceWrite
            );
        if h.quick() && !seeded_linux {
            continue;
        }
        let trace: Vec<String> = cx.trace.iter().map(ToString::to_string).collect();
        let result = replay_counterexample(r, scheme).expect("counterexample present");
        replayed += 1;
        confirmed += usize::from(result.confirmed);
        failures += usize::from(!result.confirmed);
        println!(
            "{:<8} {:<12} {:<22} {:<26} [{}]",
            r.platform.to_string(),
            r.attacker.to_string(),
            r.attack.to_string(),
            format!("{} ({} actions)", cx.property, cx.trace.len()),
            trace.join(", "),
        );
        println!(
            "         dynamic: {} ({})",
            if result.confirmed {
                "CONFIRMED"
            } else {
                "** NOT CONFIRMED **"
            },
            result.evidence,
        );
        replay_json.push(Json::obj(vec![
            ("platform", Json::Str(r.platform.to_string())),
            ("attacker", Json::Str(r.attacker.to_string())),
            ("attack", Json::Str(r.attack.to_string())),
            ("property", Json::Str(cx.property.to_string())),
            (
                "trace",
                Json::Arr(trace.into_iter().map(Json::Str).collect()),
            ),
            ("confirmed", Json::Bool(result.confirmed)),
            ("evidence", Json::Str(result.evidence.clone())),
        ]));
    }
    rule();
    println!("replayed {replayed} counterexample(s); {confirmed} confirmed dynamically");
    if replayed == 0 {
        // The seeded Linux-DAC violation must be demonstrable even in
        // quick mode (unless the platform filter excluded Linux).
        if h.platforms().contains(&Platform::Linux) {
            println!("** expected at least one Linux-DAC counterexample to replay **");
            failures += 1;
        }
    }

    println!(
        "verdict: {}",
        verdict(
            failures == 0,
            "model checker, paper table, taint analyzer and dynamic engine all agree",
            &format!("{failures} check(s) failed"),
        )
    );

    h.emit_json(&Json::obj(vec![
        ("schema", Json::Str("bas-model-check/v2".into())),
        ("state_budget", Json::UInt(opts.state_budget as u64)),
        ("workers", Json::UInt(sweep_workers as u64)),
        ("cores", Json::UInt(cores as u64)),
        ("wall_seconds", Json::Num(wall_seconds)),
        ("states_total", Json::UInt(total_states as u64)),
        ("states_per_second", Json::Num(states_per_second)),
        ("state_bytes_per_state", Json::UInt(bytes_per_state as u64)),
        (
            "state_store_bytes",
            Json::UInt((total_states * bytes_per_state) as u64),
        ),
        ("sweep_scaling", sweep_speedup),
        (
            "layer_parallel_default_workers",
            Json::UInt(opts.workers as u64),
        ),
        ("layer_parallel", Json::Arr(bfs_json)),
        ("cells", Json::Arr(cells_json)),
        ("por", Json::Arr(por_json)),
        ("replays", Json::Arr(replay_json)),
        ("failures", Json::UInt(failures as u64)),
    ]));

    if failures > 0 {
        std::process::exit(1);
    }
}
