//! A3 (extension): driver-crash recovery, all three platforms. The paper
//! picked MINIX partly for its reliability pedigree (its ref \[7\] is
//! "MINIX 3: A highly reliable, self-repairing operating system"). This
//! experiment kills the heater driver mid-run — the same
//! `bas_faults::crash_plan` on every platform — and prints the
//! fan/temperature timeline around the fault, so the recovery contrast
//! (MINIX re-forks; Linux and seL4 stay broken in platform-specific
//! ways) is measured rather than asserted. On MINIX it also runs a
//! second, supervised configuration.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_recovery \
//!       [-- --quick --json --platform linux|minix|sel4]`

use bas_bench::{rule, section, Harness};
use bas_faults::{run_recovery, RecoveryOutcome};
use bas_fleet::Json;

fn report(label: &str, outcome: &RecoveryOutcome) -> Json {
    section(&format!("{label} (heater driver crashes at t = 180 s)"));
    println!(
        "{:>8} {:>9} {:>5} {:>6}",
        "t[s]", "temp[°C]", "fan", "alarm"
    );
    for p in &outcome.timeline {
        println!(
            "{:>8} {:>9.2} {:>5} {:>6}",
            p.t_s,
            p.temp_c,
            if p.fan_on { "ON" } else { "off" },
            if p.alarm_on { "ON" } else { "off" },
        );
    }
    rule();
    println!(
        "fan switches: {} | final temp: {:.2}°C | critical alive: {} | procs created: {} | safety: {}",
        outcome.fan_switches,
        outcome.final_temp_c,
        outcome.critical_alive,
        outcome.processes_created,
        if outcome.safe { "OK" } else { "VIOLATED" },
    );
    outcome.to_json()
}

fn main() {
    let h = Harness::new("recovery");
    let mut configs = Vec::new();
    for platform in h.platforms() {
        let unsupervised = run_recovery(platform, false, h.quick());
        configs.push(report(&format!("{platform}: no supervisor"), &unsupervised));
        if platform == bas_core::scenario::Platform::Minix {
            let supervised = run_recovery(platform, true, h.quick());
            configs.push(report(
                &format!("{platform}: reincarnation-style supervisor (2 s health checks)"),
                &supervised,
            ));
        }
    }

    section("conclusion");
    println!(
        "the same crash plan runs everywhere, and only the platform differs: on Linux the\n\
         driver stays dead and its command queue silts up; on seL4 the controller's\n\
         blocking call to the dead driver wedges the control loop outright; on MINIX the\n\
         supervisor re-forks the driver (note the extra process creation), the controller\n\
         re-resolves its new endpoint generation, and full regulation resumes — the\n\
         self-repair behavior the paper's platform choice is predicated on, implemented\n\
         purely as an unprivileged process under the same ACM."
    );

    h.emit_json(&Json::obj(vec![
        ("schema", Json::Str("bas-recovery/v2".into())),
        ("configs", Json::Arr(configs)),
    ]));
}
