//! A3 (extension): MINIX self-repair. The paper picked MINIX partly for
//! its reliability pedigree (its ref \[7\] is "MINIX 3: A highly reliable,
//! self-repairing operating system"). This experiment injects a heater
//! driver crash mid-run and compares an unsupervised system against one
//! with a reincarnation-style supervisor, printing the fan/temperature
//! timeline around the fault.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_recovery [-- --json]`

use bas_bench::{rule, section, Harness};
use bas_core::platform::minix::{MinixOverrides, MinixStack};
use bas_core::scenario::{critical_alive, Scenario, ScenarioConfig};
use bas_fleet::Json;
use bas_sim::time::SimDuration;

fn run(h: &Harness, label: &str, supervise: bool) -> Json {
    section(&format!("{label} (heater driver crashes after ~3 minutes)"));
    let overrides = MinixOverrides {
        heater_crash_after: Some(50),
        supervise,
        ..MinixOverrides::default()
    };
    // At t = 20 min the heat source drops to 150 W. A healthy system
    // keeps cycling the fan inside the band; with the driver dead the fan
    // is frozen and the room settles out of band in either frozen state
    // (25.5 or 19.5 degrees), so the surviving controller must hold the
    // alarm on.
    let mut cfg = ScenarioConfig::quiet();
    cfg.plant.heat_schedule = vec![(SimDuration::from_secs(1_200), 150.0)];
    let mut s = h.build_stack::<MinixStack>(&cfg, overrides);
    s.run_for(SimDuration::from_mins(40));

    let alive = critical_alive(&s);
    let processes_created = s.metrics().processes_created;
    let plant = s.plant();
    let plant = plant.borrow();
    println!(
        "{:>8} {:>9} {:>5} {:>6}",
        "t[s]", "temp[°C]", "fan", "alarm"
    );
    for sample in plant.trace().iter().filter(|p| p.time.as_secs() % 180 == 0) {
        println!(
            "{:>8} {:>9.2} {:>5} {:>6}",
            sample.time.as_secs(),
            sample.temp_c,
            if sample.fan_on { "ON" } else { "off" },
            if sample.alarm_on { "ON" } else { "off" },
        );
    }
    let safe = plant.safety_report().is_safe();
    rule();
    println!(
        "fan switches: {} | final temp: {:.2}°C | critical alive: {} | procs created: {} | safety: {}",
        plant.fan().switch_count(),
        plant.temperature_c(),
        alive,
        processes_created,
        if safe { "OK" } else { "VIOLATED" },
    );
    Json::obj(vec![
        ("supervised", Json::Bool(supervise)),
        (
            "fan_switches",
            Json::UInt(plant.fan().switch_count() as u64),
        ),
        ("final_temp_c", Json::Num(plant.temperature_c())),
        ("critical_alive", Json::Bool(alive)),
        ("processes_created", Json::UInt(processes_created)),
        ("safe", Json::Bool(safe)),
    ])
}

fn main() {
    let h = Harness::new("recovery");
    let unsupervised = run(&h, "configuration 1: no supervisor", false);
    let supervised = run(
        &h,
        "configuration 2: reincarnation-style supervisor (2 s health checks)",
        true,
    );

    section("conclusion");
    println!(
        "without supervision the driver's death freezes the fan in its last state and the\n\
         controller can only escalate to the alarm; with the supervisor the driver is\n\
         re-forked (note the extra process creation), the controller re-resolves its new\n\
         endpoint generation, and full regulation resumes — the self-repair behavior the\n\
         paper's platform choice is predicated on, implemented purely as an unprivileged\n\
         process under the same ACM."
    );

    h.emit_json(&Json::obj(vec![
        ("schema", Json::Str("bas-recovery/v1".into())),
        ("configs", Json::Arr(vec![unsupervised, supervised])),
    ]));
}
