//! E1 (paper Fig. 2): the benign temperature-control scenario on all
//! three platforms. Prints the temperature/fan/alarm time series each
//! platform produces plus a summary: convergence, fan duty, safety.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_scenario_baseline`

use bas_bench::{rule, section, Harness};
use bas_core::scenario::{critical_alive, Scenario, ScenarioConfig};
use bas_sim::time::SimDuration;

fn run(label: &str, scenario: &mut dyn Scenario, minutes: u64) {
    section(&format!(
        "{label} — {minutes} simulated minutes, setpoint change at t=20min"
    ));
    scenario.run_for(SimDuration::from_mins(minutes));

    let plant = scenario.plant();
    let plant = plant.borrow();

    println!(
        "{:>8} {:>9} {:>5} {:>6} {:>9}",
        "t[s]", "temp[°C]", "fan", "alarm", "setp[°C]"
    );
    for sample in plant.trace().iter().filter(|s| s.time.as_secs() % 120 == 0) {
        println!(
            "{:>8} {:>9.2} {:>5} {:>6} {:>9.1}",
            sample.time.as_secs(),
            sample.temp_c,
            if sample.fan_on { "ON" } else { "off" },
            if sample.alarm_on { "ON" } else { "off" },
            sample.setpoint_c,
        );
    }

    let report = plant.safety_report();
    rule();
    println!(
        "final temp: {:.2}°C | fan switches: {} | in-band fraction: {:.3} | \
         max deviation: {:.2}°C | safety: {} | critical alive: {} | {}",
        plant.temperature_c(),
        plant.fan().switch_count(),
        report.in_band_fraction,
        report.max_deviation_c,
        if report.is_safe() { "OK" } else { "VIOLATED" },
        critical_alive(scenario),
        scenario.metrics(),
    );
}

fn main() {
    let h = Harness::new("scenario_baseline");
    // The default schedule raises the setpoint to 24 °C at t=1200 s and
    // queries status at t=2400 s — the administrator session of §II.
    let config = ScenarioConfig::default();
    // Fast enough that --quick needs no shrinking (sub-second full run).
    let minutes = 45;

    let mut scenarios = Vec::new();
    for platform in h.platforms() {
        let mut s = h.build(platform, &config);
        run(&platform.to_string(), s.as_mut(), minutes);
        scenarios.push((platform, s));
    }

    section("web-interface sessions (administrator's view)");
    for (platform, s) in &scenarios {
        println!("{platform:<12}: {:?}", s.web_responses());
    }
}
