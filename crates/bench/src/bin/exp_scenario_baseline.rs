//! E1 (paper Fig. 2): the benign temperature-control scenario on all
//! three platforms. Prints the temperature/fan/alarm time series each
//! platform produces plus a summary: convergence, fan duty, safety.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_scenario_baseline`

use bas_bench::{rule, section};
use bas_core::platform::linux::{build_linux, LinuxOverrides};
use bas_core::platform::minix::{build_minix, MinixOverrides};
use bas_core::platform::sel4::{build_sel4, Sel4Overrides};
use bas_core::scenario::{critical_alive, Scenario, ScenarioConfig};
use bas_sim::time::SimDuration;

fn run(label: &str, scenario: &mut dyn Scenario) {
    section(&format!(
        "{label} — 45 simulated minutes, setpoint change at t=20min"
    ));
    scenario.run_for(SimDuration::from_mins(45));

    let plant = scenario.plant();
    let plant = plant.borrow();

    println!(
        "{:>8} {:>9} {:>5} {:>6} {:>9}",
        "t[s]", "temp[°C]", "fan", "alarm", "setp[°C]"
    );
    for sample in plant.trace().iter().filter(|s| s.time.as_secs() % 120 == 0) {
        println!(
            "{:>8} {:>9.2} {:>5} {:>6} {:>9.1}",
            sample.time.as_secs(),
            sample.temp_c,
            if sample.fan_on { "ON" } else { "off" },
            if sample.alarm_on { "ON" } else { "off" },
            sample.setpoint_c,
        );
    }

    let report = plant.safety_report();
    rule();
    println!(
        "final temp: {:.2}°C | fan switches: {} | in-band fraction: {:.3} | \
         max deviation: {:.2}°C | safety: {} | critical alive: {} | {}",
        plant.temperature_c(),
        plant.fan().switch_count(),
        report.in_band_fraction,
        report.max_deviation_c,
        if report.is_safe() { "OK" } else { "VIOLATED" },
        critical_alive(scenario),
        scenario.metrics(),
    );
}

fn main() {
    // The default schedule raises the setpoint to 24 °C at t=1200 s and
    // queries status at t=2400 s — the administrator session of §II.
    let config = ScenarioConfig::default();

    let mut minix = build_minix(&config, MinixOverrides::default());
    run("MINIX 3 + ACM", &mut minix);

    let mut sel4 = build_sel4(&config, Sel4Overrides::default());
    run("seL4/CAmkES", &mut sel4);

    let mut linux = build_linux(&config, LinuxOverrides::default());
    run("Linux (POSIX mq)", &mut linux);

    section("web-interface sessions (administrator's view)");
    for (name, responses) in [
        ("minix", minix.web_responses()),
        ("sel4", sel4.web_responses()),
        ("linux", linux.web_responses()),
    ] {
        println!("{name:<6}: {responses:?}");
    }
}
