//! E8b (sensitivity): how does the microkernel's service-call overhead
//! scale with the platform's context-switch cost? The paper's §III remark
//! is qualitative; this sweep quantifies it across cost models, from an
//! optimistic fast-switching core to a cache-hostile one.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_cost_sensitivity`

use bas_acm::{AcId, AccessControlMatrix};
use bas_bench::{rule, section, Harness};
use bas_linux::kernel::{LinuxConfig, LinuxKernel};
use bas_linux::syscall::{Reply as LReply, Syscall as LSyscall};
use bas_minix::kernel::{MinixConfig, MinixKernel};
use bas_minix::message::Payload;
use bas_minix::pm;
use bas_minix::syscall::{Reply as MReply, Syscall as MSyscall};
use bas_sim::clock::CostModel;
use bas_sim::process::{Action, Process};
use bas_sim::time::SimDuration;

struct MinixGetpid {
    remaining: u64,
}
impl Process for MinixGetpid {
    type Syscall = MSyscall;
    type Reply = MReply;
    fn resume(&mut self, _reply: Option<MReply>) -> Action<MSyscall> {
        if self.remaining == 0 {
            return Action::Exit(0);
        }
        self.remaining -= 1;
        Action::Syscall(MSyscall::SendRec {
            dest: pm::PM_ENDPOINT,
            mtype: pm::PM_GETPID,
            payload: Payload::zeroed(),
        })
    }
}

struct LinuxGetpid {
    remaining: u64,
}
impl Process for LinuxGetpid {
    type Syscall = LSyscall;
    type Reply = LReply;
    fn resume(&mut self, _reply: Option<LReply>) -> Action<LSyscall> {
        if self.remaining == 0 {
            return Action::Exit(0);
        }
        self.remaining -= 1;
        Action::Syscall(LSyscall::GetPid)
    }
}

fn minix_ns_per_op(n: u64, cost_model: CostModel) -> f64 {
    let acm = pm::allow_pm_ops(
        AccessControlMatrix::builder(),
        AcId::new(1),
        [pm::PM_GETPID],
    )
    .build();
    let mut k = MinixKernel::new(MinixConfig {
        acm,
        cost_model,
        ..MinixConfig::default()
    });
    k.disable_trace();
    k.spawn(
        "caller",
        AcId::new(1),
        0,
        Box::new(MinixGetpid { remaining: n }),
    )
    .unwrap();
    let t0 = k.now();
    k.run_to_quiescence();
    (k.now() - t0).as_nanos() as f64 / n as f64
}

fn linux_ns_per_op(n: u64, cost_model: CostModel) -> f64 {
    let mut k = LinuxKernel::new(LinuxConfig {
        cost_model,
        ..LinuxConfig::default()
    });
    k.disable_trace();
    k.spawn("caller", 1_000, Box::new(LinuxGetpid { remaining: n }))
        .unwrap();
    let t0 = k.now();
    k.run_to_quiescence();
    (k.now() - t0).as_nanos() as f64 / n as f64
}

fn main() {
    let h = Harness::new("cost_sensitivity");
    let n = h.scale(10_000, 500);
    section(&format!(
        "microkernel service-call overhead vs context-switch cost (getpid, {n} calls)"
    ));
    println!(
        "{:>16} {:>18} {:>18} {:>10}",
        "ctx-switch[ns]", "minix-via-PM[ns]", "linux-direct[ns]", "overhead"
    );
    rule();
    for ctx_ns in [200u64, 500, 1_000, 2_000, 5_000, 10_000, 20_000] {
        let cost_model = CostModel {
            context_switch: SimDuration::from_nanos(ctx_ns),
            ..CostModel::default()
        };
        let minix = minix_ns_per_op(n, cost_model);
        let linux = linux_ns_per_op(n, cost_model);
        println!(
            "{:>16} {:>18.1} {:>18.1} {:>9.2}x",
            ctx_ns,
            minix,
            linux,
            minix / linux
        );
    }
    rule();
    println!(
        "reading: the monolithic kernel's service-call cost is flat in the context-switch\n\
         price (no switch happens), while the microkernel's grows linearly with it (two\n\
         switches per PM message) — the quantitative form of §III's \"multiple context\n\
         switches\" remark, and the knob hardware vendors actually tune (ASIDs, tagged\n\
         TLBs) to make microkernels viable."
    );
}
