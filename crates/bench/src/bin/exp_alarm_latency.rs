//! E11 (extension figure): alarm latency distribution. For each platform
//! and 20 sensor-noise seeds, a heat burst pushes the room out of band
//! and we measure how long the control loop takes to raise the alarm —
//! the quantitative version of the scenario's "e.g., 5 minutes" safety
//! requirement.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_alarm_latency`

use bas_bench::{rule, section};
use bas_core::platform::linux::{build_linux, LinuxOverrides};
use bas_core::platform::minix::{build_minix, MinixOverrides};
use bas_core::platform::sel4::{build_sel4, Sel4Overrides};
use bas_core::scenario::{Scenario, ScenarioConfig};
use bas_sim::time::SimDuration;

const SEEDS: u64 = 20;

fn config(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::quiet();
    cfg.seed = seed;
    // Burst at t=300s: 300 W → 600 W; the fan cannot hold the band, so
    // the alarm must fire within the 300 s deadline (plus oracle grace).
    cfg.plant.heat_schedule = vec![(SimDuration::from_secs(300), 600.0)];
    cfg
}

fn run_one(platform: &str, seed: u64) -> Option<f64> {
    let cfg = config(seed);
    let mut boxed: Box<dyn Scenario> = match platform {
        "minix" => Box::new(build_minix(&cfg, MinixOverrides::default())),
        "sel4" => Box::new(build_sel4(&cfg, Sel4Overrides::default())),
        _ => Box::new(build_linux(&cfg, LinuxOverrides::default())),
    };
    let scenario: &mut dyn Scenario = boxed.as_mut();
    scenario.run_for(SimDuration::from_secs(1_500));
    let plant = scenario.plant();
    let plant = plant.borrow();
    assert!(
        plant.safety_report().is_safe(),
        "{platform} seed {seed} violated safety"
    );
    let latencies = plant.safety_report().alarm_latencies;
    latencies.first().map(|d| d.as_secs_f64())
}

fn stats(xs: &[f64]) -> (f64, f64, f64) {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (mean, min, max)
}

fn main() {
    section(&format!(
        "alarm latency after an out-of-band heat burst ({SEEDS} sensor-noise seeds per platform)"
    ));
    println!("controller deadline: 300 s; oracle limit: 330 s (deadline + detection grace)\n");
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10}",
        "platform", "n", "mean[s]", "min[s]", "max[s]"
    );
    rule();
    for platform in ["minix", "sel4", "linux"] {
        let latencies: Vec<f64> = (1..=SEEDS)
            .filter_map(|seed| run_one(platform, seed))
            .collect();
        assert_eq!(
            latencies.len() as u64,
            SEEDS,
            "{platform}: every seed must produce an alarm"
        );
        let (mean, min, max) = stats(&latencies);
        println!(
            "{platform:<14} {:>8} {mean:>10.1} {min:>10.1} {max:>10.1}",
            latencies.len()
        );
        assert!(max <= 330.0, "{platform}: alarm beyond the oracle limit");
        assert!(
            min >= 295.0,
            "{platform}: alarm suspiciously early (before the deadline window)"
        );
    }
    rule();
    println!(
        "reading: all three platforms raise the alarm within one sensor period of the 300 s\n\
         deadline, for every noise seed — the safety requirement is met with margin, and the\n\
         platforms are behaviorally interchangeable for the benign workload (the paper's\n\
         premise that security, not function, differentiates them)."
    );
}
