//! E11 (extension figure): alarm latency distribution. For each platform
//! and 20 sensor-noise seeds (3 under `--quick`), a heat burst pushes the
//! room out of band and we measure how long the control loop takes to
//! raise the alarm — the quantitative version of the scenario's "e.g.,
//! 5 minutes" safety requirement.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_alarm_latency [-- --quick --json]`

use bas_bench::{rule, section, Harness};
use bas_core::scenario::{plant_snapshot, Platform, ScenarioConfig};
use bas_fleet::{Json, LatencyHistogram};
use bas_sim::time::SimDuration;

fn config(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::quiet();
    cfg.seed = seed;
    // Burst at t=300s: 300 W → 600 W; the fan cannot hold the band, so
    // the alarm must fire within the 300 s deadline (plus oracle grace).
    cfg.plant.heat_schedule = vec![(SimDuration::from_secs(300), 600.0)];
    cfg
}

fn run_one(h: &Harness, platform: Platform, seed: u64) -> Option<f64> {
    let mut scenario = h.build(platform, &config(seed));
    scenario.run_for(SimDuration::from_secs(1_500));
    let snapshot = plant_snapshot(scenario.as_ref());
    assert!(
        !snapshot.safety_violated,
        "{platform} seed {seed} violated safety"
    );
    snapshot.alarm_latencies_s.first().copied()
}

fn main() {
    let h = Harness::new("alarm_latency");
    let seeds = h.scale(20, 3);

    section(&format!(
        "alarm latency after an out-of-band heat burst ({seeds} sensor-noise seeds per platform)"
    ));
    println!("controller deadline: 300 s; oracle limit: 330 s (deadline + detection grace)\n");
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10}",
        "platform", "n", "mean[s]", "min[s]", "max[s]"
    );
    rule();
    let mut json_platforms = Vec::new();
    for platform in h.platforms() {
        let mut hist = LatencyHistogram::new(
            LatencyHistogram::DEFAULT_BIN_WIDTH_S,
            LatencyHistogram::DEFAULT_BINS,
        );
        let mut min = f64::INFINITY;
        for seed in 1..=seeds {
            let latency = run_one(&h, platform, seed).unwrap_or_else(|| {
                panic!("{platform} seed {seed}: every seed must produce an alarm")
            });
            hist.record(latency);
            min = min.min(latency);
        }
        println!(
            "{:<14} {:>8} {:>10.1} {:>10.1} {:>10.1}",
            platform.to_string(),
            hist.samples,
            hist.mean_s(),
            min,
            hist.max_s
        );
        assert!(
            hist.max_s <= 330.0,
            "{platform}: alarm beyond the oracle limit"
        );
        assert!(
            min >= 295.0,
            "{platform}: alarm suspiciously early (before the deadline window)"
        );
        json_platforms.push((platform, hist, min));
    }
    rule();
    println!(
        "reading: all three platforms raise the alarm within one sensor period of the 300 s\n\
         deadline, for every noise seed — the safety requirement is met with margin, and the\n\
         platforms are behaviorally interchangeable for the benign workload (the paper's\n\
         premise that security, not function, differentiates them)."
    );

    h.emit_json(&Json::obj(vec![
        ("schema", Json::Str("bas-alarm-latency/v1".into())),
        ("seeds", Json::UInt(seeds)),
        ("deadline_s", Json::Num(300.0)),
        ("oracle_limit_s", Json::Num(330.0)),
        (
            "platforms",
            Json::Arr(
                json_platforms
                    .iter()
                    .map(|(platform, hist, min)| {
                        Json::obj(vec![
                            ("platform", Json::Str(platform.to_string())),
                            ("samples", Json::UInt(hist.samples)),
                            ("mean_s", Json::Num(hist.mean_s())),
                            ("min_s", Json::Num(*min)),
                            ("max_s", Json::Num(hist.max_s)),
                            ("bin_width_s", Json::Num(hist.bin_width_s)),
                            (
                                "counts",
                                Json::Arr(hist.counts.iter().map(|&c| Json::UInt(c)).collect()),
                            ),
                            ("overflow", Json::UInt(hist.overflow)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]));
}
