//! A1 ablation: is it the microkernel or the ACM that stops the attacks
//! on MINIX? Re-runs the §IV-D.2 attacks with three policies:
//!
//! 1. the scenario ACM (the paper's configuration),
//! 2. a permissive ACM (every application channel open — "microkernel
//!    without the mandatory policy"),
//! 3. the scenario ACM plus the fork-quota extension.
//!
//! Expected shape: identity spoofing *still* fails without the ACM
//! (kernel-stamped endpoints cannot be forged), but direct actuator
//! commands and floods sail through a permissive matrix — enforcement,
//! not architecture alone, carries part of the defense. The quota variant
//! additionally contains the fork bomb.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_ablation_acm`

use bas_acm::{AccessControlMatrix, MsgType};
use bas_attack::evidence::new_evidence;
use bas_attack::library;
use bas_attack::model::AttackId;
use bas_attack::procs::MinixAttacker;
use bas_bench::{rule, section, Harness};
use bas_core::platform::minix::{MinixOverrides, MinixStack};
use bas_core::proto::{AC_ALARM, AC_CONTROL, AC_HEATER, AC_SENSOR, AC_WEB};
use bas_core::scenario::{critical_alive, Scenario, ScenarioConfig};
use bas_minix::pm;
use bas_sim::time::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;

/// Every application pair may exchange every message type; PM rows as in
/// the scenario. This is "a microkernel with message passing but no
/// mandatory IPC policy".
fn permissive_acm() -> AccessControlMatrix {
    let ids = [AC_SENSOR, AC_CONTROL, AC_HEATER, AC_ALARM, AC_WEB];
    let mut b = AccessControlMatrix::builder();
    for s in ids {
        for r in ids {
            if s != r {
                b = b.allow_all_types(s, r);
            }
        }
    }
    // PM policy unchanged (kill still denied to web): the ablation is
    // about the *application* matrix.
    b = pm::allow_pm_ops(b, AC_WEB, [pm::PM_FORK2, pm::PM_GETPID]);
    for ac in [AC_SENSOR, AC_CONTROL, AC_HEATER, AC_ALARM] {
        b = pm::allow_pm_ops(b, ac, [pm::PM_GETPID]);
    }
    b = pm::allow_pm_ops(
        b,
        bas_core::proto::AC_SCENARIO,
        [
            pm::PM_FORK2,
            pm::PM_SRV_FORK2,
            pm::PM_KILL,
            pm::PM_EXIT,
            pm::PM_GETPID,
        ],
    );
    b.build()
}

fn run_minix_attack(
    h: &Harness,
    attack: AttackId,
    acm: Option<AccessControlMatrix>,
    fork_quota: Option<u64>,
) -> (bool, bool, u64, u64) {
    let warmup = SimDuration::from_secs(600);
    let mut scenario_cfg = ScenarioConfig::quiet();
    scenario_cfg.web_fork_limit = fork_quota;
    scenario_cfg.plant.heat_schedule = vec![(warmup + SimDuration::from_secs(300), 600.0)];

    let evidence = new_evidence();
    let (lookups, builder) = library::minix_script(attack, warmup);
    let cell = Rc::new(RefCell::new(Some((lookups, builder))));
    let ev = evidence.clone();
    let overrides = MinixOverrides {
        web_factory: Some(Box::new(move || {
            let (lookups, builder) = cell.borrow_mut().take().expect("spawned once");
            Box::new(MinixAttacker::new(lookups, builder, ev.clone()))
        })),
        web_uid: 1000,
        acm: acm.map(std::sync::Arc::new),
        ..MinixOverrides::default()
    };
    let mut s = h.build_stack::<MinixStack>(&scenario_cfg, overrides);
    s.run_for(warmup + SimDuration::from_secs(1_020));
    let plant = s.plant();
    let safe = plant.borrow().safety_report().is_safe();
    let alive = critical_alive(&s);
    let ev = evidence.borrow();
    (safe, alive, ev.successes, ev.denials)
}

fn main() {
    let h = Harness::new("ablation_acm");
    section("MINIX ACM ablation (attacker A1; safety oracle with mid-run heat burst)");
    println!(
        "{:<22} {:<22} {:>10} {:>9} {:>7} {:>9}",
        "attack", "policy", "successes", "denials", "safety", "critical"
    );
    rule();
    // Under --quick only the headline attack runs; the closing
    // assertions below execute either way.
    let attacks: &[AttackId] = if h.quick() {
        &[AttackId::SpoofActuatorCommands]
    } else {
        &[
            AttackId::SpoofSensorData,
            AttackId::SpoofActuatorCommands,
            AttackId::KillCritical,
            AttackId::ForkBomb,
        ]
    };
    for &attack in attacks {
        for (label, acm, quota) in [
            ("scenario ACM", None, None),
            ("permissive ACM", Some(permissive_acm()), None),
            ("scenario ACM + quota", None, Some(2u64)),
        ] {
            let (safe, alive, successes, denials) = run_minix_attack(&h, attack, acm, quota);
            println!(
                "{:<22} {:<22} {:>10} {:>9} {:>7} {:>9}",
                attack.to_string(),
                label,
                successes,
                denials,
                if safe { "ok" } else { "VIOLATED" },
                if alive { "alive" } else { "KILLED" },
            );
        }
        rule();
    }

    section("reading the table");
    println!(
        "- spoof-sensor-data: under the permissive ACM the forged messages are *delivered*, but\n\
         \u{20}   the controller's endpoint check (kernel-stamped identity) still rejects them —\n\
         \u{20}   identity is the microkernel's contribution, the matrix adds channel minimization;\n\
         - spoof-actuator-cmds: the drivers accept any well-formed command, so without the ACM\n\
         \u{20}   the physical process falls — enforcement carries this defense entirely;\n\
         - kill-critical: PM policy still refuses the web interface regardless of the matrix;\n\
         - fork-bomb: only the quota extension changes the outcome."
    );

    // Sanity check of the headline claims (the binary doubles as a test).
    let (safe, _, _, _) = run_minix_attack(
        &h,
        AttackId::SpoofActuatorCommands,
        Some(permissive_acm()),
        None,
    );
    assert!(!safe, "permissive ACM must let the actuator spoof through");
    let (safe, _, _, _) = run_minix_attack(&h, AttackId::SpoofActuatorCommands, None, None);
    assert!(safe, "scenario ACM must stop the actuator spoof");

    let acm_check = bas_core::policy::scenario_acm();
    assert!(!acm_check
        .check(AC_WEB, AC_HEATER, MsgType::new(bas_core::proto::MT_FAN_CMD))
        .is_allowed());
    println!("\nassertions passed: enforcement ablation behaves as described.");
}
