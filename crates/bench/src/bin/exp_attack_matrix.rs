//! E3–E6 (§IV-D): the full attack matrix — every attack × platform ×
//! attacker model — with per-cell mechanism verdicts, physical-impact
//! verdicts, and the comparison against the paper's predictions.
//!
//! Run:
//! `cargo run --release -p bas-bench --bin exp_attack_matrix [-- --platform linux|minix|sel4]`

use bas_attack::expectations::{paper_expectation, Expectation};
use bas_attack::harness::{run_attack, AttackRunConfig};
use bas_attack::model::{AttackId, AttackerModel};
use bas_bench::{rule, section, Harness};
use bas_core::scenario::Platform;

fn main() {
    let h = Harness::new("attack_matrix");
    let config = AttackRunConfig::default();

    section("attack matrix: warmup 600s, attack window 900s (heat burst at 900s), cooldown 120s");
    println!(
        "{:<12} {:<12} {:<22} {:<10} {:<9} {:<7} {:<9} {:<12} agrees?",
        "platform", "attacker", "attack", "mechanism", "critical", "safety", "maxdev°C", "paper"
    );
    rule();

    // Platform-major, then attack, then attacker: deterministic order,
    // matching the statically predicted matrix of `exp_policy_audit`.
    let mut cells = 0usize;
    let mut agreements = 0usize;
    for platform in h.platforms() {
        for attack in AttackId::ALL {
            for attacker in [AttackerModel::ArbitraryCode, AttackerModel::Root] {
                let o = run_attack(platform, attacker, attack, &config);
                let expected = paper_expectation(platform, attacker, attack);
                let measured_compromised = o.compromised();
                let agrees = match expected {
                    Expectation::Compromised => measured_compromised,
                    Expectation::Stopped => !measured_compromised && !o.mechanism.succeeded(),
                    Expectation::ResourceExhaustionOnly => {
                        !measured_compromised && o.mechanism.succeeded()
                    }
                };
                cells += 1;
                agreements += usize::from(agrees);
                println!(
                    "{:<12} {:<12} {:<22} {:<10} {:<9} {:<7} {:<9.2} {:<12} {}",
                    platform.to_string(),
                    attacker.to_string(),
                    attack.to_string(),
                    if o.mechanism.succeeded() {
                        "SUCCEED"
                    } else {
                        "blocked"
                    },
                    if o.critical_alive { "alive" } else { "KILLED" },
                    if o.physical.safety_violated {
                        "VIOLATED"
                    } else {
                        "ok"
                    },
                    o.physical.max_deviation_c,
                    format!("{expected:?}"),
                    if agrees { "yes" } else { "** NO **" },
                );
            }
        }
    }
    rule();
    println!("paper-vs-measured agreement: {agreements}/{cells} cells");

    if h.platforms().contains(&Platform::Linux) {
        hardened_linux_section();
    }
}

/// §IV-D.1's hardening discussion: "Unless each process runs under a
/// unique user account, and the message queue is specifically configured
/// to only allow the correct user account, the problem will still
/// remain." This section re-runs the Linux column under that hardened
/// configuration, for both attacker models.
fn hardened_linux_section() {
    use bas_core::platform::linux::UidScheme;
    let config = AttackRunConfig {
        linux_uid_scheme: UidScheme::PerProcessHardened,
        ..AttackRunConfig::default()
    };
    section("hardened Linux (per-process uids, single-writer 0620 queues)");
    println!(
        "{:<12} {:<22} {:<10} {:<9} {:<8}",
        "attacker", "attack", "mechanism", "critical", "safety"
    );
    rule();
    for attack in AttackId::ALL {
        for attacker in [AttackerModel::ArbitraryCode, AttackerModel::Root] {
            let o = run_attack(Platform::Linux, attacker, attack, &config);
            println!(
                "{:<12} {:<22} {:<10} {:<9} {:<8}",
                attacker.to_string(),
                attack.to_string(),
                if o.mechanism.succeeded() {
                    "SUCCEED"
                } else {
                    "blocked"
                },
                if o.critical_alive { "alive" } else { "KILLED" },
                if o.physical.safety_violated {
                    "VIOLATED"
                } else {
                    "ok"
                },
            );
        }
    }
    rule();
    println!(
        "reading: hardening stops the A1 code-exec attacker (DAC now separates the accounts)\n\
         but every physical-impact attack returns under root — \"it cannot prevent attacks\n\
         with root privilege\", the paper's motivation for moving enforcement into the kernel."
    );
}
