//! E9 (§IV): the AADL workflow — one architecture description compiled
//! into every platform's policy artifact, as the paper's AADL-to-C
//! compiler generated the ACM "based on the specified connections".
//!
//! Run: `cargo run --release -p bas-bench --bin exp_aadl_pipeline`

use bas_aadl::backends;
use bas_bench::{rule, section, Harness};
use bas_core::policy;

fn main() {
    // Static experiment; the harness only standardizes flag handling.
    let _h = Harness::new("aadl_pipeline");
    section("scenario architecture (AADL subset, paper Fig. 2)");
    println!("{}", policy::SCENARIO_AADL.trim());

    let model = bas_aadl::parse(policy::SCENARIO_AADL).expect("scenario AADL parses");
    model.validate().expect("scenario AADL validates");

    section("backend 1: access-control matrix (MINIX 3) — bitmap over types 5..0");
    let generated_acm = backends::acm::compile(&model).expect("acm backend");
    print!("{}", generated_acm.render_table(6));
    rule();
    let matches = generated_acm == policy::scenario_app_acm();
    println!(
        "equality with the hand-written application policy: {}",
        if matches {
            "EXACT MATCH"
        } else {
            "** MISMATCH **"
        }
    );

    section("backend 2: CAmkES assembly (seL4)");
    let assembly = backends::camkes::compile(&model).expect("camkes backend");
    for inst in &assembly.instances {
        println!(
            "instance {:<16} provides {:?} uses {:?}",
            inst.name,
            inst.component
                .provides
                .iter()
                .map(|i| i.name.as_str())
                .collect::<Vec<_>>(),
            inst.component
                .uses
                .iter()
                .map(|i| i.name.as_str())
                .collect::<Vec<_>>(),
        );
    }
    for conn in &assembly.connections {
        println!(
            "connection {:<6} {}:{} -> {}:{} ({:?})",
            conn.name, conn.from.0, conn.from.1, conn.to.0, conn.to.1, conn.connector
        );
    }
    let (spec, _glue) = bas_camkes::codegen::compile(&assembly).expect("capdl codegen");
    rule();
    println!(
        "compiled CapDL ({} objects, {} caps):",
        spec.objects.len(),
        spec.caps.len()
    );
    print!("{}", spec.to_text());

    section("backend 3: message-queue plan (Linux)");
    let plan = backends::linux_plan::compile(&model).expect("linux backend");
    for q in &plan.queues {
        println!(
            "{:<32} reader={:<16} writers={:?}",
            q.name, q.reader, q.writers
        );
    }
    rule();
    println!(
        "plus the reply queue {} the loader adds for controller->web acks \
         (6 queues total, as in §IV-C)",
        policy::queues::WEB_REPLY
    );
}
