//! E10 (§IV-D.3): machine verification of the capability distribution —
//! "for high-assurance systems this file can also be machine verified
//! with the correlating source code."
//!
//! Boots the seL4 scenario, audits the live kernel against the compiled
//! CapDL spec (clean), runs it for ten minutes (still clean — serving
//! RPCs leaks nothing), then deliberately injects an undeclared
//! capability and shows the auditor catching it.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_capdl_verify`

use bas_bench::{rule, section, Harness};
use bas_capdl::verify::verify;
use bas_core::platform::sel4::{Sel4Overrides, Sel4Stack};
use bas_core::policy::instances;
use bas_core::scenario::{Scenario, ScenarioConfig};
use bas_sel4::cap::Capability;
use bas_sel4::rights::CapRights;
use bas_sim::time::SimDuration;

fn main() {
    let h = Harness::new("capdl_verify");
    let mut s = h.build_stack::<Sel4Stack>(&ScenarioConfig::quiet(), Sel4Overrides::default());

    section("compiled CapDL specification");
    print!("{}", s.stack.spec.to_text());

    section("audit #1: freshly booted system");
    let issues = verify(&s.stack.spec, &s.stack.kernel, &s.stack.sys);
    println!("{} issue(s): {issues:?}", issues.len());
    assert!(issues.is_empty());

    section("audit #2: after 10 simulated minutes of operation");
    s.run_for(SimDuration::from_mins(10));
    let issues = verify(&s.stack.spec, &s.stack.kernel, &s.stack.sys);
    println!("{} issue(s): {issues:?}", issues.len());
    println!("(RPC service transfers no capabilities, so the distribution is invariant)");

    section("audit #3: after injecting an undeclared capability");
    // Simulate a bootstrap bug: the web interface is handed a write
    // capability to the heater's command endpoint.
    let web = s.stack.sys.threads[instances::WEB];
    let heater_ep = s.stack.sys.objects[&format!("ep_{}_{}", instances::HEATER, "cmd")];
    s.stack
        .kernel
        .grant_cap(
            web,
            Capability::to_object(heater_ep, CapRights::WRITE_GRANT, 99),
        )
        .expect("room in web cspace");
    let issues = verify(&s.stack.spec, &s.stack.kernel, &s.stack.sys);
    rule();
    for issue in &issues {
        println!("CAUGHT: {issue}");
    }
    assert!(
        !issues.is_empty(),
        "the auditor must flag the stray capability"
    );
}
