//! E8 (§III performance remark): "the microkernel approach generally
//! under-performs the monolithic due to the multiple context switches."
//!
//! Measures, per platform, the exact kernel-entry and context-switch
//! counts and the modeled virtual time for (a) an RPC round trip between
//! two processes and (b) a trivial kernel service call (`getpid`), which
//! on MINIX is itself a message to the PM server.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_ipc_overhead`

use bas_acm::{AcId, AccessControlMatrix};
use bas_bench::{rule, section, Harness};
use bas_fleet::Json;
use bas_sim::process::{Action, Process};

/// One measured row: per-op cost of an IPC pattern on one platform.
struct Row {
    group: &'static str,
    label: &'static str,
    ops: u64,
    ctx_per_op: f64,
    kentry_per_op: f64,
    ns_per_op: f64,
}

fn main() {
    let h = Harness::new("ipc_overhead");
    let n = h.scale(10_000, 500);
    let mut rows = Vec::new();

    section(&format!(
        "RPC round-trip cost, averaged over {n} round trips"
    ));
    println!(
        "{:<18} {:>16} {:>16} {:>16}",
        "platform", "ctx-switch/op", "kernel-entry/op", "virtual-ns/op"
    );
    rule();
    rows.push(minix_roundtrip(n));
    rows.push(sel4_roundtrip(n));
    rows.push(linux_roundtrip(n));

    section(&format!(
        "getpid()-class service call, averaged over {n} calls"
    ));
    println!(
        "{:<18} {:>16} {:>16} {:>16}",
        "platform", "ctx-switch/op", "kernel-entry/op", "virtual-ns/op"
    );
    rule();
    rows.push(minix_getpid(n));
    rows.push(linux_getpid(n));
    println!("(seL4 has no process server in this scenario; the nearest analog is the RPC above)");

    h.emit_json(&Json::obj(vec![
        ("schema", Json::Str("bas-ipc-overhead/v1".into())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("group", Json::Str(r.group.into())),
                            ("platform", Json::Str(r.label.into())),
                            ("ops", Json::UInt(r.ops)),
                            ("ctx_switches_per_op", Json::Num(r.ctx_per_op)),
                            ("kernel_entries_per_op", Json::Num(r.kentry_per_op)),
                            ("virtual_ns_per_op", Json::Num(r.ns_per_op)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]));
}

fn report(
    group: &'static str,
    label: &'static str,
    n: u64,
    m: bas_sim::metrics::KernelMetrics,
    vt_ns: u64,
) -> Row {
    let row = Row {
        group,
        label,
        ops: n,
        ctx_per_op: m.context_switches as f64 / n as f64,
        kentry_per_op: m.kernel_entries as f64 / n as f64,
        ns_per_op: vt_ns as f64 / n as f64,
    };
    println!(
        "{:<18} {:>16.2} {:>16.2} {:>16.1}",
        label, row.ctx_per_op, row.kentry_per_op, row.ns_per_op,
    );
    row
}

// ---------------------------------------------------------------------------
// MINIX
// ---------------------------------------------------------------------------

fn minix_roundtrip(n: u64) -> Row {
    use bas_minix::endpoint::Endpoint;
    use bas_minix::kernel::{MinixConfig, MinixKernel};
    use bas_minix::syscall::{Reply, Syscall};

    struct Server;
    impl Process for Server {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
            match reply {
                Some(Reply::Msg(m)) => Action::Syscall(Syscall::send(m.source, 0, [])),
                _ => Action::Syscall(Syscall::Receive { from: None }),
            }
        }
    }

    struct Client {
        server: Endpoint,
        remaining: u64,
    }
    impl Process for Client {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
            if self.remaining == 0 {
                return Action::Exit(0);
            }
            self.remaining -= 1;
            Action::Syscall(Syscall::sendrec(self.server, 1, []))
        }
    }

    let acm = AccessControlMatrix::builder()
        .allow_all_types(AcId::new(1_000), AcId::new(1_001))
        .allow_all_types(AcId::new(1_001), AcId::new(1_000))
        .build();
    let mut k = MinixKernel::new(MinixConfig {
        acm,
        ..MinixConfig::default()
    });
    k.disable_trace();
    let server = k
        .spawn("server", AcId::new(1_001), 0, Box::new(Server))
        .unwrap();
    k.spawn(
        "client",
        AcId::new(1_000),
        0,
        Box::new(Client {
            server,
            remaining: n,
        }),
    )
    .unwrap();
    let before = *k.metrics();
    let t0 = k.now();
    k.run_to_quiescence();
    report(
        "rpc_roundtrip",
        "minix3+acm",
        n,
        k.metrics().delta_since(&before),
        (k.now() - t0).as_nanos(),
    )
}

fn minix_getpid(n: u64) -> Row {
    use bas_minix::kernel::{MinixConfig, MinixKernel};
    use bas_minix::message::Payload;
    use bas_minix::pm;
    use bas_minix::syscall::{Reply, Syscall};

    struct Caller {
        remaining: u64,
    }
    impl Process for Caller {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
            if self.remaining == 0 {
                return Action::Exit(0);
            }
            self.remaining -= 1;
            Action::Syscall(Syscall::SendRec {
                dest: pm::PM_ENDPOINT,
                mtype: pm::PM_GETPID,
                payload: Payload::zeroed(),
            })
        }
    }

    let acm = pm::allow_pm_ops(
        AccessControlMatrix::builder(),
        AcId::new(1_000),
        [pm::PM_GETPID],
    )
    .build();
    let mut k = MinixKernel::new(MinixConfig {
        acm,
        ..MinixConfig::default()
    });
    k.disable_trace();
    k.spawn(
        "caller",
        AcId::new(1_000),
        0,
        Box::new(Caller { remaining: n }),
    )
    .unwrap();
    let before = *k.metrics();
    let t0 = k.now();
    k.run_to_quiescence();
    report(
        "getpid",
        "minix3 (via PM)",
        n,
        k.metrics().delta_since(&before),
        (k.now() - t0).as_nanos(),
    )
}

// ---------------------------------------------------------------------------
// seL4
// ---------------------------------------------------------------------------

fn sel4_roundtrip(n: u64) -> Row {
    use bas_sel4::cap::CPtr;
    use bas_sel4::kernel::{Sel4Config, Sel4Kernel};
    use bas_sel4::message::IpcMessage;
    use bas_sel4::rights::CapRights;
    use bas_sel4::syscall::{Reply, Syscall};

    struct Server;
    impl Process for Server {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
            match reply {
                Some(Reply::Msg(_)) => Action::Syscall(Syscall::Reply {
                    msg: IpcMessage::with_label(0),
                }),
                _ => Action::Syscall(Syscall::Recv { ep: CPtr::new(0) }),
            }
        }
    }

    struct Client {
        remaining: u64,
    }
    impl Process for Client {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
            if self.remaining == 0 {
                return Action::Exit(0);
            }
            self.remaining -= 1;
            Action::Syscall(Syscall::Call {
                ep: CPtr::new(0),
                msg: IpcMessage::with_label(1),
            })
        }
    }

    let mut k = Sel4Kernel::new(Sel4Config::default());
    k.disable_trace();
    let ep = k.create_endpoint();
    let server = k.create_thread("server", Box::new(Server));
    let client = k.create_thread("client", Box::new(Client { remaining: n }));
    k.grant_endpoint(server, ep, CapRights::READ, 0).unwrap();
    k.grant_endpoint(client, ep, CapRights::WRITE_GRANT, 1)
        .unwrap();
    k.start_thread(server);
    k.start_thread(client);
    let before = *k.metrics();
    let t0 = k.now();
    k.run_to_quiescence();
    report(
        "rpc_roundtrip",
        "sel4/camkes",
        n,
        k.metrics().delta_since(&before),
        (k.now() - t0).as_nanos(),
    )
}

// ---------------------------------------------------------------------------
// Linux
// ---------------------------------------------------------------------------

fn linux_roundtrip(n: u64) -> Row {
    use bas_linux::cred::{Mode, Uid};
    use bas_linux::kernel::{LinuxConfig, LinuxKernel};
    use bas_linux::syscall::{MqAccess, Reply, Syscall};

    struct Server {
        opened: u8,
    }
    impl Process for Server {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
            match self.opened {
                0 => {
                    self.opened = 1;
                    Action::Syscall(Syscall::MqOpen {
                        name: "/req".into(),
                        access: MqAccess::READ,
                        create: None,
                    })
                }
                1 => {
                    self.opened = 2;
                    Action::Syscall(Syscall::MqOpen {
                        name: "/resp".into(),
                        access: MqAccess::WRITE,
                        create: None,
                    })
                }
                _ => match reply {
                    Some(Reply::Data { .. }) => Action::Syscall(Syscall::MqSend {
                        qd: 1,
                        data: vec![0],
                        priority: 0,
                        nonblocking: false,
                    }),
                    _ => Action::Syscall(Syscall::MqReceive {
                        qd: 0,
                        nonblocking: false,
                    }),
                },
            }
        }
    }

    struct Client {
        opened: u8,
        awaiting: bool,
        remaining: u64,
    }
    impl Process for Client {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
            match self.opened {
                0 => {
                    self.opened = 1;
                    Action::Syscall(Syscall::MqOpen {
                        name: "/req".into(),
                        access: MqAccess::WRITE,
                        create: None,
                    })
                }
                1 => {
                    self.opened = 2;
                    Action::Syscall(Syscall::MqOpen {
                        name: "/resp".into(),
                        access: MqAccess::READ,
                        create: None,
                    })
                }
                _ => {
                    if self.awaiting {
                        self.awaiting = false;
                        return Action::Syscall(Syscall::MqReceive {
                            qd: 1,
                            nonblocking: false,
                        });
                    }
                    if self.remaining == 0 {
                        return Action::Exit(0);
                    }
                    self.remaining -= 1;
                    self.awaiting = true;
                    Action::Syscall(Syscall::MqSend {
                        qd: 0,
                        data: vec![1],
                        priority: 0,
                        nonblocking: false,
                    })
                }
            }
        }
    }

    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.disable_trace();
    let owner = Uid::new(1_000);
    k.create_queue("/req", owner, Mode::new(0o666), 8);
    k.create_queue("/resp", owner, Mode::new(0o666), 8);
    k.spawn("server", 1_000, Box::new(Server { opened: 0 }))
        .unwrap();
    k.spawn(
        "client",
        1_000,
        Box::new(Client {
            opened: 0,
            awaiting: false,
            remaining: n,
        }),
    )
    .unwrap();
    let before = *k.metrics();
    let t0 = k.now();
    k.run_to_quiescence();
    report(
        "rpc_roundtrip",
        "linux (mq)",
        n,
        k.metrics().delta_since(&before),
        (k.now() - t0).as_nanos(),
    )
}

fn linux_getpid(n: u64) -> Row {
    use bas_linux::kernel::{LinuxConfig, LinuxKernel};
    use bas_linux::syscall::{Reply, Syscall};

    struct Caller {
        remaining: u64,
    }
    impl Process for Caller {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
            if self.remaining == 0 {
                return Action::Exit(0);
            }
            self.remaining -= 1;
            Action::Syscall(Syscall::GetPid)
        }
    }

    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.disable_trace();
    k.spawn("caller", 1_000, Box::new(Caller { remaining: n }))
        .unwrap();
    let before = *k.metrics();
    let t0 = k.now();
    k.run_to_quiescence();
    report(
        "getpid",
        "linux (direct)",
        n,
        k.metrics().delta_since(&before),
        (k.now() - t0).as_nanos(),
    )
}
