//! A2 ablation: capability over-granting on seL4. The paper's seL4
//! security argument is entirely about the capability *distribution*; if
//! the bootstrap (or a CapDL bug) hands the web interface one extra
//! capability, the corresponding attack surface opens. This experiment
//! grants the attacker a write+grant capability to the heater's command
//! endpoint and re-runs the actuator-spoofing attack — and shows that the
//! CapDL auditor would have caught the misconfiguration before boot.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_ablation_caps`

use bas_attack::evidence::new_evidence;
use bas_attack::library;
use bas_attack::model::AttackId;
use bas_attack::procs::{AttackScript, AttackStep, Sel4Attacker};
use bas_bench::{rule, section, Harness};
use bas_capdl::verify::verify;
use bas_core::platform::sel4::{ExtraCap, Sel4Overrides, Sel4Stack};
use bas_core::policy::{actuator_rpc, instances};
use bas_core::scenario::{Scenario, ScenarioConfig};
use bas_sel4::cap::CPtr;
use bas_sel4::message::IpcMessage;
use bas_sel4::rights::CapRights;
use bas_sim::time::SimDuration;

const WARMUP: SimDuration = SimDuration::from_secs(600);

fn scenario_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::quiet();
    cfg.plant.heat_schedule = vec![(WARMUP + SimDuration::from_secs(300), 600.0)];
    cfg
}

fn main() {
    let h = Harness::new("ablation_caps");
    section("configuration 1: the compiled capability distribution (paper §IV-D.3)");
    {
        let evidence = new_evidence();
        let ev = evidence.clone();
        let overrides = Sel4Overrides {
            web_factory: Some(Box::new(move |glue| {
                Box::new(Sel4Attacker::new(
                    library::sel4_script(AttackId::SpoofActuatorCommands, WARMUP, glue),
                    ev,
                ))
            })),
            extra_caps: Vec::new(),
            ..Sel4Overrides::default()
        };
        let mut s = h.build_stack::<Sel4Stack>(&scenario_cfg(), overrides);
        s.run_for(WARMUP + SimDuration::from_secs(1_020));
        let e = evidence.borrow();
        let plant = s.plant();
        let safe = plant.borrow().safety_report().is_safe();
        println!(
            "attacker ops: {} attempted, {} accepted, {} denied | safety: {}",
            e.attempts,
            e.successes,
            e.denials,
            if safe { "ok" } else { "VIOLATED" }
        );
        assert!(safe, "with the correct distribution the attack must fail");
        assert_eq!(e.successes, 0);
    }

    section("configuration 2: web interface over-granted heater+alarm endpoint capabilities");
    {
        let evidence = new_evidence();
        let ev = evidence.clone();
        // The attacker knows the layout: the stray cap lands in its first
        // free slot (slot 1, after its RPC cap in slot 0).
        let overrides = Sel4Overrides {
            web_factory: Some(Box::new(move |_glue| {
                // The stray caps land in the first free slots: 1 (heater)
                // and 2 (alarm), after the legitimate RPC cap in slot 0.
                let mut loop_body = Vec::new();
                for slot in [1u32, 2] {
                    loop_body.push(AttackStep::counted(bas_sel4::syscall::Syscall::Call {
                        ep: CPtr::new(slot),
                        msg: IpcMessage::with_data(actuator_rpc::SET, vec![0]),
                    }));
                }
                loop_body.push(AttackStep::pacing(bas_sel4::syscall::Syscall::Sleep {
                    duration: SimDuration::from_millis(200),
                }));
                Box::new(Sel4Attacker::new(
                    AttackScript {
                        delay: WARMUP,
                        setup: vec![],
                        loop_body,
                        max_loops: None,
                    },
                    ev,
                ))
            })),
            extra_caps: vec![
                ExtraCap {
                    holder: instances::WEB,
                    endpoint_of: (instances::HEATER, "cmd"),
                    rights: CapRights::WRITE_GRANT,
                    badge: 99,
                },
                ExtraCap {
                    holder: instances::WEB,
                    endpoint_of: (instances::ALARM, "cmd"),
                    rights: CapRights::WRITE_GRANT,
                    badge: 99,
                },
            ],
            ..Sel4Overrides::default()
        };
        let mut s = h.build_stack::<Sel4Stack>(&scenario_cfg(), overrides);

        // The auditor catches the misconfiguration immediately:
        let issues = verify(&s.stack.spec, &s.stack.kernel, &s.stack.sys);
        rule();
        println!("capdl audit before running: {} issue(s)", issues.len());
        for i in &issues {
            println!("  CAUGHT: {i}");
        }
        assert!(
            !issues.is_empty(),
            "the stray grant must be visible to the auditor"
        );

        // ...but if nobody audits, the physical process falls:
        s.run_for(WARMUP + SimDuration::from_secs(1_020));
        let e = evidence.borrow();
        let plant = s.plant();
        let safe = plant.borrow().safety_report().is_safe();
        println!(
            "attacker ops: {} attempted, {} accepted, {} denied | safety: {}",
            e.attempts,
            e.successes,
            e.denials,
            if safe { "ok" } else { "VIOLATED" }
        );
        assert!(e.successes > 0, "the stray capability is exercisable");
        assert!(
            !safe,
            "fan and alarm forced off through the stray capabilities"
        );
    }

    section("conclusion");
    println!(
        "seL4's protection is exactly the capability distribution: one stray write capability\n\
         re-opens the §IV-D.1 actuator attack, and the CapDL machine-verification step (E10)\n\
         is what guards that invariant — matching the paper's reliance on a correct CapDL file."
    );
}
