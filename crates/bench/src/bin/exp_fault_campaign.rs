//! E16: the fault campaign — the standard fault plans (sensor stuck-at /
//! glitch / dropout, IPC drop / delay / duplication, driver crash and
//! crash storm, clock skew) swept across all three platforms, with a
//! degradation scorecard per cell. This is the repeatable-fault-campaign
//! methodology the HIL-testbed literature asks for, applied to the
//! paper's A2/A3 availability claims: resilience differences between the
//! platforms show up as scorecard rows, not anecdotes.
//!
//! Deterministic by construction: per-plan seeds derive from the root
//! seed via SplitMix64 and the cell order is fixed, so the JSON report
//! is byte-identical at any `--workers` count.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_fault_campaign \
//!       [-- --quick --json --platform linux|minix|sel4 --workers N]`

use bas_bench::{rule, section, Harness};
use bas_faults::{run_campaign, standard_plans, CampaignConfig};
use bas_sim::time::SimDuration;

fn main() {
    let h = Harness::new("faults");
    let plans = standard_plans();
    let config = CampaignConfig {
        root_seed: 42,
        horizon: SimDuration::from_mins(h.scale(30, 12)),
        workers: h.workers(),
        platforms: h.platforms(),
    };

    section(&format!(
        "fault campaign: {} plans × {} platforms, {} min horizon, {} workers",
        plans.len(),
        config.platforms.len(),
        config.horizon.as_secs() / 60,
        config.workers,
    ));
    let report = run_campaign(&plans, &config);

    println!(
        "{:<18} {:<12} {:>6} {:>6} {:>9} {:>9} {:>9} {:>8} {:>6} {:>6}",
        "plan",
        "platform",
        "safe",
        "alive",
        "alarm[s]",
        "oob[s]",
        "recov[s]",
        "restart",
        "fired",
        "ipc"
    );
    for cell in &report.cells {
        println!(
            "{:<18} {:<12} {:>6} {:>6} {:>9} {:>9.0} {:>9} {:>8} {:>6} {:>6}",
            cell.plan,
            cell.platform,
            if cell.safety_held { "yes" } else { "NO" },
            if cell.critical_alive { "yes" } else { "DEAD" },
            cell.alarm_latency_worst_s
                .map(|s| format!("{s:.1}"))
                .unwrap_or_else(|| "-".into()),
            cell.out_of_band_seconds,
            cell.recovery_seconds
                .map(|s| format!("{s:.0}"))
                .unwrap_or_else(|| "never".into()),
            cell.processes_restarted,
            cell.events_fired,
            cell.ipc_faults_applied,
        );
    }
    rule();

    let unsafe_cells = report.cells.iter().filter(|c| !c.safety_held).count();
    let dead_cells = report.cells.iter().filter(|c| !c.critical_alive).count();
    println!(
        "{} cells | {} safety violations | {} cells ended with a dead critical process",
        report.cells.len(),
        unsafe_cells,
        dead_cells,
    );
    section("conclusion");
    println!(
        "sensor and clock faults degrade every platform alike — they are below the\n\
         OS's abstraction line — but crash plans split the field: the supervised\n\
         microkernel re-forks drivers and recovers, while the monolithic baseline\n\
         and the static capability system degrade in their own characteristic ways.\n\
         IPC faults are consumed after each platform's access-control gate, so even\n\
         a faulty transport never widens authority."
    );

    h.emit_json(&report.to_json());
}
