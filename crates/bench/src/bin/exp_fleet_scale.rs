//! E13 (extension): fleet scaling. Runs N independent building
//! instances — each a full kernel stack plus plant with its own derived
//! seed — across worker threads, sweeping fleet size × worker count, and
//! prints the throughput scaling curve. The deterministic `FleetReport`
//! of the largest fleet is embedded in `BENCH_fleet.json` (the wall-clock
//! sweep numbers vary run to run; the report never does).
//!
//! Run: `cargo run --release -p bas-bench --bin exp_fleet_scale [-- --quick --platform minix]`

use bas_bench::{rule, section, Harness};
use bas_core::scenario::Platform;
use bas_fleet::{run_fleet, FleetConfig, Json};
use bas_sim::time::SimDuration;

fn main() {
    let h = Harness::new("fleet");
    // One platform keeps the sweep readable; default MINIX (the paper's
    // primary platform), overridable with --platform.
    let platform = h.platform_filter().unwrap_or(Platform::Minix);
    // The largest fleet is always >= 16 instances so the worker-scaling
    // assertion below exercises a sweep long enough to amortize chunked
    // ticket claiming.
    let (sizes, workers): (&[usize], &[usize]) = if h.quick() {
        (&[1, 16], &[1, 2])
    } else {
        (&[1, 4, 16, 64], &[1, 2, 4, 8])
    };
    let horizon = SimDuration::from_mins(if h.quick() { 10 } else { 30 });

    section(&format!(
        "fleet scaling on {platform}: instances × workers, {} simulated minutes each",
        horizon.as_secs_f64() / 60.0
    ));
    println!(
        "{:>10} {:>8} {:>11} {:>14} {:>14} {:>9}",
        "instances", "workers", "wall[ms]", "sim-s/wall-s", "ipc-msg/s", "speedup"
    );
    rule();

    let mut sweep = Vec::new();
    let mut largest_report = None;
    let mut speedup_at_largest: Vec<(usize, f64)> = Vec::new();
    for &instances in sizes {
        let mut baseline_wall = None;
        let mut reference_json: Option<String> = None;
        for &w in workers {
            if w > instances {
                continue;
            }
            let mut config = FleetConfig::benign(platform, instances, w);
            config.horizon = horizon;
            let run = run_fleet(&config);

            // Every worker count must compute the identical report.
            let json = run.report.to_json();
            match &reference_json {
                None => reference_json = Some(json),
                Some(reference) => assert_eq!(
                    reference, &json,
                    "fleet report must not depend on worker count"
                ),
            }

            let baseline = *baseline_wall.get_or_insert(run.wall.wall_seconds);
            let speedup = baseline / run.wall.wall_seconds.max(1e-9);
            println!(
                "{:>10} {:>8} {:>11.1} {:>14.0} {:>14.0} {:>8.2}x",
                instances,
                w,
                run.wall.wall_seconds * 1e3,
                run.wall.sim_seconds_per_wall_second,
                run.wall.ipc_messages_per_wall_second,
                speedup,
            );
            sweep.push(Json::obj(vec![
                ("instances", Json::UInt(instances as u64)),
                ("workers", Json::UInt(w as u64)),
                ("wall_seconds", Json::Num(run.wall.wall_seconds)),
                (
                    "sim_seconds_per_wall_second",
                    Json::Num(run.wall.sim_seconds_per_wall_second),
                ),
                (
                    "ipc_messages_per_wall_second",
                    Json::Num(run.wall.ipc_messages_per_wall_second),
                ),
                ("speedup_vs_one_worker", Json::Num(speedup)),
            ]));
            if instances == *sizes.last().unwrap() {
                speedup_at_largest.push((w, speedup));
                largest_report = Some(run.report);
            }
        }
        rule();
    }

    let report = largest_report.expect("at least one fleet ran");
    assert_eq!(report.totals.critical_losses, 0);
    assert_eq!(report.totals.safety_violations, 0);

    // The parallel-speedup claims need real cores; on a single-CPU host
    // the sweep still runs (and determinism still holds), but the
    // wall-clock assertions would be meaningless.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 2 {
        // Chunked claiming + per-worker buffers must show through on the
        // >=16-instance fleet even at 2 workers.
        let best2 = speedup_at_largest
            .iter()
            .filter(|(w, _)| *w >= 2)
            .map(|(_, s)| *s)
            .fold(0.0f64, f64::max);
        assert!(
            best2 > 1.2,
            "expected >1.2x speedup with >=2 workers on {cores} cores \
             ({}+ instances), got {best2:.2}x",
            sizes.last().unwrap()
        );
        println!(
            "speedup check: {best2:.2}x with >=2 workers on {cores} cores (>1.2x required) — OK"
        );
    } else {
        println!("2-worker speedup check skipped ({cores} core available)");
    }
    if cores >= 4 && !h.quick() {
        let best = speedup_at_largest
            .iter()
            .filter(|(w, _)| *w >= 4)
            .map(|(_, s)| *s)
            .fold(0.0f64, f64::max);
        assert!(
            best > 2.0,
            "expected >2x speedup with >=4 workers on {cores} cores, got {best:.2}x"
        );
        println!("speedup check: {best:.2}x with >=4 workers on {cores} cores (>2x required) — OK");
    } else if !h.quick() {
        println!("4-worker speedup check skipped ({cores} cores available)");
    }

    h.write_json(&Json::obj(vec![
        ("schema", Json::Str("bas-fleet-scale/v1".into())),
        ("platform", Json::Str(platform.to_string())),
        ("horizon_s", Json::Num(horizon.as_secs_f64())),
        ("cores", Json::UInt(cores as u64)),
        ("sweep", Json::Arr(sweep)),
        ("largest_fleet_report", report.to_json_value()),
    ]));
}
