//! E13 (extension): fleet scaling. Runs N independent building
//! instances — each a full kernel stack plus plant with its own derived
//! seed — across a persistent worker pool, sweeping fleet size × worker
//! count, and prints the throughput scaling curve. The deterministic
//! `FleetReport` of the largest fleet is embedded in `BENCH_fleet.json`
//! (the wall-clock sweep numbers vary run to run; the report never
//! does).
//!
//! The sweep also measures the raw kernel IPC hot path in isolation: a
//! MINIX ping-pong pair exchanging rendezvous messages with tracing
//! disabled and a free cost model, so the number reflects the arena
//! send/deliver path (one copy in, one copy out, zero steady-state
//! allocations) rather than plant physics. `ci.sh` gates both this rate
//! and the fleet throughput against `BENCH_fleet_baseline.json`.
//!
//! On top of the throughput sweep, the binary benchmarks the *boot
//! path* under a counting global allocator: cold `boot_platform` per
//! instance versus the snapshot/fork path (one warm template, instances
//! forked and recycled through an `InstancePool`). Full mode drives the
//! boot schedule of a 100,000-instance benign fleet through one pool on
//! one thread and asserts snapshot boot is ≥10x faster and ≥5x lighter
//! in allocated bytes per instance than cold boot (MINIX, the default
//! platform); `ci.sh` additionally gates `boot_instances_per_sec` and
//! `bytes_per_instance` against the committed baseline.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_fleet_scale [-- --quick --platform minix]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bas_acm::{AcId, AccessControlMatrix};
use bas_bench::{rule, section, Harness};
use bas_core::scenario::{Platform, ScenarioConfig};
use bas_core::EngineSnapshot;
use bas_fleet::{
    instance_seed, run_fleet_with, FleetConfig, InstancePool, Json, WorkerPool,
    DEFAULT_MAX_RESIDENT,
};
use bas_minix::endpoint::Endpoint;
use bas_minix::kernel::{MinixConfig, MinixKernel};
use bas_minix::message::Payload;
use bas_minix::syscall::{Reply, Syscall};
use bas_sim::clock::CostModel;
use bas_sim::process::{Action, Process};
use bas_sim::time::SimDuration;

/// Bytes and calls handed out by the global allocator; the boot
/// benchmark reads deltas around each boot loop, so `bytes_per_instance`
/// counts every allocation a boot performs (frees are irrelevant: the
/// cost being measured is allocator traffic, not residency).
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const PUMP_ID: AcId = AcId::new(40);
const SINK_ID: AcId = AcId::new(41);

/// Sends `remaining` rendezvous messages to `dest`, then exits.
struct Pump {
    dest: Endpoint,
    remaining: u64,
}

impl Process for Pump {
    type Syscall = Syscall;
    type Reply = Reply;
    fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
        if self.remaining == 0 {
            return Action::Exit(0);
        }
        self.remaining -= 1;
        Action::Syscall(Syscall::Send {
            dest: self.dest,
            mtype: 1,
            payload: Payload::zeroed(),
        })
    }
    fn name(&self) -> &str {
        "pump"
    }
}

/// Receives `remaining` messages, then exits.
struct Sink {
    remaining: u64,
}

impl Process for Sink {
    type Syscall = Syscall;
    type Reply = Reply;
    fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
        if self.remaining == 0 {
            return Action::Exit(0);
        }
        self.remaining -= 1;
        Action::Syscall(Syscall::Receive { from: None })
    }
    fn name(&self) -> &str {
        "sink"
    }
}

/// Ping-pongs `messages` rendezvous messages through one MINIX kernel
/// with tracing off and a free cost model, returning (wall seconds,
/// arena heap events). This is the IPC hot path with nothing else on
/// it: stage payload into an arena slot, rendezvous, copy out, recycle.
fn ipc_hot_path(messages: u64) -> (f64, u64) {
    let acm = AccessControlMatrix::builder()
        .allow_all_types(PUMP_ID, SINK_ID)
        .build();
    let mut k = MinixKernel::new(MinixConfig {
        acm,
        cost_model: CostModel::free(),
        ..MinixConfig::default()
    });
    k.disable_trace();
    let sink = k
        .spawn(
            "sink",
            SINK_ID,
            1000,
            Box::new(Sink {
                remaining: messages,
            }),
        )
        .expect("spawn sink");
    k.spawn(
        "pump",
        PUMP_ID,
        1000,
        Box::new(Pump {
            dest: sink,
            remaining: messages,
        }),
    )
    .expect("spawn pump");
    let t0 = Instant::now();
    k.run_to_quiescence();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(
        k.metrics().ipc_messages,
        messages,
        "every ping-pong message must deliver"
    );
    (wall, k.metrics().hot_path_allocs)
}

fn main() {
    let h = Harness::new("fleet");
    // One platform keeps the sweep readable; default MINIX (the paper's
    // primary platform), overridable with --platform.
    let platform = h.platform_filter().unwrap_or(Platform::Minix);
    // The largest fleet is always >= 16 instances so the worker-scaling
    // assertion below exercises batches big enough to amortize dispatch;
    // full mode ends on the 256-instance fleet the BENCH gate quotes.
    let (sizes, workers): (&[usize], &[usize]) = if h.quick() {
        (&[1, 16], &[1, 2])
    } else {
        (&[1, 16, 64, 256], &[1, 2, 4, 8])
    };
    let horizon = SimDuration::from_mins(if h.quick() { 10 } else { 30 });

    // ------------------------------------------------------------------
    // Raw IPC hot path: the arena send/deliver cycle in isolation.
    // ------------------------------------------------------------------
    section("IPC hot path: MINIX rendezvous ping-pong (trace off, free cost model)");
    let hot_messages: u64 = if h.quick() { 200_000 } else { 1_000_000 };
    let (hot_wall, hot_heap_events) = ipc_hot_path(hot_messages);
    let hot_rate = hot_messages as f64 / hot_wall.max(1e-9);
    assert_eq!(
        hot_heap_events, 0,
        "steady-state IPC must not touch the allocator (arena pre-warm)"
    );
    println!(
        "{hot_messages} messages in {:.3}s: {:.2}M msg/s, {hot_heap_events} heap events",
        hot_wall,
        hot_rate / 1e6
    );

    // ------------------------------------------------------------------
    // Boot path: cold vs snapshot/fork, one thread, counting allocator.
    // ------------------------------------------------------------------
    let boot_instances = h.scale(100_000, 10_000) as usize;
    let cold_iters = h.scale(2_000, 500) as usize;
    section(&format!(
        "boot path on {platform}: cold boot ({cold_iters} instances) vs snapshot/fork \
         ({boot_instances}-instance fleet boot schedule, one thread)"
    ));
    let template = ScenarioConfig::quiet();
    // Warm once so lazy one-time initialization stays out of both deltas.
    std::hint::black_box(&bas_core::boot_platform(platform, &template));

    let bytes0 = ALLOC_BYTES.load(Ordering::SeqCst);
    let calls0 = ALLOC_CALLS.load(Ordering::SeqCst);
    let t0 = Instant::now();
    for i in 0..cold_iters {
        let mut cfg = template.clone();
        cfg.seed = instance_seed(42, i);
        std::hint::black_box(&bas_core::boot_platform(platform, &cfg));
    }
    let cold_wall = t0.elapsed().as_secs_f64();
    let cold_bytes = ALLOC_BYTES.load(Ordering::SeqCst) - bytes0;
    let cold_calls = ALLOC_CALLS.load(Ordering::SeqCst) - calls0;
    let cold_rate = cold_iters as f64 / cold_wall.max(1e-9);
    let cold_bpi = cold_bytes as f64 / cold_iters as f64;

    // Snapshot/fork: capture the warm template once (inside the timed
    // region — it is part of the snapshot path's cost), then run the
    // whole fleet's boot schedule through one InstancePool in cohorts of
    // DEFAULT_MAX_RESIDENT. The first cohort forks fresh engines; every
    // later cohort recycles checked-in ones, which is the steady state a
    // 100k-instance fleet spends >99% of its boots in.
    let boot_config = FleetConfig::benign(platform, boot_instances, 1);
    let bytes0 = ALLOC_BYTES.load(Ordering::SeqCst);
    let calls0 = ALLOC_CALLS.load(Ordering::SeqCst);
    let t0 = Instant::now();
    let snapshot = Arc::new(EngineSnapshot::capture(platform, &template));
    let mut instance_pool = InstancePool::new(Some(snapshot));
    let mut cohort = Vec::with_capacity(DEFAULT_MAX_RESIDENT);
    let mut booted = 0usize;
    while booted < boot_instances {
        let n = DEFAULT_MAX_RESIDENT.min(boot_instances - booted);
        for k in 0..n {
            cohort.push(instance_pool.checkout(&boot_config, booted + k));
        }
        booted += n;
        for engine in cohort.drain(..) {
            instance_pool.checkin(engine);
        }
    }
    let snap_wall = t0.elapsed().as_secs_f64();
    let snap_bytes = ALLOC_BYTES.load(Ordering::SeqCst) - bytes0;
    let snap_calls = ALLOC_CALLS.load(Ordering::SeqCst) - calls0;
    let boot_rate = boot_instances as f64 / snap_wall.max(1e-9);
    let snap_bpi = snap_bytes as f64 / boot_instances as f64;
    let boot_speedup = boot_rate / cold_rate.max(1e-9);
    let bytes_ratio = cold_bpi / snap_bpi.max(1e-9);

    println!(
        "{:<10} {:>10} {:>14} {:>16} {:>14}",
        "path", "boots", "boots/sec", "bytes/instance", "allocs/instance"
    );
    rule();
    println!(
        "{:<10} {:>10} {:>14.0} {:>16.0} {:>14.1}",
        "cold",
        cold_iters,
        cold_rate,
        cold_bpi,
        cold_calls as f64 / cold_iters as f64
    );
    println!(
        "{:<10} {:>10} {:>14.0} {:>16.0} {:>14.1}",
        "snapshot",
        boot_instances,
        boot_rate,
        snap_bpi,
        snap_calls as f64 / boot_instances as f64
    );
    println!(
        "snapshot vs cold: {boot_speedup:.1}x faster, {bytes_ratio:.1}x fewer allocated bytes \
         ({} forked fresh, {} recycled)",
        instance_pool.materialized(),
        instance_pool.recycled()
    );
    // The pool must have served the entire schedule, forking at most one
    // cohort's worth of engines and recycling everything else.
    assert_eq!(
        instance_pool.materialized() + instance_pool.recycled(),
        boot_instances as u64
    );
    assert!(instance_pool.materialized() <= DEFAULT_MAX_RESIDENT as u64);
    if !h.quick() && platform == Platform::Minix {
        assert!(
            boot_speedup >= 10.0,
            "snapshot boot must be >=10x faster than cold boot, got {boot_speedup:.1}x"
        );
        assert!(
            bytes_ratio >= 5.0,
            "snapshot boot must allocate >=5x fewer bytes per instance, got {bytes_ratio:.1}x"
        );
    }

    section(&format!(
        "fleet scaling on {platform}: instances × workers, {} simulated minutes each",
        horizon.as_secs_f64() / 60.0
    ));
    println!(
        "{:>10} {:>8} {:>11} {:>14} {:>14} {:>9} {:>6}",
        "instances", "workers", "wall[ms]", "sim-s/wall-s", "ipc-msg/s", "speedup", "util"
    );
    rule();

    // One persistent pool serves the whole sweep; each run uses the
    // first `workers` threads, so the report stays a pure function of
    // the configuration while the OS threads are spawned exactly once.
    let pool = WorkerPool::new(workers.iter().copied().max().unwrap_or(1));
    let mut sweep = Vec::new();
    let mut largest_report = None;
    let mut speedup_at_largest: Vec<(usize, f64)> = Vec::new();
    let mut fleet_rate_1w = 0.0f64;
    for &instances in sizes {
        let mut baseline_wall = None;
        let mut reference_json: Option<String> = None;
        for &w in workers {
            if w > instances {
                continue;
            }
            let mut config = FleetConfig::benign(platform, instances, w);
            config.horizon = horizon;
            let run = run_fleet_with(&pool, &config);

            // Every worker count must compute the identical report.
            let json = run.report.to_json();
            match &reference_json {
                None => reference_json = Some(json),
                Some(reference) => assert_eq!(
                    reference, &json,
                    "fleet report must not depend on worker count"
                ),
            }

            let baseline = *baseline_wall.get_or_insert(run.wall.wall_seconds);
            let speedup = baseline / run.wall.wall_seconds.max(1e-9);
            let mean_util = run.wall.worker_utilization.iter().sum::<f64>()
                / run.wall.worker_utilization.len().max(1) as f64;
            println!(
                "{:>10} {:>8} {:>11.1} {:>14.0} {:>14.0} {:>8.2}x {:>6.2}",
                instances,
                w,
                run.wall.wall_seconds * 1e3,
                run.wall.sim_seconds_per_wall_second,
                run.wall.ipc_messages_per_wall_second,
                speedup,
                mean_util,
            );
            sweep.push(Json::obj(vec![
                ("instances", Json::UInt(instances as u64)),
                ("workers", Json::UInt(w as u64)),
                ("batch_size", Json::UInt(run.wall.batch_size as u64)),
                ("wall_seconds", Json::Num(run.wall.wall_seconds)),
                (
                    "sim_seconds_per_wall_second",
                    Json::Num(run.wall.sim_seconds_per_wall_second),
                ),
                (
                    "ipc_messages_per_wall_second",
                    Json::Num(run.wall.ipc_messages_per_wall_second),
                ),
                ("speedup_vs_one_worker", Json::Num(speedup)),
                (
                    "worker_utilization",
                    Json::Arr(
                        run.wall
                            .worker_utilization
                            .iter()
                            .map(|&u| Json::Num(u))
                            .collect(),
                    ),
                ),
            ]));
            if instances == *sizes.last().unwrap() {
                speedup_at_largest.push((w, speedup));
                if w == 1 {
                    fleet_rate_1w = run.wall.ipc_messages_per_wall_second;
                }
                largest_report = Some(run.report);
            }
        }
        rule();
    }

    let report = largest_report.expect("at least one fleet ran");
    assert_eq!(report.totals.critical_losses, 0);
    assert_eq!(report.totals.safety_violations, 0);
    assert_eq!(
        report.totals.hot_path_allocs, 0,
        "warm fleet kernels must not touch the allocator on the IPC path"
    );

    // The parallel-speedup claims need real cores; on a single-CPU host
    // the sweep still runs (and determinism still holds), but the
    // wall-clock assertions would be meaningless.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut speedup_2w = f64::NAN;
    for &(w, s) in &speedup_at_largest {
        if w == 2 {
            speedup_2w = s;
        }
    }
    if cores >= 2 {
        // Resident batches must show through on the largest fleet even
        // at 2 workers: >1.2x in quick mode (16 instances), >1.7x in
        // full mode (256 instances, the BENCH-quoted configuration).
        let floor = if h.quick() { 1.2 } else { 1.7 };
        let best2 = speedup_at_largest
            .iter()
            .filter(|(w, _)| *w >= 2)
            .map(|(_, s)| *s)
            .fold(0.0f64, f64::max);
        assert!(
            best2 > floor,
            "expected >{floor}x speedup with >=2 workers on {cores} cores \
             ({}+ instances), got {best2:.2}x",
            sizes.last().unwrap()
        );
        println!(
            "speedup check: {best2:.2}x with >=2 workers on {cores} cores (>{floor}x required) — OK"
        );
    } else {
        println!("2-worker speedup check skipped ({cores} core available)");
    }
    if cores >= 4 && !h.quick() {
        let best = speedup_at_largest
            .iter()
            .filter(|(w, _)| *w >= 4)
            .map(|(_, s)| *s)
            .fold(0.0f64, f64::max);
        assert!(
            best > 2.0,
            "expected >2x speedup with >=4 workers on {cores} cores, got {best:.2}x"
        );
        println!("speedup check: {best:.2}x with >=4 workers on {cores} cores (>2x required) — OK");
    } else if !h.quick() {
        println!("4-worker speedup check skipped ({cores} cores available)");
    }

    h.write_json(&Json::obj(vec![
        ("schema", Json::Str("bas-fleet-scale/v3".into())),
        ("platform", Json::Str(platform.to_string())),
        ("horizon_s", Json::Num(horizon.as_secs_f64())),
        ("cores", Json::UInt(cores as u64)),
        (
            "ipc_hot_path",
            Json::obj(vec![
                ("messages", Json::UInt(hot_messages)),
                ("wall_seconds", Json::Num(hot_wall)),
                ("messages_per_second", Json::Num(hot_rate)),
                ("heap_events", Json::UInt(hot_heap_events)),
            ]),
        ),
        (
            "boot",
            Json::obj(vec![
                ("fleet_instances", Json::UInt(boot_instances as u64)),
                ("cold_instances", Json::UInt(cold_iters as u64)),
                ("cold_boot_instances_per_sec", Json::Num(cold_rate)),
                ("cold_bytes_per_instance", Json::Num(cold_bpi)),
                ("boot_instances_per_sec", Json::Num(boot_rate)),
                ("bytes_per_instance", Json::Num(snap_bpi)),
                ("boot_speedup", Json::Num(boot_speedup)),
                ("bytes_ratio", Json::Num(bytes_ratio)),
                ("materialized", Json::UInt(instance_pool.materialized())),
                ("recycled", Json::UInt(instance_pool.recycled())),
            ]),
        ),
        (
            "fleet_ipc_messages_per_wall_second",
            Json::Num(fleet_rate_1w),
        ),
        (
            "speedup_2_workers",
            if speedup_2w.is_nan() {
                Json::Null
            } else {
                Json::Num(speedup_2w)
            },
        ),
        ("sweep", Json::Arr(sweep)),
        ("largest_fleet_report", report.to_json_value()),
    ]));
}
