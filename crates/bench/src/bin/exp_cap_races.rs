//! E19: capability-churn races — the happens-before detector
//! cross-validated three ways against the rest of the repo.
//!
//! The race detector ([`bas_analysis::races`]) watches the live kernels'
//! capability-event streams under `bas-faults` churn schedules and flags
//! TOCTOU, use-after-revoke and write-write conflicts from the
//! happens-before closure alone. This experiment pins its verdicts to
//! three independent oracles:
//!
//! 1. **Seeded catalog (21 scenarios).** Every 3-platform × 7-shape
//!    churn scenario must produce *exactly* its expected race-kind set —
//!    including the per-platform asymmetry (a timed revoke between IPC
//!    periods is clean on MINIX/seL4, which re-check per send, but races
//!    on Linux, whose DAC check happens only at `mq_open`) — and the
//!    churn-free controls must be race-free (zero false positives).
//! 2. **Model checker.** The plain attack matrix never reaches
//!    `CAPABILITY_RACE` under *any* interleaving, while churn-enabled
//!    cells reach it and minimize to a `capability-race` counterexample.
//! 3. **Static analyzer.** Every `revocation-leak` finding from the
//!    derivation fixpoint maps to a demonstrated dynamic race (untrusted
//!    holder) or a justified suppression (trusted holder), and each
//!    referenced churn scenario really yields a revoke-raced stale use.
//!
//! Storm schedules are additionally delta-minimized to 1-minimal,
//! replay-confirmed witnesses.
//!
//! Run:
//! `cargo run --release -p bas-bench --bin exp_cap_races [-- --quick] [-- --json] [-- --workers N]`
//!
//! `--json` writes `BENCH_races.json` (byte-identical at any worker
//! count) plus `BENCH_races_perf.json` (wall-clock throughput, gated in
//! ci.sh against `BENCH_races_baseline.json`). Exits nonzero on any
//! missed race, false positive, matrix race-bit hit, unmapped leak, or
//! unconfirmed witness.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use bas_analysis::mc::verdict::props;
use bas_analysis::mc::{
    check_cell, check_cells, matrix_cells, ExploreOpts, McProperty, ScenarioModel,
};
use bas_analysis::races::{
    churn_scenarios, detect, map_revocation_leaks, minimize, run_churn_plan, run_scenario,
    ChurnScenario, Race, RaceKind,
};
use bas_attack::{AttackId, AttackerModel};
use bas_bench::{rule, section, verdict, Harness};
use bas_core::platform::linux::UidScheme;
use bas_faults::plan::FaultPlan;
use bas_fleet::{run_cells, Json};
use bas_sim::caps::CapOp;
use bas_sim::time::SimDuration;

fn kind_set(kinds: &[RaceKind]) -> BTreeSet<&'static str> {
    kinds.iter().map(|k| k.code()).collect()
}

fn race_json(r: &Race) -> Json {
    Json::obj(vec![
        ("kind", Json::Str(r.kind.code().into())),
        ("cap", Json::Str(r.cap.clone())),
        ("object", Json::Str(r.object.clone())),
        ("subject", Json::Str(r.subject.clone())),
        ("write_actor", Json::Str(r.write_actor.clone())),
        ("write_op", Json::Str(format!("{:?}", r.write_op))),
    ])
}

fn main() {
    let h = Harness::new("races");
    let platforms = h.platforms();
    let sweep_workers = h.workers();
    let opts = ExploreOpts {
        use_por: true,
        state_budget: if h.quick() { 500_000 } else { 2_000_000 },
        workers: 1,
    };
    let mut failures = 0usize;

    // ----------------------------------------------------------------
    // 1. Seeded churn catalog: exact race-kind sets, in parallel across
    //    scenarios (run_cells preserves input order, so the report is
    //    byte-identical at any worker count).
    // ----------------------------------------------------------------
    let catalog: Vec<ChurnScenario> = churn_scenarios()
        .into_iter()
        .filter(|sc| platforms.contains(&sc.platform))
        .collect();
    section(&format!(
        "seeded churn catalog ({} scenarios, {sweep_workers} worker(s))",
        catalog.len()
    ));
    println!(
        "{:<26} {:>7} {:>6} {:<28} {:<28}  ok?",
        "scenario", "events", "edges", "expected", "detected"
    );
    rule();
    let t0 = Instant::now();
    let runs = run_cells(catalog.len(), sweep_workers, |i| {
        let trace = run_scenario(&catalog[i]);
        let races = detect(&trace);
        (trace.events.len(), trace.edges.len(), races)
    });
    let sweep_secs = t0.elapsed().as_secs_f64();

    let mut total_events = 0usize;
    let mut scenario_json = Vec::new();
    for (sc, (events, edges, races)) in catalog.iter().zip(&runs) {
        total_events += events;
        let detected: BTreeSet<&'static str> = races.iter().map(|r| r.kind.code()).collect();
        let expected = kind_set(&sc.expect);
        let ok = detected == expected;
        failures += usize::from(!ok);
        let show = |s: &BTreeSet<&str>| {
            if s.is_empty() {
                "(race-free)".to_string()
            } else {
                s.iter().copied().collect::<Vec<_>>().join(",")
            }
        };
        println!(
            "{:<26} {:>7} {:>6} {:<28} {:<28}  {}",
            sc.name,
            events,
            edges,
            show(&expected),
            show(&detected),
            if ok { "yes" } else { "** NO **" },
        );
        scenario_json.push(Json::obj(vec![
            ("name", Json::Str(sc.name.clone())),
            ("platform", Json::Str(sc.platform.to_string())),
            ("events", Json::UInt(*events as u64)),
            ("edges", Json::UInt(*edges as u64)),
            (
                "expected",
                Json::Arr(expected.iter().map(|k| Json::Str((*k).into())).collect()),
            ),
            ("races", Json::Arr(races.iter().map(race_json).collect())),
            ("note", Json::Str(sc.note.into())),
            ("ok", Json::Bool(ok)),
        ]));
    }
    rule();
    println!(
        "catalog: {} scenarios, {} trace events in {:.2}s",
        catalog.len(),
        total_events,
        sweep_secs
    );

    // ----------------------------------------------------------------
    // 2. Zero-false-positive control: churn-free runs on every platform
    //    must be structurally race-free.
    // ----------------------------------------------------------------
    section("churn-free controls (zero false positives)");
    let mut control_json = Vec::new();
    for &platform in &platforms {
        let trace = run_churn_plan(
            platform,
            &FaultPlan::new("churn-free", vec![]),
            SimDuration::from_mins(3),
        );
        let races = detect(&trace);
        let ok = races.is_empty();
        failures += usize::from(!ok);
        println!(
            "{:<8} {:>5} events, {:>4} edges, {} race(s) {}",
            platform.to_string(),
            trace.events.len(),
            trace.edges.len(),
            races.len(),
            verdict(ok, "[ok]", "** FALSE POSITIVE **"),
        );
        control_json.push(Json::obj(vec![
            ("platform", Json::Str(platform.to_string())),
            ("events", Json::UInt(trace.events.len() as u64)),
            ("races", Json::UInt(races.len() as u64)),
            ("ok", Json::Bool(ok)),
        ]));
    }

    // ----------------------------------------------------------------
    // 3. Model-checker differential, plain half: no cell of the attack
    //    matrix reaches CAPABILITY_RACE under any interleaving.
    // ----------------------------------------------------------------
    section(&format!(
        "attack matrix: CAPABILITY_RACE unreachable in every plain cell \
         (state budget {}, {sweep_workers} sweep worker(s))",
        opts.state_budget
    ));
    let cells = matrix_cells(&platforms);
    let reports = check_cells(&cells, UidScheme::SharedAccount, &opts, sweep_workers);
    let mut race_free = 0usize;
    for r in &reports {
        let ok = r.reached & props::CAPABILITY_RACE == 0 && !r.stats.truncated;
        race_free += usize::from(ok);
        if !ok {
            failures += 1;
            println!(
                "** {} / {} / {}: CAPABILITY_RACE reached (or truncated) in a churn-free cell **",
                r.platform, r.attacker, r.attack
            );
        }
    }
    println!(
        "{race_free}/{} cells race-free {}",
        reports.len(),
        verdict(race_free == reports.len(), "[ok]", "** GATE FAILURE **"),
    );

    // ----------------------------------------------------------------
    // 4. Model-checker differential, churn half: enabling Revoke/Regrant
    //    attacker ops makes the race reachable, and the minimized
    //    counterexample names it.
    // ----------------------------------------------------------------
    section("churn-enabled cells: the race is reachable and the counterexample names it");
    let mut churn_json = Vec::new();
    for &platform in &platforms {
        let model = ScenarioModel::new(
            platform,
            AttackerModel::ArbitraryCode,
            AttackId::KillCritical,
            UidScheme::PerProcessHardened,
        )
        .with_churn();
        let r = check_cell(&model, &opts);
        let reached_race = r.reached & props::CAPABILITY_RACE != 0;
        let cx_names_race = r
            .counterexample
            .as_ref()
            .is_some_and(|cx| cx.property == McProperty::CapabilityRace && !cx.trace.is_empty());
        let ok = reached_race && cx_names_race && !r.stats.truncated;
        failures += usize::from(!ok);
        let cx_len = r.counterexample.as_ref().map_or(0, |cx| cx.trace.len());
        println!(
            "{:<8} {:>9} states, race reached: {:<3} cx: {:<16} ({} actions) {}",
            platform.to_string(),
            r.stats.states,
            verdict(reached_race, "yes", "NO"),
            r.counterexample
                .as_ref()
                .map_or("(none)".to_string(), |cx| cx.property.to_string()),
            cx_len,
            verdict(ok, "[ok]", "** NO **"),
        );
        churn_json.push(Json::obj(vec![
            ("platform", Json::Str(platform.to_string())),
            ("states", Json::UInt(r.stats.states as u64)),
            ("race_reached", Json::Bool(reached_race)),
            (
                "counterexample",
                match &r.counterexample {
                    Some(cx) => Json::obj(vec![
                        ("property", Json::Str(cx.property.to_string())),
                        (
                            "trace",
                            Json::Arr(cx.trace.iter().map(|a| Json::Str(a.to_string())).collect()),
                        ),
                    ]),
                    None => Json::Null,
                },
            ),
            ("ok", Json::Bool(ok)),
        ]));
    }

    // ----------------------------------------------------------------
    // 5. Static cross-validation: every revocation-leak finding maps to
    //    a demonstrated dynamic race or a justified suppression, and the
    //    referenced scenarios really race on a revoke.
    // ----------------------------------------------------------------
    section("static revocation-leaks: total mapping to dynamic races or suppressions");
    let mappings = map_revocation_leaks();
    let mut demo_cache: BTreeMap<String, Vec<Race>> = BTreeMap::new();
    let full_catalog = churn_scenarios();
    let mut mapping_json = Vec::new();
    let mut checked = 0usize;
    for m in &mappings {
        let relevant = platforms.contains(&m.platform);
        let ok = match (m.disposition, &m.dynamic_scenario) {
            ("dynamic-race", Some(name)) if relevant => {
                let races = demo_cache.entry(name.clone()).or_insert_with(|| {
                    full_catalog
                        .iter()
                        .find(|sc| &sc.name == name)
                        .map(|sc| detect(&run_scenario(sc)))
                        .unwrap_or_default()
                });
                races
                    .iter()
                    .any(|r| r.kind == RaceKind::Toctou && r.write_op == CapOp::Revoke)
            }
            ("dynamic-race", Some(_)) => true, // platform filtered out
            ("suppressed", None) => !m.untrusted,
            _ => false,
        };
        checked += usize::from(relevant);
        failures += usize::from(!ok);
        println!(
            "{:<24} {:<8} {:<10} {:<14} {:<28} {}",
            m.scenario,
            m.platform.to_string(),
            m.holder,
            m.disposition,
            m.dynamic_scenario.as_deref().unwrap_or("-"),
            verdict(ok, "[ok]", "** UNMAPPED **"),
        );
        mapping_json.push(Json::obj(vec![
            ("scenario", Json::Str(m.scenario.clone())),
            ("platform", Json::Str(m.platform.to_string())),
            ("holder", Json::Str(m.holder.clone())),
            ("untrusted", Json::Bool(m.untrusted)),
            ("disposition", Json::Str(m.disposition.into())),
            (
                "dynamic_scenario",
                m.dynamic_scenario
                    .as_ref()
                    .map_or(Json::Null, |s| Json::Str(s.clone())),
            ),
            ("justification", Json::Str(m.justification.clone())),
            ("ok", Json::Bool(ok)),
        ]));
    }
    rule();
    println!(
        "{} mapping(s), {checked} on selected platform(s), all total {}",
        mappings.len(),
        verdict(!mappings.is_empty(), "[ok]", "** EMPTY **"),
    );
    failures += usize::from(mappings.is_empty());

    // ----------------------------------------------------------------
    // 6. Witness minimization: the 4-event storm schedules reduce to
    //    1-minimal, replay-confirmed causes (1 event for the TOCTOU, 2
    //    for the admin/tenant write-write conflict).
    // ----------------------------------------------------------------
    section("storm witnesses: 1-minimal schedules, replay-confirmed through the engine");
    let mut witness_json = Vec::new();
    for sc in catalog
        .iter()
        .filter(|sc| sc.name.ends_with("/churn-storm"))
    {
        let races = detect(&run_scenario(sc));
        for race in &races {
            let w = minimize(sc, race);
            let want = match race.kind {
                RaceKind::Toctou => 1,
                RaceKind::WriteWrite => 2,
                RaceKind::UseAfterRevoke => 1,
            };
            let ok = w.replay_confirmed && w.schedule.len() == want;
            failures += usize::from(!ok);
            println!(
                "{:<20} {:<16} {} -> {} event(s) (dropped {}), replayed: {} {}",
                sc.name,
                race.kind.code(),
                sc.plan.events().len(),
                w.schedule.len(),
                w.dropped,
                verdict(w.replay_confirmed, "yes", "NO"),
                verdict(ok, "[ok]", "** NOT MINIMAL **"),
            );
            witness_json.push(Json::obj(vec![
                ("scenario", Json::Str(w.scenario.clone())),
                ("kind", Json::Str(w.kind.code().into())),
                ("cap", Json::Str(w.cap.clone())),
                ("schedule_events", Json::UInt(w.schedule.len() as u64)),
                ("dropped", Json::UInt(w.dropped as u64)),
                ("replay_confirmed", Json::Bool(w.replay_confirmed)),
                ("ok", Json::Bool(ok)),
            ]));
        }
    }

    println!(
        "\nverdict: {}",
        verdict(
            failures == 0,
            "detector, model checker and static analyzer agree on every churn story",
            &format!("{failures} check(s) failed"),
        )
    );

    // The main report carries no wall-clock values, so it is
    // byte-identical at any --workers count (ci.sh cmp-gates this).
    h.emit_json(&Json::obj(vec![
        ("schema", Json::Str("bas-cap-races/v1".into())),
        ("state_budget", Json::UInt(opts.state_budget as u64)),
        ("scenarios", Json::Arr(scenario_json)),
        ("controls", Json::Arr(control_json)),
        (
            "matrix",
            Json::obj(vec![
                ("cells", Json::UInt(reports.len() as u64)),
                ("race_free", Json::UInt(race_free as u64)),
            ]),
        ),
        ("churn_cells", Json::Arr(churn_json)),
        ("leak_mappings", Json::Arr(mapping_json)),
        ("witnesses", Json::Arr(witness_json)),
        ("failures", Json::UInt(failures as u64)),
    ]));

    // Throughput lives in a separate artifact precisely because the
    // main report must stay deterministic; ci.sh floors this number
    // against the committed baseline.
    if h.json() {
        let perf = Json::obj(vec![
            ("schema", Json::Str("bas-cap-races-perf/v1".into())),
            ("trace_events", Json::UInt(total_events as u64)),
            ("seconds", Json::Num(sweep_secs)),
            (
                "events_per_second",
                Json::Num(total_events as f64 / sweep_secs.max(1e-9)),
            ),
        ]);
        std::fs::write("BENCH_races_perf.json", perf.render()).expect("write perf JSON");
        println!("wrote BENCH_races_perf.json");
    }

    if failures > 0 {
        std::process::exit(1);
    }
}
