//! E12: static policy audit — the attack matrix *predicted* from policy
//! alone, plus the policy lint report, with no simulation in the loop.
//!
//! All three platform policies (MINIX ACM, compiled CapDL spec, Linux mq
//! ACL plan) lower into the unified Policy IR; a reachability analysis
//! then predicts every §IV-D attack outcome, and a lint pass diffs each
//! policy against the AADL-minimal one. The `static_vs_dynamic` tests in
//! `bas-analysis` assert cell-for-cell agreement with the dynamic
//! harness; this binary prints the artifacts and re-checks the headline
//! claims, including both ablations.
//!
//! Run: `cargo run --release -p bas-bench --bin exp_policy_audit`

use bas_analysis::scenario::{
    minix_model, model_for, predicted_matrix, scenario_justification, sel4_model,
};
use bas_analysis::taint::{expectation, predict};
use bas_analysis::{findings_report_json, lint, Severity};
use bas_attack::expectations::{paper_expectation, Expectation};
use bas_attack::model::{AttackId, AttackerModel};
use bas_bench::{rule, section, verdict, Harness};
use bas_core::platform::linux::UidScheme;
use bas_core::platform::sel4::ExtraCap;
use bas_core::policy::instances;
use bas_core::scenario::Platform;
use bas_sel4::rights::CapRights;

fn main() {
    // Static experiment; the harness only standardizes flag handling.
    let _h = Harness::new("policy_audit");
    let justification = scenario_justification();

    // -----------------------------------------------------------------
    // 1. The lowered channel graphs.
    // -----------------------------------------------------------------
    for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
        let model = model_for(
            platform,
            AttackerModel::ArbitraryCode,
            UidScheme::SharedAccount,
        );
        section(&format!(
            "policy IR: {platform} ({} subjects, {} channels)",
            model.subjects.len(),
            model.channels.len()
        ));
        print!("{}", model.render());
    }

    // -----------------------------------------------------------------
    // 2. The predicted attack matrix.
    // -----------------------------------------------------------------
    section("predicted attack matrix (static; no simulation)");
    println!(
        "{:<12} {:<22} {:<12} {:<9} {:<12} {:<12} agrees?",
        "platform", "attack", "attacker", "delivers", "compromise", "paper"
    );
    rule();
    let mut cells = 0usize;
    let mut agreements = 0usize;
    for cell in predicted_matrix(UidScheme::SharedAccount) {
        let paper = paper_expectation(cell.platform, cell.attacker, cell.attack);
        let agrees = expectation(&cell.verdict) == paper;
        cells += 1;
        agreements += usize::from(agrees);
        println!(
            "{:<12} {:<22} {:<12} {:<9} {:<12} {:<12} {}",
            cell.platform.to_string(),
            cell.attack.to_string(),
            cell.attacker.to_string(),
            verdict(cell.verdict.mechanism_delivers, "yes", "no"),
            verdict(cell.verdict.compromised, "COMPROMISE", "contained"),
            format!("{paper:?}"),
            verdict(agrees, "yes", "** NO **"),
        );
    }
    rule();
    println!("static-vs-paper agreement: {agreements}/{cells} cells");
    assert_eq!(agreements, cells, "every static cell must match the paper");

    // -----------------------------------------------------------------
    // 3. The lint reports.
    // -----------------------------------------------------------------
    for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
        let model = model_for(
            platform,
            AttackerModel::ArbitraryCode,
            UidScheme::SharedAccount,
        );
        let findings = lint(&model, &justification);
        section(&format!("lint: {platform} ({} findings)", findings.len()));
        for f in &findings {
            println!(
                "{:<7} {:<26} {:<16} {:<28} {}",
                f.severity.to_string(),
                f.code,
                f.subject,
                f.object,
                f.detail
            );
        }
    }

    // The hardened Linux scheme lints dramatically cleaner — that *is*
    // the paper's "specifically configured" queue discussion.
    let shared = model_for(
        Platform::Linux,
        AttackerModel::ArbitraryCode,
        UidScheme::SharedAccount,
    );
    let hardened = model_for(
        Platform::Linux,
        AttackerModel::ArbitraryCode,
        UidScheme::PerProcessHardened,
    );
    // Error-or-high: untrusted-subject findings escalate to `error`, so
    // the comparison counts both tiers of the broken security argument.
    let severe = |findings: &[bas_analysis::Finding]| {
        findings
            .iter()
            .filter(|f| f.severity <= Severity::High)
            .count()
    };
    let shared_high = severe(&lint(&shared, &justification));
    let hardened_high = severe(&lint(&hardened, &justification));
    section("uid-scheme lint comparison");
    println!("shared-account error/high findings:      {shared_high}");
    println!("per-process-hardened error/high:         {hardened_high}");
    assert!(
        shared_high > hardened_high,
        "hardening must reduce error/high-severity findings"
    );
    assert_eq!(
        hardened_high, 0,
        "hardened scheme lints clean at error/high severity"
    );

    // -----------------------------------------------------------------
    // 4. Ablations: the static verdicts flip with the policy.
    // -----------------------------------------------------------------
    section("ablation predictions (static analogues of exp_ablation_acm / exp_ablation_caps)");
    let permissive = permissive_acm();
    let scenario_m = minix_model(AttackerModel::ArbitraryCode, None, None);
    let permissive_m = minix_model(AttackerModel::ArbitraryCode, Some(&permissive), None);
    for (label, model) in [
        ("scenario ACM", &scenario_m),
        ("permissive ACM", &permissive_m),
    ] {
        for attack in [AttackId::SpoofSensorData, AttackId::SpoofActuatorCommands] {
            let v = predict(model, attack);
            println!(
                "minix {:<15} {:<22} -> {:?}  ({})",
                label,
                attack.to_string(),
                expectation(&v),
                v.rationale
            );
        }
    }
    let spoof = predict(&permissive_m, AttackId::SpoofActuatorCommands);
    assert!(
        spoof.compromised,
        "permissive ACM must re-open the actuator attack statically"
    );
    assert_eq!(
        expectation(&predict(&scenario_m, AttackId::SpoofActuatorCommands)),
        Expectation::Stopped
    );

    let stray = vec![
        ExtraCap {
            holder: instances::WEB,
            endpoint_of: (instances::HEATER, "cmd"),
            rights: CapRights::WRITE_GRANT,
            badge: 99,
        },
        ExtraCap {
            holder: instances::WEB,
            endpoint_of: (instances::ALARM, "cmd"),
            rights: CapRights::WRITE_GRANT,
            badge: 99,
        },
    ];
    let clean_m = sel4_model(AttackerModel::ArbitraryCode, &[]);
    let ablated_m = sel4_model(AttackerModel::ArbitraryCode, &stray);
    for (label, model) in [("clean CapDL", &clean_m), ("stray caps", &ablated_m)] {
        let v = predict(model, AttackId::SpoofActuatorCommands);
        println!(
            "sel4  {:<15} {:<22} -> {:?}  ({})",
            label,
            AttackId::SpoofActuatorCommands.to_string(),
            expectation(&v),
            v.rationale
        );
    }
    assert!(
        predict(&ablated_m, AttackId::SpoofActuatorCommands).compromised,
        "stray capabilities must flip the static verdict"
    );
    let stray_findings: Vec<_> = lint(&ablated_m, &justification)
        .into_iter()
        .filter(|f| {
            f.severity == Severity::Error
                && f.code == "over-granted-capability"
                && f.subject == instances::WEB
        })
        .collect();
    assert_eq!(stray_findings.len(), 2, "linter flags both stray caps");
    println!(
        "lint on the ablated spec: {} high-severity finding(s) against {}",
        stray_findings.len(),
        instances::WEB
    );

    // -----------------------------------------------------------------
    // 5. The CI gate: every configuration whose security argument the
    //    repo defends must lint free of error-severity findings; any
    //    error exits nonzero so ci.sh fails the build. The shared-account
    //    scheme is the paper's deliberately broken baseline — its errors
    //    prove the detector fires, and are reported but not gated.
    // -----------------------------------------------------------------
    section("lint gate (any error-severity finding in a secure configuration fails the audit)");
    let errors_in = |model: &bas_analysis::PolicyModel| -> Vec<bas_analysis::Finding> {
        lint(model, &justification)
            .into_iter()
            .filter(|f| f.severity == Severity::Error)
            .collect()
    };
    let mut gate_failures = 0usize;
    for (label, model) in [
        ("minix scenario ACM", &scenario_m),
        ("sel4 clean CapDL", &clean_m),
        ("linux per-process-hardened", &hardened),
    ] {
        let errors = errors_in(model);
        println!(
            "{label:<28} {} error finding(s) {}",
            errors.len(),
            verdict(errors.is_empty(), "[ok]", "[GATE FAILURE]"),
        );
        for f in &errors {
            println!("    {} {} {} {}", f.code, f.subject, f.object, f.detail);
        }
        gate_failures += errors.len();
    }
    let baseline_errors = errors_in(&shared).len();
    println!(
        "linux shared-account baseline: {baseline_errors} error finding(s) (expected > 0; \
         demonstrates the gate detects the seeded misconfiguration)"
    );
    assert!(
        baseline_errors > 0,
        "the broken baseline must trip the error detector"
    );

    // -----------------------------------------------------------------
    // 6. Machine-readable lint output: the findings report wraps the
    //    serialized findings (already severity/subject/object-ordered by
    //    the linter) with the closed attack-class vocabulary, including
    //    the capability-flow classes. Kept as the last section before
    //    the conclusion: consumers slice the JSON between the header
    //    below and `=== conclusion`.
    // -----------------------------------------------------------------
    section("lint findings as JSON (linux shared-account)");
    let report = findings_report_json(&lint(&shared, &justification));
    assert!(
        report.contains("kernel-object-masquerade")
            && report.contains("derived-capability-escalation"),
        "the report schema must enumerate the capability-flow attack classes"
    );
    assert!(
        report.contains("capability-race") && report.contains("use-after-revoke"),
        "the report schema must enumerate the churn-race attack classes"
    );
    println!("{report}");

    section("conclusion");
    println!(
        "the attack matrix is a function of the policy artifacts alone: lowering ACM, CapDL\n\
         and mq-ACLs into one channel graph predicts every dynamic outcome (see the\n\
         static_vs_dynamic tests for the cell-by-cell cross-validation), and the linter\n\
         localizes exactly the grants whose removal flips a cell."
    );

    if gate_failures > 0 {
        eprintln!(
            "exp_policy_audit: {gate_failures} error-severity finding(s) in secure configurations"
        );
        std::process::exit(1);
    }
}

/// Every application pair open, PM rows unchanged — as in
/// `exp_ablation_acm`.
fn permissive_acm() -> bas_acm::AccessControlMatrix {
    use bas_core::proto::{AC_ALARM, AC_CONTROL, AC_HEATER, AC_SCENARIO, AC_SENSOR, AC_WEB};
    use bas_minix::pm;
    let ids = [AC_SENSOR, AC_CONTROL, AC_HEATER, AC_ALARM, AC_WEB];
    let mut b = bas_acm::AccessControlMatrix::builder();
    for s in ids {
        for r in ids {
            if s != r {
                b = b.allow_all_types(s, r);
            }
        }
    }
    b = pm::allow_pm_ops(b, AC_WEB, [pm::PM_FORK2, pm::PM_GETPID]);
    for ac in [AC_SENSOR, AC_CONTROL, AC_HEATER, AC_ALARM] {
        b = pm::allow_pm_ops(b, ac, [pm::PM_GETPID]);
    }
    b = pm::allow_pm_ops(
        b,
        AC_SCENARIO,
        [
            pm::PM_FORK2,
            pm::PM_SRV_FORK2,
            pm::PM_KILL,
            pm::PM_EXIT,
            pm::PM_GETPID,
        ],
    );
    b.build()
}
