//! Self-repair on MINIX: fault injection plus the reincarnation-style
//! supervisor. The paper's reference [7] ("MINIX 3: A highly reliable,
//! self-repairing operating system") motivates choosing MINIX for
//! resilience; these tests exercise that story inside the scenario.
//!
//! Crashes are injected through [`PlatformKernel::inject_crash`] — the
//! same hook `bas-faults` campaigns use — instead of the removed
//! `heater_crash_after`-style build overrides, so the victim dies at a
//! scheduled virtual time rather than after a resume count.

use bas_core::engine::PlatformKernel;
use bas_core::platform::minix::{build_minix, MinixOverrides};
use bas_core::proto::names;
use bas_core::scenario::{critical_alive, Scenario, ScenarioConfig};
use bas_sim::time::SimDuration;

/// Heater driver crashes mid-run; without supervision the fan freezes and
/// the controller can only escalate to the alarm.
#[test]
fn heater_crash_without_supervision_degrades_but_alarms() {
    let mut s = build_minix(&ScenarioConfig::quiet(), MinixOverrides::default());
    // Let the loop close, then crash the heater a few minutes in.
    s.run_for(SimDuration::from_mins(3));
    assert!(s.stack.inject_crash(names::HEATER), "heater was alive");
    s.run_for(SimDuration::from_mins(12));
    assert!(
        !critical_alive(&s),
        "heater stays dead without a supervisor"
    );
    let switches_mid = s.plant().borrow().fan().switch_count();

    s.run_for(SimDuration::from_mins(15));
    let plant = s.plant();
    let plant = plant.borrow();
    // The fan is frozen in whatever state the driver died in; no further
    // actuation happens.
    assert_eq!(
        plant.fan().switch_count(),
        switches_mid,
        "fan no longer responds"
    );
    // The safety property itself still holds: either the frozen state
    // keeps the room in band, or the surviving controller escalates to
    // the alarm within the deadline.
    let report = plant.safety_report();
    assert!(
        report.is_safe(),
        "alarm escalation covers the frozen fan: {report:?}"
    );
    if (plant.temperature_c() - 22.0).abs() > 1.0 {
        assert!(plant.alarm().is_on(), "out of band requires the alarm");
    }
}

/// With the supervisor, the crashed heater is reincarnated and control
/// resumes fully.
#[test]
fn heater_crash_with_supervision_recovers_control() {
    let overrides = MinixOverrides {
        supervise: true,
        ..MinixOverrides::default()
    };
    let mut s = build_minix(&ScenarioConfig::quiet(), overrides);
    s.run_for(SimDuration::from_mins(3));
    assert!(s.stack.inject_crash(names::HEATER), "heater was alive");
    s.run_for(SimDuration::from_mins(27));

    assert!(
        critical_alive(&s),
        "supervisor reincarnated the heater: {:?}",
        s.alive_names()
    );
    let plant = s.plant();
    let plant = plant.borrow();
    assert!(
        (21.0..=23.0).contains(&plant.temperature_c()),
        "control fully restored: temp {:.2}",
        plant.temperature_c()
    );
    assert!(plant.safety_report().is_safe());
    assert!(!plant.alarm().is_on(), "no lingering alarm after recovery");
}

/// Even the controller itself can crash and be reincarnated; the sensor
/// re-resolves the restarted controller's new endpoint generation and the
/// loop closes again.
#[test]
fn controller_crash_with_supervision_recovers() {
    let overrides = MinixOverrides {
        supervise: true,
        ..MinixOverrides::default()
    };
    let mut s = build_minix(&ScenarioConfig::quiet(), overrides);
    s.run_for(SimDuration::from_mins(2));
    assert!(s.stack.inject_crash(names::CONTROL), "controller was alive");
    s.run_for(SimDuration::from_mins(28));

    assert!(
        critical_alive(&s),
        "controller reincarnated: {:?}",
        s.alive_names()
    );
    let plant = s.plant();
    let plant = plant.borrow();
    assert!(
        (21.0..=23.0).contains(&plant.temperature_c()),
        "regulation resumed: temp {:.2}",
        plant.temperature_c()
    );
    assert!(plant.safety_report().is_safe());
    // The fan kept cycling after the restart (the loop really closed).
    assert!(
        plant.fan().switch_count() >= 4,
        "fan cycles: {}",
        plant.fan().switch_count()
    );
}

/// The supervisor does not fight healthy processes: with no fault
/// injected, a supervised run is byte-equivalent in behavior to the
/// baseline (no spurious restarts).
#[test]
fn supervisor_is_quiescent_when_everything_is_healthy() {
    let overrides = MinixOverrides {
        supervise: true,
        ..MinixOverrides::default()
    };
    let mut s = build_minix(&ScenarioConfig::quiet(), overrides);
    s.run_for(SimDuration::from_mins(10));

    // 6 processes created at boot (5 scenario + loader) + the supervisor;
    // nothing more.
    assert_eq!(
        s.metrics().processes_created,
        7,
        "no spurious reincarnations"
    );
    assert!(critical_alive(&s));
    let names: Vec<String> = s.alive_names();
    assert!(names.contains(&"supervisor".to_string()));
    assert!(names.contains(&names::CONTROL.to_string()));
}

/// The supervisor itself is killable only through authorized channels —
/// and since the web interface has no KILL row to PM, even a root-level
/// compromise cannot disable self-repair.
#[test]
fn supervisor_survives_and_keeps_watching_under_repeated_faults() {
    // Crash the heater, let the supervisor fix it; the re-forked driver
    // runs clean (transient-fault model), so one reincarnation suffices —
    // but the supervisor keeps polling without churning processes.
    let overrides = MinixOverrides {
        supervise: true,
        ..MinixOverrides::default()
    };
    let mut s = build_minix(&ScenarioConfig::quiet(), overrides);
    s.run_for(SimDuration::from_mins(3));
    assert!(s.stack.inject_crash(names::HEATER), "heater was alive");
    s.run_for(SimDuration::from_mins(57));

    assert!(critical_alive(&s));
    assert!(s.alive_names().contains(&"supervisor".to_string()));
    // Exactly one reincarnation: boot (6) + supervisor (1) + re-forked
    // heater (1) = 8 creations over a full hour.
    assert_eq!(s.metrics().processes_created, 8, "no restart loops");
    let plant = s.plant();
    assert!(plant.borrow().safety_report().is_safe());
}

/// A crash injected against a name that is not alive reports failure
/// instead of silently succeeding.
#[test]
fn inject_crash_unknown_name_is_reported() {
    let mut s = build_minix(&ScenarioConfig::quiet(), MinixOverrides::default());
    s.run_for(SimDuration::from_mins(1));
    assert!(!s.stack.inject_crash("no_such_process"));
    // PM is not a user process and cannot be crashed through the hook.
    assert!(!s.stack.inject_crash("pm"));
}
