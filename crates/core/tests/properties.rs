//! Property-based tests for the protocol codecs and the control core.

use bas_core::logic::control::{ControlConfig, ControlCore, Directive};
use bas_core::proto::BasMsg;
use bas_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_msg() -> impl Strategy<Value = BasMsg> {
    prop_oneof![
        (any::<i32>(), any::<u32>())
            .prop_map(|(milli_c, seq)| BasMsg::SensorReading { milli_c, seq }),
        any::<bool>().prop_map(|on| BasMsg::FanCmd { on }),
        any::<bool>().prop_map(|on| BasMsg::AlarmCmd { on }),
        any::<i32>().prop_map(|milli_c| BasMsg::SetpointUpdate { milli_c }),
        Just(BasMsg::StatusQuery),
        any::<u32>().prop_map(|code| BasMsg::Ack { code }),
        (any::<i32>(), any::<i32>(), any::<bool>(), any::<bool>()).prop_map(
            |(temp_milli_c, setpoint_milli_c, fan_on, alarm_on)| BasMsg::Status {
                temp_milli_c,
                setpoint_milli_c,
                fan_on,
                alarm_on,
            }
        ),
    ]
}

proptest! {
    /// Every protocol message round-trips through the MINIX encoding.
    #[test]
    fn proto_minix_roundtrip(msg in arb_msg()) {
        let (mtype, payload) = msg.to_minix();
        prop_assert_eq!(BasMsg::from_minix(mtype, &payload), Ok(msg));
    }

    /// ...and through the Linux byte encoding.
    #[test]
    fn proto_bytes_roundtrip(msg in arb_msg()) {
        prop_assert_eq!(BasMsg::from_bytes(&msg.to_bytes()), Ok(msg));
    }

    /// Truncation semantics are deterministic zero-fill: decoding a
    /// truncated message equals decoding the original with its tail
    /// zeroed (or fails cleanly when even the tag is cut).
    #[test]
    fn proto_bytes_truncation_is_zero_fill(msg in arb_msg(), cut in 0usize..24) {
        let bytes = msg.to_bytes();
        let cut = cut.min(bytes.len());
        let truncated = BasMsg::from_bytes(&bytes[..cut]);
        if cut < 4 {
            prop_assert!(truncated.is_err(), "tag missing must fail");
        } else {
            let mut padded = bytes[..cut].to_vec();
            padded.resize(bytes.len(), 0);
            prop_assert_eq!(truncated, BasMsg::from_bytes(&padded));
        }
    }

    /// Fan directives respect hysteresis: no command is issued while the
    /// reading stays strictly inside the hysteresis window.
    #[test]
    fn control_no_chatter_inside_hysteresis(
        readings in prop::collection::vec(21_800i32..22_200, 1..100),
    ) {
        let mut core = ControlCore::new(ControlConfig::default()); // 22.0 ± 0.3 hysteresis
        for (i, r) in readings.iter().enumerate() {
            let d = core.on_sensor_reading(
                SimTime::ZERO + SimDuration::from_secs(i as u64),
                *r,
            );
            prop_assert!(
                !d.iter().any(|x| matches!(x, Directive::SetFan(_))),
                "fan command for in-window reading {r}"
            );
        }
    }

    /// The alarm directive never fires before the configured deadline of
    /// continuous excursion, and always fires once the excursion exceeds
    /// it (for a constant out-of-band signal).
    #[test]
    fn control_alarm_exactly_at_deadline(excess in 1_100i32..8_000, period_s in 1u64..10) {
        let config = ControlConfig::default(); // band 1.0, deadline 300 s
        let mut core = ControlCore::new(config);
        let reading = config.setpoint_milli_c + excess;
        let deadline_s = 300u64;
        let mut t = 0u64;
        let mut alarm_at: Option<u64> = None;
        while t <= deadline_s + 2 * period_s {
            let d = core.on_sensor_reading(
                SimTime::ZERO + SimDuration::from_secs(t),
                reading,
            );
            if d.contains(&Directive::SetAlarm(true)) {
                alarm_at = Some(t);
                break;
            }
            t += period_s;
        }
        let fired = alarm_at.expect("alarm must fire after the deadline");
        prop_assert!(fired >= deadline_s, "fired early at {fired}s");
        prop_assert!(fired <= deadline_s + period_s, "fired late at {fired}s");
    }

    /// Setpoint updates preserve the invariant that the active setpoint
    /// is always within the configured range.
    #[test]
    fn control_setpoint_always_in_range(updates in prop::collection::vec(any::<i32>(), 0..50)) {
        let config = ControlConfig::default();
        let mut core = ControlCore::new(config);
        for (i, u) in updates.iter().enumerate() {
            let _ = core.on_setpoint_update(
                SimTime::ZERO + SimDuration::from_secs(i as u64),
                *u,
            );
            let sp = core.status().setpoint_milli_c;
            prop_assert!(sp >= config.min_setpoint_milli_c && sp <= config.max_setpoint_milli_c);
        }
    }

    /// Directives are edge-triggered: replaying the same reading twice
    /// never produces the same actuator command twice in a row.
    #[test]
    fn control_directives_are_edges(readings in prop::collection::vec(15_000i32..30_000, 1..60)) {
        let mut core = ControlCore::new(ControlConfig::default());
        let mut last_fan: Option<bool> = None;
        let mut last_alarm: Option<bool> = None;
        for (i, r) in readings.iter().enumerate() {
            for d in core.on_sensor_reading(
                SimTime::ZERO + SimDuration::from_secs(i as u64),
                *r,
            ) {
                match d {
                    Directive::SetFan(on) => {
                        prop_assert_ne!(Some(on), last_fan, "duplicate fan command");
                        last_fan = Some(on);
                    }
                    Directive::SetAlarm(on) => {
                        prop_assert_ne!(Some(on), last_alarm, "duplicate alarm command");
                        last_alarm = Some(on);
                    }
                }
            }
        }
    }
}

proptest! {
    /// The HTTP parser never panics and classifies every input into one
    /// of its four outcomes (the compromise surface is total).
    #[test]
    fn http_parser_is_total(line in ".{0,200}") {
        let _ = bas_core::logic::http::parse_request(&line);
    }

    /// Round trip: every in-range setpoint value survives the HTTP
    /// encoding the administrator's browser would produce.
    #[test]
    fn http_setpoint_roundtrip(milli_c in any::<i32>()) {
        use bas_core::logic::http::{parse_request, HttpRequestOutcome};
        use bas_core::logic::web::WebAction;
        let line = format!("POST /setpoint?milli_c={milli_c} HTTP/1.1");
        prop_assert_eq!(
            parse_request(&line),
            HttpRequestOutcome::Action(WebAction::SetSetpoint(milli_c))
        );
    }
}
