//! E1 (Fig. 2) end-to-end: the benign scenario regulates temperature on
//! all three platforms — control converges, no safety violation, the
//! administrator's web session works.

use bas_core::platform::linux::{build_linux, LinuxOverrides};
use bas_core::platform::minix::{build_minix, MinixOverrides};
use bas_core::platform::sel4::{build_sel4, Sel4Overrides};
use bas_core::proto::BasMsg;
use bas_core::scenario::{critical_alive, Scenario, ScenarioConfig};
use bas_sim::time::SimDuration;

fn assert_baseline_healthy(scenario: &mut dyn Scenario) {
    scenario.run_for(SimDuration::from_mins(30));

    let plant = scenario.plant();
    let plant = plant.borrow();

    // The controller regulates: final temperature inside the band.
    let temp = plant.temperature_c();
    assert!(
        (21.0..=23.0).contains(&temp),
        "[{}] temperature {temp:.2}°C escaped the band",
        scenario.platform()
    );

    // The fan actually cycled (equilibria are 33°C fan-off / 21°C fan-on,
    // so holding 22°C requires switching).
    assert!(
        plant.fan().switch_count() >= 2,
        "[{}] fan never cycled",
        scenario.platform()
    );

    // No alarm and no safety violation in the benign run.
    let report = plant.safety_report();
    assert!(
        report.is_safe(),
        "[{}] safety violated: {report:?}",
        scenario.platform()
    );
    assert!(
        !plant.alarm().is_on(),
        "[{}] spurious alarm",
        scenario.platform()
    );

    // All critical processes alive.
    assert!(
        critical_alive(scenario),
        "[{}] lost a critical process",
        scenario.platform()
    );

    // Messages flowed.
    assert!(
        scenario.metrics().ipc_messages > 100,
        "[{}] ipc starved",
        scenario.platform()
    );
}

#[test]
fn minix_baseline_regulates_and_stays_safe() {
    let mut s = build_minix(&ScenarioConfig::quiet(), MinixOverrides::default());
    assert_baseline_healthy(&mut s);
    // No denials in a benign run.
    assert_eq!(s.trace_count("acm.deny"), 0);
}

#[test]
fn sel4_baseline_regulates_and_stays_safe() {
    let mut s = build_sel4(&ScenarioConfig::quiet(), Sel4Overrides::default());
    assert_baseline_healthy(&mut s);
    assert_eq!(s.trace_count("cap.deny"), 0);
}

#[test]
fn linux_baseline_regulates_and_stays_safe() {
    let mut s = build_linux(&ScenarioConfig::quiet(), LinuxOverrides::default());
    assert_baseline_healthy(&mut s);
    assert_eq!(s.trace_count("dac.deny"), 0);
}

#[test]
fn minix_web_session_changes_setpoint() {
    let config = ScenarioConfig::default(); // setpoint 24°C at t=1200s, query at 2400s
    let mut s = build_minix(&config, MinixOverrides::default());
    s.run_for(SimDuration::from_secs(2_700));

    let responses = s.web_responses();
    assert!(
        responses.contains(&BasMsg::Ack { code: 0 }),
        "setpoint change acknowledged: {responses:?}"
    );
    let status = responses.iter().find_map(|r| match r {
        BasMsg::Status {
            setpoint_milli_c, ..
        } => Some(*setpoint_milli_c),
        _ => None,
    });
    assert_eq!(status, Some(24_000), "status reflects the new setpoint");

    // The plant converged toward the new 24°C reference.
    let plant = s.plant();
    let temp = plant.borrow().temperature_c();
    assert!(
        (23.0..=25.0).contains(&temp),
        "temp {temp:.2} near new setpoint"
    );
    assert!(plant.borrow().safety_report().is_safe());
}

#[test]
fn sel4_web_session_changes_setpoint() {
    let config = ScenarioConfig::default();
    let mut s = build_sel4(&config, Sel4Overrides::default());
    s.run_for(SimDuration::from_secs(2_700));

    let responses = s.web_responses();
    assert!(
        responses.contains(&BasMsg::Ack { code: 0 }),
        "{responses:?}"
    );
    let status = responses.iter().find_map(|r| match r {
        BasMsg::Status {
            setpoint_milli_c, ..
        } => Some(*setpoint_milli_c),
        _ => None,
    });
    assert_eq!(status, Some(24_000));
    let plant = s.plant();
    let temp = plant.borrow().temperature_c();
    assert!((23.0..=25.0).contains(&temp), "temp {temp:.2}");
}

#[test]
fn linux_web_session_changes_setpoint() {
    let config = ScenarioConfig::default();
    let mut s = build_linux(&config, LinuxOverrides::default());
    s.run_for(SimDuration::from_secs(2_700));

    let responses = s.web_responses();
    assert!(
        responses.contains(&BasMsg::Ack { code: 0 }),
        "{responses:?}"
    );
    let status = responses.iter().find_map(|r| match r {
        BasMsg::Status {
            setpoint_milli_c, ..
        } => Some(*setpoint_milli_c),
        _ => None,
    });
    assert_eq!(status, Some(24_000));
    let plant = s.plant();
    let temp = plant.borrow().temperature_c();
    assert!((23.0..=25.0).contains(&temp), "temp {temp:.2}");
}

#[test]
fn out_of_range_setpoint_rejected_everywhere() {
    use bas_core::logic::web::WebAction;
    use bas_sim::time::SimTime;

    let mut config = ScenarioConfig::quiet();
    config.web_schedule = vec![(
        SimTime::ZERO + SimDuration::from_secs(60),
        WebAction::SetSetpoint(95_000),
    )];

    let mut minix = build_minix(&config, MinixOverrides::default());
    minix.run_for(SimDuration::from_secs(300));
    assert!(
        minix.web_responses().contains(&BasMsg::Ack { code: 1 }),
        "minix rejects"
    );

    let mut sel4 = build_sel4(&config, Sel4Overrides::default());
    sel4.run_for(SimDuration::from_secs(300));
    assert!(
        sel4.web_responses().contains(&BasMsg::Ack { code: 1 }),
        "sel4 rejects"
    );

    let mut linux = build_linux(&config, LinuxOverrides::default());
    linux.run_for(SimDuration::from_secs(300));
    assert!(
        linux.web_responses().contains(&BasMsg::Ack { code: 1 }),
        "linux rejects"
    );

    // And the physical world stayed regulated at 22°C on all three.
    for (name, plant) in [
        ("minix", minix.plant()),
        ("sel4", sel4.plant()),
        ("linux", linux.plant()),
    ] {
        let temp = plant.borrow().temperature_c();
        assert!((21.0..=23.0).contains(&temp), "{name}: temp {temp:.2}");
    }
}

#[test]
fn sel4_boot_verifies_against_capdl_and_stays_clean() {
    use bas_capdl::verify::verify;

    let mut s = build_sel4(&ScenarioConfig::quiet(), Sel4Overrides::default());
    s.run_for(SimDuration::from_mins(5));
    // After five minutes of serving RPCs, the live capability state still
    // matches the compiled CapDL spec exactly: no capability drift.
    let issues = verify(&s.stack.spec, &s.stack.kernel, &s.stack.sys);
    assert_eq!(issues, vec![], "capability state drifted during operation");
}

#[test]
fn hardened_linux_baseline_also_works() {
    use bas_core::platform::linux::UidScheme;
    let overrides = LinuxOverrides {
        uid_scheme: UidScheme::PerProcessHardened,
        ..LinuxOverrides::default()
    };
    let mut s = build_linux(&ScenarioConfig::quiet(), overrides);
    s.run_for(SimDuration::from_mins(10));
    assert!(critical_alive(&s));
    let plant = s.plant();
    let temp = plant.borrow().temperature_c();
    assert!((21.0..=23.0).contains(&temp), "temp {temp:.2}");
    assert_eq!(
        s.trace_count("dac.deny"),
        0,
        "legitimate flows all pass the hardened modes"
    );
}

#[test]
fn minix_controller_writes_environment_log() {
    // §IV-A: "At the end of the while loop, environment information will
    // be written in a log file." The controller keeps a status snapshot
    // in its (grant-capable) memory buffer; inspect it post-run.
    use bas_core::platform::minix::CONTROL_LOG_SIZE;
    use bas_minix::grant::BufId;

    let mut s = build_minix(&ScenarioConfig::quiet(), MinixOverrides::default());
    s.run_for(SimDuration::from_mins(10));

    let ctrl_ep = s
        .stack
        .kernel
        .endpoint_of(bas_core::proto::names::CONTROL)
        .expect("controller alive");
    let log = s
        .stack
        .kernel
        .read_process_buffer(ctrl_ep, BufId(0), 0, CONTROL_LOG_SIZE)
        .expect("log buffer exists");

    let t_secs = u32::from_le_bytes(log[0..4].try_into().unwrap());
    let reading = i32::from_le_bytes(log[4..8].try_into().unwrap());
    let setpoint = i32::from_le_bytes(log[8..12].try_into().unwrap());
    assert!(t_secs >= 540, "recent snapshot (t={t_secs}s)");
    assert!(
        (21_000..=23_000).contains(&reading),
        "logged reading {reading}"
    );
    assert_eq!(setpoint, 22_000);
}

#[test]
fn soak_eight_simulated_hours_stays_regulated() {
    // Long-horizon stability: no drift, no resource runaway, no spurious
    // alarms over 8 simulated hours of quiet operation.
    let mut s = build_minix(&ScenarioConfig::quiet(), MinixOverrides::default());
    s.run_for(SimDuration::from_mins(8 * 60));
    let plant = s.plant();
    let plant = plant.borrow();
    assert!((21.0..=23.0).contains(&plant.temperature_c()));
    assert!(plant.safety_report().is_safe());
    assert!(plant.safety_report().in_band_fraction > 0.99);
    assert!(critical_alive(&s));
    assert_eq!(
        s.stack.kernel.trace().dropped(),
        0,
        "trace stayed within capacity"
    );
    assert_eq!(s.metrics().processes_created, 6, "no process churn");
}
