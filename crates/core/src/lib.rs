//! # bas-core — the paper's temperature-control scenario
//!
//! The application layer of the reproduction: the five-process BAS
//! scenario of the paper's Fig. 2 (temperature control, temperature
//! sensor, heater actuator, alarm actuator, web interface), implemented
//! once as pure logic and ported to all three platforms:
//!
//! - [`logic`] — the platform-independent control core and the benign
//!   web-interface schedule,
//! - [`proto`] — the shared wire protocol and `ac_id` numbering,
//! - [`policy`] — the ACM, quotas, device ownership, CAmkES assembly,
//!   Linux queue set, and the canonical AADL source they all derive from,
//! - [`platform::minix`] / [`platform::sel4`] / [`platform::linux`] —
//!   per-platform process implementations and the bootable kernel stacks,
//! - [`engine`] — the [`engine::PlatformKernel`] trait every stack
//!   implements and the generic [`engine::ScenarioEngine`] lockstep
//!   runner (one implementation of setup/step/aggregate for all three),
//! - [`scenario`] — configuration and the cross-platform [`Scenario`]
//!   interface used by experiments and the attack harness,
//! - [`semantics`] — the [`semantics::StepSemantics`] transition-relation
//!   abstraction the `bas-analysis` model checker explores.
//!
//! ```no_run
//! use bas_core::platform::minix::{build_minix, MinixOverrides};
//! use bas_core::scenario::{critical_alive, Scenario, ScenarioConfig};
//! use bas_sim::time::SimDuration;
//!
//! let mut scenario = build_minix(&ScenarioConfig::default(), MinixOverrides::default());
//! scenario.run_for(SimDuration::from_mins(30));
//! assert!(critical_alive(&scenario));
//! assert!(scenario.plant().borrow().safety_report().is_safe());
//! ```

pub mod engine;
pub mod logic;
pub mod platform;
pub mod policy;
pub mod proto;
pub mod scenario;
pub mod semantics;
pub mod snapshot;

pub use engine::{boot_platform, PlatformKernel, ScenarioEngine};
pub use proto::BasMsg;
pub use scenario::{
    critical_alive, plant_snapshot, PlantSnapshot, Platform, Scenario, ScenarioConfig,
};
pub use semantics::StepSemantics;
pub use snapshot::EngineSnapshot;
