//! Per-platform process adapters and scenario builders.

pub mod linux;
pub mod minix;
pub mod sel4;
