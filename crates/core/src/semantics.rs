//! An explicit transition relation over scenario state.
//!
//! The dynamic half of the repo drives each platform stack through the
//! fixed lockstep schedule of [`crate::engine::ScenarioEngine`]: one
//! deterministic interleaving per seed. The security argument of the
//! paper, however, quantifies over *all* interleavings — no sequence of
//! web-interface actions may disturb the control loop. This module
//! factors the step into the shape a model checker needs: a state type,
//! an `enabled_actions` relation, and a pure `apply` function, so an
//! explorer can enumerate schedules instead of following one.
//!
//! The concrete kernel stacks cannot implement this trait directly —
//! their process objects are stateful boxed trait objects that cannot be
//! cloned or hashed — so `bas-analysis` implements it over an *abstract*
//! model whose transitions are adjudicated by the same policy artifacts
//! (ACM, CapDL spec, mq ACLs) the stacks enforce at runtime, and a
//! replay harness bridges counterexamples back into the real engine.
//!
//! The two optional hooks ([`StepSemantics::is_visible`],
//! [`StepSemantics::independent`]) feed partial-order reduction; their
//! defaults are maximally conservative (everything visible, nothing
//! independent), which disables reduction but never soundness.

use std::hash::Hash;

/// A transition relation with explicit states and actions.
///
/// Implementations must be *pure*: `apply` may not observe anything but
/// its arguments, and `enabled_actions` must be deterministic for a
/// given state (the explorer relies on both for deduplication and
/// counterexample replay).
pub trait StepSemantics {
    /// A global state. `Hash + Eq` enables hashed-state deduplication;
    /// states should therefore be small value types.
    type State: Clone + Hash + Eq;
    /// One atomic transition label.
    type Action: Clone + PartialEq;

    /// The unique initial state.
    fn initial_state(&self) -> Self::State;

    /// All actions enabled in `state`, in a deterministic order.
    /// An empty vector marks a terminal state.
    fn enabled_actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// The successor of `state` under `action`. Only called with actions
    /// returned by [`StepSemantics::enabled_actions`] for that state.
    fn apply(&self, state: &Self::State, action: &Self::Action) -> Self::State;

    /// Whether `action`, taken from `state`, can change the truth of any
    /// property the checker observes. Visible actions are never deferred
    /// by partial-order reduction. Conservative default: everything is
    /// visible.
    fn is_visible(&self, _state: &Self::State, _action: &Self::Action) -> bool {
        true
    }

    /// Whether two co-enabled actions commute (neither reads or writes
    /// state the other writes, and neither enables/disables the other).
    /// Conservative default: nothing is independent.
    fn independent(&self, _a: &Self::Action, _b: &Self::Action) -> bool {
        false
    }

    /// The process an action belongs to, for ample-set grouping. Actions
    /// of the same process are never reordered against each other.
    fn owner(&self, _action: &Self::Action) -> usize {
        0
    }
}

/// Replays an action sequence from the initial state, checking that each
/// action is enabled where it is taken. Returns the visited states
/// (including the initial one) or `None` if the trace is infeasible —
/// the correctness condition for counterexample minimization.
pub fn replay_trace<S: StepSemantics>(sem: &S, trace: &[S::Action]) -> Option<Vec<S::State>> {
    let mut states = Vec::with_capacity(trace.len() + 1);
    let mut current = sem.initial_state();
    for action in trace {
        if !sem.enabled_actions(&current).contains(action) {
            return None;
        }
        let next = sem.apply(&current, action);
        states.push(std::mem::replace(&mut current, next));
    }
    states.push(current);
    Some(states)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-counter toy system: each counter can step to 2.
    struct TwoCounters;

    impl StepSemantics for TwoCounters {
        type State = (u8, u8);
        type Action = usize;

        fn initial_state(&self) -> Self::State {
            (0, 0)
        }

        fn enabled_actions(&self, s: &Self::State) -> Vec<usize> {
            let mut acts = Vec::new();
            if s.0 < 2 {
                acts.push(0);
            }
            if s.1 < 2 {
                acts.push(1);
            }
            acts
        }

        fn apply(&self, s: &Self::State, a: &usize) -> Self::State {
            match a {
                0 => (s.0 + 1, s.1),
                _ => (s.0, s.1 + 1),
            }
        }

        fn independent(&self, a: &usize, b: &usize) -> bool {
            a != b
        }

        fn owner(&self, a: &usize) -> usize {
            *a
        }
    }

    #[test]
    fn replay_follows_enabled_actions() {
        let sem = TwoCounters;
        let states = replay_trace(&sem, &[0, 1, 0, 1]).expect("feasible");
        assert_eq!(states.len(), 5);
        assert_eq!(*states.last().unwrap(), (2, 2));
    }

    #[test]
    fn replay_rejects_infeasible_traces() {
        let sem = TwoCounters;
        assert!(replay_trace(&sem, &[0, 0, 0]).is_none(), "counter capped");
    }

    #[test]
    fn conservative_defaults() {
        let sem = TwoCounters;
        let s = sem.initial_state();
        assert!(sem.is_visible(&s, &0), "default: everything visible");
    }
}
