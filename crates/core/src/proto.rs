//! The BAS wire protocol shared by all three platform implementations.
//!
//! Message-type numbers double as the ACM's authorization unit on MINIX
//! ("we use the message type field to represent different remote procedure
//! calls"), as RPC labels on seL4/CAmkES, and as payload tags on Linux.
//! Access-control identities follow the paper's §IV numbering
//! ("TempSensorProcess.imp is 100, and TempControlProcess.imp is 101
//! etc.").

use bas_acm::AcId;
use bas_minix::message::Payload;
use serde::{Deserialize, Serialize};

/// `ac_id` of the temperature sensor process.
pub const AC_SENSOR: AcId = AcId::new(100);
/// `ac_id` of the temperature control process.
pub const AC_CONTROL: AcId = AcId::new(101);
/// `ac_id` of the heater (fan) actuator process.
pub const AC_HEATER: AcId = AcId::new(102);
/// `ac_id` of the alarm actuator process.
pub const AC_ALARM: AcId = AcId::new(103);
/// `ac_id` of the web interface process (the untrusted one).
pub const AC_WEB: AcId = AcId::new(104);
/// `ac_id` of the scenario loader process.
pub const AC_SCENARIO: AcId = AcId::new(105);

/// Acknowledgment / reply (type 0, per the paper's convention).
pub const MT_ACK: u32 = 0;
/// Sensor reading: sensor → control.
pub const MT_SENSOR_READING: u32 = 1;
/// Fan command: control → heater actuator.
pub const MT_FAN_CMD: u32 = 2;
/// Alarm command: control → alarm actuator.
pub const MT_ALARM_CMD: u32 = 3;
/// Setpoint update: web → control.
pub const MT_SETPOINT: u32 = 4;
/// Status query: web → control.
pub const MT_STATUS_QUERY: u32 = 5;

/// Process names, used for name-service lookups and trace matching.
pub mod names {
    /// The temperature sensor driver.
    pub const SENSOR: &str = "temp_sensor";
    /// The temperature control process.
    pub const CONTROL: &str = "temp_control";
    /// The heater/fan actuator driver.
    pub const HEATER: &str = "heater_actuator";
    /// The alarm actuator driver.
    pub const ALARM: &str = "alarm_actuator";
    /// The web interface.
    pub const WEB: &str = "web_interface";
    /// The scenario loader.
    pub const SCENARIO: &str = "scenario";
}

/// A decoded protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BasMsg {
    /// Periodic reading from the sensor driver.
    SensorReading {
        /// Temperature in milli-°C.
        milli_c: i32,
        /// Monotonic sequence number.
        seq: u32,
    },
    /// Command to the fan actuator.
    FanCmd {
        /// Desired state.
        on: bool,
    },
    /// Command to the alarm actuator.
    AlarmCmd {
        /// Desired state.
        on: bool,
    },
    /// Administrator setpoint change.
    SetpointUpdate {
        /// New setpoint in milli-°C.
        milli_c: i32,
    },
    /// Status request from the web interface.
    StatusQuery,
    /// Plain acknowledgment with a result code (0 = ok).
    Ack {
        /// 0 for success, protocol-specific error code otherwise.
        code: u32,
    },
    /// Status report (sent as an ack-class reply).
    Status {
        /// Last sensor reading, milli-°C.
        temp_milli_c: i32,
        /// Current setpoint, milli-°C.
        setpoint_milli_c: i32,
        /// Fan state believed by the controller.
        fan_on: bool,
        /// Alarm state believed by the controller.
        alarm_on: bool,
    },
}

/// Decode failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoError {
    /// The message type / tag that failed to decode.
    pub tag: u32,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed bas message with tag {}", self.tag)
    }
}

impl std::error::Error for ProtoError {}

// Ack-class subtags (within message type 0).
const SUB_ACK: u32 = 0;
const SUB_STATUS: u32 = 2;

impl BasMsg {
    /// Encodes for MINIX: `(message type, payload)`.
    pub fn to_minix(self) -> (u32, Payload) {
        let mut p = Payload::zeroed();
        match self {
            BasMsg::SensorReading { milli_c, seq } => {
                p.write_i32(0, milli_c);
                p.write_u32(4, seq);
                (MT_SENSOR_READING, p)
            }
            BasMsg::FanCmd { on } => {
                p.write_u32(0, u32::from(on));
                (MT_FAN_CMD, p)
            }
            BasMsg::AlarmCmd { on } => {
                p.write_u32(0, u32::from(on));
                (MT_ALARM_CMD, p)
            }
            BasMsg::SetpointUpdate { milli_c } => {
                p.write_i32(0, milli_c);
                (MT_SETPOINT, p)
            }
            BasMsg::StatusQuery => (MT_STATUS_QUERY, p),
            BasMsg::Ack { code } => {
                p.write_u32(0, SUB_ACK);
                p.write_u32(4, code);
                (MT_ACK, p)
            }
            BasMsg::Status {
                temp_milli_c,
                setpoint_milli_c,
                fan_on,
                alarm_on,
            } => {
                p.write_u32(0, SUB_STATUS);
                p.write_i32(4, temp_milli_c);
                p.write_i32(8, setpoint_milli_c);
                p.write_u32(12, u32::from(fan_on));
                p.write_u32(16, u32::from(alarm_on));
                (MT_ACK, p)
            }
        }
    }

    /// Decodes from MINIX message type + payload.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError`] for unknown types or subtags.
    pub fn from_minix(mtype: u32, p: &Payload) -> Result<BasMsg, ProtoError> {
        Ok(match mtype {
            MT_SENSOR_READING => BasMsg::SensorReading {
                milli_c: p.read_i32(0),
                seq: p.read_u32(4),
            },
            MT_FAN_CMD => BasMsg::FanCmd {
                on: p.read_u32(0) != 0,
            },
            MT_ALARM_CMD => BasMsg::AlarmCmd {
                on: p.read_u32(0) != 0,
            },
            MT_SETPOINT => BasMsg::SetpointUpdate {
                milli_c: p.read_i32(0),
            },
            MT_STATUS_QUERY => BasMsg::StatusQuery,
            MT_ACK => match p.read_u32(0) {
                SUB_ACK => BasMsg::Ack {
                    code: p.read_u32(4),
                },
                SUB_STATUS => BasMsg::Status {
                    temp_milli_c: p.read_i32(4),
                    setpoint_milli_c: p.read_i32(8),
                    fan_on: p.read_u32(12) != 0,
                    alarm_on: p.read_u32(16) != 0,
                },
                other => return Err(ProtoError { tag: other }),
            },
            other => return Err(ProtoError { tag: other }),
        })
    }

    /// Encodes for Linux message queues: a tagged byte string. Note the
    /// deliberate absence of any sender field — mq messages have no
    /// identity, which is the spoofing attack's entry point.
    pub fn to_bytes(self) -> Vec<u8> {
        let (tag, payload) = self.to_minix();
        let mut out = Vec::with_capacity(12);
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&payload.as_bytes()[..20]);
        out
    }

    /// Decodes from Linux mq bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError`] for truncated or unknown messages.
    pub fn from_bytes(bytes: &[u8]) -> Result<BasMsg, ProtoError> {
        if bytes.len() < 4 {
            return Err(ProtoError { tag: u32::MAX });
        }
        let tag = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
        let body = &bytes[4..];
        let n = body.len().min(bas_minix::message::PAYLOAD_LEN);
        let p = Payload::from_bytes(&body[..n]);
        BasMsg::from_minix(tag, &p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [BasMsg; 7] = [
        BasMsg::SensorReading {
            milli_c: -12_345,
            seq: 42,
        },
        BasMsg::FanCmd { on: true },
        BasMsg::AlarmCmd { on: false },
        BasMsg::SetpointUpdate { milli_c: 23_500 },
        BasMsg::StatusQuery,
        BasMsg::Ack { code: 7 },
        BasMsg::Status {
            temp_milli_c: 21_900,
            setpoint_milli_c: 22_000,
            fan_on: true,
            alarm_on: false,
        },
    ];

    #[test]
    fn minix_roundtrip_all_variants() {
        for msg in ALL {
            let (mtype, payload) = msg.to_minix();
            assert_eq!(BasMsg::from_minix(mtype, &payload), Ok(msg), "{msg:?}");
        }
    }

    #[test]
    fn bytes_roundtrip_all_variants() {
        for msg in ALL {
            let bytes = msg.to_bytes();
            assert_eq!(BasMsg::from_bytes(&bytes), Ok(msg), "{msg:?}");
        }
    }

    #[test]
    fn unknown_type_rejected() {
        assert!(BasMsg::from_minix(99, &Payload::zeroed()).is_err());
        assert!(BasMsg::from_bytes(&[99, 0, 0, 0]).is_err());
        assert!(BasMsg::from_bytes(&[1]).is_err(), "truncated");
    }

    #[test]
    fn ack_and_status_share_type_zero() {
        let (t1, _) = BasMsg::Ack { code: 0 }.to_minix();
        let (t2, _) = BasMsg::Status {
            temp_milli_c: 0,
            setpoint_milli_c: 0,
            fan_on: false,
            alarm_on: false,
        }
        .to_minix();
        assert_eq!(t1, MT_ACK);
        assert_eq!(t2, MT_ACK);
    }

    #[test]
    fn ac_ids_match_paper_numbering() {
        assert_eq!(AC_SENSOR.as_u32(), 100);
        assert_eq!(AC_CONTROL.as_u32(), 101);
        assert_eq!(AC_WEB.as_u32(), 104);
    }
}
