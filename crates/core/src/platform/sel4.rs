//! The scenario on seL4/CAmkES (§IV-B).
//!
//! The assembly from [`crate::policy::scenario_assembly`] is compiled to a
//! CapDL spec, realized as the bootstrap process would, and *verified*
//! against the spec before any thread runs ("for high-assurance systems
//! this file can also be machine verified"). All IPC is `seL4RPCCall`
//! RPC — chosen by the paper "to avoid a scenario where the malicious web
//! interface could indefinitely block one of the temperature controller's
//! threads". The controller authenticates callers by endpoint badge, the
//! kernel-enforced identity of the capability system.

use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use bas_camkes::codegen::{compile, GlueMap};
use bas_camkes::glue::{RpcClient, RpcRequest, RpcServer};
use bas_capdl::realize::{realize, RealizedSystem};
use bas_capdl::spec::CapDlSpec;
use bas_capdl::verify::verify;
use bas_plant::devices::install_devices;
use bas_plant::world::PlantWorld;
use bas_plant::SharedPlant;
use bas_sel4::cap::CPtr;
use bas_sel4::kernel::{Sel4Config, Sel4Kernel, Sel4Thread};
use bas_sel4::syscall::{Reply, Syscall};
use bas_sim::metrics::KernelMetrics;
use bas_sim::process::{Action, Process};
use bas_sim::time::{SimDuration, SimTime};

use crate::engine::{PlatformKernel, ScenarioEngine};
use crate::logic::control::{ControlCore, Directive};
use crate::logic::web::{
    new_request_log, shared_schedule, RequestLog, RequestSample, ScheduleCursor, SharedSchedule,
    WebAction, WebSchedule,
};
use crate::policy::{self, actuator_rpc, ctrl_rpc, instances};
use crate::proto::BasMsg;
use crate::scenario::{new_web_log, Platform, ScenarioConfig, WebLog};

fn encode_i32(v: i32) -> u64 {
    u64::from(v as u32)
}

fn decode_i32(w: u64) -> i32 {
    w as u32 as i32
}

// ---------------------------------------------------------------------------
// Controller thread
// ---------------------------------------------------------------------------

/// The temperature controller as an RPC server plus actuator RPC client.
pub struct Sel4Control {
    core: ControlCore,
    server: RpcServer,
    fan: RpcClient,
    alarm: RpcClient,
    sensor_badge: u64,
    web_badge: u64,
    pending: Option<RpcRequest>,
    outbox: VecDeque<Syscall>,
    state: CtrlSt,
}

enum CtrlSt {
    Start,
    AwaitRecv,
    AwaitTime,
    Drain,
}

impl Sel4Control {
    /// Creates the controller thread from its glue slots and badges.
    pub fn new(
        core: ControlCore,
        server: RpcServer,
        fan: RpcClient,
        alarm: RpcClient,
        sensor_badge: u64,
        web_badge: u64,
    ) -> Self {
        Sel4Control {
            core,
            server,
            fan,
            alarm,
            sensor_badge,
            web_badge,
            pending: None,
            outbox: VecDeque::new(),
            state: CtrlSt::Start,
        }
    }

    fn handle(&mut self, req: RpcRequest, now: SimTime) {
        match req.label {
            ctrl_rpc::REPORT_READING => {
                // Badge authentication: only the sensor's connection may
                // report readings. A compromised web interface calling
                // with a forged label still carries *its own* badge.
                if req.badge != self.sensor_badge || req.args.is_empty() {
                    self.outbox.push_back(self.server.reply(1, vec![]));
                    return;
                }
                let milli_c = decode_i32(req.args[0]);
                for d in self.core.on_sensor_reading(now, milli_c) {
                    match d {
                        Directive::SetFan(on) => self
                            .outbox
                            .push_back(self.fan.call(actuator_rpc::SET, vec![u64::from(on)])),
                        Directive::SetAlarm(on) => self
                            .outbox
                            .push_back(self.alarm.call(actuator_rpc::SET, vec![u64::from(on)])),
                    }
                }
                self.outbox.push_back(self.server.reply(0, vec![]));
            }
            ctrl_rpc::SET_SETPOINT => {
                if req.badge != self.web_badge || req.args.is_empty() {
                    self.outbox.push_back(self.server.reply(1, vec![]));
                    return;
                }
                let code = match self.core.on_setpoint_update(now, decode_i32(req.args[0])) {
                    Ok(()) => 0u64,
                    Err(_) => 1u64,
                };
                let actual = encode_i32(self.core.status().setpoint_milli_c);
                // The reply label doubles as the result code so callers
                // (and the attack evidence classifier) see validation
                // failures at the RPC layer.
                self.outbox
                    .push_back(self.server.reply(code, vec![code, actual]));
            }
            ctrl_rpc::GET_STATUS => {
                if req.badge != self.web_badge {
                    self.outbox.push_back(self.server.reply(1, vec![]));
                    return;
                }
                let s = self.core.status();
                self.outbox.push_back(self.server.reply(
                    0,
                    vec![
                        encode_i32(s.last_reading_milli_c),
                        encode_i32(s.setpoint_milli_c),
                        u64::from(s.fan_on),
                        u64::from(s.alarm_on),
                    ],
                ));
            }
            _ => self.outbox.push_back(self.server.reply(1, vec![])),
        }
    }
}

impl Process for Sel4Control {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, mut reply: Option<Reply>) -> Action<Syscall> {
        loop {
            match self.state {
                CtrlSt::Start => {
                    self.state = CtrlSt::AwaitRecv;
                    return Action::Syscall(self.server.next_request());
                }
                CtrlSt::AwaitRecv => match reply.take() {
                    Some(Reply::Msg(m)) => {
                        self.pending = Some(self.server.decode(&m));
                        self.state = CtrlSt::AwaitTime;
                        return Action::Syscall(Syscall::GetTime);
                    }
                    _ => return Action::Syscall(self.server.next_request()),
                },
                CtrlSt::AwaitTime => {
                    let now = match reply.take() {
                        Some(Reply::Time(t)) => t,
                        _ => SimTime::ZERO,
                    };
                    if let Some(req) = self.pending.take() {
                        self.handle(req, now);
                    }
                    self.state = CtrlSt::Drain;
                }
                CtrlSt::Drain => match self.outbox.pop_front() {
                    // Actuator-call errors (e.g. suspended driver) are
                    // tolerated; the controller keeps serving.
                    Some(sys) => return Action::Syscall(sys),
                    None => {
                        self.state = CtrlSt::AwaitRecv;
                        return Action::Syscall(self.server.next_request());
                    }
                },
            }
        }
    }

    fn name(&self) -> &str {
        instances::CONTROL
    }
}

// ---------------------------------------------------------------------------
// Sensor thread
// ---------------------------------------------------------------------------

/// The sensor driver thread: read the device frame, `seL4_Call` the
/// controller, sleep, repeat.
pub struct Sel4Sensor {
    dev: CPtr,
    ctrl: RpcClient,
    period: SimDuration,
    seq: u32,
    state: SensorSt,
}

enum SensorSt {
    Start,
    AwaitDevRead,
    AwaitCall,
    AwaitSleep,
}

impl Sel4Sensor {
    /// Creates the sensor thread.
    pub fn new(dev: CPtr, ctrl: RpcClient, period: SimDuration) -> Self {
        Sel4Sensor {
            dev,
            ctrl,
            period,
            seq: 0,
            state: SensorSt::Start,
        }
    }
}

impl Process for Sel4Sensor {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match self.state {
            SensorSt::Start => {
                self.state = SensorSt::AwaitDevRead;
                Action::Syscall(Syscall::DevRead { dev: self.dev })
            }
            SensorSt::AwaitDevRead => match reply {
                Some(Reply::DevValue(v)) => {
                    self.seq += 1;
                    self.state = SensorSt::AwaitCall;
                    Action::Syscall(self.ctrl.call(
                        ctrl_rpc::REPORT_READING,
                        vec![encode_i32(v as i32), u64::from(self.seq)],
                    ))
                }
                _ => Action::Exit(1),
            },
            SensorSt::AwaitCall => {
                // The RPC reply content is an ack; errors (controller
                // restart) just mean a dropped sample.
                self.state = SensorSt::AwaitSleep;
                Action::Syscall(Syscall::Sleep {
                    duration: self.period,
                })
            }
            SensorSt::AwaitSleep => {
                self.state = SensorSt::AwaitDevRead;
                Action::Syscall(Syscall::DevRead { dev: self.dev })
            }
        }
    }

    fn name(&self) -> &str {
        instances::SENSOR
    }
}

// ---------------------------------------------------------------------------
// Actuator threads
// ---------------------------------------------------------------------------

/// An actuator driver thread: serve `set(on)` RPCs, drive the device
/// frame, reply.
pub struct Sel4Actuator {
    server: RpcServer,
    dev: CPtr,
    which: &'static str,
    state: ActSt,
}

enum ActSt {
    Start,
    AwaitRecv,
    AwaitWrite,
    AwaitReply,
}

impl Sel4Actuator {
    /// Creates an actuator thread (`which` is its instance name).
    pub fn new(server: RpcServer, dev: CPtr, which: &'static str) -> Self {
        Sel4Actuator {
            server,
            dev,
            which,
            state: ActSt::Start,
        }
    }
}

impl Process for Sel4Actuator {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match self.state {
            ActSt::Start => {
                self.state = ActSt::AwaitRecv;
                Action::Syscall(self.server.next_request())
            }
            ActSt::AwaitRecv => match reply {
                Some(Reply::Msg(m)) => {
                    let req = self.server.decode(&m);
                    if req.label == actuator_rpc::SET && !req.args.is_empty() {
                        self.state = ActSt::AwaitWrite;
                        Action::Syscall(Syscall::DevWrite {
                            dev: self.dev,
                            value: i64::from(req.args[0] != 0),
                        })
                    } else {
                        self.state = ActSt::AwaitReply;
                        Action::Syscall(self.server.reply(1, vec![]))
                    }
                }
                _ => Action::Syscall(self.server.next_request()),
            },
            ActSt::AwaitWrite => {
                self.state = ActSt::AwaitReply;
                Action::Syscall(self.server.reply(0, vec![]))
            }
            ActSt::AwaitReply => {
                self.state = ActSt::AwaitRecv;
                Action::Syscall(self.server.next_request())
            }
        }
    }

    fn name(&self) -> &str {
        self.which
    }
}

// ---------------------------------------------------------------------------
// Web interface thread (benign)
// ---------------------------------------------------------------------------

/// The benign web interface thread: scripted administrator RPCs.
///
/// Same-tick bursts drain in one wake (back-to-back RPCs with no
/// intervening `GetTime`), and completed requests are stamped into the
/// optional [`RequestLog`] at the next clock read — see [`MinixWeb`]
/// for the shared rationale.
///
/// [`MinixWeb`]: crate::platform::minix::MinixWeb
pub struct Sel4Web {
    ctrl: RpcClient,
    schedule: ScheduleCursor,
    responses: WebLog,
    requests: Option<RequestLog>,
    pending: VecDeque<(SimTime, WebAction)>,
    inflight: Option<(SimTime, WebAction)>,
    unstamped: Vec<(SimTime, WebAction, bool)>,
    state: WebSt,
}

enum WebSt {
    Start,
    AwaitTime,
    AwaitSleep,
    AwaitRpc,
}

impl Sel4Web {
    /// Creates the benign web interface over a private schedule copy.
    pub fn new(ctrl: RpcClient, schedule: WebSchedule, responses: WebLog) -> Self {
        Sel4Web::with_cursor(ctrl, ScheduleCursor::detached(&schedule), responses, None)
    }

    /// Creates the benign web interface over a shared schedule cell,
    /// stamping completed requests into `requests`.
    pub fn with_cursor(
        ctrl: RpcClient,
        schedule: ScheduleCursor,
        responses: WebLog,
        requests: Option<RequestLog>,
    ) -> Self {
        Sel4Web {
            ctrl,
            schedule,
            responses,
            requests,
            pending: VecDeque::new(),
            inflight: None,
            unstamped: Vec::new(),
            state: WebSt::Start,
        }
    }

    fn send_next(&mut self) -> Action<Syscall> {
        let (scheduled, action) = self.pending.pop_front().expect("pending action");
        self.inflight = Some((scheduled, action));
        self.state = WebSt::AwaitRpc;
        match action {
            WebAction::SetSetpoint(mc) => {
                Action::Syscall(self.ctrl.call(ctrl_rpc::SET_SETPOINT, vec![encode_i32(mc)]))
            }
            WebAction::QueryStatus => Action::Syscall(self.ctrl.call(ctrl_rpc::GET_STATUS, vec![])),
        }
    }

    fn stamp_completions(&mut self, now: SimTime) {
        if self.unstamped.is_empty() {
            return;
        }
        if let Some(log) = &self.requests {
            let mut log = log.borrow_mut();
            for &(scheduled, action, ok) in &self.unstamped {
                log.push(RequestSample {
                    scheduled,
                    completed: now,
                    action,
                    ok,
                });
            }
        }
        self.unstamped.clear();
    }
}

impl Process for Sel4Web {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match self.state {
            WebSt::Start => {
                self.state = WebSt::AwaitTime;
                Action::Syscall(Syscall::GetTime)
            }
            WebSt::AwaitTime => {
                let now = match reply {
                    Some(Reply::Time(t)) => t,
                    _ => SimTime::ZERO,
                };
                self.stamp_completions(now);
                if self.pending.is_empty() {
                    let mut due = Vec::new();
                    self.schedule.drain_due(now, &mut due);
                    self.pending.extend(due);
                }
                if !self.pending.is_empty() {
                    return self.send_next();
                }
                match self.schedule.next_time() {
                    None => {
                        self.state = WebSt::AwaitSleep;
                        Action::Syscall(Syscall::Sleep {
                            duration: SimDuration::from_secs(3_600),
                        })
                    }
                    Some(t) => {
                        self.state = WebSt::AwaitSleep;
                        Action::Syscall(Syscall::Sleep { duration: t - now })
                    }
                }
            }
            WebSt::AwaitSleep => {
                self.state = WebSt::AwaitTime;
                Action::Syscall(Syscall::GetTime)
            }
            WebSt::AwaitRpc => {
                let mut ok = false;
                if let Some(Reply::Msg(m)) = reply {
                    let decoded = match self.inflight {
                        Some((_, WebAction::SetSetpoint(_))) if !m.words.is_empty() => {
                            Some(BasMsg::Ack {
                                code: m.words[0] as u32,
                            })
                        }
                        Some((_, WebAction::QueryStatus)) if m.words.len() >= 4 => {
                            Some(BasMsg::Status {
                                temp_milli_c: decode_i32(m.words[0]),
                                setpoint_milli_c: decode_i32(m.words[1]),
                                fan_on: m.words[2] != 0,
                                alarm_on: m.words[3] != 0,
                            })
                        }
                        _ => None,
                    };
                    if let Some(d) = decoded {
                        self.responses.borrow_mut().push(d);
                        ok = true;
                    }
                }
                if let Some((scheduled, action)) = self.inflight.take() {
                    self.unstamped.push((scheduled, action, ok));
                }
                if !self.pending.is_empty() {
                    return self.send_next();
                }
                self.state = WebSt::AwaitTime;
                Action::Syscall(Syscall::GetTime)
            }
        }
    }

    fn name(&self) -> &str {
        instances::WEB
    }
}

// ---------------------------------------------------------------------------
// Builder + runner
// ---------------------------------------------------------------------------

/// An extra capability deliberately granted after bootstrap — the
/// capability-misconfiguration ablation (the paper's security argument is
/// exactly that policy, not the kernel alone, provides the protection).
pub struct ExtraCap {
    /// The thread (instance name) receiving the capability.
    pub holder: &'static str,
    /// The endpoint to grant, named as `(server instance, interface)`.
    pub endpoint_of: (&'static str, &'static str),
    /// Rights on the granted capability.
    pub rights: bas_sel4::rights::CapRights,
    /// Badge on the granted capability.
    pub badge: u64,
}

/// Factory producing the web-interface thread from the glue map.
pub type WebThreadFactory = Box<dyn FnOnce(&GlueMap) -> Sel4Thread>;

/// Build-time knobs used by the attack harness.
#[derive(Default)]
pub struct Sel4Overrides {
    /// Replaces the web interface thread. The factory receives the glue
    /// map — the paper grants the attacker "access to the capability
    /// distribution information" (the CapDL file).
    pub web_factory: Option<WebThreadFactory>,
    /// Extra capability grants applied after boot-time verification.
    pub extra_caps: Vec<ExtraCap>,
    /// Pre-compiled CapDL artifacts shared behind `Arc` — the
    /// snapshot-fork boot path, where a fleet of instances realizes one
    /// compiled spec instead of re-running the CAmkES compiler per boot.
    pub compiled: Option<(Arc<CapDlSpec>, Arc<GlueMap>)>,
}

/// The booted seL4/CAmkES stack: kernel, compiled CapDL artifacts, plant,
/// and web log.
pub struct Sel4Stack {
    /// The simulated kernel (public for experiment introspection).
    pub kernel: Sel4Kernel,
    /// The compiled CapDL spec (for live verification experiments).
    /// `Arc`: boot-time state, shareable across forked instances.
    pub spec: Arc<CapDlSpec>,
    /// Bootstrap name maps.
    pub sys: RealizedSystem,
    /// Slot/badge layout. `Arc`: boot-time state, shareable across forks.
    pub glue: Arc<GlueMap>,
    plant: SharedPlant,
    web_log: WebLog,
    /// The effective action schedule, shared with the benign web thread
    /// and re-imaged per instance on recycling (the thread realized at
    /// boot holds a cursor over this cell, so the pristine fast path —
    /// which skips re-realization — still picks up new traffic).
    web_schedule: SharedSchedule,
    /// Completed-request stamps from the benign web thread.
    web_requests: RequestLog,
    /// False when attacker overrides (web factory, extra caps) booted
    /// this stack: those are one-shot, so a recycled kernel cannot
    /// guarantee cold-boot identity.
    forkable: bool,
    /// True once anything mutated the kernel after boot. While false the
    /// stack is still the boot template verbatim (the seed only reaches
    /// the plant), so recycling skips the kernel reset and re-realize.
    ran: bool,
}

impl Sel4Stack {
    /// Resolves an instance-level churn op into a kernel-level CDT sweep:
    /// the subject thread's capabilities to every endpoint the
    /// destination instance serves (`ep_<dest>_<iface>` in the realized
    /// CapDL spec). Returns `None` when either side doesn't resolve.
    fn churn_sweep(&self, op: &bas_sim::caps::CapChurnOp) -> Option<bas_sel4::kernel::ChurnSweep> {
        use bas_sel4::rights::CapRights;
        use bas_sim::caps::ChurnKind;

        let holder = *self.sys.threads.get(&op.subject)?;
        let prefix = format!("ep_{}_", op.object);
        let objs: Vec<_> = self
            .sys
            .objects
            .iter()
            .filter(|(name, _)| name.starts_with(&prefix))
            .map(|(_, &id)| id)
            .collect();
        if objs.is_empty() {
            return None;
        }
        let (rights, badge) = match op.kind {
            // A re-grant restores the client's RPC rights under its
            // original badge, so the server's caller authentication
            // still recognizes it.
            ChurnKind::Grant => {
                let badge = self.glue.badge_of(&op.subject, "ctrl").unwrap_or(0);
                (CapRights::WRITE_GRANT, badge)
            }
            ChurnKind::Attenuate => (CapRights::READ, 0),
            ChurnKind::Revoke => (CapRights::NONE, 0),
        };
        Some(bas_sel4::kernel::ChurnSweep {
            kind: op.kind,
            actor: op.actor.clone(),
            holder,
            objs,
            rights,
            badge,
        })
    }
}

/// A running seL4 scenario: the generic engine over [`Sel4Stack`].
pub type Sel4Scenario = ScenarioEngine<Sel4Stack>;

/// Builds and boots the scenario on seL4/CAmkES.
///
/// # Panics
///
/// Panics if the compiled system fails its boot-time CapDL verification —
/// that would mean the toolchain itself is broken.
pub fn build_sel4(config: &ScenarioConfig, overrides: Sel4Overrides) -> Sel4Scenario {
    ScenarioEngine::boot(config, overrides)
}

fn boot_sel4(config: &ScenarioConfig, overrides: Sel4Overrides) -> Sel4Stack {
    let (spec, glue) = match overrides.compiled {
        Some((spec, glue)) => (spec, glue),
        None => {
            let assembly = policy::scenario_assembly();
            let (spec, glue) = compile(&assembly).expect("scenario assembly is valid");
            (Arc::new(spec), Arc::new(glue))
        }
    };

    let plant: SharedPlant = Rc::new(std::cell::RefCell::new(PlantWorld::new(
        config.synced_plant(),
        config.seed,
    )));

    let mut kernel = Sel4Kernel::new(Sel4Config {
        max_threads: config.max_procs,
        cost_model: config.cost_model,
        ..Sel4Config::default()
    });
    install_devices(&plant, kernel.devices_mut());

    let web_log = new_web_log();
    let web_schedule = shared_schedule(config.effective_web_schedule());
    let web_requests = new_request_log();
    let forkable = overrides.web_factory.is_none() && overrides.extra_caps.is_empty();
    let mut loader = scenario_loader(
        config,
        glue.clone(),
        web_log.clone(),
        web_schedule.clone(),
        web_requests.clone(),
        overrides.web_factory,
    );

    let sys = realize(&spec, &mut kernel, &mut loader).expect("scenario realizes");

    // Boot-time machine verification of the capability distribution.
    let issues = verify(&spec, &kernel, &sys);
    assert!(
        issues.is_empty(),
        "boot-time capdl verification failed: {issues:?}"
    );

    // Deliberate misconfigurations for ablation experiments.
    for extra in overrides.extra_caps {
        let pid = sys.threads[extra.holder];
        let obj_name = format!("ep_{}_{}", extra.endpoint_of.0, extra.endpoint_of.1);
        let obj = sys.objects[obj_name.as_str()];
        kernel
            .grant_cap(
                pid,
                bas_sel4::cap::Capability::to_object(obj, extra.rights, extra.badge),
            )
            .expect("ablation cap fits");
    }

    for name in [
        instances::CONTROL,
        instances::HEATER,
        instances::ALARM,
        instances::SENSOR,
        instances::WEB,
    ] {
        kernel.start_thread(sys.threads[name]);
    }

    Sel4Stack {
        kernel,
        spec,
        sys,
        glue,
        plant,
        web_log,
        web_schedule,
        web_requests,
        forkable,
        ran: false,
    }
}

/// The boot-time thread loader over a compiled glue map, shared verbatim
/// between cold boot and [`PlatformKernel::reset_to_boot`]: the realizer
/// calls it once per CapDL instance, in spec order.
fn scenario_loader(
    config: &ScenarioConfig,
    glue: Arc<GlueMap>,
    web_log: WebLog,
    web_schedule: SharedSchedule,
    web_requests: RequestLog,
    mut web_factory: Option<WebThreadFactory>,
) -> impl FnMut(&str) -> Option<Sel4Thread> {
    let control_config = config.control;
    let period = config.sensor_period;
    move |name: &str| -> Option<Sel4Thread> {
        let g = &*glue;
        match name {
            x if x == instances::CONTROL => Some(Box::new(Sel4Control::new(
                ControlCore::new(control_config),
                RpcServer::new(g.server_slot(instances::CONTROL, "ctrl")?),
                RpcClient::new(g.client_slot(instances::CONTROL, "fan")?),
                RpcClient::new(g.client_slot(instances::CONTROL, "alarm")?),
                g.badge_of(instances::SENSOR, "ctrl")?,
                g.badge_of(instances::WEB, "ctrl")?,
            ))),
            x if x == instances::SENSOR => Some(Box::new(Sel4Sensor::new(
                g.device_slot(instances::SENSOR, "temp")?,
                RpcClient::new(g.client_slot(instances::SENSOR, "ctrl")?),
                period,
            ))),
            x if x == instances::HEATER => Some(Box::new(Sel4Actuator::new(
                RpcServer::new(g.server_slot(instances::HEATER, "cmd")?),
                g.device_slot(instances::HEATER, "fan")?,
                instances::HEATER,
            ))),
            x if x == instances::ALARM => Some(Box::new(Sel4Actuator::new(
                RpcServer::new(g.server_slot(instances::ALARM, "cmd")?),
                g.device_slot(instances::ALARM, "alarm")?,
                instances::ALARM,
            ))),
            x if x == instances::WEB => match web_factory.take() {
                Some(factory) => Some(factory(g)),
                None => Some(Box::new(Sel4Web::with_cursor(
                    RpcClient::new(g.client_slot(instances::WEB, "ctrl")?),
                    ScheduleCursor::new(web_schedule.clone()),
                    web_log.clone(),
                    Some(web_requests.clone()),
                ))),
            },
            _ => None,
        }
    }
}

impl PlatformKernel for Sel4Stack {
    const PLATFORM: Platform = Platform::Sel4;
    type Overrides = Sel4Overrides;

    fn boot(config: &ScenarioConfig, overrides: Sel4Overrides) -> Self {
        boot_sel4(config, overrides)
    }

    fn now(&self) -> SimTime {
        self.kernel.now()
    }

    fn run_until(&mut self, target: SimTime) {
        self.ran = true;
        self.kernel.run_until(target);
    }

    fn plant(&self) -> SharedPlant {
        self.plant.clone()
    }

    fn metrics(&self) -> KernelMetrics {
        *self.kernel.metrics()
    }

    fn alive_names(&self) -> Vec<String> {
        self.kernel.alive_thread_names()
    }

    fn trace_count(&self, category: &str) -> usize {
        self.kernel.trace().events_in(category).count()
    }

    fn web_responses(&self) -> Vec<BasMsg> {
        self.web_log.borrow().clone()
    }

    fn web_requests(&self) -> Vec<RequestSample> {
        self.web_requests.borrow().clone()
    }

    fn reset_to_boot(&mut self, config: &ScenarioConfig) -> bool {
        if !self.forkable {
            return false;
        }
        // Re-image the shared schedule cell first: under traffic the
        // schedule is seed-derived, and the realized web thread (on the
        // pristine path below, the *boot-time* thread with its cursor
        // still at the front) reads this cell lazily.
        *self.web_schedule.borrow_mut() = config.effective_web_schedule();
        if self.ran {
            self.kernel.reset_to_boot();
            // Re-realize the shared spec: objects and threads come back in
            // spec order, so ids and CSpace layouts match a cold boot. The
            // boot-time CapDL verification is skipped — `verify` is a pure
            // function of (spec, kernel, sys), all reconstructed identically
            // to the template boot that already passed it.
            let mut loader = scenario_loader(
                config,
                self.glue.clone(),
                self.web_log.clone(),
                self.web_schedule.clone(),
                self.web_requests.clone(),
                None,
            );
            self.sys =
                realize(&self.spec, &mut self.kernel, &mut loader).expect("scenario realizes");
            for name in [
                instances::CONTROL,
                instances::HEATER,
                instances::ALARM,
                instances::SENSOR,
                instances::WEB,
            ] {
                self.kernel.start_thread(self.sys.threads[name]);
            }
            self.ran = false;
        }
        // A never-stepped kernel is still the boot image verbatim (the
        // seed only reaches the plant). Re-seed the plant in place: the
        // `Rc` identity is what the installed plant devices hold.
        *self.plant.borrow_mut() = PlantWorld::new(config.synced_plant(), config.seed);
        self.web_log.borrow_mut().clear();
        self.web_requests.borrow_mut().clear();
        true
    }

    fn devices_mut(&mut self) -> &mut bas_sim::device::DeviceBus {
        // Interposed fault devices survive a kernel reset, so recycling
        // can no longer promise cold-boot identity.
        self.forkable = false;
        self.kernel.devices_mut()
    }

    fn inject_crash(&mut self, name: &str) -> bool {
        self.ran = true;
        self.kernel.kill_named(name)
    }

    fn arm_ipc_fault(&mut self, fault: bas_sim::fault::IpcFault, count: u32) {
        self.ran = true;
        self.kernel.ipc_faults_mut().arm(fault, count);
    }

    fn ipc_faults_applied(&self) -> u64 {
        self.kernel.ipc_faults().applied()
    }

    fn skew_clock(&mut self, d: bas_sim::time::SimDuration) {
        self.ran = true;
        self.kernel.skew_clock(d);
    }

    fn apply_cap_churn(&mut self, op: &bas_sim::caps::CapChurnOp) -> bool {
        self.ran = true;
        match self.churn_sweep(op) {
            Some(sweep) => self.kernel.apply_churn_sweep(&sweep),
            None => false,
        }
    }

    fn arm_cap_churn(&mut self, op: &bas_sim::caps::CapChurnOp, after_checks: u32) {
        self.ran = true;
        if let Some(sweep) = self.churn_sweep(op) {
            self.kernel.arm_churn_sweep(sweep, after_checks);
        }
    }

    fn enable_cap_trace(&mut self) {
        self.ran = true;
        self.kernel.enable_cap_trace();
    }

    fn cap_trace(&self) -> bas_sim::caps::CapTrace {
        self.kernel.cap_trace()
    }
}
