//! The scenario on security-enhanced MINIX 3 (§IV-A).
//!
//! Faithful to the paper's process structure: a *scenario* loader process
//! forks the five application processes through PM `fork2` messages,
//! assigning each its `ac_id`; the sensor pushes readings with
//! non-blocking sends; the controller is a receive loop that commands the
//! drivers over rendezvous sends; the web interface performs RPCs via
//! `sendrec`; the kernel checks the ACM on every hop.

use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use bas_acm::AccessControlMatrix;
use bas_minix::endpoint::Endpoint;
use bas_minix::error::MinixError;
use bas_minix::kernel::{MinixConfig, MinixKernel, MinixProcess};
use bas_minix::message::Message;
use bas_minix::pm;
use bas_minix::syscall::{Reply, Syscall};
use bas_plant::devices::install_devices;
use bas_plant::world::PlantWorld;
use bas_plant::SharedPlant;
use bas_sim::device::DeviceId;
use bas_sim::metrics::KernelMetrics;
use bas_sim::process::{Action, Process};
use bas_sim::time::{SimDuration, SimTime};

use crate::engine::{PlatformKernel, ScenarioEngine};
use crate::logic::control::{ControlCore, Directive};
use crate::logic::web::{
    new_request_log, shared_schedule, RequestLog, RequestSample, ScheduleCursor, SharedSchedule,
    WebAction, WebSchedule,
};
use crate::policy;
use crate::proto::{
    names, BasMsg, AC_ALARM, AC_CONTROL, AC_HEATER, AC_SCENARIO, AC_SENSOR, AC_WEB,
};
use crate::scenario::{new_web_log, Platform, ScenarioConfig, WebLog};

const LOOKUP_RETRY: SimDuration = SimDuration::from_millis(50);
const MAX_LOOKUP_RETRIES: u32 = 400;

/// Program-registry ids assigned by [`build_minix`]'s registration order.
/// The paper's attacker "ha\[s\] enough knowledge about other control
/// processes", which includes the loadable images.
pub mod prog_ids {
    /// `temp_sensor` image.
    pub const SENSOR: u32 = 0;
    /// `temp_control` image.
    pub const CONTROL: u32 = 1;
    /// `heater_actuator` image.
    pub const HEATER: u32 = 2;
    /// `alarm_actuator` image.
    pub const ALARM: u32 = 3;
    /// `web_interface` image.
    pub const WEB: u32 = 4;
}

// ---------------------------------------------------------------------------
// Temperature sensor process
// ---------------------------------------------------------------------------

/// The temperature sensor driver: "periodically samples the room
/// temperature and sends the data to temperature control process" using
/// "nonblocking send".
pub struct MinixSensor {
    control: Option<Endpoint>,
    seq: u32,
    period: SimDuration,
    retries: u32,
    state: SensorSt,
}

enum SensorSt {
    Init,
    AwaitLookup,
    AwaitRetrySleep,
    AwaitDevRead,
    AwaitSend,
    AwaitSleep,
}

impl MinixSensor {
    /// Creates the sensor driver with the given sampling period.
    pub fn new(period: SimDuration) -> Self {
        MinixSensor {
            control: None,
            seq: 0,
            period,
            retries: 0,
            state: SensorSt::Init,
        }
    }
}

impl Process for MinixSensor {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match self.state {
            SensorSt::Init => {
                self.state = SensorSt::AwaitLookup;
                Action::Syscall(Syscall::Lookup {
                    name: names::CONTROL.into(),
                })
            }
            SensorSt::AwaitLookup => match reply {
                Some(Reply::Resolved(ep)) => {
                    self.control = Some(ep);
                    self.state = SensorSt::AwaitDevRead;
                    Action::Syscall(Syscall::DevRead {
                        dev: DeviceId::TEMP_SENSOR,
                    })
                }
                _ => {
                    self.retries += 1;
                    if self.retries > MAX_LOOKUP_RETRIES {
                        return Action::Exit(1);
                    }
                    self.state = SensorSt::AwaitRetrySleep;
                    Action::Syscall(Syscall::Sleep {
                        duration: LOOKUP_RETRY,
                    })
                }
            },
            SensorSt::AwaitRetrySleep => {
                self.state = SensorSt::AwaitLookup;
                Action::Syscall(Syscall::Lookup {
                    name: names::CONTROL.into(),
                })
            }
            SensorSt::AwaitDevRead => match reply {
                Some(Reply::DevValue(v)) => {
                    self.seq += 1;
                    let (mtype, payload) = BasMsg::SensorReading {
                        milli_c: v as i32,
                        seq: self.seq,
                    }
                    .to_minix();
                    self.state = SensorSt::AwaitSend;
                    Action::Syscall(Syscall::NbSend {
                        dest: self.control.expect("looked up"),
                        mtype,
                        payload,
                    })
                }
                // Device refused (misconfiguration): the driver cannot work.
                _ => Action::Exit(1),
            },
            SensorSt::AwaitSend => {
                // A NotReady (controller busy) just drops this sample, as
                // with a real non-blocking send. A dead destination means
                // the controller was restarted under a new endpoint
                // generation: re-resolve it through the name service.
                if matches!(reply, Some(Reply::Err(MinixError::DeadSourceOrDestination))) {
                    self.retries = 0;
                    self.state = SensorSt::AwaitRetrySleep;
                    return Action::Syscall(Syscall::Sleep {
                        duration: LOOKUP_RETRY,
                    });
                }
                self.state = SensorSt::AwaitSleep;
                Action::Syscall(Syscall::Sleep {
                    duration: self.period,
                })
            }
            SensorSt::AwaitSleep => {
                self.state = SensorSt::AwaitDevRead;
                Action::Syscall(Syscall::DevRead {
                    dev: DeviceId::TEMP_SENSOR,
                })
            }
        }
    }

    fn name(&self) -> &str {
        names::SENSOR
    }
}

// ---------------------------------------------------------------------------
// Temperature control process
// ---------------------------------------------------------------------------

const CTRL_LOOKUPS: [&str; 3] = [names::SENSOR, names::HEATER, names::ALARM];

/// The temperature control process: the §IV-A receive loop. It validates
/// sender identity (kernel-stamped endpoint) in addition to relying on the
/// ACM, applies the control law, and commands the drivers.
pub struct MinixControl {
    core: ControlCore,
    peers: [Option<Endpoint>; 3], // sensor, heater, alarm
    outbox: VecDeque<Syscall>,
    pending: Option<Message>,
    retries: u32,
    peers_stale: bool,
    booted: bool,
    readings_since_resync: u32,
    log_buf: Option<bas_minix::grant::BufId>,
    state: CtrlSt,
}

/// Byte size of the controller's environment-log buffer ("environment
/// information will be written in a log file", §IV-A): a rolling record
/// of the latest status snapshot.
pub const CONTROL_LOG_SIZE: usize = 24;

/// Every N sensor readings the controller re-asserts both actuator
/// outputs even if unchanged. Directives are edge-triggered, so a command
/// lost to a crashed driver would otherwise never be repeated; periodic
/// level re-assertion closes that gap (standard practice for supervisory
/// controllers) and is what lets a reincarnated driver resynchronize.
const RESYNC_EVERY_READINGS: u32 = 30;

enum CtrlSt {
    Init,
    AwaitLookup(usize),
    AwaitRetrySleep(usize),
    AwaitLogBuf,
    AwaitReceive,
    AwaitTime,
    Drain,
}

impl MinixControl {
    /// Creates the controller around a fresh control core.
    pub fn new(core: ControlCore) -> Self {
        MinixControl {
            core,
            peers: [None; 3],
            outbox: VecDeque::new(),
            pending: None,
            retries: 0,
            peers_stale: false,
            booted: false,
            readings_since_resync: 0,
            log_buf: None,
            state: CtrlSt::Init,
        }
    }

    fn handle(&mut self, msg: Message, now: SimTime) {
        let Ok(decoded) = BasMsg::from_minix(msg.mtype, &msg.payload) else {
            return; // malformed: drop
        };
        match decoded {
            BasMsg::SensorReading { milli_c, .. } => {
                // Defense in depth: even if the ACM were misconfigured,
                // accept readings only from the kernel-stamped sensor
                // endpoint.
                if Some(msg.source) != self.peers[0] {
                    return;
                }
                let mut fan_cmd = None;
                let mut alarm_cmd = None;
                for d in self.core.on_sensor_reading(now, milli_c) {
                    match d {
                        Directive::SetFan(on) => fan_cmd = Some(on),
                        Directive::SetAlarm(on) => alarm_cmd = Some(on),
                    }
                }
                // Periodic level re-assertion (see RESYNC_EVERY_READINGS).
                self.readings_since_resync += 1;
                if self.readings_since_resync >= RESYNC_EVERY_READINGS {
                    self.readings_since_resync = 0;
                    let status = self.core.status();
                    fan_cmd.get_or_insert(status.fan_on);
                    alarm_cmd.get_or_insert(status.alarm_on);
                }
                if let (Some(on), Some(dest)) = (fan_cmd, self.peers[1]) {
                    let (mtype, payload) = BasMsg::FanCmd { on }.to_minix();
                    self.outbox.push_back(Syscall::Send {
                        dest,
                        mtype,
                        payload,
                    });
                }
                if let (Some(on), Some(dest)) = (alarm_cmd, self.peers[2]) {
                    let (mtype, payload) = BasMsg::AlarmCmd { on }.to_minix();
                    self.outbox.push_back(Syscall::Send {
                        dest,
                        mtype,
                        payload,
                    });
                }
                // A missing peer (dead driver, supervisor may revive it)
                // triggers a re-resolution round at the next resync tick.
                if self.readings_since_resync == 0 && self.peers.iter().any(Option::is_none) {
                    self.peers_stale = true;
                }
                // "At the end of the while loop, environment information
                // will be written in a log file" — snapshot the status
                // into the controller's log buffer.
                if let Some(buf) = self.log_buf {
                    let s = self.core.status();
                    let mut rec = Vec::with_capacity(CONTROL_LOG_SIZE);
                    rec.extend_from_slice(&(now.as_secs() as u32).to_le_bytes());
                    rec.extend_from_slice(&s.last_reading_milli_c.to_le_bytes());
                    rec.extend_from_slice(&s.setpoint_milli_c.to_le_bytes());
                    rec.push(u8::from(s.fan_on));
                    rec.push(u8::from(s.alarm_on));
                    self.outbox.push_back(Syscall::MemWrite {
                        buf,
                        offset: 0,
                        data: rec,
                    });
                }
            }
            BasMsg::SetpointUpdate { milli_c } => {
                let code = match self.core.on_setpoint_update(now, milli_c) {
                    Ok(()) => 0,
                    Err(_) => 1,
                };
                // Replies to (untrusted) clients are non-blocking: a
                // client that is not waiting simply loses its reply. A
                // blocking send here would let a malicious client park the
                // controller forever -- the "asymmetric trust" IPC threat
                // the paper cites (Herder et al. [16]).
                let (mtype, payload) = BasMsg::Ack { code }.to_minix();
                self.outbox.push_back(Syscall::NbSend {
                    dest: msg.source,
                    mtype,
                    payload,
                });
            }
            BasMsg::StatusQuery => {
                let s = self.core.status();
                let (mtype, payload) = BasMsg::Status {
                    temp_milli_c: s.last_reading_milli_c,
                    setpoint_milli_c: s.setpoint_milli_c,
                    fan_on: s.fan_on,
                    alarm_on: s.alarm_on,
                }
                .to_minix();
                self.outbox.push_back(Syscall::NbSend {
                    dest: msg.source,
                    mtype,
                    payload,
                });
            }
            // Acks from drivers and anything else are informational.
            _ => {}
        }
    }
}

impl Process for MinixControl {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, mut reply: Option<Reply>) -> Action<Syscall> {
        loop {
            match self.state {
                CtrlSt::Init => {
                    self.state = CtrlSt::AwaitLookup(0);
                    return Action::Syscall(Syscall::Lookup {
                        name: CTRL_LOOKUPS[0].into(),
                    });
                }
                CtrlSt::AwaitLookup(i) => {
                    match reply.take() {
                        Some(Reply::Resolved(ep)) => self.peers[i] = Some(ep),
                        _ if self.booted => {
                            // Post-boot re-resolution tolerates a missing
                            // peer (a dead driver): record the gap and
                            // keep controlling; the resync tick retries.
                            self.peers[i] = None;
                        }
                        _ => {
                            // Boot-time: peers are still being forked;
                            // retry until the loader finishes.
                            self.retries += 1;
                            if self.retries > MAX_LOOKUP_RETRIES {
                                return Action::Exit(1);
                            }
                            self.state = CtrlSt::AwaitRetrySleep(i);
                            return Action::Syscall(Syscall::Sleep {
                                duration: LOOKUP_RETRY,
                            });
                        }
                    }
                    if i + 1 < CTRL_LOOKUPS.len() {
                        self.state = CtrlSt::AwaitLookup(i + 1);
                        return Action::Syscall(Syscall::Lookup {
                            name: CTRL_LOOKUPS[i + 1].into(),
                        });
                    }
                    self.retries = 0;
                    if !self.booted {
                        self.booted = true;
                        // First boot: allocate the environment-log buffer.
                        self.state = CtrlSt::AwaitLogBuf;
                        return Action::Syscall(Syscall::MemCreate {
                            size: CONTROL_LOG_SIZE,
                        });
                    }
                    self.state = CtrlSt::AwaitReceive;
                    return Action::Syscall(Syscall::Receive { from: None });
                }
                CtrlSt::AwaitLogBuf => {
                    if let Some(Reply::Buf(buf)) = reply.take() {
                        self.log_buf = Some(buf);
                    }
                    self.state = CtrlSt::AwaitReceive;
                    return Action::Syscall(Syscall::Receive { from: None });
                }
                CtrlSt::AwaitRetrySleep(i) => {
                    self.state = CtrlSt::AwaitLookup(i);
                    return Action::Syscall(Syscall::Lookup {
                        name: CTRL_LOOKUPS[i].into(),
                    });
                }
                CtrlSt::AwaitReceive => match reply.take() {
                    Some(Reply::Msg(m)) => {
                        self.pending = Some(m);
                        self.state = CtrlSt::AwaitTime;
                        return Action::Syscall(Syscall::GetUptime);
                    }
                    _ => {
                        return Action::Syscall(Syscall::Receive { from: None });
                    }
                },
                CtrlSt::AwaitTime => {
                    let now = match reply.take() {
                        Some(Reply::Uptime(t)) => t,
                        _ => SimTime::ZERO,
                    };
                    if let Some(msg) = self.pending.take() {
                        self.handle(msg, now);
                    }
                    self.state = CtrlSt::Drain;
                }
                CtrlSt::Drain => {
                    // Errors while draining (e.g. a killed driver) are
                    // tolerated: the controller keeps controlling. A dead
                    // destination additionally marks the peer table stale
                    // — a restarted driver lives at a new endpoint
                    // generation, so re-resolve before the next cycle.
                    if matches!(
                        reply.take(),
                        Some(Reply::Err(MinixError::DeadSourceOrDestination))
                    ) {
                        self.peers_stale = true;
                    }
                    match self.outbox.pop_front() {
                        Some(sys) => return Action::Syscall(sys),
                        None => {
                            if std::mem::take(&mut self.peers_stale) {
                                self.retries = 0;
                                self.state = CtrlSt::AwaitLookup(0);
                                return Action::Syscall(Syscall::Lookup {
                                    name: CTRL_LOOKUPS[0].into(),
                                });
                            }
                            self.state = CtrlSt::AwaitReceive;
                            return Action::Syscall(Syscall::Receive { from: None });
                        }
                    }
                }
            }
        }
    }

    fn name(&self) -> &str {
        names::CONTROL
    }
}

// ---------------------------------------------------------------------------
// Actuator driver processes
// ---------------------------------------------------------------------------

/// An actuator driver: "implemented to passively wait for commands from
/// temperature control process".
pub struct MinixActuator {
    dev: DeviceId,
    state: ActSt,
}

enum ActSt {
    AwaitReceive,
    AwaitWrite,
    Start,
}

impl MinixActuator {
    /// The heater/fan driver.
    pub fn heater() -> Self {
        MinixActuator {
            dev: DeviceId::FAN,
            state: ActSt::Start,
        }
    }

    /// The alarm driver.
    pub fn alarm() -> Self {
        MinixActuator {
            dev: DeviceId::ALARM,
            state: ActSt::Start,
        }
    }
}

impl Process for MinixActuator {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match self.state {
            ActSt::Start => {
                self.state = ActSt::AwaitReceive;
                Action::Syscall(Syscall::Receive { from: None })
            }
            ActSt::AwaitReceive => {
                if let Some(Reply::Msg(m)) = reply {
                    let decoded = BasMsg::from_minix(m.mtype, &m.payload);
                    let cmd = match (self.dev, decoded) {
                        (DeviceId::FAN, Ok(BasMsg::FanCmd { on })) => Some(on),
                        (DeviceId::ALARM, Ok(BasMsg::AlarmCmd { on })) => Some(on),
                        _ => None,
                    };
                    if let Some(on) = cmd {
                        self.state = ActSt::AwaitWrite;
                        return Action::Syscall(Syscall::DevWrite {
                            dev: self.dev,
                            value: i64::from(on),
                        });
                    }
                }
                Action::Syscall(Syscall::Receive { from: None })
            }
            ActSt::AwaitWrite => {
                self.state = ActSt::AwaitReceive;
                Action::Syscall(Syscall::Receive { from: None })
            }
        }
    }

    fn name(&self) -> &str {
        if self.dev == DeviceId::FAN {
            names::HEATER
        } else {
            names::ALARM
        }
    }
}

// ---------------------------------------------------------------------------
// Web interface process (benign)
// ---------------------------------------------------------------------------

/// The benign web interface: performs the scripted administrator actions
/// over `sendrec` RPC and records the controller's answers.
///
/// Same-tick bursts (high-rate traffic, E18) are drained in one wake:
/// every due action is collected via [`ScheduleCursor::drain_due`] and
/// the RPCs issue back-to-back without an intervening `GetUptime`, so a
/// burst costs one wake cycle instead of one cycle per request. Each
/// completed request is stamped into the optional [`RequestLog`] at the
/// next observed uptime (the first clock read after its reply), so the
/// measured latency includes the open-loop queueing delay.
pub struct MinixWeb {
    control: Option<Endpoint>,
    schedule: ScheduleCursor,
    responses: WebLog,
    requests: Option<RequestLog>,
    /// Due actions drained but not yet sent (same-tick burst tail).
    pending: VecDeque<(SimTime, WebAction)>,
    /// The action whose RPC is in flight.
    inflight: Option<(SimTime, WebAction)>,
    /// Replied requests awaiting a completion timestamp.
    unstamped: Vec<(SimTime, WebAction, bool)>,
    retries: u32,
    state: WebSt,
}

enum WebSt {
    Init,
    AwaitLookup,
    AwaitRetrySleep,
    AwaitTime,
    AwaitSleep,
    AwaitRpc,
}

impl MinixWeb {
    /// Creates the benign web interface over a private schedule copy.
    pub fn new(schedule: WebSchedule, responses: WebLog) -> Self {
        MinixWeb::with_cursor(ScheduleCursor::detached(&schedule), responses, None)
    }

    /// Creates the benign web interface over a shared schedule cell,
    /// stamping completed requests into `requests`.
    pub fn with_cursor(
        schedule: ScheduleCursor,
        responses: WebLog,
        requests: Option<RequestLog>,
    ) -> Self {
        MinixWeb {
            control: None,
            schedule,
            responses,
            requests,
            pending: VecDeque::new(),
            inflight: None,
            unstamped: Vec::new(),
            retries: 0,
            state: WebSt::Init,
        }
    }

    /// Issues the RPC for the next pending action.
    fn send_next(&mut self) -> Action<Syscall> {
        let (scheduled, action) = self.pending.pop_front().expect("pending action");
        self.inflight = Some((scheduled, action));
        let msg = match action {
            WebAction::SetSetpoint(mc) => BasMsg::SetpointUpdate { milli_c: mc },
            WebAction::QueryStatus => BasMsg::StatusQuery,
        };
        let (mtype, payload) = msg.to_minix();
        self.state = WebSt::AwaitRpc;
        Action::Syscall(Syscall::SendRec {
            dest: self.control.expect("looked up"),
            mtype,
            payload,
        })
    }

    /// Stamps every replied request with `now` as its completion time.
    fn stamp_completions(&mut self, now: SimTime) {
        if self.unstamped.is_empty() {
            return;
        }
        if let Some(log) = &self.requests {
            let mut log = log.borrow_mut();
            for &(scheduled, action, ok) in &self.unstamped {
                log.push(RequestSample {
                    scheduled,
                    completed: now,
                    action,
                    ok,
                });
            }
        }
        self.unstamped.clear();
    }
}

impl Process for MinixWeb {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match self.state {
            WebSt::Init => {
                self.state = WebSt::AwaitLookup;
                Action::Syscall(Syscall::Lookup {
                    name: names::CONTROL.into(),
                })
            }
            WebSt::AwaitLookup => match reply {
                Some(Reply::Resolved(ep)) => {
                    self.control = Some(ep);
                    self.state = WebSt::AwaitTime;
                    Action::Syscall(Syscall::GetUptime)
                }
                _ => {
                    self.retries += 1;
                    if self.retries > MAX_LOOKUP_RETRIES {
                        return Action::Exit(1);
                    }
                    self.state = WebSt::AwaitRetrySleep;
                    Action::Syscall(Syscall::Sleep {
                        duration: LOOKUP_RETRY,
                    })
                }
            },
            WebSt::AwaitRetrySleep => {
                self.state = WebSt::AwaitLookup;
                Action::Syscall(Syscall::Lookup {
                    name: names::CONTROL.into(),
                })
            }
            WebSt::AwaitTime => {
                let now = match reply {
                    Some(Reply::Uptime(t)) => t,
                    _ => SimTime::ZERO,
                };
                self.stamp_completions(now);
                if self.pending.is_empty() {
                    let mut due = Vec::new();
                    self.schedule.drain_due(now, &mut due);
                    self.pending.extend(due);
                }
                if !self.pending.is_empty() {
                    return self.send_next();
                }
                match self.schedule.next_time() {
                    None => {
                        // Session script exhausted: the web server idles
                        // (it keeps serving, modeled as long sleeps).
                        self.state = WebSt::AwaitSleep;
                        Action::Syscall(Syscall::Sleep {
                            duration: SimDuration::from_secs(3_600),
                        })
                    }
                    Some(t) => {
                        self.state = WebSt::AwaitSleep;
                        Action::Syscall(Syscall::Sleep { duration: t - now })
                    }
                }
            }
            WebSt::AwaitSleep => {
                self.state = WebSt::AwaitTime;
                Action::Syscall(Syscall::GetUptime)
            }
            WebSt::AwaitRpc => {
                let mut ok = false;
                if let Some(Reply::Msg(m)) = reply {
                    if let Ok(decoded) = BasMsg::from_minix(m.mtype, &m.payload) {
                        self.responses.borrow_mut().push(decoded);
                        ok = true;
                    }
                }
                if let Some((scheduled, action)) = self.inflight.take() {
                    self.unstamped.push((scheduled, action, ok));
                }
                if !self.pending.is_empty() {
                    // Burst tail: next RPC immediately, no clock read.
                    return self.send_next();
                }
                self.state = WebSt::AwaitTime;
                Action::Syscall(Syscall::GetUptime)
            }
        }
    }

    fn name(&self) -> &str {
        names::WEB
    }
}

// ---------------------------------------------------------------------------
// Scenario loader process
// ---------------------------------------------------------------------------

/// The scenario loader: "a process loader that forks the other five
/// processes, tells kernel each process's ac_id, and loads the correct
/// binaries for each of them."
pub struct MinixLoader {
    plan: Vec<(u32, bas_acm::AcId, u32)>, // (program id, ac_id, uid)
    idx: usize,
}

impl MinixLoader {
    /// Creates a loader that forks the given `(program, ac_id, uid)`
    /// plan in order.
    pub fn new(plan: Vec<(u32, bas_acm::AcId, u32)>) -> Self {
        MinixLoader { plan, idx: 0 }
    }
}

impl Process for MinixLoader {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
        match self.plan.get(self.idx) {
            Some(&(program, ac_id, uid)) => {
                self.idx += 1;
                Action::Syscall(Syscall::SendRec {
                    dest: pm::PM_ENDPOINT,
                    mtype: pm::PM_FORK2,
                    payload: pm::encode_fork2(program, ac_id, uid),
                })
            }
            None => Action::Exit(0),
        }
    }

    fn name(&self) -> &str {
        names::SCENARIO
    }
}

// ---------------------------------------------------------------------------
// Supervisor process (reincarnation-server analog)
// ---------------------------------------------------------------------------

/// A user-space supervisor in the spirit of MINIX 3's reincarnation
/// server — the "self-repairing" design of the paper's reference \[7\]:
/// it periodically checks that every watched process is alive (via the
/// name service) and re-forks any that died through PM `fork2`.
///
/// The supervisor is itself just a process under the ACM: its authority
/// to restart components is exactly its `PM_FORK2` row, nothing ambient.
pub struct MinixSupervisor {
    watch: Vec<(&'static str, u32, bas_acm::AcId, u32)>, // (name, program, ac, uid)
    period: SimDuration,
    idx: usize,
    state: SupSt,
}

enum SupSt {
    Start,
    AwaitLookup,
    AwaitFork,
    AwaitSleep,
}

impl MinixSupervisor {
    /// Creates a supervisor checking each `(name, program, ac_id, uid)`
    /// entry every `period`.
    pub fn new(watch: Vec<(&'static str, u32, bas_acm::AcId, u32)>, period: SimDuration) -> Self {
        MinixSupervisor {
            watch,
            period,
            idx: 0,
            state: SupSt::Start,
        }
    }

    fn check_current(&mut self) -> Action<Syscall> {
        if self.watch.is_empty() {
            self.state = SupSt::AwaitSleep;
            return Action::Syscall(Syscall::Sleep {
                duration: self.period,
            });
        }
        self.state = SupSt::AwaitLookup;
        Action::Syscall(Syscall::Lookup {
            name: self.watch[self.idx].0.to_string(),
        })
    }

    fn advance(&mut self) -> Action<Syscall> {
        self.idx += 1;
        if self.idx >= self.watch.len() {
            self.idx = 0;
            self.state = SupSt::AwaitSleep;
            return Action::Syscall(Syscall::Sleep {
                duration: self.period,
            });
        }
        self.check_current()
    }
}

impl Process for MinixSupervisor {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match self.state {
            SupSt::Start => self.check_current(),
            SupSt::AwaitLookup => match reply {
                Some(Reply::Resolved(_)) => self.advance(),
                _ => {
                    // Watched process is gone: reincarnate it.
                    let (_, program, ac_id, uid) = self.watch[self.idx];
                    self.state = SupSt::AwaitFork;
                    Action::Syscall(Syscall::SendRec {
                        dest: pm::PM_ENDPOINT,
                        mtype: pm::PM_FORK2,
                        payload: pm::encode_fork2(program, ac_id, uid),
                    })
                }
            },
            SupSt::AwaitFork => self.advance(),
            SupSt::AwaitSleep => self.check_current(),
        }
    }

    fn name(&self) -> &str {
        "supervisor"
    }
}

// ---------------------------------------------------------------------------
// Builder + runner
// ---------------------------------------------------------------------------

/// Build-time knobs used by the attack harness and the recovery
/// experiments.
pub struct MinixOverrides {
    /// Replaces the web interface program (the compromise model: same
    /// position in the architecture, attacker-chosen code).
    pub web_factory: Option<Box<dyn Fn() -> MinixProcess>>,
    /// The web interface's uid (0 simulates the root-escalation variant).
    pub web_uid: u32,
    /// Replaces the compiled-in ACM (ablation experiments; `Arc` so the
    /// snapshot-fork boot path can share one matrix across a fleet).
    pub acm: Option<Arc<AccessControlMatrix>>,
    /// Runs a [`MinixSupervisor`] watching the four critical processes
    /// (MINIX's self-repair behavior). Crash *injection* is no longer an
    /// override: `bas-faults` kills processes through
    /// [`PlatformKernel::inject_crash`] at scheduled times instead.
    pub supervise: bool,
}

impl Default for MinixOverrides {
    fn default() -> Self {
        MinixOverrides {
            web_factory: None,
            web_uid: 1000,
            acm: None,
            supervise: false,
        }
    }
}

/// The booted MINIX 3 + ACM stack: kernel, plant, and web log.
pub struct MinixStack {
    /// The simulated kernel (public for experiment introspection).
    pub kernel: MinixKernel,
    plant: SharedPlant,
    web_log: WebLog,
    /// The effective action schedule, shared with the benign web
    /// process (the registered factory holds the same cell), re-imaged
    /// per instance by [`PlatformKernel::reset_to_boot`].
    web_schedule: SharedSchedule,
    /// Completed-request stamps from the benign web process.
    web_requests: RequestLog,
    /// The boot fork plan, kept so [`PlatformKernel::reset_to_boot`] can
    /// re-run exactly the boot-time spawns (program ids, identities and
    /// uids — including overridden web factories, which live on in the
    /// kernel's program registry).
    boot_plan: Vec<(u32, bas_acm::AcId, u32)>,
    /// Whether boot spawned the reincarnation-server supervisor.
    supervise: bool,
    /// False when a custom web factory was installed: attacker factories
    /// may be stateful (one-shot script cells), so re-invoking them on a
    /// recycled kernel cannot guarantee cold-boot identity.
    forkable: bool,
    /// True once anything mutated the kernel after boot (stepping, fault
    /// or churn injection). A stack with `ran == false` is still byte-
    /// identical to the boot template — only the plant carries the seed —
    /// so [`PlatformKernel::reset_to_boot`] can skip the kernel reset and
    /// the respawns entirely. Every mutating trait method sets this.
    ran: bool,
}

/// A running MINIX scenario: the generic engine over [`MinixStack`].
pub type MinixScenario = ScenarioEngine<MinixStack>;

/// Builds and boots the scenario on security-enhanced MINIX 3.
pub fn build_minix(config: &ScenarioConfig, overrides: MinixOverrides) -> MinixScenario {
    ScenarioEngine::boot(config, overrides)
}

fn boot_minix(config: &ScenarioConfig, overrides: MinixOverrides) -> MinixStack {
    let plant: SharedPlant = Rc::new(std::cell::RefCell::new(PlantWorld::new(
        config.synced_plant(),
        config.seed,
    )));

    let acm = overrides
        .acm
        .unwrap_or_else(|| Arc::new(policy::scenario_acm()));
    let mut kernel = MinixKernel::with_shared_acm(
        MinixConfig {
            max_procs: config.max_procs,
            cost_model: config.cost_model,
            quotas: policy::scenario_quotas(config.web_fork_limit),
            device_owners: policy::scenario_device_owners(),
            ..MinixConfig::default()
        },
        acm,
    );
    install_devices(&plant, kernel.devices_mut());

    let web_log = new_web_log();
    let web_schedule = shared_schedule(config.effective_web_schedule());
    let web_requests = new_request_log();

    let period = config.sensor_period;
    let sensor_prog = kernel.register_program(
        names::SENSOR,
        Box::new(move || Box::new(MinixSensor::new(period))),
    );
    let control_config = config.control;
    let control_prog = kernel.register_program(
        names::CONTROL,
        Box::new(move || Box::new(MinixControl::new(ControlCore::new(control_config)))),
    );
    let heater_prog = kernel.register_program(
        names::HEATER,
        Box::new(|| Box::new(MinixActuator::heater())),
    );
    let alarm_prog =
        kernel.register_program(names::ALARM, Box::new(|| Box::new(MinixActuator::alarm())));

    let forkable = overrides.web_factory.is_none();
    let web_prog = match overrides.web_factory {
        Some(factory) => kernel.register_program(names::WEB, factory),
        None => {
            // The factory holds the *shared* schedule cell: the loader
            // forks the web process lazily during stepping, so a
            // recycled stack's re-imaged cell is picked up at fork time.
            let schedule = web_schedule.clone();
            let log = web_log.clone();
            let requests = web_requests.clone();
            kernel.register_program(
                names::WEB,
                Box::new(move || {
                    Box::new(MinixWeb::with_cursor(
                        ScheduleCursor::new(schedule.clone()),
                        log.clone(),
                        Some(requests.clone()),
                    ))
                }),
            )
        }
    };

    // Fork order: controller first so lookups converge quickly, then
    // drivers, sensor, and finally the untrusted web interface.
    let boot_plan = vec![
        (control_prog, AC_CONTROL, 1000),
        (heater_prog, AC_HEATER, 1000),
        (alarm_prog, AC_ALARM, 1000),
        (sensor_prog, AC_SENSOR, 1000),
        (web_prog, AC_WEB, overrides.web_uid),
    ];
    spawn_boot_processes(&mut kernel, &boot_plan, overrides.supervise);

    MinixStack {
        kernel,
        plant,
        web_log,
        web_schedule,
        web_requests,
        boot_plan,
        supervise: overrides.supervise,
        forkable,
        ran: false,
    }
}

/// The boot-time spawns, shared verbatim between cold boot and
/// [`PlatformKernel::reset_to_boot`]: the loader (who forks the plan
/// through PM) and optionally the supervisor watching the four critical
/// entries (the plan's head, in registration order).
fn spawn_boot_processes(
    kernel: &mut MinixKernel,
    boot_plan: &[(u32, bas_acm::AcId, u32)],
    supervise: bool,
) {
    kernel
        .spawn(
            names::SCENARIO,
            AC_SCENARIO,
            0,
            Box::new(MinixLoader::new(boot_plan.to_vec())),
        )
        .expect("fresh kernel has room for the loader");

    if supervise {
        let watch = [names::CONTROL, names::HEATER, names::ALARM, names::SENSOR]
            .iter()
            .zip(boot_plan)
            .map(|(&name, &(prog, ac, uid))| (name, prog, ac, uid))
            .collect();
        kernel
            .spawn(
                "supervisor",
                AC_SCENARIO,
                0,
                Box::new(MinixSupervisor::new(watch, SimDuration::from_secs(2))),
            )
            .expect("fresh kernel has room for the supervisor");
    }
}

impl PlatformKernel for MinixStack {
    const PLATFORM: Platform = Platform::Minix;
    type Overrides = MinixOverrides;

    fn boot(config: &ScenarioConfig, overrides: MinixOverrides) -> Self {
        boot_minix(config, overrides)
    }

    fn now(&self) -> SimTime {
        self.kernel.now()
    }

    fn run_until(&mut self, target: SimTime) {
        self.ran = true;
        self.kernel.run_until(target);
    }

    fn plant(&self) -> SharedPlant {
        self.plant.clone()
    }

    fn metrics(&self) -> KernelMetrics {
        *self.kernel.metrics()
    }

    fn alive_names(&self) -> Vec<String> {
        self.kernel.alive_process_names()
    }

    fn trace_count(&self, category: &str) -> usize {
        self.kernel.trace().events_in(category).count()
    }

    fn web_responses(&self) -> Vec<BasMsg> {
        self.web_log.borrow().clone()
    }

    fn web_requests(&self) -> Vec<RequestSample> {
        self.web_requests.borrow().clone()
    }

    fn reset_to_boot(&mut self, config: &ScenarioConfig) -> bool {
        if !self.forkable {
            return false;
        }
        if self.ran {
            self.kernel.reset_to_boot();
            spawn_boot_processes(&mut self.kernel, &self.boot_plan, self.supervise);
            self.ran = false;
        }
        // A never-stepped kernel is still the boot image verbatim (the
        // seed only reaches the plant), so only the plant needs work.
        // Re-seed it in place: the `Rc` identity is what the installed
        // plant devices and the registered web factory hold.
        *self.plant.borrow_mut() = PlantWorld::new(config.synced_plant(), config.seed);
        // The schedule is seed-derived under traffic, so the shared cell
        // is re-imaged on every recycle — the web factory holds the same
        // cell and forks a cursor over the new contents.
        *self.web_schedule.borrow_mut() = config.effective_web_schedule();
        self.web_log.borrow_mut().clear();
        self.web_requests.borrow_mut().clear();
        true
    }

    fn devices_mut(&mut self) -> &mut bas_sim::device::DeviceBus {
        // Interposed fault devices survive a kernel reset, so a stack
        // whose device bus was touched can no longer promise cold-boot
        // identity on recycle.
        self.forkable = false;
        self.kernel.devices_mut()
    }

    fn inject_crash(&mut self, name: &str) -> bool {
        self.ran = true;
        self.kernel.kill_named(name)
    }

    fn arm_ipc_fault(&mut self, fault: bas_sim::fault::IpcFault, count: u32) {
        self.ran = true;
        self.kernel.ipc_faults_mut().arm(fault, count);
    }

    fn ipc_faults_applied(&self) -> u64 {
        self.kernel.ipc_faults().applied()
    }

    fn skew_clock(&mut self, d: SimDuration) {
        self.ran = true;
        self.kernel.skew_clock(d);
    }

    fn apply_cap_churn(&mut self, op: &bas_sim::caps::CapChurnOp) -> bool {
        self.ran = true;
        // Instance names are MINIX process names verbatim; the kernel
        // resolves them to ACM principals itself.
        self.kernel.apply_cap_churn(op)
    }

    fn arm_cap_churn(&mut self, op: &bas_sim::caps::CapChurnOp, after_checks: u32) {
        self.ran = true;
        self.kernel.arm_cap_churn(op, after_checks);
    }

    fn enable_cap_trace(&mut self) {
        self.ran = true;
        self.kernel.enable_cap_trace();
    }

    fn cap_trace(&self) -> bas_sim::caps::CapTrace {
        self.kernel.cap_trace()
    }
}
