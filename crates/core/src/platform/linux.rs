//! The scenario on the monolithic Linux baseline (§IV-C).
//!
//! "The implementation on Linux is very similar to the implementation on
//! MINIX 3. The only major difference is that on Linux the interprocess
//! communication is conducted through POSIX message queues." A scenario
//! loader pre-creates the six queues; the controller blocks on sensor
//! data and polls the web queues non-blockingly each cycle, exactly like
//! the MINIX control loop's structure.
//!
//! Two deployment configurations reproduce the paper's two Linux
//! discussions:
//!
//! - [`UidScheme::SharedAccount`] — "all five processes are running under
//!   the same user account", so DAC is vacuous between them (attack A1
//!   succeeds),
//! - [`UidScheme::PerProcessHardened`] — each process under its own uid
//!   with single-writer group modes ("unless each process runs under a
//!   unique user account, and the message queue is specifically
//!   configured..."), which stops A1 spoofing but still falls to root
//!   (attack A2).

use std::collections::VecDeque;
use std::rc::Rc;

use bas_linux::cred::{Mode, Uid};
use bas_linux::kernel::{LinuxConfig, LinuxKernel, LinuxProcess};
use bas_linux::syscall::{MqAccess, Reply, Syscall};
use bas_plant::devices::install_devices;
use bas_plant::world::PlantWorld;
use bas_plant::SharedPlant;
use bas_sim::device::DeviceId;
use bas_sim::metrics::KernelMetrics;
use bas_sim::process::{Action, Process};
use bas_sim::time::{SimDuration, SimTime};

use crate::engine::{PlatformKernel, ScenarioEngine};
use crate::logic::control::{ControlCore, Directive};
use crate::logic::web::{
    new_request_log, shared_schedule, RequestLog, RequestSample, ScheduleCursor, SharedSchedule,
    WebAction, WebSchedule,
};
use crate::policy::queues;
use crate::proto::{names, BasMsg};
use crate::scenario::{new_web_log, Platform, ScenarioConfig, WebLog};

/// Scenario uids.
pub mod uids {
    /// The shared account everything runs under in the paper's baseline.
    pub const SHARED: u32 = 1000;
    /// Hardened scheme: sensor.
    pub const SENSOR: u32 = 1001;
    /// Hardened scheme: controller.
    pub const CONTROL: u32 = 1002;
    /// Hardened scheme: heater driver.
    pub const HEATER: u32 = 1003;
    /// Hardened scheme: alarm driver.
    pub const ALARM: u32 = 1004;
    /// Hardened scheme: web interface.
    pub const WEB: u32 = 1005;
}

/// How processes and queues are assigned to accounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UidScheme {
    /// Everything under uid 1000, queues mode `0600` — the paper's
    /// vulnerable baseline.
    SharedAccount,
    /// One uid per process; queues owned by their reader with the writer
    /// as group, mode `0620`.
    PerProcessHardened,
}

impl UidScheme {
    /// The uid a process runs under in this scheme.
    pub fn uid_of(self, process: &str) -> u32 {
        match self {
            UidScheme::SharedAccount => uids::SHARED,
            UidScheme::PerProcessHardened => match process {
                x if x == names::SENSOR => uids::SENSOR,
                x if x == names::CONTROL => uids::CONTROL,
                x if x == names::HEATER => uids::HEATER,
                x if x == names::ALARM => uids::ALARM,
                x if x == names::WEB => uids::WEB,
                _ => uids::SHARED,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Controller process
// ---------------------------------------------------------------------------

// Descriptor layout after the open sequence.
const QD_SENSOR_IN: u32 = 0;
const QD_SETPOINT_IN: u32 = 1;
const QD_STATUS_IN: u32 = 2;
const QD_HEATER: u32 = 3;
const QD_ALARM: u32 = 4;
const QD_REPLY: u32 = 5;

const CTRL_OPENS: [(&str, MqAccess); 6] = [
    (queues::SENSOR_IN, MqAccess::READ),
    (queues::SETPOINT_IN, MqAccess::READ),
    (queues::STATUS_IN, MqAccess::READ),
    (queues::HEATER_CMD, MqAccess::WRITE),
    (queues::ALARM_CMD, MqAccess::WRITE),
    (queues::WEB_REPLY, MqAccess::WRITE),
];

/// The Linux temperature controller: block on sensor data, act, poll the
/// web queues, reply, repeat.
pub struct LinuxControl {
    core: ControlCore,
    outbox: VecDeque<Syscall>,
    cycle_now: SimTime,
    pending_reading: Option<i32>,
    state: CtrlSt,
}

enum CtrlSt {
    Open(usize),
    RecvSensor,
    Time,
    DrainThenPollSetpoint,
    PollSetpoint,
    DrainThenPollStatus,
    PollStatus,
    DrainThenRecv,
}

impl LinuxControl {
    /// Creates the controller.
    pub fn new(core: ControlCore) -> Self {
        LinuxControl {
            core,
            outbox: VecDeque::new(),
            cycle_now: SimTime::ZERO,
            pending_reading: None,
            state: CtrlSt::Open(0),
        }
    }

    fn nb_send(&mut self, qd: u32, msg: BasMsg) {
        self.outbox.push_back(Syscall::MqSend {
            qd,
            data: msg.to_bytes(),
            priority: 0,
            nonblocking: true,
        });
    }

    fn drain_or(&mut self, next: CtrlSt, after: Syscall) -> Action<Syscall> {
        match self.outbox.pop_front() {
            Some(sys) => Action::Syscall(sys),
            None => {
                self.state = next;
                Action::Syscall(after)
            }
        }
    }
}

impl Process for LinuxControl {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match self.state {
            CtrlSt::Open(i) => {
                if i > 0 && !matches!(reply, Some(Reply::Qd(_))) {
                    return Action::Exit(1); // queue missing/denied: cannot run
                }
                if i < CTRL_OPENS.len() {
                    let (name, access) = CTRL_OPENS[i];
                    self.state = CtrlSt::Open(i + 1);
                    return Action::Syscall(Syscall::MqOpen {
                        name: name.into(),
                        access,
                        create: None,
                    });
                }
                self.state = CtrlSt::RecvSensor;
                Action::Syscall(Syscall::MqReceive {
                    qd: QD_SENSOR_IN,
                    nonblocking: false,
                })
            }
            CtrlSt::RecvSensor => {
                if let Some(Reply::Data { data, .. }) = reply {
                    // NOTE: nothing here can authenticate the sender — the
                    // bytes are all there is. The controller takes the
                    // payload at face value, as the paper's Linux
                    // implementation must.
                    if let Ok(BasMsg::SensorReading { milli_c, .. }) = BasMsg::from_bytes(&data) {
                        self.pending_reading = Some(milli_c);
                        self.state = CtrlSt::Time;
                        return Action::Syscall(Syscall::GetTime);
                    }
                }
                Action::Syscall(Syscall::MqReceive {
                    qd: QD_SENSOR_IN,
                    nonblocking: false,
                })
            }
            CtrlSt::Time => {
                if let Some(Reply::Time(t)) = reply {
                    self.cycle_now = t;
                }
                if let Some(milli_c) = self.pending_reading.take() {
                    let directives = self.core.on_sensor_reading(self.cycle_now, milli_c);
                    for d in directives {
                        match d {
                            Directive::SetFan(on) => self.nb_send(QD_HEATER, BasMsg::FanCmd { on }),
                            Directive::SetAlarm(on) => {
                                self.nb_send(QD_ALARM, BasMsg::AlarmCmd { on })
                            }
                        }
                    }
                }
                self.state = CtrlSt::DrainThenPollSetpoint;
                self.resume(None)
            }
            CtrlSt::DrainThenPollSetpoint => self.drain_or(
                CtrlSt::PollSetpoint,
                Syscall::MqReceive {
                    qd: QD_SETPOINT_IN,
                    nonblocking: true,
                },
            ),
            CtrlSt::PollSetpoint => match reply {
                Some(Reply::Data { data, .. }) => {
                    if let Ok(BasMsg::SetpointUpdate { milli_c }) = BasMsg::from_bytes(&data) {
                        let code = match self.core.on_setpoint_update(self.cycle_now, milli_c) {
                            Ok(()) => 0,
                            Err(_) => 1,
                        };
                        self.nb_send(QD_REPLY, BasMsg::Ack { code });
                    }
                    // Keep polling for more pending updates.
                    self.state = CtrlSt::DrainThenPollSetpoint;
                    self.resume(None)
                }
                _ => {
                    self.state = CtrlSt::DrainThenPollStatus;
                    self.resume(None)
                }
            },
            CtrlSt::DrainThenPollStatus => self.drain_or(
                CtrlSt::PollStatus,
                Syscall::MqReceive {
                    qd: QD_STATUS_IN,
                    nonblocking: true,
                },
            ),
            CtrlSt::PollStatus => match reply {
                Some(Reply::Data { data, .. }) => {
                    if let Ok(BasMsg::StatusQuery) = BasMsg::from_bytes(&data) {
                        let s = self.core.status();
                        self.nb_send(
                            QD_REPLY,
                            BasMsg::Status {
                                temp_milli_c: s.last_reading_milli_c,
                                setpoint_milli_c: s.setpoint_milli_c,
                                fan_on: s.fan_on,
                                alarm_on: s.alarm_on,
                            },
                        );
                    }
                    self.state = CtrlSt::DrainThenPollStatus;
                    self.resume(None)
                }
                _ => {
                    self.state = CtrlSt::DrainThenRecv;
                    self.resume(None)
                }
            },
            CtrlSt::DrainThenRecv => self.drain_or(
                CtrlSt::RecvSensor,
                Syscall::MqReceive {
                    qd: QD_SENSOR_IN,
                    nonblocking: false,
                },
            ),
        }
    }

    fn name(&self) -> &str {
        names::CONTROL
    }
}

// ---------------------------------------------------------------------------
// Sensor process
// ---------------------------------------------------------------------------

/// The Linux sensor driver.
pub struct LinuxSensor {
    period: SimDuration,
    seq: u32,
    state: SensorSt,
}

enum SensorSt {
    Start,
    AwaitOpen,
    AwaitDevRead,
    AwaitSend,
    AwaitSleep,
}

impl LinuxSensor {
    /// Creates the sensor driver.
    pub fn new(period: SimDuration) -> Self {
        LinuxSensor {
            period,
            seq: 0,
            state: SensorSt::Start,
        }
    }
}

impl Process for LinuxSensor {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match self.state {
            SensorSt::Start => {
                self.state = SensorSt::AwaitOpen;
                Action::Syscall(Syscall::MqOpen {
                    name: queues::SENSOR_IN.into(),
                    access: MqAccess::WRITE,
                    create: None,
                })
            }
            SensorSt::AwaitOpen => match reply {
                Some(Reply::Qd(0)) => {
                    self.state = SensorSt::AwaitDevRead;
                    Action::Syscall(Syscall::DevRead {
                        dev: DeviceId::TEMP_SENSOR,
                    })
                }
                _ => Action::Exit(1),
            },
            SensorSt::AwaitDevRead => match reply {
                Some(Reply::DevValue(v)) => {
                    self.seq += 1;
                    self.state = SensorSt::AwaitSend;
                    Action::Syscall(Syscall::MqSend {
                        qd: 0,
                        data: BasMsg::SensorReading {
                            milli_c: v as i32,
                            seq: self.seq,
                        }
                        .to_bytes(),
                        priority: 0,
                        nonblocking: true,
                    })
                }
                _ => Action::Exit(1),
            },
            SensorSt::AwaitSend => {
                self.state = SensorSt::AwaitSleep;
                Action::Syscall(Syscall::Sleep {
                    duration: self.period,
                })
            }
            SensorSt::AwaitSleep => {
                self.state = SensorSt::AwaitDevRead;
                Action::Syscall(Syscall::DevRead {
                    dev: DeviceId::TEMP_SENSOR,
                })
            }
        }
    }

    fn name(&self) -> &str {
        names::SENSOR
    }
}

// ---------------------------------------------------------------------------
// Actuator processes
// ---------------------------------------------------------------------------

/// A Linux actuator driver: blocking receive on its command queue, drive
/// the device.
pub struct LinuxActuator {
    queue: &'static str,
    dev: DeviceId,
    which: &'static str,
    state: ActSt,
}

enum ActSt {
    Start,
    AwaitOpen,
    AwaitRecv,
    AwaitWrite,
}

impl LinuxActuator {
    /// The heater/fan driver.
    pub fn heater() -> Self {
        LinuxActuator {
            queue: queues::HEATER_CMD,
            dev: DeviceId::FAN,
            which: names::HEATER,
            state: ActSt::Start,
        }
    }

    /// The alarm driver.
    pub fn alarm() -> Self {
        LinuxActuator {
            queue: queues::ALARM_CMD,
            dev: DeviceId::ALARM,
            which: names::ALARM,
            state: ActSt::Start,
        }
    }
}

impl Process for LinuxActuator {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match self.state {
            ActSt::Start => {
                self.state = ActSt::AwaitOpen;
                Action::Syscall(Syscall::MqOpen {
                    name: self.queue.into(),
                    access: MqAccess::READ,
                    create: None,
                })
            }
            ActSt::AwaitOpen => match reply {
                Some(Reply::Qd(0)) => {
                    self.state = ActSt::AwaitRecv;
                    Action::Syscall(Syscall::MqReceive {
                        qd: 0,
                        nonblocking: false,
                    })
                }
                _ => Action::Exit(1),
            },
            ActSt::AwaitRecv => {
                if let Some(Reply::Data { data, .. }) = reply {
                    let decoded = BasMsg::from_bytes(&data);
                    let cmd = match (self.dev, decoded) {
                        (DeviceId::FAN, Ok(BasMsg::FanCmd { on })) => Some(on),
                        (DeviceId::ALARM, Ok(BasMsg::AlarmCmd { on })) => Some(on),
                        _ => None,
                    };
                    if let Some(on) = cmd {
                        self.state = ActSt::AwaitWrite;
                        return Action::Syscall(Syscall::DevWrite {
                            dev: self.dev,
                            value: i64::from(on),
                        });
                    }
                }
                Action::Syscall(Syscall::MqReceive {
                    qd: 0,
                    nonblocking: false,
                })
            }
            ActSt::AwaitWrite => {
                self.state = ActSt::AwaitRecv;
                Action::Syscall(Syscall::MqReceive {
                    qd: 0,
                    nonblocking: false,
                })
            }
        }
    }

    fn name(&self) -> &str {
        self.which
    }
}

// ---------------------------------------------------------------------------
// Web interface process (benign)
// ---------------------------------------------------------------------------

/// The benign Linux web interface: scripted administrator actions over
/// the setpoint/status queues, awaiting replies on the reply queue.
///
/// Same-tick bursts drain in one wake (the next send issues straight
/// after the previous reply, no intervening `GetTime`), and completed
/// requests are stamped into the optional [`RequestLog`] at the next
/// clock read — see [`MinixWeb`] for the shared rationale.
///
/// [`MinixWeb`]: crate::platform::minix::MinixWeb
pub struct LinuxWeb {
    schedule: ScheduleCursor,
    responses: WebLog,
    requests: Option<RequestLog>,
    pending: VecDeque<(SimTime, WebAction)>,
    inflight: Option<(SimTime, WebAction)>,
    unstamped: Vec<(SimTime, WebAction, bool)>,
    state: WebSt,
}

enum WebSt {
    Start,
    Open(usize),
    AwaitTime,
    AwaitSleep,
    AwaitSend,
    AwaitReply,
}

const WEB_OPENS: [(&str, MqAccess); 3] = [
    (queues::SETPOINT_IN, MqAccess::WRITE),
    (queues::STATUS_IN, MqAccess::WRITE),
    (queues::WEB_REPLY, MqAccess::READ),
];
const WQD_SETPOINT: u32 = 0;
const WQD_STATUS: u32 = 1;
const WQD_REPLY: u32 = 2;

impl LinuxWeb {
    /// Creates the benign web interface over a private schedule copy.
    pub fn new(schedule: WebSchedule, responses: WebLog) -> Self {
        LinuxWeb::with_cursor(ScheduleCursor::detached(&schedule), responses, None)
    }

    /// Creates the benign web interface over a shared schedule cell,
    /// stamping completed requests into `requests`.
    pub fn with_cursor(
        schedule: ScheduleCursor,
        responses: WebLog,
        requests: Option<RequestLog>,
    ) -> Self {
        LinuxWeb {
            schedule,
            responses,
            requests,
            pending: VecDeque::new(),
            inflight: None,
            unstamped: Vec::new(),
            state: WebSt::Start,
        }
    }

    fn send_next(&mut self) -> Action<Syscall> {
        let (scheduled, action) = self.pending.pop_front().expect("pending action");
        self.inflight = Some((scheduled, action));
        let (qd, msg) = match action {
            WebAction::SetSetpoint(mc) => (WQD_SETPOINT, BasMsg::SetpointUpdate { milli_c: mc }),
            WebAction::QueryStatus => (WQD_STATUS, BasMsg::StatusQuery),
        };
        self.state = WebSt::AwaitSend;
        Action::Syscall(Syscall::MqSend {
            qd,
            data: msg.to_bytes(),
            priority: 0,
            nonblocking: false,
        })
    }

    fn stamp_completions(&mut self, now: SimTime) {
        if self.unstamped.is_empty() {
            return;
        }
        if let Some(log) = &self.requests {
            let mut log = log.borrow_mut();
            for &(scheduled, action, ok) in &self.unstamped {
                log.push(RequestSample {
                    scheduled,
                    completed: now,
                    action,
                    ok,
                });
            }
        }
        self.unstamped.clear();
    }
}

impl Process for LinuxWeb {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match self.state {
            WebSt::Start => {
                self.state = WebSt::Open(0);
                self.resume(None)
            }
            WebSt::Open(i) => {
                if i > 0 && !matches!(reply, Some(Reply::Qd(_))) {
                    return Action::Exit(1);
                }
                if i < WEB_OPENS.len() {
                    let (name, access) = WEB_OPENS[i];
                    self.state = WebSt::Open(i + 1);
                    return Action::Syscall(Syscall::MqOpen {
                        name: name.into(),
                        access,
                        create: None,
                    });
                }
                self.state = WebSt::AwaitTime;
                Action::Syscall(Syscall::GetTime)
            }
            WebSt::AwaitTime => {
                let now = match reply {
                    Some(Reply::Time(t)) => t,
                    _ => SimTime::ZERO,
                };
                self.stamp_completions(now);
                if self.pending.is_empty() {
                    let mut due = Vec::new();
                    self.schedule.drain_due(now, &mut due);
                    self.pending.extend(due);
                }
                if !self.pending.is_empty() {
                    return self.send_next();
                }
                match self.schedule.next_time() {
                    None => {
                        self.state = WebSt::AwaitSleep;
                        Action::Syscall(Syscall::Sleep {
                            duration: SimDuration::from_secs(3_600),
                        })
                    }
                    Some(t) => {
                        self.state = WebSt::AwaitSleep;
                        Action::Syscall(Syscall::Sleep { duration: t - now })
                    }
                }
            }
            WebSt::AwaitSleep => {
                self.state = WebSt::AwaitTime;
                Action::Syscall(Syscall::GetTime)
            }
            WebSt::AwaitSend => {
                self.state = WebSt::AwaitReply;
                Action::Syscall(Syscall::MqReceive {
                    qd: WQD_REPLY,
                    nonblocking: false,
                })
            }
            WebSt::AwaitReply => {
                let mut ok = false;
                if let Some(Reply::Data { data, .. }) = reply {
                    if let Ok(decoded) = BasMsg::from_bytes(&data) {
                        self.responses.borrow_mut().push(decoded);
                        ok = true;
                    }
                }
                if let Some((scheduled, action)) = self.inflight.take() {
                    self.unstamped.push((scheduled, action, ok));
                }
                if !self.pending.is_empty() {
                    // Burst tail: next send immediately, no clock read.
                    return self.send_next();
                }
                self.state = WebSt::AwaitTime;
                Action::Syscall(Syscall::GetTime)
            }
        }
    }

    fn name(&self) -> &str {
        names::WEB
    }
}

// ---------------------------------------------------------------------------
// Builder + runner
// ---------------------------------------------------------------------------

/// Build-time knobs used by the attack harness.
pub struct LinuxOverrides {
    /// Replaces the web interface program.
    pub web_factory: Option<Box<dyn Fn() -> LinuxProcess>>,
    /// Overrides the web interface's uid (0 = the A2 root escalation).
    pub web_uid: Option<u32>,
    /// Account/queue configuration.
    pub uid_scheme: UidScheme,
}

impl Default for LinuxOverrides {
    fn default() -> Self {
        LinuxOverrides {
            web_factory: None,
            web_uid: None,
            uid_scheme: UidScheme::SharedAccount,
        }
    }
}

/// The booted Linux stack: kernel, plant, and web log.
pub struct LinuxStack {
    /// The simulated kernel (public for experiment introspection).
    pub kernel: LinuxKernel,
    plant: SharedPlant,
    web_log: WebLog,
    /// The effective action schedule, shared with the benign web
    /// process and re-imaged per instance on recycling (the process
    /// spawned at boot holds a cursor over this cell, so the pristine
    /// fast path — which skips respawns — still picks up new traffic).
    web_schedule: SharedSchedule,
    /// Completed-request stamps from the benign web process.
    web_requests: RequestLog,
    /// Boot-template knobs kept so [`PlatformKernel::reset_to_boot`] can
    /// re-run the same queue creation and spawns.
    scheme: UidScheme,
    web_uid: u32,
    /// False when a custom web factory booted this stack: factories may
    /// be stateful, so recycling cannot guarantee cold-boot identity.
    forkable: bool,
    /// True once anything mutated the kernel after boot. While false the
    /// stack is still the boot template verbatim (the seed only reaches
    /// the plant), so recycling skips the kernel reset and respawns.
    ran: bool,
}

/// A running Linux scenario: the generic engine over [`LinuxStack`].
pub type LinuxScenario = ScenarioEngine<LinuxStack>;

/// Builds and boots the scenario on the Linux baseline.
pub fn build_linux(config: &ScenarioConfig, overrides: LinuxOverrides) -> LinuxScenario {
    ScenarioEngine::boot(config, overrides)
}

fn boot_linux(config: &ScenarioConfig, overrides: LinuxOverrides) -> LinuxStack {
    let plant: SharedPlant = Rc::new(std::cell::RefCell::new(PlantWorld::new(
        config.synced_plant(),
        config.seed,
    )));

    let scheme = overrides.uid_scheme;
    let mut device_nodes = std::collections::BTreeMap::new();
    let dev_mode = Mode::new(0o600);
    device_nodes.insert(
        DeviceId::TEMP_SENSOR,
        (Uid::new(scheme.uid_of(names::SENSOR)), dev_mode),
    );
    device_nodes.insert(
        DeviceId::FAN,
        (Uid::new(scheme.uid_of(names::HEATER)), dev_mode),
    );
    device_nodes.insert(
        DeviceId::ALARM,
        (Uid::new(scheme.uid_of(names::ALARM)), dev_mode),
    );

    let mut kernel = LinuxKernel::new(LinuxConfig {
        max_procs: config.max_procs,
        cost_model: config.cost_model,
        device_nodes,
        ..LinuxConfig::default()
    });
    install_devices(&plant, kernel.devices_mut());

    let web_log = new_web_log();
    let web_schedule = shared_schedule(config.effective_web_schedule());
    let web_requests = new_request_log();
    let web_uid = overrides
        .web_uid
        .unwrap_or_else(|| scheme.uid_of(names::WEB));
    let forkable = overrides.web_factory.is_none();
    let web_logic: LinuxProcess = match &overrides.web_factory {
        Some(factory) => factory(),
        None => benign_web(&web_schedule, &web_log, &web_requests),
    };
    populate_scenario(&mut kernel, config, scheme, web_uid, web_logic);

    // Register program images so fork-based attacks work.
    kernel.register_program(
        "sleeper",
        Box::new(|| {
            Box::new(bas_sim::script::Script::<Syscall, Reply>::looping(vec![
                Syscall::Sleep {
                    duration: SimDuration::from_secs(3_600),
                },
            ]))
        }),
    );

    LinuxStack {
        kernel,
        plant,
        web_log,
        web_schedule,
        web_requests,
        scheme,
        web_uid,
        forkable,
        ran: false,
    }
}

/// The benign web-interface process over the stack's shared schedule
/// cell and request log.
fn benign_web(
    web_schedule: &SharedSchedule,
    web_log: &WebLog,
    web_requests: &RequestLog,
) -> LinuxProcess {
    Box::new(LinuxWeb::with_cursor(
        ScheduleCursor::new(web_schedule.clone()),
        web_log.clone(),
        Some(web_requests.clone()),
    ))
}

/// Queue creation plus the five boot spawns, shared verbatim between cold
/// boot and [`PlatformKernel::reset_to_boot`]: "The scenario process in
/// Linux spawns all other processes and creates 6 message queues" — the
/// loader role, performed at build time.
fn populate_scenario(
    kernel: &mut LinuxKernel,
    config: &ScenarioConfig,
    scheme: UidScheme,
    web_uid: u32,
    web_logic: LinuxProcess,
) {
    let capacity = 64;
    match scheme {
        UidScheme::SharedAccount => {
            let owner = Uid::new(uids::SHARED);
            for name in queues::ALL {
                kernel.create_queue(name, owner, Mode::new(0o600), capacity);
            }
        }
        UidScheme::PerProcessHardened => {
            // owner = reader, group = single intended writer, mode 0620.
            let mode = Mode::new(0o620);
            let ctrl = Uid::new(uids::CONTROL);
            kernel.create_queue_grouped(
                queues::SENSOR_IN,
                ctrl,
                Uid::new(uids::SENSOR),
                mode,
                capacity,
            );
            kernel.create_queue_grouped(
                queues::SETPOINT_IN,
                ctrl,
                Uid::new(uids::WEB),
                mode,
                capacity,
            );
            kernel.create_queue_grouped(
                queues::STATUS_IN,
                ctrl,
                Uid::new(uids::WEB),
                mode,
                capacity,
            );
            kernel.create_queue_grouped(
                queues::HEATER_CMD,
                Uid::new(uids::HEATER),
                ctrl,
                mode,
                capacity,
            );
            kernel.create_queue_grouped(
                queues::ALARM_CMD,
                Uid::new(uids::ALARM),
                ctrl,
                mode,
                capacity,
            );
            kernel.create_queue_grouped(
                queues::WEB_REPLY,
                Uid::new(uids::WEB),
                ctrl,
                mode,
                capacity,
            );
        }
    }

    let control_config = config.control;
    kernel
        .spawn(
            names::CONTROL,
            scheme.uid_of(names::CONTROL),
            Box::new(LinuxControl::new(ControlCore::new(control_config))),
        )
        .expect("room for controller");
    kernel
        .spawn(
            names::HEATER,
            scheme.uid_of(names::HEATER),
            Box::new(LinuxActuator::heater()),
        )
        .expect("room for heater");
    kernel
        .spawn(
            names::ALARM,
            scheme.uid_of(names::ALARM),
            Box::new(LinuxActuator::alarm()),
        )
        .expect("room for alarm");
    kernel
        .spawn(
            names::SENSOR,
            scheme.uid_of(names::SENSOR),
            Box::new(LinuxSensor::new(config.sensor_period)),
        )
        .expect("room for sensor");
    kernel
        .spawn(names::WEB, web_uid, web_logic)
        .expect("room for web interface");
}

impl PlatformKernel for LinuxStack {
    const PLATFORM: Platform = Platform::Linux;
    type Overrides = LinuxOverrides;

    fn boot(config: &ScenarioConfig, overrides: LinuxOverrides) -> Self {
        boot_linux(config, overrides)
    }

    fn now(&self) -> SimTime {
        self.kernel.now()
    }

    fn run_until(&mut self, target: SimTime) {
        self.ran = true;
        self.kernel.run_until(target);
    }

    fn plant(&self) -> SharedPlant {
        self.plant.clone()
    }

    fn metrics(&self) -> KernelMetrics {
        *self.kernel.metrics()
    }

    fn alive_names(&self) -> Vec<String> {
        self.kernel.alive_process_names()
    }

    fn trace_count(&self, category: &str) -> usize {
        self.kernel.trace().events_in(category).count()
    }

    fn web_responses(&self) -> Vec<BasMsg> {
        self.web_log.borrow().clone()
    }

    fn web_requests(&self) -> Vec<RequestSample> {
        self.web_requests.borrow().clone()
    }

    fn reset_to_boot(&mut self, config: &ScenarioConfig) -> bool {
        if !self.forkable {
            return false;
        }
        // Re-image the shared schedule cell first: under traffic the
        // schedule is seed-derived, and the boot-time web process (kept
        // by the pristine path below) reads this cell lazily.
        *self.web_schedule.borrow_mut() = config.effective_web_schedule();
        if self.ran {
            self.kernel.reset_to_boot();
            let web_logic = benign_web(&self.web_schedule, &self.web_log, &self.web_requests);
            populate_scenario(
                &mut self.kernel,
                config,
                self.scheme,
                self.web_uid,
                web_logic,
            );
            // The "sleeper" program registered at cold boot survives the
            // kernel reset, so it is not re-registered here.
            self.ran = false;
        }
        // A never-stepped kernel is still the boot image verbatim (the
        // seed only reaches the plant). Re-seed the plant in place: the
        // `Rc` identity is what the installed plant devices hold.
        *self.plant.borrow_mut() = PlantWorld::new(config.synced_plant(), config.seed);
        self.web_log.borrow_mut().clear();
        self.web_requests.borrow_mut().clear();
        true
    }

    fn devices_mut(&mut self) -> &mut bas_sim::device::DeviceBus {
        // Interposed fault devices survive a kernel reset, so recycling
        // can no longer promise cold-boot identity.
        self.forkable = false;
        self.kernel.devices_mut()
    }

    fn inject_crash(&mut self, name: &str) -> bool {
        self.ran = true;
        self.kernel.kill_named(name)
    }

    fn arm_ipc_fault(&mut self, fault: bas_sim::fault::IpcFault, count: u32) {
        self.ran = true;
        self.kernel.ipc_faults_mut().arm(fault, count);
    }

    fn ipc_faults_applied(&self) -> u64 {
        self.kernel.ipc_faults().applied()
    }

    fn skew_clock(&mut self, d: bas_sim::time::SimDuration) {
        self.ran = true;
        self.kernel.skew_clock(d);
    }

    fn apply_cap_churn(&mut self, op: &bas_sim::caps::CapChurnOp) -> bool {
        self.ran = true;
        let mut changed = false;
        for queue in churn_queues(&op.subject, &op.object) {
            let q_op = bas_sim::caps::CapChurnOp {
                object: queue.to_string(),
                ..op.clone()
            };
            changed |= self.kernel.apply_cap_churn(&q_op);
        }
        changed
    }

    fn arm_cap_churn(&mut self, op: &bas_sim::caps::CapChurnOp, after_checks: u32) {
        self.ran = true;
        for queue in churn_queues(&op.subject, &op.object) {
            let q_op = bas_sim::caps::CapChurnOp {
                object: queue.to_string(),
                ..op.clone()
            };
            self.kernel.arm_cap_churn(&q_op, after_checks);
        }
    }

    fn enable_cap_trace(&mut self) {
        self.ran = true;
        self.kernel.enable_cap_trace();
    }

    fn cap_trace(&self) -> bas_sim::caps::CapTrace {
        self.kernel.cap_trace()
    }
}

/// Maps an instance-level channel (subject instance → destination
/// instance) onto the mq names carrying it; an `op.object` that is
/// already a VFS queue name (leading `/`) passes through unchanged.
/// Unknown pairs map to nothing, and the churn op reports unresolved.
fn churn_queues(subject: &str, object: &str) -> Vec<&'static str> {
    use crate::proto::names;
    if object.starts_with('/') {
        return queues::ALL.into_iter().filter(|q| *q == object).collect();
    }
    match (subject, object) {
        (names::SENSOR, names::CONTROL) => vec![queues::SENSOR_IN],
        (names::WEB, names::CONTROL) => vec![queues::SETPOINT_IN, queues::STATUS_IN],
        (names::CONTROL, names::HEATER) => vec![queues::HEATER_CMD],
        (names::CONTROL, names::ALARM) => vec![queues::ALARM_CMD],
        (names::CONTROL, names::WEB) => vec![queues::WEB_REPLY],
        _ => Vec::new(),
    }
}
