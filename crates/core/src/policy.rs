//! Scenario security policy, for every platform.
//!
//! The paper derives all per-platform policy artifacts from one AADL
//! architecture description ([`SCENARIO_AADL`], which mirrors its Fig. 2).
//! This module provides the hand-built equivalents — the ACM, the CAmkES
//! assembly, the Linux queue set — and the E9 experiment checks that the
//! `bas-aadl` backends generate the same artifacts from the AADL source.

use std::collections::BTreeMap;

use bas_acm::{AcId, AccessControlMatrix, AcmBuilder, MsgType, QuotaTable, SyscallClass};
use bas_camkes::assembly::Assembly;
use bas_camkes::component::{Component, Procedure};
use bas_minix::pm;
use bas_sel4::rights::CapRights;
use bas_sim::device::DeviceId;

use crate::proto::{
    AC_ALARM, AC_CONTROL, AC_HEATER, AC_SCENARIO, AC_SENSOR, AC_WEB, MT_ALARM_CMD, MT_FAN_CMD,
    MT_SENSOR_READING, MT_SETPOINT, MT_STATUS_QUERY,
};

/// The scenario architecture in the AADL subset, mirroring the paper's
/// Fig. 2 process/connection structure and §IV `ac_id` numbering.
pub const SCENARIO_AADL: &str = r"
-- Temperature-control scenario, extracted from the Biosecurity Research
-- Institute case study (paper Fig. 2).

process TempSensorProcess
features
  data_out: out event data port { BAS::msg_type => 1; };
properties
  BAS::ac_id => 100;
end TempSensorProcess;

process TempControlProcess
features
  sensor_in: in event data port;
  setpoint_in: in event data port;
  status_in: in event data port;
  fan_out: out event data port { BAS::msg_type => 2; };
  alarm_out: out event data port { BAS::msg_type => 3; };
properties
  BAS::ac_id => 101;
end TempControlProcess;

process HeaterActuatorProcess
features
  cmd_in: in event data port;
properties
  BAS::ac_id => 102;
end HeaterActuatorProcess;

process AlarmActuatorProcess
features
  cmd_in: in event data port;
properties
  BAS::ac_id => 103;
end AlarmActuatorProcess;

process WebInterfaceProcess
features
  setpoint_out: out event data port { BAS::msg_type => 4; };
  status_out: out event data port { BAS::msg_type => 5; };
properties
  BAS::ac_id => 104;
end WebInterfaceProcess;

system implementation TempControlSystem.impl
subcomponents
  tempSensProc: process TempSensorProcess.imp;
  tempProc: process TempControlProcess.imp;
  heaterActProc: process HeaterActuatorProcess.imp;
  alarmProc: process AlarmActuatorProcess.imp;
  webInterface: process WebInterfaceProcess.imp;
connections
  c1: port tempSensProc.data_out -> tempProc.sensor_in;
  c2: port tempProc.fan_out -> heaterActProc.cmd_in;
  c3: port tempProc.alarm_out -> alarmProc.cmd_in;
  c4: port webInterface.setpoint_out -> tempProc.setpoint_in;
  c5: port webInterface.status_out -> tempProc.status_in;
end TempControlSystem.impl;
";

/// Application-level ACM rows: one typed channel per Fig. 2 connection
/// plus acknowledgments both ways on every connected pair.
pub fn scenario_app_acm() -> AccessControlMatrix {
    app_rows(AccessControlMatrix::builder()).build()
}

fn app_rows(builder: AcmBuilder) -> AcmBuilder {
    builder
        // c1: sensor → control, sensor readings.
        .allow(AC_SENSOR, AC_CONTROL, [MsgType::new(MT_SENSOR_READING)])
        .allow_ack_between(AC_SENSOR, AC_CONTROL)
        // c2: control → heater, fan commands.
        .allow(AC_CONTROL, AC_HEATER, [MsgType::new(MT_FAN_CMD)])
        .allow_ack_between(AC_CONTROL, AC_HEATER)
        // c3: control → alarm, alarm commands.
        .allow(AC_CONTROL, AC_ALARM, [MsgType::new(MT_ALARM_CMD)])
        .allow_ack_between(AC_CONTROL, AC_ALARM)
        // c4/c5: web → control, setpoint updates and status queries.
        .allow(AC_WEB, AC_CONTROL, [MsgType::new(MT_SETPOINT)])
        .allow_ack_between(AC_WEB, AC_CONTROL)
        .allow(AC_WEB, AC_CONTROL, [MsgType::new(MT_STATUS_QUERY)])
}

/// The full MINIX ACM: application rows plus PM-server rows.
///
/// PM policy follows §IV-D.2 exactly: the loader may fork and kill; every
/// process may ask its own pid; the web interface may fork (the paper
/// notes it retains that privilege, hence the fork-bomb discussion) but
/// "the policy explicitly disallowed the web interface process to use
/// kill".
pub fn scenario_acm() -> AccessControlMatrix {
    let mut b = app_rows(AccessControlMatrix::builder());
    b = pm::allow_pm_ops(
        b,
        AC_SCENARIO,
        [
            pm::PM_FORK2,
            pm::PM_SRV_FORK2,
            pm::PM_KILL,
            pm::PM_EXIT,
            pm::PM_GETPID,
        ],
    );
    b = pm::allow_pm_ops(b, AC_WEB, [pm::PM_FORK2, pm::PM_GETPID]);
    for ac in [AC_SENSOR, AC_CONTROL, AC_HEATER, AC_ALARM] {
        b = pm::allow_pm_ops(b, ac, [pm::PM_GETPID]);
    }
    b.build()
}

/// Device ownership on MINIX: each device belongs to exactly its driver
/// identity.
pub fn scenario_device_owners() -> BTreeMap<DeviceId, AcId> {
    let mut owners = BTreeMap::new();
    owners.insert(DeviceId::TEMP_SENSOR, AC_SENSOR);
    owners.insert(DeviceId::FAN, AC_HEATER);
    owners.insert(DeviceId::ALARM, AC_ALARM);
    owners
}

/// Syscall quotas: the paper's future-work fork-bomb mitigation. `None`
/// reproduces the paper's baseline (vulnerable); `Some(n)` caps the web
/// interface at `n` forks.
pub fn scenario_quotas(web_fork_limit: Option<u64>) -> QuotaTable {
    let mut quotas = QuotaTable::new();
    if let Some(limit) = web_fork_limit {
        quotas.set_limit(AC_WEB, SyscallClass::Fork, limit);
    }
    quotas
}

/// CAmkES instance names. These reuse the canonical process names so the
/// cross-platform liveness checks treat threads and processes uniformly
/// (the AADL source keeps the paper's `tempProc`-style subcomponent
/// labels).
pub mod instances {
    /// Sensor driver instance.
    pub const SENSOR: &str = crate::proto::names::SENSOR;
    /// Controller instance.
    pub const CONTROL: &str = crate::proto::names::CONTROL;
    /// Heater/fan driver instance.
    pub const HEATER: &str = crate::proto::names::HEATER;
    /// Alarm driver instance.
    pub const ALARM: &str = crate::proto::names::ALARM;
    /// Web interface instance.
    pub const WEB: &str = crate::proto::names::WEB;
}

/// RPC method labels on the controller's provided interface.
pub mod ctrl_rpc {
    /// `report_reading(milli_c, seq)` — sensor only.
    pub const REPORT_READING: u64 = 0;
    /// `set_setpoint(milli_c) -> (code, actual)` — web only.
    pub const SET_SETPOINT: u64 = 1;
    /// `get_status() -> (temp, setpoint, fan, alarm)` — web only.
    pub const GET_STATUS: u64 = 2;
}

/// RPC method labels on the actuator drivers' provided interface.
pub mod actuator_rpc {
    /// `set(on)`.
    pub const SET: u64 = 0;
}

/// The controller's provided RPC procedure.
pub fn ctrl_procedure() -> Procedure {
    Procedure::new("ctrl_api", ["report_reading", "set_setpoint", "get_status"])
}

/// The actuator drivers' provided RPC procedure.
pub fn actuator_procedure() -> Procedure {
    Procedure::new("actuator_api", ["set"])
}

/// The scenario's CAmkES assembly (the paper's manual AADL→CAmkES
/// translation of §IV-B): five instances, four `seL4RPCCall` connections,
/// device frames for the three drivers.
///
/// Connection order fixes the badge layout: the sensor gets badge 1 and
/// the web interface badge 2 on the controller's endpoint, which is how
/// the controller rejects forged `report_reading` calls.
pub fn scenario_assembly() -> Assembly {
    let ctrl_api = ctrl_procedure();
    let actuator_api = actuator_procedure();

    let control = Component::new("TempControlProcess")
        .provides("ctrl", ctrl_api.clone())
        .uses("fan", actuator_api.clone())
        .uses("alarm", actuator_api.clone());
    let sensor = Component::new("TempSensorProcess")
        .uses("ctrl", ctrl_api.clone())
        .hardware("temp", DeviceId::TEMP_SENSOR, CapRights::READ);
    let heater = Component::new("HeaterActuatorProcess")
        .provides("cmd", actuator_api.clone())
        .hardware("fan", DeviceId::FAN, CapRights::WRITE);
    let alarm = Component::new("AlarmActuatorProcess")
        .provides("cmd", actuator_api)
        .hardware("alarm", DeviceId::ALARM, CapRights::WRITE);
    let web = Component::new("WebInterfaceProcess").uses("ctrl", ctrl_api);

    Assembly::new()
        .instance(instances::CONTROL, control)
        .instance(instances::SENSOR, sensor)
        .instance(instances::HEATER, heater)
        .instance(instances::ALARM, alarm)
        .instance(instances::WEB, web)
        // Badge order: sensor = 1, web = 2 on the controller endpoint.
        .rpc_connection(
            "c1",
            (instances::SENSOR, "ctrl"),
            (instances::CONTROL, "ctrl"),
        )
        .rpc_connection("c4", (instances::WEB, "ctrl"), (instances::CONTROL, "ctrl"))
        .rpc_connection(
            "c2",
            (instances::CONTROL, "fan"),
            (instances::HEATER, "cmd"),
        )
        .rpc_connection(
            "c3",
            (instances::CONTROL, "alarm"),
            (instances::ALARM, "cmd"),
        )
}

/// Linux message-queue names — six queues, as in §IV-C ("creates 6
/// message queues that are needed for various communications").
pub mod queues {
    /// sensor → control readings.
    pub const SENSOR_IN: &str = "/mq_tempProc_sensor_in";
    /// web → control setpoint updates.
    pub const SETPOINT_IN: &str = "/mq_tempProc_setpoint_in";
    /// web → control status queries.
    pub const STATUS_IN: &str = "/mq_tempProc_status_in";
    /// control → heater commands.
    pub const HEATER_CMD: &str = "/mq_heaterActProc_cmd_in";
    /// control → alarm commands.
    pub const ALARM_CMD: &str = "/mq_alarmProc_cmd_in";
    /// control → web replies (acks/status).
    pub const WEB_REPLY: &str = "/mq_webInterface_reply";

    /// All six queue names.
    pub const ALL: [&str; 6] = [
        SENSOR_IN,
        SETPOINT_IN,
        STATUS_IN,
        HEATER_CMD,
        ALARM_CMD,
        WEB_REPLY,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::MT_ACK;

    #[test]
    fn web_cannot_fake_sensor_readings_by_policy() {
        let acm = scenario_acm();
        assert!(!acm
            .check(AC_WEB, AC_CONTROL, MsgType::new(MT_SENSOR_READING))
            .is_allowed());
        assert!(acm
            .check(AC_SENSOR, AC_CONTROL, MsgType::new(MT_SENSOR_READING))
            .is_allowed());
    }

    #[test]
    fn web_cannot_reach_drivers_at_all() {
        let acm = scenario_acm();
        for t in 0..8 {
            assert!(!acm.check(AC_WEB, AC_HEATER, MsgType::new(t)).is_allowed());
            assert!(!acm.check(AC_WEB, AC_ALARM, MsgType::new(t)).is_allowed());
        }
    }

    #[test]
    fn web_may_use_its_legitimate_channel() {
        let acm = scenario_acm();
        assert!(acm
            .check(AC_WEB, AC_CONTROL, MsgType::new(MT_SETPOINT))
            .is_allowed());
        assert!(acm
            .check(AC_WEB, AC_CONTROL, MsgType::new(MT_STATUS_QUERY))
            .is_allowed());
        assert!(acm
            .check(AC_CONTROL, AC_WEB, MsgType::new(MT_ACK))
            .is_allowed());
    }

    #[test]
    fn web_kill_denied_loader_kill_allowed() {
        let acm = scenario_acm();
        assert!(!acm
            .check(AC_WEB, pm::PM_AC_ID, MsgType::new(pm::PM_KILL))
            .is_allowed());
        assert!(acm
            .check(AC_WEB, pm::PM_AC_ID, MsgType::new(pm::PM_FORK2))
            .is_allowed());
        assert!(acm
            .check(AC_SCENARIO, pm::PM_AC_ID, MsgType::new(pm::PM_KILL))
            .is_allowed());
    }

    #[test]
    fn aadl_source_parses_and_generates_same_app_acm() {
        let model = bas_aadl::parse(SCENARIO_AADL).unwrap();
        assert!(model.validate().is_ok());
        let generated = bas_aadl::backends::acm::compile(&model).unwrap();
        assert_eq!(
            generated,
            scenario_app_acm(),
            "AADL backend matches hand policy"
        );
    }

    #[test]
    fn aadl_camkes_backend_produces_valid_assembly() {
        let model = bas_aadl::parse(SCENARIO_AADL).unwrap();
        let assembly = bas_aadl::backends::camkes::compile(&model).unwrap();
        assert!(assembly.validate().is_ok());
        assert_eq!(assembly.instances.len(), 5);
        assert_eq!(assembly.connections.len(), 5);
    }

    #[test]
    fn aadl_linux_plan_covers_five_in_ports() {
        let model = bas_aadl::parse(SCENARIO_AADL).unwrap();
        let plan = bas_aadl::backends::linux_plan::compile(&model).unwrap();
        assert_eq!(plan.queues.len(), 5, "one queue per connected in-port");
        let q = plan.queue_for("tempProc", "sensor_in").unwrap();
        assert_eq!(
            q.name,
            queues::SENSOR_IN,
            "hand constants match generated names"
        );
        assert_eq!(
            plan.queue_for("heaterActProc", "cmd_in").unwrap().name,
            queues::HEATER_CMD
        );
    }

    #[test]
    fn scenario_assembly_compiles_to_capdl() {
        let (spec, glue) = bas_camkes::codegen::compile(&scenario_assembly()).unwrap();
        assert!(spec.validate().is_ok());
        // Badge layout: sensor 1, web 2.
        assert_eq!(glue.badge_of(instances::SENSOR, "ctrl"), Some(1));
        assert_eq!(glue.badge_of(instances::WEB, "ctrl"), Some(2));
        // Drivers hold device caps; web holds exactly one cap.
        assert!(glue.device_slot(instances::HEATER, "fan").is_some());
        let web_caps = spec.caps_of(instances::WEB).count();
        assert_eq!(web_caps, 1, "web interface has only its RPC capability");
    }

    #[test]
    fn quotas_off_by_default() {
        let q = scenario_quotas(None);
        assert_eq!(q.limit(AC_WEB, SyscallClass::Fork), None);
        let q = scenario_quotas(Some(3));
        assert_eq!(q.limit(AC_WEB, SyscallClass::Fork), Some(3));
    }

    #[test]
    fn device_owners_cover_all_three_devices() {
        let owners = scenario_device_owners();
        assert_eq!(owners[&DeviceId::TEMP_SENSOR], AC_SENSOR);
        assert_eq!(owners[&DeviceId::FAN], AC_HEATER);
        assert_eq!(owners[&DeviceId::ALARM], AC_ALARM);
    }
}
