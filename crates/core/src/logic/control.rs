//! The temperature-control core (pure logic, no syscalls).
//!
//! §II: the controller "periodically receives the current room temperature
//! sensor data [...] Based on the sensor data, it sends control commands
//! to the heater driver and to the alarm driver. The temperature control
//! process also listens for setpoint updates from web interface" and must
//! "allow an administrator to adjust the desired room temperature within
//! this range" — out-of-range setpoints are rejected.

use bas_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static control parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlConfig {
    /// Initial setpoint, milli-°C.
    pub setpoint_milli_c: i32,
    /// Lowest setpoint an administrator may select, milli-°C.
    pub min_setpoint_milli_c: i32,
    /// Highest setpoint an administrator may select, milli-°C.
    pub max_setpoint_milli_c: i32,
    /// Allowed band half-width around the setpoint, milli-°C; excursions
    /// beyond it arm the alarm timer.
    pub band_milli_c: i32,
    /// Fan switching hysteresis, milli-°C (prevents relay chatter).
    pub hysteresis_milli_c: i32,
    /// How long the temperature may stay out of band before the alarm
    /// must sound ("e.g., 5 minutes").
    pub alarm_deadline: SimDuration,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            setpoint_milli_c: 22_000,
            min_setpoint_milli_c: 18_000,
            max_setpoint_milli_c: 28_000,
            band_milli_c: 1_000,
            hysteresis_milli_c: 300,
            alarm_deadline: SimDuration::from_mins(5),
        }
    }
}

/// An actuator command the core wants executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// Drive the fan actuator.
    SetFan(bool),
    /// Drive the alarm actuator.
    SetAlarm(bool),
}

/// Why a setpoint update was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetpointOutOfRange {
    /// The rejected value, milli-°C.
    pub requested_milli_c: i32,
}

impl std::fmt::Display for SetpointOutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "setpoint {} m°C outside the permitted range",
            self.requested_milli_c
        )
    }
}

impl std::error::Error for SetpointOutOfRange {}

/// Controller status snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlStatus {
    /// Last accepted sensor reading, milli-°C (0 before the first).
    pub last_reading_milli_c: i32,
    /// Active setpoint, milli-°C.
    pub setpoint_milli_c: i32,
    /// Commanded fan state.
    pub fan_on: bool,
    /// Commanded alarm state.
    pub alarm_on: bool,
}

/// The pure control core.
///
/// ```
/// use bas_core::logic::control::{ControlConfig, ControlCore, Directive};
/// use bas_sim::time::SimTime;
///
/// let mut core = ControlCore::new(ControlConfig::default());
/// // Hot reading: the fan must switch on.
/// let d = core.on_sensor_reading(SimTime::ZERO, 23_000);
/// assert!(d.contains(&Directive::SetFan(true)));
/// ```
#[derive(Debug, Clone)]
pub struct ControlCore {
    config: ControlConfig,
    setpoint_milli_c: i32,
    fan_on: bool,
    alarm_on: bool,
    last_reading_milli_c: i32,
    out_of_band_since: Option<SimTime>,
    readings_processed: u64,
}

impl ControlCore {
    /// Creates a core with the given configuration.
    pub fn new(config: ControlConfig) -> Self {
        ControlCore {
            setpoint_milli_c: config.setpoint_milli_c,
            fan_on: false,
            alarm_on: false,
            last_reading_milli_c: 0,
            out_of_band_since: None,
            readings_processed: 0,
            config,
        }
    }

    /// Processes one sensor reading; returns the actuator commands that
    /// changed state (idempotent commands are suppressed).
    pub fn on_sensor_reading(&mut self, now: SimTime, milli_c: i32) -> Vec<Directive> {
        self.readings_processed += 1;
        self.last_reading_milli_c = milli_c;
        let mut directives = Vec::new();

        // Bang-bang fan control with hysteresis.
        let want_fan = if milli_c > self.setpoint_milli_c + self.config.hysteresis_milli_c {
            true
        } else if milli_c < self.setpoint_milli_c - self.config.hysteresis_milli_c {
            false
        } else {
            self.fan_on
        };
        if want_fan != self.fan_on {
            self.fan_on = want_fan;
            directives.push(Directive::SetFan(want_fan));
        }

        // Alarm-deadline supervision.
        let deviation = (milli_c - self.setpoint_milli_c).abs();
        let want_alarm = if deviation > self.config.band_milli_c {
            let start = *self.out_of_band_since.get_or_insert(now);
            now.saturating_since(start) >= self.config.alarm_deadline
        } else {
            self.out_of_band_since = None;
            false
        };
        if want_alarm != self.alarm_on {
            self.alarm_on = want_alarm;
            directives.push(Directive::SetAlarm(want_alarm));
        }

        directives
    }

    /// Applies an administrator setpoint update.
    ///
    /// # Errors
    ///
    /// Returns [`SetpointOutOfRange`] (leaving the setpoint unchanged)
    /// when the request leaves the configured range — the input validation
    /// that makes setpoint tampering through the *legitimate* channel
    /// bounded on every platform.
    pub fn on_setpoint_update(
        &mut self,
        now: SimTime,
        milli_c: i32,
    ) -> Result<(), SetpointOutOfRange> {
        if milli_c < self.config.min_setpoint_milli_c || milli_c > self.config.max_setpoint_milli_c
        {
            return Err(SetpointOutOfRange {
                requested_milli_c: milli_c,
            });
        }
        self.setpoint_milli_c = milli_c;
        // The reference moved: restart the excursion window.
        self.out_of_band_since = Some(now);
        Ok(())
    }

    /// Current status snapshot.
    pub fn status(&self) -> ControlStatus {
        ControlStatus {
            last_reading_milli_c: self.last_reading_milli_c,
            setpoint_milli_c: self.setpoint_milli_c,
            fan_on: self.fan_on,
            alarm_on: self.alarm_on,
        }
    }

    /// Number of sensor readings processed (liveness signal for the
    /// attack harness).
    pub fn readings_processed(&self) -> u64 {
        self.readings_processed
    }

    /// The static configuration.
    pub fn config(&self) -> &ControlConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn core() -> ControlCore {
        ControlCore::new(ControlConfig::default())
    }

    #[test]
    fn fan_switches_on_above_hysteresis() {
        let mut c = core();
        assert_eq!(
            c.on_sensor_reading(at(0), 22_200),
            vec![],
            "inside hysteresis"
        );
        assert_eq!(
            c.on_sensor_reading(at(1), 22_400),
            vec![Directive::SetFan(true)]
        );
        assert_eq!(
            c.on_sensor_reading(at(2), 22_400),
            vec![],
            "no repeat command"
        );
    }

    #[test]
    fn fan_switches_off_below_hysteresis() {
        let mut c = core();
        c.on_sensor_reading(at(0), 23_000);
        assert!(c.status().fan_on);
        assert_eq!(
            c.on_sensor_reading(at(1), 22_000),
            vec![],
            "hysteresis holds"
        );
        assert_eq!(
            c.on_sensor_reading(at(2), 21_600),
            vec![Directive::SetFan(false)]
        );
    }

    #[test]
    fn alarm_fires_only_after_deadline() {
        let mut c = core();
        c.on_sensor_reading(at(0), 26_000); // out of band, fan on
        for s in 1..300 {
            let d = c.on_sensor_reading(at(s), 26_000);
            assert!(!d.contains(&Directive::SetAlarm(true)), "too early at {s}s");
        }
        let d = c.on_sensor_reading(at(300), 26_000);
        assert!(d.contains(&Directive::SetAlarm(true)));
        assert!(c.status().alarm_on);
    }

    #[test]
    fn alarm_clears_when_back_in_band() {
        let mut c = core();
        for s in 0..=300 {
            c.on_sensor_reading(at(s), 26_000);
        }
        assert!(c.status().alarm_on);
        let d = c.on_sensor_reading(at(301), 22_000);
        assert!(d.contains(&Directive::SetAlarm(false)));
        assert!(!c.status().alarm_on);
    }

    #[test]
    fn setpoint_update_within_range_accepted() {
        let mut c = core();
        assert!(c.on_setpoint_update(at(0), 24_000).is_ok());
        assert_eq!(c.status().setpoint_milli_c, 24_000);
        // Fan logic follows the new setpoint.
        let d = c.on_sensor_reading(at(1), 23_000);
        assert_eq!(d, vec![], "23°C is below the 24°C setpoint band");
    }

    #[test]
    fn setpoint_out_of_range_rejected() {
        let mut c = core();
        let err = c.on_setpoint_update(at(0), 95_000).unwrap_err();
        assert_eq!(err.requested_milli_c, 95_000);
        assert_eq!(c.status().setpoint_milli_c, 22_000, "unchanged");
        assert!(c.on_setpoint_update(at(0), 10_000).is_err());
    }

    #[test]
    fn setpoint_change_restarts_alarm_window() {
        let mut c = core();
        for s in 0..250 {
            c.on_sensor_reading(at(s), 26_000);
        }
        // Admin legitimizes the higher temperature just before the
        // deadline: window restarts relative to the new target of 26°C...
        c.on_setpoint_update(at(250), 26_000).unwrap();
        for s in 250..900 {
            let d = c.on_sensor_reading(at(s), 26_000);
            assert!(
                !d.contains(&Directive::SetAlarm(true)),
                "in band at new setpoint"
            );
        }
    }

    #[test]
    fn readings_counter_increments() {
        let mut c = core();
        for s in 0..5 {
            c.on_sensor_reading(at(s), 22_000);
        }
        assert_eq!(c.readings_processed(), 5);
    }
}
