//! Deterministic open-loop traffic generation for the web interface.
//!
//! E18 replays heavy multi-tenant load against the paper's one exposed
//! attack surface — the untrusted web process. A [`TrafficProfile`]
//! describes the *population* (tenant count, arrival process, read/write
//! mix); [`TrafficProfile::generate`] expands it into a concrete
//! per-instance action schedule from the instance's own seed, so two
//! fleet instances carry different traffic while the whole fleet stays a
//! pure function of `(template, root_seed)`.
//!
//! Generation is open-loop (arrival times never depend on completions),
//! which keeps the schedule computable up front and the run byte-
//! identical at any worker count: the load offered to a slow platform is
//! exactly the load offered to a fast one, and queueing delay shows up
//! in the measured latency instead of silently thinning the arrivals.

use bas_sim::rng::SimRng;
use bas_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::logic::web::WebAction;

/// Inter-arrival process of one tenant's requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Exponential gaps (Poisson arrivals) — the classic open-system
    /// model of independent human tenants.
    Poisson,
    /// Gaps uniform in `[0.5·mean, 1.5·mean)` — a bounded-jitter
    /// periodic poller (dashboard auto-refresh).
    Uniform,
}

/// A multi-tenant load description, expanded per instance by
/// [`TrafficProfile::generate`].
///
/// Lives in the scenario *template* (identical across a fleet); only the
/// instance seed differentiates the concrete schedules, which is what
/// lets snapshot/fork boot share one warm template under traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficProfile {
    /// When the tenant sessions open.
    pub start: SimTime,
    /// How long the sessions last; no arrivals at or past
    /// `start + duration`.
    pub duration: SimDuration,
    /// Concurrent tenant sessions per instance.
    pub tenants: usize,
    /// Mean gap between one tenant's requests, seconds.
    pub mean_interarrival_s: f64,
    /// Arrival process shared by every tenant.
    pub arrival: ArrivalProcess,
    /// Fraction of requests that are setpoint writes (the rest are
    /// status reads).
    pub write_fraction: f64,
    /// Smallest setpoint a tenant writes, milli-°C.
    pub setpoint_min_milli_c: i32,
    /// Largest setpoint a tenant writes (inclusive), milli-°C.
    pub setpoint_max_milli_c: i32,
    /// Mixed into the seed so the traffic stream is decorrelated from
    /// the sensor-noise stream that shares the instance seed.
    pub stream_salt: u64,
}

impl Default for TrafficProfile {
    /// Four tenants polling/adjusting around the controller default
    /// (22 °C ± 0.5 °C, inside the 1 °C band, so legitimate traffic
    /// never trips the safety oracle), Poisson arrivals with an 8 s
    /// mean gap, 30% writes.
    fn default() -> Self {
        TrafficProfile {
            start: SimTime::ZERO + SimDuration::from_secs(10),
            duration: SimDuration::from_mins(10),
            tenants: 4,
            mean_interarrival_s: 8.0,
            arrival: ArrivalProcess::Poisson,
            write_fraction: 0.3,
            setpoint_min_milli_c: 21_500,
            setpoint_max_milli_c: 22_500,
            stream_salt: 0x7e18_7e18_7e18_7e18,
        }
    }
}

impl TrafficProfile {
    /// Expands the profile into a time-sorted action schedule for the
    /// instance seeded with `seed`.
    ///
    /// Each tenant draws from its own forked SplitMix64 stream (forked
    /// in tenant order from `seed ^ stream_salt`), so the schedule is a
    /// pure function of `(profile, seed)` — independent of workers,
    /// platform, or anything observed during the run.
    pub fn generate(&self, seed: u64) -> Vec<(SimTime, WebAction)> {
        let mut root = SimRng::seed_from(seed ^ self.stream_salt);
        let horizon = self.start + self.duration;
        let mut schedule = Vec::new();
        for _ in 0..self.tenants {
            let mut rng = root.fork();
            let mut t = self.start;
            loop {
                let gap_s = match self.arrival {
                    // Inverse-CDF exponential; 1-u keeps ln() finite.
                    ArrivalProcess::Poisson => {
                        -(1.0 - rng.uniform()).ln() * self.mean_interarrival_s
                    }
                    ArrivalProcess::Uniform => (0.5 + rng.uniform()) * self.mean_interarrival_s,
                };
                let gap_ns = ((gap_s * 1e9).round() as u64).max(1);
                t += SimDuration::from_nanos(gap_ns);
                if t >= horizon {
                    break;
                }
                let action = if rng.chance(self.write_fraction) {
                    let lo = self.setpoint_min_milli_c.min(self.setpoint_max_milli_c);
                    let hi = self.setpoint_min_milli_c.max(self.setpoint_max_milli_c);
                    let span = (hi - lo) as u64 + 1;
                    let mc = lo + rng.uniform_range(0, span) as i32;
                    WebAction::SetSetpoint(mc)
                } else {
                    WebAction::QueryStatus
                };
                schedule.push((t, action));
            }
        }
        // Stable sort: same-tick actions keep tenant order, so the
        // merged stream is still deterministic.
        schedule.sort_by_key(|(t, _)| *t);
        schedule
    }

    /// Expected request count across all tenants (for sizing reports).
    pub fn expected_requests(&self) -> f64 {
        if self.mean_interarrival_s <= 0.0 {
            return 0.0;
        }
        self.tenants as f64 * self.duration.as_secs_f64() / self.mean_interarrival_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> TrafficProfile {
        TrafficProfile::default()
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let p = profile();
        assert_eq!(p.generate(7), p.generate(7));
        assert_ne!(p.generate(7), p.generate(8), "seeds must differentiate");
    }

    #[test]
    fn schedule_is_sorted_and_bounded() {
        let p = profile();
        let s = p.generate(1234);
        assert!(!s.is_empty());
        let horizon = p.start + p.duration;
        for w in s.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for (t, _) in &s {
            assert!(*t > p.start && *t < horizon);
        }
    }

    #[test]
    fn writes_stay_inside_the_configured_band() {
        let p = profile();
        let mut writes = 0usize;
        for (_, a) in p.generate(99) {
            if let WebAction::SetSetpoint(mc) = a {
                assert!((p.setpoint_min_milli_c..=p.setpoint_max_milli_c).contains(&mc));
                writes += 1;
            }
        }
        assert!(writes > 0, "default profile must produce some writes");
    }

    #[test]
    fn request_volume_tracks_the_mean_rate() {
        let p = profile();
        let n = p.generate(5).len() as f64;
        let expected = p.expected_requests();
        assert!(
            n > expected * 0.5 && n < expected * 1.5,
            "{n} requests vs {expected} expected"
        );
    }

    #[test]
    fn uniform_arrivals_respect_the_jitter_window() {
        let p = TrafficProfile {
            arrival: ArrivalProcess::Uniform,
            tenants: 1,
            ..profile()
        };
        let s = p.generate(42);
        let min_gap = SimDuration::from_nanos((0.5 * p.mean_interarrival_s * 1e9) as u64);
        let mut prev = p.start;
        for (t, _) in s {
            assert!(t - prev >= min_gap, "gap below the jitter floor");
            prev = t;
        }
    }
}
