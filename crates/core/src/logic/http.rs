//! The web interface's HTTP surface.
//!
//! §IV-A: the web interface "is a static HTTP web server [...] maintains
//! TCP socket on port 8080 and supports HTTP GET and HTTP POST." This
//! module is that server's request/response layer: it maps the two
//! supported requests onto administrator actions and renders status
//! responses. It is also the compromise surface of the threat model —
//! "the web interface process does not hold any security guarantee" — so
//! the parser is written defensively and property-tested to never panic
//! on arbitrary input.
//!
//! ```
//! use bas_core::logic::http::{parse_request, HttpRequestOutcome};
//! use bas_core::logic::web::WebAction;
//!
//! assert_eq!(
//!     parse_request("GET /status HTTP/1.1"),
//!     HttpRequestOutcome::Action(WebAction::QueryStatus),
//! );
//! assert_eq!(
//!     parse_request("POST /setpoint?milli_c=24000 HTTP/1.1"),
//!     HttpRequestOutcome::Action(WebAction::SetSetpoint(24_000)),
//! );
//! ```

use crate::logic::control::ControlStatus;
use crate::logic::web::WebAction;

/// Result of parsing one HTTP request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpRequestOutcome {
    /// A valid administrator action.
    Action(WebAction),
    /// `400 Bad Request`: syntactically broken or unsupported.
    BadRequest(&'static str),
    /// `404 Not Found`: well-formed but unknown path.
    NotFound,
    /// `405 Method Not Allowed`: known path, wrong method.
    MethodNotAllowed,
}

/// Parses one HTTP/1.x request line into an administrator action.
///
/// Supported requests:
///
/// - `GET /status HTTP/1.x` → [`WebAction::QueryStatus`]
/// - `POST /setpoint?milli_c=<i32> HTTP/1.x` → [`WebAction::SetSetpoint`]
///
/// Never panics, whatever the input.
pub fn parse_request(line: &str) -> HttpRequestOutcome {
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return HttpRequestOutcome::BadRequest("malformed request line");
    };
    if parts.next().is_some() {
        return HttpRequestOutcome::BadRequest("trailing tokens");
    }
    if !version.starts_with("HTTP/1.") {
        return HttpRequestOutcome::BadRequest("unsupported protocol version");
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };

    match path {
        "/status" => match method {
            "GET" => HttpRequestOutcome::Action(WebAction::QueryStatus),
            _ => HttpRequestOutcome::MethodNotAllowed,
        },
        "/setpoint" => match method {
            "POST" => {
                let Some(query) = query else {
                    return HttpRequestOutcome::BadRequest("missing milli_c parameter");
                };
                let value = query.split('&').find_map(|kv| {
                    kv.strip_prefix("milli_c=")
                        .and_then(|v| v.parse::<i32>().ok())
                });
                match value {
                    Some(milli_c) => HttpRequestOutcome::Action(WebAction::SetSetpoint(milli_c)),
                    None => HttpRequestOutcome::BadRequest("milli_c must be an integer"),
                }
            }
            _ => HttpRequestOutcome::MethodNotAllowed,
        },
        _ => HttpRequestOutcome::NotFound,
    }
}

/// Renders the controller's status as the `/status` response body.
pub fn render_status(status: &ControlStatus) -> String {
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\n\
         temp_milli_c={} setpoint_milli_c={} fan={} alarm={}\r\n",
        status.last_reading_milli_c,
        status.setpoint_milli_c,
        u8::from(status.fan_on),
        u8::from(status.alarm_on),
    )
}

/// Renders a setpoint-change acknowledgment.
pub fn render_ack(code: u32) -> String {
    if code == 0 {
        "HTTP/1.1 200 OK\r\n\r\naccepted\r\n".to_string()
    } else {
        format!("HTTP/1.1 422 Unprocessable Entity\r\n\r\nrejected code={code}\r\n")
    }
}

/// Renders the error outcome of a failed parse.
pub fn render_error(outcome: &HttpRequestOutcome) -> String {
    match outcome {
        HttpRequestOutcome::Action(_) => unreachable!("not an error"),
        HttpRequestOutcome::BadRequest(why) => {
            format!("HTTP/1.1 400 Bad Request\r\n\r\n{why}\r\n")
        }
        HttpRequestOutcome::NotFound => "HTTP/1.1 404 Not Found\r\n\r\n".to_string(),
        HttpRequestOutcome::MethodNotAllowed => {
            "HTTP/1.1 405 Method Not Allowed\r\n\r\n".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supported_requests_parse() {
        assert_eq!(
            parse_request("GET /status HTTP/1.1"),
            HttpRequestOutcome::Action(WebAction::QueryStatus)
        );
        assert_eq!(
            parse_request("POST /setpoint?milli_c=21500 HTTP/1.0"),
            HttpRequestOutcome::Action(WebAction::SetSetpoint(21_500))
        );
        assert_eq!(
            parse_request("POST /setpoint?foo=1&milli_c=-5 HTTP/1.1"),
            HttpRequestOutcome::Action(WebAction::SetSetpoint(-5)),
            "extra params tolerated; range enforcement is the controller's job"
        );
    }

    #[test]
    fn wrong_method_is_405() {
        assert_eq!(
            parse_request("POST /status HTTP/1.1"),
            HttpRequestOutcome::MethodNotAllowed
        );
        assert_eq!(
            parse_request("GET /setpoint?milli_c=1 HTTP/1.1"),
            HttpRequestOutcome::MethodNotAllowed
        );
    }

    #[test]
    fn unknown_path_is_404() {
        assert_eq!(
            parse_request("GET /admin HTTP/1.1"),
            HttpRequestOutcome::NotFound
        );
    }

    #[test]
    fn malformed_lines_are_400() {
        for bad in [
            "",
            "GET",
            "GET /status",
            "GET /status HTTP/2",
            "GET /status HTTP/1.1 extra",
            "POST /setpoint HTTP/1.1",
            "POST /setpoint?milli_c=abc HTTP/1.1",
            "POST /setpoint?milli_c=99999999999999999 HTTP/1.1",
        ] {
            assert!(
                matches!(parse_request(bad), HttpRequestOutcome::BadRequest(_)),
                "{bad:?} should be a 400"
            );
        }
    }

    #[test]
    fn responses_have_http_shape() {
        let status = ControlStatus {
            last_reading_milli_c: 21_900,
            setpoint_milli_c: 22_000,
            fan_on: true,
            alarm_on: false,
        };
        let body = render_status(&status);
        assert!(body.starts_with("HTTP/1.1 200"));
        assert!(body.contains("temp_milli_c=21900"));
        assert!(render_ack(0).contains("200 OK"));
        assert!(render_ack(1).contains("422"));
        assert!(render_error(&HttpRequestOutcome::NotFound).contains("404"));
    }
}
