//! Benign web-interface behavior: a scripted administrator session.
//!
//! §II: the web interface "provides administrators a way to change the
//! desired room temperature setpoint". The benign schedule drives that
//! legitimate channel; attack variants (in `bas-attack`) replace the whole
//! process, modeling remote compromise.

use bas_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// One administrator action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WebAction {
    /// Change the setpoint (milli-°C).
    SetSetpoint(i32),
    /// Poll controller status.
    QueryStatus,
}

/// A time-ordered schedule of administrator actions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WebSchedule {
    actions: Vec<(SimTime, WebAction)>,
    next: usize,
}

impl WebSchedule {
    /// Creates a schedule; actions are sorted by time.
    pub fn new(mut actions: Vec<(SimTime, WebAction)>) -> Self {
        actions.sort_by_key(|(t, _)| *t);
        WebSchedule { actions, next: 0 }
    }

    /// An empty schedule (web interface stays idle).
    pub fn idle() -> Self {
        WebSchedule::default()
    }

    /// The time of the next pending action.
    pub fn next_time(&self) -> Option<SimTime> {
        self.actions.get(self.next).map(|(t, _)| *t)
    }

    /// Pops the next action if it is due at `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<WebAction> {
        match self.actions.get(self.next) {
            Some(&(t, action)) if t <= now => {
                self.next += 1;
                Some(action)
            }
            _ => None,
        }
    }

    /// Actions not yet popped.
    pub fn remaining(&self) -> usize {
        self.actions.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_sim::time::SimDuration;

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn actions_delivered_in_time_order() {
        let mut s = WebSchedule::new(vec![
            (at(20), WebAction::QueryStatus),
            (at(10), WebAction::SetSetpoint(24_000)),
        ]);
        assert_eq!(s.next_time(), Some(at(10)));
        assert_eq!(s.pop_due(at(5)), None, "not due yet");
        assert_eq!(s.pop_due(at(10)), Some(WebAction::SetSetpoint(24_000)));
        assert_eq!(s.pop_due(at(30)), Some(WebAction::QueryStatus));
        assert_eq!(s.pop_due(at(40)), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn idle_schedule_never_acts() {
        let mut s = WebSchedule::idle();
        assert_eq!(s.next_time(), None);
        assert_eq!(s.pop_due(at(1_000_000)), None);
    }
}
