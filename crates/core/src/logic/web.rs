//! Benign web-interface behavior: a scripted administrator session.
//!
//! §II: the web interface "provides administrators a way to change the
//! desired room temperature setpoint". The benign schedule drives that
//! legitimate channel; attack variants (in `bas-attack`) replace the whole
//! process, modeling remote compromise.
//!
//! For multi-tenant traffic (E18) the schedule is shared between the
//! platform stack and its web process through a [`SharedSchedule`] cell:
//! the stack re-images the cell on snapshot recycling, and the process
//! reads it lazily through a [`ScheduleCursor`], so per-instance traffic
//! survives the warm-boot path without respawning anything. Completed
//! requests are stamped into a [`RequestLog`] for latency accounting.

use std::cell::RefCell;
use std::rc::Rc;

use bas_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// One administrator action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WebAction {
    /// Change the setpoint (milli-°C).
    SetSetpoint(i32),
    /// Poll controller status.
    QueryStatus,
}

/// A time-ordered schedule of administrator actions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WebSchedule {
    actions: Vec<(SimTime, WebAction)>,
    next: usize,
}

impl WebSchedule {
    /// Creates a schedule; actions are sorted by time.
    pub fn new(mut actions: Vec<(SimTime, WebAction)>) -> Self {
        actions.sort_by_key(|(t, _)| *t);
        WebSchedule { actions, next: 0 }
    }

    /// An empty schedule (web interface stays idle).
    pub fn idle() -> Self {
        WebSchedule::default()
    }

    /// The time of the next pending action.
    pub fn next_time(&self) -> Option<SimTime> {
        self.actions.get(self.next).map(|(t, _)| *t)
    }

    /// Pops the next action if it is due at `now`.
    ///
    /// At most one action per call: a burst of same-tick actions takes
    /// one wake cycle each. High-rate traffic must use [`drain_due`]
    /// instead; this single-pop form survives for the legacy callers
    /// whose syscall sequences tests pin.
    ///
    /// [`drain_due`]: WebSchedule::drain_due
    pub fn pop_due(&mut self, now: SimTime) -> Option<WebAction> {
        match self.actions.get(self.next) {
            Some(&(t, action)) if t <= now => {
                self.next += 1;
                Some(action)
            }
            _ => None,
        }
    }

    /// Appends every action due at `now` (scheduled time ≤ `now`) to
    /// `out`, with its scheduled time, advancing past all of them.
    pub fn drain_due(&mut self, now: SimTime, out: &mut Vec<(SimTime, WebAction)>) {
        while let Some(&(t, action)) = self.actions.get(self.next) {
            if t > now {
                break;
            }
            self.next += 1;
            out.push((t, action));
        }
    }

    /// Actions not yet popped.
    pub fn remaining(&self) -> usize {
        self.actions.len() - self.next
    }
}

/// A schedule's action list shared between a platform stack and its web
/// process. The stack overwrites the cell on boot re-imaging; cursors
/// pick the new contents up on their next wake.
pub type SharedSchedule = Rc<RefCell<Vec<(SimTime, WebAction)>>>;

/// Builds a [`SharedSchedule`] from an already time-sorted action list.
pub fn shared_schedule(mut actions: Vec<(SimTime, WebAction)>) -> SharedSchedule {
    actions.sort_by_key(|(t, _)| *t);
    Rc::new(RefCell::new(actions))
}

/// A web process's read position into a [`SharedSchedule`].
///
/// Unlike [`WebSchedule`], the actions live behind the shared cell, so a
/// snapshot-recycled stack can swap in the next instance's traffic
/// without reconstructing the process that reads it. The cursor resets
/// to the front whenever the cell is re-imaged (the stack rebuilds the
/// process state on the `ran` path and the pristine path never moved
/// the cursor, so `next == 0` is always correct after a swap).
#[derive(Debug, Clone)]
pub struct ScheduleCursor {
    actions: SharedSchedule,
    next: usize,
}

impl ScheduleCursor {
    /// A cursor at the front of `actions`.
    pub fn new(actions: SharedSchedule) -> Self {
        ScheduleCursor { actions, next: 0 }
    }

    /// A cursor over a private copy of `schedule` (legacy constructor
    /// path — no sharing with any stack).
    pub fn detached(schedule: &WebSchedule) -> Self {
        ScheduleCursor {
            actions: Rc::new(RefCell::new(schedule.actions.clone())),
            next: schedule.next,
        }
    }

    /// The time of the next pending action.
    pub fn next_time(&self) -> Option<SimTime> {
        self.actions.borrow().get(self.next).map(|(t, _)| *t)
    }

    /// Appends every action due at `now` to `out` (see
    /// [`WebSchedule::drain_due`]).
    pub fn drain_due(&mut self, now: SimTime, out: &mut Vec<(SimTime, WebAction)>) {
        let actions = self.actions.borrow();
        while let Some(&(t, action)) = actions.get(self.next) {
            if t > now {
                break;
            }
            self.next += 1;
            out.push((t, action));
        }
    }

    /// Actions not yet drained.
    pub fn remaining(&self) -> usize {
        self.actions.borrow().len().saturating_sub(self.next)
    }
}

/// One completed web request, stamped by the web process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestSample {
    /// When the open-loop generator scheduled the request.
    pub scheduled: SimTime,
    /// When the web process observed the reply (the `GetTime`-class
    /// syscall after the RPC round-trip), so the latency
    /// `completed - scheduled` includes open-loop queueing delay.
    pub completed: SimTime,
    /// The action that was issued.
    pub action: WebAction,
    /// The reply decoded as a well-formed response.
    pub ok: bool,
}

/// Completed-request log shared between a platform stack and its web
/// process; cleared by the stack on boot re-imaging.
pub type RequestLog = Rc<RefCell<Vec<RequestSample>>>;

/// An empty [`RequestLog`].
pub fn new_request_log() -> RequestLog {
    Rc::new(RefCell::new(Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_sim::time::SimDuration;

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn actions_delivered_in_time_order() {
        let mut s = WebSchedule::new(vec![
            (at(20), WebAction::QueryStatus),
            (at(10), WebAction::SetSetpoint(24_000)),
        ]);
        assert_eq!(s.next_time(), Some(at(10)));
        assert_eq!(s.pop_due(at(5)), None, "not due yet");
        assert_eq!(s.pop_due(at(10)), Some(WebAction::SetSetpoint(24_000)));
        assert_eq!(s.pop_due(at(30)), Some(WebAction::QueryStatus));
        assert_eq!(s.pop_due(at(40)), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn idle_schedule_never_acts() {
        let mut s = WebSchedule::idle();
        assert_eq!(s.next_time(), None);
        assert_eq!(s.pop_due(at(1_000_000)), None);
    }

    #[test]
    fn pop_due_drains_one_action_per_call() {
        // Regression pin for the legacy single-pop contract: three
        // actions due at the same tick take three calls, one cycle each.
        let mut s = WebSchedule::new(vec![
            (at(10), WebAction::QueryStatus),
            (at(10), WebAction::SetSetpoint(23_000)),
            (at(10), WebAction::QueryStatus),
        ]);
        assert!(s.pop_due(at(10)).is_some());
        assert_eq!(s.remaining(), 2, "same-tick burst deferred by pop_due");
        assert!(s.pop_due(at(10)).is_some());
        assert!(s.pop_due(at(10)).is_some());
        assert_eq!(s.pop_due(at(10)), None);
    }

    #[test]
    fn drain_due_delivers_same_tick_bursts_at_once() {
        let mut s = WebSchedule::new(vec![
            (at(10), WebAction::QueryStatus),
            (at(10), WebAction::SetSetpoint(23_000)),
            (at(20), WebAction::QueryStatus),
        ]);
        let mut out = Vec::new();
        s.drain_due(at(5), &mut out);
        assert!(out.is_empty());
        s.drain_due(at(10), &mut out);
        assert_eq!(
            out,
            vec![
                (at(10), WebAction::QueryStatus),
                (at(10), WebAction::SetSetpoint(23_000)),
            ]
        );
        assert_eq!(s.remaining(), 1);
        out.clear();
        s.drain_due(at(30), &mut out);
        assert_eq!(out, vec![(at(20), WebAction::QueryStatus)]);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn cursor_follows_shared_cell_reimaging() {
        let cell = shared_schedule(vec![(at(10), WebAction::QueryStatus)]);
        let mut cursor = ScheduleCursor::new(cell.clone());
        let mut out = Vec::new();
        cursor.drain_due(at(10), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(cursor.remaining(), 0);
        // Stack re-images the cell for the next instance; a fresh cursor
        // (rebuilt boot state) sees the new traffic.
        *cell.borrow_mut() = vec![
            (at(1), WebAction::SetSetpoint(22_100)),
            (at(2), WebAction::QueryStatus),
        ];
        let mut cursor = ScheduleCursor::new(cell);
        assert_eq!(cursor.next_time(), Some(at(1)));
        out.clear();
        cursor.drain_due(at(2), &mut out);
        assert_eq!(out.len(), 2);
    }
}
