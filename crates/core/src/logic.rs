//! Platform-independent application logic.
//!
//! The same pure cores run on all three platforms — exactly how the paper
//! ports one scenario across MINIX 3, seL4/CAmkES and Linux — wrapped by
//! thin per-platform adapters in [`crate::platform`].

pub mod control;
pub mod http;
pub mod traffic;
pub mod web;
