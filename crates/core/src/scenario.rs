//! Scenario configuration and the cross-platform runner interface.

use std::cell::RefCell;
use std::rc::Rc;

use bas_plant::world::PlantConfig;
use bas_plant::SharedPlant;
use bas_sim::clock::CostModel;
use bas_sim::metrics::KernelMetrics;
use bas_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::logic::control::ControlConfig;
use crate::logic::traffic::TrafficProfile;
use crate::logic::web::{RequestSample, WebAction};
use crate::proto::BasMsg;

/// Which platform a scenario instance runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Security-enhanced MINIX 3 (ACM).
    Minix,
    /// seL4 + CAmkES.
    Sel4,
    /// Monolithic Linux baseline.
    Linux,
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Platform::Minix => write!(f, "minix3+acm"),
            Platform::Sel4 => write!(f, "sel4/camkes"),
            Platform::Linux => write!(f, "linux"),
        }
    }
}

/// Shared log of the responses the web interface receives (the
/// administrator's view of the system).
pub type WebLog = Rc<RefCell<Vec<BasMsg>>>;

/// Creates an empty web log.
pub fn new_web_log() -> WebLog {
    Rc::new(RefCell::new(Vec::new()))
}

/// Full configuration of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// RNG seed (sensor noise).
    pub seed: u64,
    /// Controller parameters.
    pub control: ControlConfig,
    /// Physical-world parameters. Use [`ScenarioConfig::synced_plant`] to
    /// keep the safety oracle aligned with the controller.
    pub plant: PlantConfig,
    /// Sensor sampling period (paper: periodic sampling; default 1 s).
    pub sensor_period: SimDuration,
    /// Scripted administrator actions on the web interface.
    pub web_schedule: Vec<(SimTime, WebAction)>,
    /// Optional multi-tenant load (E18): expanded per instance from the
    /// instance seed and merged into the effective schedule, so the
    /// template stays identical across a fleet (snapshot/fork boot)
    /// while every instance carries its own traffic.
    pub traffic: Option<TrafficProfile>,
    /// Kernel process-table size.
    pub max_procs: usize,
    /// Fork quota for the web interface (`None` = paper baseline).
    pub web_fork_limit: Option<u64>,
    /// Virtual-time cost model.
    pub cost_model: CostModel,
    /// Kernel/plant lockstep granularity.
    pub lockstep_chunk: SimDuration,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        let control = ControlConfig::default();
        let mut config = ScenarioConfig {
            seed: 42,
            control,
            plant: PlantConfig::default(),
            sensor_period: SimDuration::from_secs(1),
            web_schedule: vec![
                (
                    SimTime::ZERO + SimDuration::from_secs(1_200),
                    WebAction::SetSetpoint(24_000),
                ),
                (
                    SimTime::ZERO + SimDuration::from_secs(2_400),
                    WebAction::QueryStatus,
                ),
            ],
            traffic: None,
            max_procs: 32,
            web_fork_limit: None,
            cost_model: CostModel::default(),
            lockstep_chunk: SimDuration::from_millis(100),
        };
        config.plant = config.synced_plant();
        config
    }
}

impl ScenarioConfig {
    /// A configuration with no administrator activity (pure regulation).
    pub fn quiet() -> Self {
        ScenarioConfig {
            web_schedule: Vec::new(),
            ..ScenarioConfig::default()
        }
    }

    /// Grace added to the oracle's deadline over the controller's: the
    /// controller only *sees* an excursion at its next sensor sample and
    /// needs one control cycle to actuate the alarm, so the physical
    /// requirement allows for bounded detection latency.
    pub const ORACLE_GRACE: SimDuration = SimDuration::from_secs(30);

    /// Derives a plant configuration whose safety oracle mirrors the
    /// controller's setpoint and band, with the alarm deadline extended
    /// by [`ScenarioConfig::ORACLE_GRACE`] for detection latency.
    pub fn synced_plant(&self) -> PlantConfig {
        PlantConfig {
            setpoint_c: self.control.setpoint_milli_c as f64 / 1000.0,
            band_c: self.control.band_milli_c as f64 / 1000.0,
            alarm_deadline: self.control.alarm_deadline + Self::ORACLE_GRACE,
            ..self.plant.clone()
        }
    }

    /// The complete action schedule the web interface replays: the
    /// scripted `web_schedule` merged with the per-instance traffic
    /// expansion (a pure function of `(template, seed)`), sorted stably
    /// by time.
    pub fn effective_web_schedule(&self) -> Vec<(SimTime, WebAction)> {
        let mut v = self.web_schedule.clone();
        if let Some(profile) = &self.traffic {
            v.extend(profile.generate(self.seed));
        }
        v.sort_by_key(|(t, _)| *t);
        v
    }

    /// The authorized setpoint changes (in range, in time order) the
    /// safety oracle should follow during a run. Follows the *effective*
    /// schedule, so tenant setpoint writes move the oracle's reference
    /// exactly like scripted administrator writes.
    pub fn reference_changes(&self) -> Vec<(SimTime, i32)> {
        let mut v: Vec<(SimTime, i32)> = self
            .effective_web_schedule()
            .iter()
            .filter_map(|(t, a)| match a {
                WebAction::SetSetpoint(mc)
                    if *mc >= self.control.min_setpoint_milli_c
                        && *mc <= self.control.max_setpoint_milli_c =>
                {
                    Some((*t, *mc))
                }
                _ => None,
            })
            .collect();
        v.sort_by_key(|(t, _)| *t);
        v
    }
}

/// The names of the processes whose survival the paper's claim is about.
pub const CRITICAL_PROCESSES: [&str; 4] = [
    crate::proto::names::SENSOR,
    crate::proto::names::CONTROL,
    crate::proto::names::HEATER,
    crate::proto::names::ALARM,
];

/// A running scenario on some platform, as seen by experiments and the
/// attack harness.
pub trait Scenario {
    /// The platform this scenario runs on.
    fn platform(&self) -> Platform;

    /// Advances kernel and plant in lockstep for `d` of virtual time.
    fn run_for(&mut self, d: SimDuration);

    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// Handle to the physical world (safety oracle, actuator history,
    /// traces).
    fn plant(&self) -> SharedPlant;

    /// Kernel counters.
    fn metrics(&self) -> KernelMetrics;

    /// Names of live processes/threads.
    fn alive_names(&self) -> Vec<String>;

    /// Number of kernel-trace events in a category (e.g. `"acm.deny"`).
    fn trace_count(&self, category: &str) -> usize;

    /// Responses observed by the web interface.
    fn web_responses(&self) -> Vec<BasMsg>;

    /// Completed web requests with scheduled/completed stamps (empty on
    /// stacks without request accounting, e.g. attacker-replaced webs).
    fn request_samples(&self) -> Vec<RequestSample> {
        Vec::new()
    }

    /// Returns the scenario to its just-booted state under `config` (the
    /// boot template modulo `seed`), reusing live allocations — the
    /// snapshot-fork recycling path. Returns `false` when the scenario
    /// cannot guarantee byte-identity with a cold boot; the caller must
    /// then boot a fresh instance instead.
    fn reset_to_boot(&mut self, _config: &ScenarioConfig) -> bool {
        false
    }
}

/// A serializable snapshot of the plant's safety state at some instant —
/// the cross-platform "what did the physical world experience" record the
/// attack harness and the fleet engine aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantSnapshot {
    /// The alarm-deadline safety property was violated.
    pub safety_violated: bool,
    /// Largest observed |temperature − setpoint|, °C.
    pub max_deviation_c: f64,
    /// Fraction of observations inside the band.
    pub in_band_fraction: f64,
    /// Temperature at snapshot time, °C.
    pub final_temp_c: f64,
    /// Alarm state at snapshot time.
    pub alarm_on: bool,
    /// Fan switch count (actuator churn).
    pub fan_switches: usize,
    /// Excursion-start → alarm-on latencies, seconds.
    pub alarm_latencies_s: Vec<f64>,
}

/// Snapshots the scenario's plant safety state.
pub fn plant_snapshot(scenario: &dyn Scenario) -> PlantSnapshot {
    let plant = scenario.plant();
    let plant = plant.borrow();
    let report = plant.safety_report();
    PlantSnapshot {
        safety_violated: !report.is_safe(),
        max_deviation_c: report.max_deviation_c,
        in_band_fraction: report.in_band_fraction,
        final_temp_c: plant.temperature_c(),
        alarm_on: plant.alarm().is_on(),
        fan_switches: plant.fan().switch_count(),
        alarm_latencies_s: report
            .alarm_latencies
            .iter()
            .map(|d| d.as_secs_f64())
            .collect(),
    }
}

/// True if every critical process is still alive. Fork-suffixed names
/// (`temp_control#7`) count as the same program.
pub fn critical_alive(scenario: &dyn Scenario) -> bool {
    let names = scenario.alive_names();
    CRITICAL_PROCESSES.iter().all(|c| {
        names
            .iter()
            .any(|n| n == c || n.starts_with(&format!("{c}#")))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn synced_plant_mirrors_controller() {
        let mut cfg = ScenarioConfig::default();
        cfg.control.setpoint_milli_c = 25_000;
        cfg.control.band_milli_c = 500;
        let p = cfg.synced_plant();
        assert_eq!(p.setpoint_c, 25.0);
        assert_eq!(p.band_c, 0.5);
        assert_eq!(
            p.alarm_deadline,
            cfg.control.alarm_deadline + ScenarioConfig::ORACLE_GRACE
        );
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn reference_changes_filter_out_of_range() {
        let mut cfg = ScenarioConfig::default();
        cfg.web_schedule = vec![
            (SimTime::from_nanos(2), WebAction::SetSetpoint(24_000)),
            (SimTime::from_nanos(1), WebAction::SetSetpoint(99_000)), // out of range
            (SimTime::from_nanos(3), WebAction::QueryStatus),
        ];
        assert_eq!(
            cfg.reference_changes(),
            vec![(SimTime::from_nanos(2), 24_000)]
        );
    }

    #[test]
    fn platform_display() {
        assert_eq!(Platform::Minix.to_string(), "minix3+acm");
        assert_eq!(Platform::Sel4.to_string(), "sel4/camkes");
        assert_eq!(Platform::Linux.to_string(), "linux");
    }
}
