//! The generic scenario engine: one lockstep runner over every platform.
//!
//! Each platform stack ([`platform::minix::MinixStack`],
//! [`platform::sel4::Sel4Stack`], [`platform::linux::LinuxStack`])
//! implements [`PlatformKernel`] — boot the five-process scenario from its
//! policy artifact, step the kernel, expose trace/metrics and the physical
//! plant — and [`ScenarioEngine`] supplies everything that used to be
//! copy-pasted per platform: the kernel/plant lockstep loop, the
//! authorized-reference bookkeeping for the safety oracle, and the
//! [`Scenario`] trait surface the experiments and the attack harness
//! consume.
//!
//! [`platform::minix::MinixStack`]: crate::platform::minix::MinixStack
//! [`platform::sel4::Sel4Stack`]: crate::platform::sel4::Sel4Stack
//! [`platform::linux::LinuxStack`]: crate::platform::linux::LinuxStack

use bas_plant::SharedPlant;
use bas_sim::caps::{CapChurnOp, CapTrace};
use bas_sim::device::DeviceBus;
use bas_sim::fault::IpcFault;
use bas_sim::metrics::KernelMetrics;
use bas_sim::time::{SimDuration, SimTime};

use crate::logic::web::RequestSample;
use crate::proto::BasMsg;
use crate::scenario::{Platform, Scenario, ScenarioConfig};

/// One platform's bootable kernel stack, as seen by the generic engine
/// and the fleet layer.
///
/// Implementations own the simulated kernel, the plant handle, and the
/// web-interface log; the engine owns the lockstep loop and the
/// cross-platform [`Scenario`] surface. Attack injection and ablation
/// policies ride in through [`PlatformKernel::Overrides`].
pub trait PlatformKernel {
    /// The platform this stack models.
    const PLATFORM: Platform;

    /// Build-time knobs: attacker web-interface factories, replacement
    /// policies, fault injection, supervision.
    type Overrides: Default;

    /// Boots the five-process scenario from the platform's policy
    /// artifact (ACM / CapDL spec / mq ACL plan).
    fn boot(config: &ScenarioConfig, overrides: Self::Overrides) -> Self;

    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// Advances the kernel's event loop to `target` virtual time.
    fn run_until(&mut self, target: SimTime);

    /// Handle to the physical world (safety oracle, actuator history).
    fn plant(&self) -> SharedPlant;

    /// Kernel counters.
    fn metrics(&self) -> KernelMetrics;

    /// Names of live processes/threads.
    fn alive_names(&self) -> Vec<String>;

    /// Number of kernel-trace events in a category (e.g. `"acm.deny"`).
    fn trace_count(&self, category: &str) -> usize;

    /// Responses observed by the (benign) web interface.
    fn web_responses(&self) -> Vec<BasMsg>;

    /// Completed web requests with scheduled/completed stamps. Default:
    /// no request accounting (attacker-replaced webs, legacy stacks).
    fn web_requests(&self) -> Vec<RequestSample> {
        Vec::new()
    }

    /// Returns the stack to its just-booted state under `config`, reusing
    /// live allocations — the snapshot-fork boot path. `config` must be
    /// the boot template modulo `seed` (the stack re-runs its stored boot
    /// plan; only the plant is re-seeded). Returns `false` when this stack
    /// cannot guarantee byte-identity with a cold boot (e.g. one-shot
    /// attacker overrides), in which case the caller must cold-boot.
    fn reset_to_boot(&mut self, _config: &ScenarioConfig) -> bool {
        false
    }

    // ----- fault-injection hooks (`bas-faults`) -----------------------------

    /// Mutable access to the kernel's device bus, so fault interposers
    /// can wrap plant devices (`DeviceBus::interpose`).
    fn devices_mut(&mut self) -> &mut DeviceBus;

    /// Kills the named process/thread outright — a simulated crash, not a
    /// policy-gated kill. Restart semantics are the platform's own: a
    /// supervised MINIX stack re-forks the victim, Linux and seL4 do not.
    /// Returns false if no live process bears the name.
    fn inject_crash(&mut self, name: &str) -> bool;

    /// Arms `count` one-shot IPC faults, consumed in order by subsequent
    /// application sends (after each platform's access-control gate).
    fn arm_ipc_fault(&mut self, fault: IpcFault, count: u32);

    /// Number of armed IPC faults consumed so far.
    fn ipc_faults_applied(&self) -> u64;

    /// Jumps the kernel clock forward by `d` — a tick-skew fault.
    fn skew_clock(&mut self, d: SimDuration);

    // ----- capability churn hooks (`bas-analysis::races`) -------------------

    /// Applies a mid-run capability mutation: `op.subject` and `op.object`
    /// are scenario instance names, and each platform maps them onto its
    /// own authority structure — a MINIX ACM row, an seL4 CDT revoke
    /// sweep, a Linux mq mode edit. Returns false when the platform
    /// cannot resolve the pair (or the op was already in effect).
    fn apply_cap_churn(&mut self, _op: &CapChurnOp) -> bool {
        false
    }

    /// Arms `op` to fire immediately after the `after_checks`-th
    /// subsequent *successful* admission check by `op.subject` toward
    /// `op.object` — deterministically inside the platform's check→use
    /// window. Default: unsupported no-op.
    fn arm_cap_churn(&mut self, _op: &CapChurnOp, _after_checks: u32) {}

    /// Starts recording the kernel's structured capability-event stream
    /// ([`bas_sim::caps::CapEvent`]). Off by default; platforms without
    /// instrumentation ignore the call.
    fn enable_cap_trace(&mut self) {}

    /// Snapshot of the capability-event stream recorded so far. Empty
    /// when tracing was never enabled (or is unsupported).
    fn cap_trace(&self) -> CapTrace {
        CapTrace::default()
    }
}

/// Hook called with the platform stack at every lockstep chunk boundary
/// (see [`ScenarioEngine::set_tick_hook`]).
pub type TickHook<K> = Box<dyn FnMut(&mut K)>;

/// A booted scenario on some [`PlatformKernel`]: the single generic
/// runner that replaced the three hand-rolled per-platform adapters.
///
/// ```no_run
/// use bas_core::engine::ScenarioEngine;
/// use bas_core::platform::minix::MinixStack;
/// use bas_core::scenario::{critical_alive, Scenario, ScenarioConfig};
/// use bas_sim::time::SimDuration;
///
/// let mut s = ScenarioEngine::<MinixStack>::boot(&ScenarioConfig::default(), Default::default());
/// s.run_for(SimDuration::from_mins(30));
/// assert!(critical_alive(&s));
/// ```
pub struct ScenarioEngine<K: PlatformKernel> {
    /// The booted platform stack (public for experiment introspection:
    /// `s.stack.kernel`, and on seL4 `s.stack.spec` / `s.stack.sys`).
    pub stack: K,
    plant: SharedPlant,
    chunk: SimDuration,
    reference_changes: Vec<(SimTime, i32)>,
    next_reference: usize,
    tick_hook: Option<TickHook<K>>,
}

impl<K: PlatformKernel> ScenarioEngine<K> {
    /// Boots the scenario on `K` and prepares the lockstep runner.
    pub fn boot(config: &ScenarioConfig, overrides: K::Overrides) -> Self {
        let stack = K::boot(config, overrides);
        let plant = stack.plant();
        ScenarioEngine {
            stack,
            plant,
            chunk: config.lockstep_chunk,
            reference_changes: config.reference_changes(),
            next_reference: 0,
            tick_hook: None,
        }
    }

    /// Installs a hook called with the stack at the start of every
    /// lockstep chunk in [`Scenario::run_for`] (so roughly every
    /// `config.lockstep_chunk` of virtual time). `bas-faults` uses this
    /// to fire scheduled fault events: anything due at or before the
    /// current virtual time fires on the next chunk boundary.
    pub fn set_tick_hook(&mut self, hook: impl FnMut(&mut K) + 'static) {
        self.tick_hook = Some(Box::new(hook));
    }
}

impl<K: PlatformKernel> Scenario for ScenarioEngine<K> {
    fn platform(&self) -> Platform {
        K::PLATFORM
    }

    fn run_for(&mut self, d: SimDuration) {
        let end = self.stack.now() + d;
        while self.stack.now() < end {
            if let Some(hook) = self.tick_hook.as_mut() {
                hook(&mut self.stack);
            }
            let target = {
                let t = self.stack.now() + self.chunk;
                if t > end {
                    end
                } else {
                    t
                }
            };
            self.stack.run_until(target);
            // Keep the safety oracle's authorized reference in sync with
            // the administrator's (in-range, in-order) setpoint changes.
            while let Some(&(t, mc)) = self.reference_changes.get(self.next_reference) {
                if t <= self.stack.now() {
                    self.plant.borrow_mut().set_reference(mc as f64 / 1000.0);
                    self.next_reference += 1;
                } else {
                    break;
                }
            }
            let now = self.stack.now();
            self.plant.borrow_mut().step_to(now);
        }
    }

    fn now(&self) -> SimTime {
        self.stack.now()
    }

    fn plant(&self) -> SharedPlant {
        self.plant.clone()
    }

    fn metrics(&self) -> KernelMetrics {
        self.stack.metrics()
    }

    fn alive_names(&self) -> Vec<String> {
        self.stack.alive_names()
    }

    fn trace_count(&self, category: &str) -> usize {
        self.stack.trace_count(category)
    }

    fn web_responses(&self) -> Vec<BasMsg> {
        self.stack.web_responses()
    }

    fn request_samples(&self) -> Vec<RequestSample> {
        self.stack.web_requests()
    }

    fn reset_to_boot(&mut self, config: &ScenarioConfig) -> bool {
        if !self.stack.reset_to_boot(config) {
            return false;
        }
        self.plant = self.stack.plant();
        self.chunk = config.lockstep_chunk;
        self.reference_changes = config.reference_changes();
        self.next_reference = 0;
        true
    }
}

/// Boots the scenario on the named platform with default overrides —
/// the one entry point experiments use instead of hand-wiring builders.
pub fn boot_platform(platform: Platform, config: &ScenarioConfig) -> Box<dyn Scenario> {
    match platform {
        Platform::Minix => Box::new(ScenarioEngine::<crate::platform::minix::MinixStack>::boot(
            config,
            Default::default(),
        )),
        Platform::Sel4 => Box::new(ScenarioEngine::<crate::platform::sel4::Sel4Stack>::boot(
            config,
            Default::default(),
        )),
        Platform::Linux => Box::new(ScenarioEngine::<crate::platform::linux::LinuxStack>::boot(
            config,
            Default::default(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::critical_alive;

    #[test]
    fn boot_platform_runs_everywhere() {
        for platform in [Platform::Minix, Platform::Sel4, Platform::Linux] {
            let mut s = boot_platform(platform, &ScenarioConfig::quiet());
            assert_eq!(s.platform(), platform);
            s.run_for(SimDuration::from_mins(5));
            assert!(critical_alive(s.as_ref()), "{platform} lost a process");
            assert!(s.metrics().ipc_messages > 0, "{platform} ipc starved");
        }
    }
}
