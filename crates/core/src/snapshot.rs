//! Warm-template engine snapshots: the snapshot/fork boot path.
//!
//! Cold-booting a [`Scenario`] repeats work that is byte-identical across
//! every benign instance of a (platform, scenario-template) pair: policy
//! lowering (the MINIX ACM, the CAmkES→CapDL compile), kernel
//! construction, and the boot-time process population. An
//! [`EngineSnapshot`] captures the *immutable* half of that boot once —
//! policy artifacts shared behind `Arc` — and materializes instances by
//! re-running only the cheap, template-deterministic population against a
//! fresh (or recycled) kernel, re-seeded per instance.
//!
//! ## Soundness
//!
//! Fork-boot must be byte-identical to cold-boot: every downstream
//! determinism gate (fleet byte-identity, fault/race replay, model-checker
//! cross-validation) relies on it. The argument has two halves:
//!
//! - **Shared state is never mutated in place.** The shared artifacts —
//!   ACM, CapDL spec, glue map — are either immutable for the kernel's
//!   lifetime (spec, glue) or copy-on-write behind [`Arc::make_mut`]
//!   (the MINIX ACM under runtime churn). Sharing is therefore
//!   unobservable to the instance.
//! - **Forked mutable state is pristine by construction.** Recycling goes
//!   through `reset_to_boot`, which restores every mutable structure
//!   (process tables, queues, timers, clock, arena, metrics, traces,
//!   quota usage) to its just-constructed value and then re-runs *the
//!   same population code* cold boot runs. An instance cannot distinguish
//!   a recycled kernel from a fresh one, so its whole run is identical.
//!
//! Stacks booted with one-shot overrides (attacker web factories, extra
//! capability grants) refuse to recycle; [`EngineSnapshot`] only captures
//! benign default-override templates, so that gate never fires here.

use std::sync::Arc;

use bas_acm::AccessControlMatrix;
use bas_camkes::codegen::{compile, GlueMap};
use bas_capdl::spec::CapDlSpec;

use crate::platform::linux::{build_linux, LinuxOverrides};
use crate::platform::minix::{build_minix, MinixOverrides};
use crate::platform::sel4::{build_sel4, Sel4Overrides};
use crate::policy;
use crate::scenario::{Platform, Scenario, ScenarioConfig};

/// The shared, immutable boot-time state of one (platform, template)
/// pair, plus the template itself. `Send + Sync`: one snapshot feeds
/// every worker thread of a fleet.
pub struct EngineSnapshot {
    platform: Platform,
    template: ScenarioConfig,
    artifacts: Artifacts,
}

/// Per-platform policy artifacts captured once and shared per instance.
enum Artifacts {
    /// The lowered ACM; each kernel holds an `Arc` clone and copies on
    /// write only under runtime churn.
    Minix { acm: Arc<AccessControlMatrix> },
    /// The compiled CapDL spec and glue map; each boot re-realizes them
    /// instead of re-running the CAmkES compiler.
    Sel4 {
        spec: Arc<CapDlSpec>,
        glue: Arc<GlueMap>,
    },
    /// The mq ACL plan is tiny and rebuilt inline; nothing to share.
    Linux,
}

// One snapshot is shared across fleet worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineSnapshot>();
};

impl EngineSnapshot {
    /// Captures the immutable boot-time state of `template` on
    /// `platform`, running each policy-lowering step exactly once.
    pub fn capture(platform: Platform, template: &ScenarioConfig) -> EngineSnapshot {
        let artifacts = match platform {
            Platform::Minix => Artifacts::Minix {
                acm: Arc::new(policy::scenario_acm()),
            },
            Platform::Sel4 => {
                let assembly = policy::scenario_assembly();
                let (spec, glue) = compile(&assembly).expect("scenario assembly is valid");
                Artifacts::Sel4 {
                    spec: Arc::new(spec),
                    glue: Arc::new(glue),
                }
            }
            Platform::Linux => Artifacts::Linux,
        };
        EngineSnapshot {
            platform,
            template: template.clone(),
            artifacts,
        }
    }

    /// The captured platform.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The captured scenario template (seed field is a placeholder;
    /// materialization overwrites it).
    pub fn template(&self) -> &ScenarioConfig {
        &self.template
    }

    /// The template with `seed` substituted.
    fn config_for(&self, seed: u64) -> ScenarioConfig {
        let mut config = self.template.clone();
        config.seed = seed;
        config
    }

    /// Boots a fresh instance against the shared artifacts — a fork:
    /// kernel construction and population run, policy lowering does not.
    pub fn materialize(&self, seed: u64) -> Box<dyn Scenario> {
        let config = self.config_for(seed);
        match &self.artifacts {
            Artifacts::Minix { acm } => Box::new(build_minix(
                &config,
                MinixOverrides {
                    acm: Some(acm.clone()),
                    ..MinixOverrides::default()
                },
            )),
            Artifacts::Sel4 { spec, glue } => Box::new(build_sel4(
                &config,
                Sel4Overrides {
                    compiled: Some((spec.clone(), glue.clone())),
                    ..Sel4Overrides::default()
                },
            )),
            Artifacts::Linux => Box::new(build_linux(&config, LinuxOverrides::default())),
        }
    }

    /// Recycles an idle instance in place for `seed`, reusing its live
    /// allocations. Returns `false` when the engine cannot guarantee
    /// cold-boot identity (the caller should [`Self::materialize`] a
    /// fresh one instead and drop this engine).
    pub fn recycle(&self, engine: &mut dyn Scenario, seed: u64) -> bool {
        engine.reset_to_boot(&self.config_for(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_sim::time::SimDuration;

    /// The whole soundness claim, concentrated: recycling a *used* engine
    /// replays a different seed byte-identically to a cold boot of that
    /// seed, on every platform.
    #[test]
    fn recycled_engine_matches_cold_boot() {
        let template = ScenarioConfig::quiet();
        let horizon = SimDuration::from_mins(2);
        for platform in [Platform::Minix, Platform::Sel4, Platform::Linux] {
            let snapshot = EngineSnapshot::capture(platform, &template);

            // Run a first incarnation to dirty every mutable structure.
            let mut engine = snapshot.materialize(7);
            engine.run_for(horizon);

            // Recycle for a different seed and replay.
            assert!(snapshot.recycle(engine.as_mut(), 1234), "{platform}");
            engine.run_for(horizon);

            let mut cold = {
                let mut config = template.clone();
                config.seed = 1234;
                crate::engine::boot_platform(platform, &config)
            };
            cold.run_for(horizon);

            assert_eq!(engine.now(), cold.now(), "{platform} clock diverged");
            let m = engine.metrics();
            let mc = cold.metrics();
            assert_eq!(m, mc, "{platform} metrics diverged");
            assert_eq!(
                engine.alive_names(),
                cold.alive_names(),
                "{platform} process table diverged"
            );
            assert_eq!(
                engine.web_responses(),
                cold.web_responses(),
                "{platform} web responses diverged"
            );
            let ps = crate::scenario::plant_snapshot(engine.as_ref());
            let ps_cold = crate::scenario::plant_snapshot(cold.as_ref());
            assert_eq!(ps, ps_cold, "{platform} plant diverged");
        }
    }

    /// The pristine fast path: recycling an engine that was *never
    /// stepped* (the fleet-boot benchmark pattern — checkout, checkin,
    /// checkout again) skips the kernel reset entirely, and must still be
    /// byte-identical to a cold boot of the new seed.
    #[test]
    fn pristine_recycle_matches_cold_boot() {
        let template = ScenarioConfig::quiet();
        let horizon = SimDuration::from_mins(2);
        for platform in [Platform::Minix, Platform::Sel4, Platform::Linux] {
            let snapshot = EngineSnapshot::capture(platform, &template);

            // Materialized for seed 7, recycled for seed 1234 without a
            // single step in between.
            let mut engine = snapshot.materialize(7);
            assert!(snapshot.recycle(engine.as_mut(), 1234), "{platform}");
            engine.run_for(horizon);

            let mut cold = {
                let mut config = template.clone();
                config.seed = 1234;
                crate::engine::boot_platform(platform, &config)
            };
            cold.run_for(horizon);

            assert_eq!(engine.now(), cold.now(), "{platform} clock diverged");
            assert_eq!(
                engine.metrics(),
                cold.metrics(),
                "{platform} metrics diverged"
            );
            assert_eq!(
                engine.alive_names(),
                cold.alive_names(),
                "{platform} process table diverged"
            );
            assert_eq!(
                engine.web_responses(),
                cold.web_responses(),
                "{platform} web responses diverged"
            );
            let ps = crate::scenario::plant_snapshot(engine.as_ref());
            let ps_cold = crate::scenario::plant_snapshot(cold.as_ref());
            assert_eq!(ps, ps_cold, "{platform} plant diverged");
        }
    }

    /// Materialized (never-run) instances are also cold-boot identical.
    #[test]
    fn materialized_engine_matches_cold_boot() {
        let template = ScenarioConfig::quiet();
        for platform in [Platform::Minix, Platform::Sel4, Platform::Linux] {
            let snapshot = EngineSnapshot::capture(platform, &template);
            let mut forked = snapshot.materialize(99);
            let mut cold = {
                let mut config = template.clone();
                config.seed = 99;
                crate::engine::boot_platform(platform, &config)
            };
            let horizon = SimDuration::from_mins(1);
            forked.run_for(horizon);
            cold.run_for(horizon);
            assert_eq!(forked.metrics(), cold.metrics(), "{platform}");
            assert_eq!(forked.now(), cold.now(), "{platform}");
        }
    }

    /// Attack-override stacks refuse to recycle (the byte-identity gate).
    #[test]
    fn overridden_stack_refuses_recycle() {
        use crate::logic::web::WebSchedule;
        use crate::platform::minix::{build_minix, MinixOverrides, MinixWeb};

        let config = ScenarioConfig::quiet();
        let overrides = MinixOverrides {
            web_factory: Some(Box::new(|| {
                Box::new(MinixWeb::new(
                    WebSchedule::new(Vec::new()),
                    crate::scenario::new_web_log(),
                ))
            })),
            ..MinixOverrides::default()
        };
        let mut engine = build_minix(&config, overrides);
        let snapshot = EngineSnapshot::capture(Platform::Minix, &config);
        assert!(!snapshot.recycle(&mut engine, 1));
    }
}
