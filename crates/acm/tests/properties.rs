//! Property-based tests for the access-control matrix.

use bas_acm::{AcId, AccessControlMatrix, MsgType, MsgTypeSet};
use proptest::prelude::*;

fn arb_ac() -> impl Strategy<Value = AcId> {
    (0u32..16).prop_map(AcId::new)
}

fn arb_mtype() -> impl Strategy<Value = MsgType> {
    (0u32..64).prop_map(MsgType::new)
}

/// A random rule set: (sender, receiver, allowed types).
fn arb_rules() -> impl Strategy<Value = Vec<(AcId, AcId, Vec<MsgType>)>> {
    prop::collection::vec(
        (arb_ac(), arb_ac(), prop::collection::vec(arb_mtype(), 0..6)),
        0..12,
    )
}

fn build(rules: &[(AcId, AcId, Vec<MsgType>)]) -> AccessControlMatrix {
    let mut b = AccessControlMatrix::builder();
    for (s, r, types) in rules {
        b = b.allow(*s, *r, types.iter().copied());
    }
    b.build()
}

proptest! {
    /// Completeness: every allowed rule is honored by check().
    #[test]
    fn allowed_rules_are_honored(rules in arb_rules()) {
        let acm = build(&rules);
        for (s, r, types) in &rules {
            for t in types {
                prop_assert!(acm.check(*s, *r, *t).is_allowed(),
                    "{s}->{r} {t} must be allowed");
            }
        }
    }

    /// Soundness: check() only allows what some rule granted (default
    /// deny — the mandatory-control property).
    #[test]
    fn nothing_beyond_rules_is_allowed(
        rules in arb_rules(),
        probe_s in arb_ac(),
        probe_r in arb_ac(),
        probe_t in arb_mtype(),
    ) {
        let acm = build(&rules);
        let granted = rules.iter().any(|(s, r, types)|
            *s == probe_s && *r == probe_r && types.contains(&probe_t));
        if !granted {
            prop_assert!(
                !acm.check(probe_s, probe_r, probe_t).is_allowed(),
                "{probe_s}->{probe_r} {probe_t} was never granted"
            );
        }
    }

    /// Adding rules never revokes anything (builder monotonicity).
    #[test]
    fn builder_is_monotone(rules in arb_rules(), extra in arb_rules()) {
        let base = build(&rules);
        let mut combined_rules = rules.clone();
        combined_rules.extend(extra);
        let combined = build(&combined_rules);
        for (s, r, types) in &rules {
            for t in types {
                if base.check(*s, *r, *t).is_allowed() {
                    prop_assert!(combined.check(*s, *r, *t).is_allowed());
                }
            }
        }
    }

    /// Direction matters: granting s→r says nothing about r→s.
    #[test]
    fn no_implicit_reverse_channel(s in arb_ac(), r in arb_ac(), t in arb_mtype()) {
        prop_assume!(s != r);
        let acm = AccessControlMatrix::builder().allow(s, r, [t]).build();
        prop_assert!(acm.check(s, r, t).is_allowed());
        prop_assert!(!acm.check(r, s, t).is_allowed());
    }

    /// MsgTypeSet::union is commutative, associative, and contains both
    /// operands.
    #[test]
    fn msg_type_set_union_laws(
        a in prop::collection::vec(arb_mtype(), 0..8),
        b in prop::collection::vec(arb_mtype(), 0..8),
    ) {
        let sa = MsgTypeSet::of(a.iter().copied());
        let sb = MsgTypeSet::of(b.iter().copied());
        prop_assert_eq!(sa.union(sb), sb.union(sa));
        for t in a.iter().chain(b.iter()) {
            prop_assert!(sa.union(sb).contains(*t));
        }
    }

    /// Bitmap rendering is consistent with membership.
    #[test]
    fn bitmap_string_matches_contains(types in prop::collection::vec(0u32..16, 0..8)) {
        let set = MsgTypeSet::of(types.iter().map(|t| MsgType::new(*t)));
        let s = set.bitmap_string(16);
        prop_assert_eq!(s.len(), 16);
        for (i, c) in s.chars().rev().enumerate() {
            let member = set.contains(MsgType::new(i as u32));
            prop_assert_eq!(c == '1', member, "bit {} vs contains", i);
        }
    }
}
