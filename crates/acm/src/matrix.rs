//! The sparse access-control matrix and its kernel-side check.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::decision::{Decision, DenyReason};
use crate::id::{AcId, MsgType};

/// A set of permitted message types for one matrix cell.
///
/// The paper's Fig. 3 shows these as bitmaps (`1101` = types {0, 2, 3}
/// allowed, most-significant bit = highest type). Types 0–63 are stored in
/// one machine word, matching the paper's compile-the-matrix-into-the-kernel
/// representation; a wildcard variant supports system channels.
///
/// ```
/// use bas_acm::id::MsgType;
/// use bas_acm::matrix::MsgTypeSet;
///
/// let set = MsgTypeSet::of([MsgType::new(0), MsgType::new(2), MsgType::new(3)]);
/// assert!(set.contains(MsgType::new(2)));
/// assert!(!set.contains(MsgType::new(1)));
/// assert_eq!(set.bitmap_string(4), "1101");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgTypeSet {
    /// Explicit bitmap over types 0–63 (bit *i* set = type *i* allowed).
    Bitmap(u64),
    /// Every message type is allowed (used for trusted system channels).
    All,
}

impl MsgTypeSet {
    /// The empty set.
    pub const EMPTY: MsgTypeSet = MsgTypeSet::Bitmap(0);

    /// Builds a set from explicit message types.
    ///
    /// # Panics
    ///
    /// Panics if any type exceeds 63; the compiled-bitmap representation
    /// matches the paper's fixed-width kernel table.
    pub fn of<I: IntoIterator<Item = MsgType>>(types: I) -> Self {
        let mut bits = 0u64;
        for t in types {
            assert!(t.as_u32() < 64, "message type {} out of bitmap range", t);
            bits |= 1 << t.as_u32();
        }
        MsgTypeSet::Bitmap(bits)
    }

    /// True if `t` is in the set.
    pub fn contains(self, t: MsgType) -> bool {
        match self {
            MsgTypeSet::All => true,
            MsgTypeSet::Bitmap(bits) => t.as_u32() < 64 && bits & (1 << t.as_u32()) != 0,
        }
    }

    /// Union of two sets.
    pub fn union(self, other: MsgTypeSet) -> MsgTypeSet {
        match (self, other) {
            (MsgTypeSet::All, _) | (_, MsgTypeSet::All) => MsgTypeSet::All,
            (MsgTypeSet::Bitmap(a), MsgTypeSet::Bitmap(b)) => MsgTypeSet::Bitmap(a | b),
        }
    }

    /// Intersection of two sets (attenuation keeps only common types).
    pub fn intersect(self, other: MsgTypeSet) -> MsgTypeSet {
        match (self, other) {
            (MsgTypeSet::All, x) | (x, MsgTypeSet::All) => x,
            (MsgTypeSet::Bitmap(a), MsgTypeSet::Bitmap(b)) => MsgTypeSet::Bitmap(a & b),
        }
    }

    /// True if no type is allowed.
    pub fn is_empty(self) -> bool {
        self == MsgTypeSet::Bitmap(0)
    }

    /// Renders the Fig. 3-style bitmap string of the lowest `width` types,
    /// most-significant (highest type) first.
    pub fn bitmap_string(self, width: u32) -> String {
        (0..width)
            .rev()
            .map(|i| {
                if self.contains(MsgType::new(i)) {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }
}

impl fmt::Display for MsgTypeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgTypeSet::All => write!(f, "*"),
            MsgTypeSet::Bitmap(_) => write!(f, "{}", self.bitmap_string(8)),
        }
    }
}

/// The kernel-resident mandatory access-control matrix.
///
/// "We implemented the ACM using a sparse matrix data structure for fast
/// lookup and space efficiency" (§III-B) — here a `BTreeMap` keyed by the
/// `(sender, receiver)` pair, which keeps iteration deterministic for the
/// experiments' printed tables.
///
/// The matrix is built once at boot, mirroring the paper's design where
/// the ACM is compiled together with the kernel binary and "cannot be
/// easily modified without recompiling the kernel source code." The
/// *runtime churn* extension ([`AccessControlMatrix::grant_types`],
/// [`AccessControlMatrix::attenuate_types`],
/// [`AccessControlMatrix::revoke_channel`]) deliberately relaxes that:
/// delegation/revocation RPCs through PM mutate rows mid-run so the race
/// detector can observe the window between an admission check and the
/// delivery that relied on it. Every mutation is expected to be paired
/// with a [`crate::delegation::DelegationLog`] record for provenance.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccessControlMatrix {
    cells: BTreeMap<(AcId, AcId), MsgTypeSet>,
}

impl AccessControlMatrix {
    /// Starts building a matrix.
    pub fn builder() -> AcmBuilder {
        AcmBuilder::default()
    }

    /// An empty matrix: every transfer is denied.
    pub fn deny_all() -> Self {
        AccessControlMatrix::default()
    }

    /// The kernel-side check, consulted on every message transfer.
    pub fn check(&self, sender: AcId, receiver: AcId, mtype: MsgType) -> Decision {
        match self.cells.get(&(sender, receiver)) {
            None => Decision::Deny(DenyReason::NoChannel),
            Some(set) if set.contains(mtype) => Decision::Allow,
            Some(_) => Decision::Deny(DenyReason::TypeNotAllowed),
        }
    }

    /// The permitted type set for a directed pair, if a channel exists.
    pub fn channel(&self, sender: AcId, receiver: AcId) -> Option<MsgTypeSet> {
        self.cells.get(&(sender, receiver)).copied()
    }

    /// Every `(sender, receiver, types)` entry in deterministic order.
    pub fn entries(&self) -> impl Iterator<Item = (AcId, AcId, MsgTypeSet)> + '_ {
        self.cells.iter().map(|(&(s, r), &set)| (s, r, set))
    }

    /// Number of non-empty cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// All distinct identities appearing in the matrix, ascending.
    pub fn identities(&self) -> Vec<AcId> {
        let mut ids: Vec<AcId> = self.cells.keys().flat_map(|&(s, r)| [s, r]).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Runtime churn: merges `types` into the `sender → receiver` row,
    /// creating it if absent (a delegation/regrant).
    pub fn grant_types(&mut self, sender: AcId, receiver: AcId, types: MsgTypeSet) {
        let entry = self
            .cells
            .entry((sender, receiver))
            .or_insert(MsgTypeSet::EMPTY);
        *entry = entry.union(types);
    }

    /// Runtime churn: narrows the `sender → receiver` row to the
    /// intersection with `keep`. Returns false if no row exists.
    pub fn attenuate_types(&mut self, sender: AcId, receiver: AcId, keep: MsgTypeSet) -> bool {
        match self.cells.get_mut(&(sender, receiver)) {
            Some(set) => {
                *set = set.intersect(keep);
                true
            }
            None => false,
        }
    }

    /// Runtime churn: removes the `sender → receiver` row entirely.
    /// Returns false if no row existed.
    pub fn revoke_channel(&mut self, sender: AcId, receiver: AcId) -> bool {
        self.cells.remove(&(sender, receiver)).is_some()
    }

    /// Renders the matrix as a Fig. 3-style table of bitmap cells over the
    /// lowest `width` message types.
    pub fn render_table(&self, width: u32) -> String {
        let ids = self.identities();
        let mut out = String::new();
        out.push_str("sender\\receiver");
        for r in &ids {
            out.push_str(&format!("{:>10}", r.to_string()));
        }
        out.push('\n');
        for s in &ids {
            out.push_str(&format!("{:<15}", s.to_string()));
            for r in &ids {
                let cell = match self.channel(*s, *r) {
                    Some(set) => set.bitmap_string(width),
                    None => "-".repeat(width as usize),
                };
                out.push_str(&format!("{cell:>10}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Builder for [`AccessControlMatrix`].
///
/// Mirrors the workflow of the paper's AADL-to-C compiler, which "traverses
/// AADL models, extracts various processes and their unique ac_id, and
/// generates the matrix data structure" — `bas-aadl`'s ACM backend drives
/// exactly this builder.
#[derive(Debug, Clone, Default)]
pub struct AcmBuilder {
    cells: BTreeMap<(AcId, AcId), MsgTypeSet>,
}

impl AcmBuilder {
    /// Permits `sender → receiver` messages of the given types (merged with
    /// any previously allowed types for the pair).
    pub fn allow<I: IntoIterator<Item = MsgType>>(
        mut self,
        sender: AcId,
        receiver: AcId,
        types: I,
    ) -> Self {
        let set = MsgTypeSet::of(types);
        self.merge(sender, receiver, set);
        self
    }

    /// Permits every message type on `sender → receiver`.
    pub fn allow_all_types(mut self, sender: AcId, receiver: AcId) -> Self {
        self.merge(sender, receiver, MsgTypeSet::All);
        self
    }

    /// Permits acknowledgment (type 0) messages in both directions between
    /// `a` and `b` — the paper's "we want all confirm messages between
    /// processes be allowed".
    pub fn allow_ack_between(mut self, a: AcId, b: AcId) -> Self {
        self.merge(a, b, MsgTypeSet::of([MsgType::ACK]));
        self.merge(b, a, MsgTypeSet::of([MsgType::ACK]));
        self
    }

    fn merge(&mut self, sender: AcId, receiver: AcId, set: MsgTypeSet) {
        let entry = self
            .cells
            .entry((sender, receiver))
            .or_insert(MsgTypeSet::EMPTY);
        *entry = entry.union(set);
    }

    /// Finalizes the matrix.
    pub fn build(self) -> AccessControlMatrix {
        AccessControlMatrix { cells: self.cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ac(n: u32) -> AcId {
        AcId::new(n)
    }
    fn m(n: u32) -> MsgType {
        MsgType::new(n)
    }

    #[test]
    fn deny_all_denies_everything() {
        let acm = AccessControlMatrix::deny_all();
        assert_eq!(
            acm.check(ac(1), ac(2), m(0)),
            Decision::Deny(DenyReason::NoChannel)
        );
        assert!(acm.is_empty());
    }

    #[test]
    fn allow_is_directional() {
        let acm = AccessControlMatrix::builder()
            .allow(ac(1), ac(2), [m(5)])
            .build();
        assert!(acm.check(ac(1), ac(2), m(5)).is_allowed());
        assert_eq!(
            acm.check(ac(2), ac(1), m(5)),
            Decision::Deny(DenyReason::NoChannel)
        );
    }

    #[test]
    fn type_outside_set_is_denied_with_reason() {
        let acm = AccessControlMatrix::builder()
            .allow(ac(1), ac(2), [m(0), m(2)])
            .build();
        assert_eq!(
            acm.check(ac(1), ac(2), m(1)),
            Decision::Deny(DenyReason::TypeNotAllowed)
        );
    }

    #[test]
    fn repeated_allow_merges_types() {
        let acm = AccessControlMatrix::builder()
            .allow(ac(1), ac(2), [m(0)])
            .allow(ac(1), ac(2), [m(3)])
            .build();
        assert!(acm.check(ac(1), ac(2), m(0)).is_allowed());
        assert!(acm.check(ac(1), ac(2), m(3)).is_allowed());
        assert_eq!(acm.len(), 1, "merged into one cell");
    }

    #[test]
    fn allow_all_types_is_wildcard() {
        let acm = AccessControlMatrix::builder()
            .allow_all_types(ac(1), ac(2))
            .build();
        assert!(acm.check(ac(1), ac(2), m(63)).is_allowed());
        assert!(acm.check(ac(1), ac(2), m(7)).is_allowed());
    }

    #[test]
    fn ack_between_is_symmetric_and_type0_only() {
        let acm = AccessControlMatrix::builder()
            .allow_ack_between(ac(1), ac(2))
            .build();
        assert!(acm.check(ac(1), ac(2), MsgType::ACK).is_allowed());
        assert!(acm.check(ac(2), ac(1), MsgType::ACK).is_allowed());
        assert!(!acm.check(ac(1), ac(2), m(1)).is_allowed());
    }

    #[test]
    fn bitmap_string_matches_fig3_notation() {
        let set = MsgTypeSet::of([m(0), m(2), m(3)]);
        assert_eq!(set.bitmap_string(4), "1101");
        assert_eq!(MsgTypeSet::of([m(0), m(1)]).bitmap_string(4), "0011");
        assert_eq!(MsgTypeSet::EMPTY.bitmap_string(4), "0000");
    }

    #[test]
    fn union_with_all_is_all() {
        assert_eq!(MsgTypeSet::All.union(MsgTypeSet::EMPTY), MsgTypeSet::All);
        assert_eq!(
            MsgTypeSet::of([m(1)]).union(MsgTypeSet::of([m(2)])),
            MsgTypeSet::of([m(1), m(2)])
        );
    }

    #[test]
    #[should_panic(expected = "out of bitmap range")]
    fn types_beyond_63_rejected() {
        let _ = MsgTypeSet::of([m(64)]);
    }

    #[test]
    fn identities_collects_both_sides_sorted() {
        let acm = AccessControlMatrix::builder()
            .allow(ac(102), ac(100), [m(0)])
            .allow(ac(100), ac(101), [m(1)])
            .build();
        assert_eq!(acm.identities(), vec![ac(100), ac(101), ac(102)]);
    }

    #[test]
    fn render_table_contains_every_identity() {
        let acm = AccessControlMatrix::builder()
            .allow(ac(1), ac(2), [m(0)])
            .build();
        let table = acm.render_table(4);
        assert!(table.contains("ac1"));
        assert!(table.contains("ac2"));
        assert!(table.contains("0001"));
    }

    #[test]
    fn intersect_narrows_and_all_is_identity() {
        assert_eq!(
            MsgTypeSet::of([m(1), m(2)]).intersect(MsgTypeSet::of([m(2), m(3)])),
            MsgTypeSet::of([m(2)])
        );
        assert_eq!(
            MsgTypeSet::All.intersect(MsgTypeSet::of([m(5)])),
            MsgTypeSet::of([m(5)])
        );
        assert_eq!(MsgTypeSet::All.intersect(MsgTypeSet::All), MsgTypeSet::All);
    }

    #[test]
    fn runtime_churn_grant_attenuate_revoke() {
        let mut acm = AccessControlMatrix::builder()
            .allow(ac(1), ac(2), [m(0), m(4)])
            .build();
        // Attenuate to ACK-only: type 4 now denied, type 0 still allowed.
        assert!(acm.attenuate_types(ac(1), ac(2), MsgTypeSet::of([m(0)])));
        assert!(acm.check(ac(1), ac(2), m(0)).is_allowed());
        assert_eq!(
            acm.check(ac(1), ac(2), m(4)),
            Decision::Deny(DenyReason::TypeNotAllowed)
        );
        // Regrant restores the type.
        acm.grant_types(ac(1), ac(2), MsgTypeSet::of([m(4)]));
        assert!(acm.check(ac(1), ac(2), m(4)).is_allowed());
        // Revoke removes the whole row.
        assert!(acm.revoke_channel(ac(1), ac(2)));
        assert_eq!(
            acm.check(ac(1), ac(2), m(0)),
            Decision::Deny(DenyReason::NoChannel)
        );
        assert!(!acm.revoke_channel(ac(1), ac(2)));
        assert!(!acm.attenuate_types(ac(1), ac(2), MsgTypeSet::EMPTY));
        // Grant on a missing row creates it (delegation).
        acm.grant_types(ac(3), ac(2), MsgTypeSet::of([m(1)]));
        assert!(acm.check(ac(3), ac(2), m(1)).is_allowed());
    }

    #[test]
    fn serde_roundtrip_preserves_matrix() {
        let acm = AccessControlMatrix::builder()
            .allow(ac(1), ac(2), [m(0), m(3)])
            .allow_all_types(ac(2), ac(3))
            .build();
        let json = serde_json_like(&acm);
        assert!(json.contains("Bitmap") || json.contains("All"));
    }

    // serde_json is not a workspace dependency; round-trip through the
    // Debug representation as a stand-in shape check.
    fn serde_json_like(acm: &AccessControlMatrix) -> String {
        format!("{acm:?}")
    }
}
