//! The worked example of the paper's Figure 3.
//!
//! Three applications with public RPCs exposed as message types:
//!
//! - **App1** (`ac_id` 100) provides `app1_f1()`/`app1_f2()`/`app1_f3()` as
//!   types 1/2/3,
//! - **App2** (`ac_id` 101) provides no public procedures,
//! - **App3** (`ac_id` 102) provides `app3_f1()`/`app3_f2()`/`app3_f3()`.
//!
//! Policy, quoting the paper: "We want to allow App2 access to App1's
//! `app1_f2()`, `app1_f3()` functions, and we want `app1_f1()` only be
//! invoked by App3. We want all confirm messages between processes be
//! allowed."
//!
//! The resulting cells (sender → receiver, bitmap over types 3..0):
//!
//! | sender | receiver | bitmap | meaning |
//! |---|---|---|---|
//! | App2 (101) | App1 (100) | `1101` | types 0, 2, 3 |
//! | App3 (102) | App1 (100) | `0011` | types 0, 1 |
//! | App1 (100) | App2 (101) | `0001` | type 0 (ack) |
//! | App3 (102) | App2 (101) | `0001` | type 0 (ack) |
//! | App1 (100) | App3 (102) | `0111` | types 0, 1, 2 |
//! | App2 (101) | App3 (102) | `0011` | types 0, 1 |
//!
//! (The figure's cell for App1→App3 is `0111` and App2→App3 is `0011`;
//! acks are allowed everywhere processes interact.)

use crate::id::{AcId, MsgType};
use crate::matrix::AccessControlMatrix;

/// App1's access-control identity in the figure.
pub const APP1: AcId = AcId::new(100);
/// App2's access-control identity in the figure.
pub const APP2: AcId = AcId::new(101);
/// App3's access-control identity in the figure.
pub const APP3: AcId = AcId::new(102);

fn m(n: u32) -> MsgType {
    MsgType::new(n)
}

/// Builds exactly the matrix of Figure 3.
///
/// ```
/// use bas_acm::fig3::{fig3_matrix, APP1, APP2, APP3};
/// use bas_acm::id::MsgType;
///
/// let acm = fig3_matrix();
/// // "suppose App2 tries to send a message with message type 2 to App1
/// //  [...] the message will be allowed"
/// assert!(acm.check(APP2, APP1, MsgType::new(2)).is_allowed());
/// // "if the message type is 1 the message will be denied"
/// assert!(!acm.check(APP2, APP1, MsgType::new(1)).is_allowed());
/// ```
pub fn fig3_matrix() -> AccessControlMatrix {
    AccessControlMatrix::builder()
        // App2 may call App1's f2 and f3, and ack.
        .allow(APP2, APP1, [m(0), m(2), m(3)])
        // App1's f1 is reserved for App3; App3 may also ack.
        .allow(APP3, APP1, [m(0), m(1)])
        // App2 exposes no procedures: only acks flow toward it.
        .allow(APP1, APP2, [m(0)])
        .allow(APP3, APP2, [m(0)])
        // App1 may call App3's f1 and f2, and ack.
        .allow(APP1, APP3, [m(0), m(1), m(2)])
        // App2 may call App3's f1, and ack.
        .allow(APP2, APP3, [m(0), m(1)])
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::DenyReason;
    use crate::matrix::MsgTypeSet;

    #[test]
    fn paper_narrative_example_type2_allowed_type1_denied() {
        let acm = fig3_matrix();
        assert!(acm.check(APP2, APP1, m(2)).is_allowed());
        assert_eq!(
            acm.check(APP2, APP1, m(1)).deny_reason(),
            Some(DenyReason::TypeNotAllowed)
        );
    }

    #[test]
    fn app1_f1_reserved_for_app3() {
        let acm = fig3_matrix();
        assert!(acm.check(APP3, APP1, m(1)).is_allowed());
        assert!(!acm.check(APP2, APP1, m(1)).is_allowed());
    }

    #[test]
    fn acks_flow_on_every_declared_channel() {
        let acm = fig3_matrix();
        for (s, r) in [
            (APP2, APP1),
            (APP3, APP1),
            (APP1, APP2),
            (APP3, APP2),
            (APP1, APP3),
            (APP2, APP3),
        ] {
            assert!(acm.check(s, r, MsgType::ACK).is_allowed(), "{s}->{r} ack");
        }
    }

    #[test]
    fn bitmaps_match_figure() {
        let acm = fig3_matrix();
        let cell = |s, r| {
            acm.channel(s, r)
                .unwrap_or(MsgTypeSet::EMPTY)
                .bitmap_string(4)
        };
        assert_eq!(cell(APP2, APP1), "1101");
        assert_eq!(cell(APP3, APP1), "0011");
        assert_eq!(cell(APP1, APP2), "0001");
        assert_eq!(cell(APP3, APP2), "0001");
        assert_eq!(cell(APP1, APP3), "0111");
        assert_eq!(cell(APP2, APP3), "0011");
    }

    #[test]
    fn app2_provides_no_procedures() {
        let acm = fig3_matrix();
        for sender in [APP1, APP3] {
            for t in 1..=3 {
                assert!(
                    !acm.check(sender, APP2, m(t)).is_allowed(),
                    "{sender} must not invoke m{t} on App2"
                );
            }
        }
    }

    #[test]
    fn no_self_channels_exist() {
        let acm = fig3_matrix();
        for id in [APP1, APP2, APP3] {
            assert_eq!(acm.channel(id, id), None);
        }
    }
}
