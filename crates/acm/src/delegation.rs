//! Delegation log — the audit trail behind ACM row provenance.
//!
//! The paper's ACM is a flat matrix: row `(sender, receiver)` either
//! permits a message-type set or it does not. Operationally, though, rows
//! do not appear from nowhere — the reincarnation server installs the
//! boot-time rows, and later rows are *delegated*: an existing sender
//! grants (a subset of) its own communication right to another process.
//! This module records those delegations so the static analyzer can
//! rebuild the derivation forest and check that every delegated right is
//! an attenuation of the grantor's right, that revoked delegations left
//! no live residue, and that expired delegations are not still usable.
//!
//! A [`Delegation`] says: `grantor` handed `grantee` the right to send
//! `types` to `receiver`. The log carries a logical clock so expiries can
//! be adjudicated deterministically.

use crate::id::AcId;
use crate::matrix::MsgTypeSet;

/// One delegation record: `grantor` granted `grantee` the right to send
/// `types`-typed messages to `receiver`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delegation {
    /// The process that held the original ACM row.
    pub grantor: AcId,
    /// The process receiving the delegated right.
    pub grantee: AcId,
    /// The destination the delegated right talks to.
    pub receiver: AcId,
    /// The message types delegated (should be ⊆ the grantor's row).
    pub types: MsgTypeSet,
    /// Whether the delegation was later revoked.
    pub revoked: bool,
    /// Logical time at which the delegation lapses, if any.
    pub expires_at: Option<u32>,
}

/// An append-only log of delegations plus the current logical time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DelegationLog {
    /// Records in the order they were issued.
    pub records: Vec<Delegation>,
    /// Current logical clock; a record with `expires_at <= clock` is dead.
    pub clock: u32,
}

impl DelegationLog {
    /// An empty log (no delegations, clock 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a live, non-expiring delegation.
    pub fn delegate(&mut self, grantor: AcId, grantee: AcId, receiver: AcId, types: MsgTypeSet) {
        self.records.push(Delegation {
            grantor,
            grantee,
            receiver,
            types,
            revoked: false,
            expires_at: None,
        });
    }

    /// Marks every live delegation of `grantee → receiver` revoked
    /// (runtime churn bookkeeping). Returns how many records flipped.
    pub fn revoke(&mut self, grantee: AcId, receiver: AcId) -> usize {
        let mut n = 0;
        for r in &mut self.records {
            if !r.revoked && r.grantee == grantee && r.receiver == receiver {
                r.revoked = true;
                n += 1;
            }
        }
        n
    }

    /// Narrows every live delegation of `grantee → receiver` to the
    /// intersection with `keep`. Returns how many records changed.
    pub fn attenuate(&mut self, grantee: AcId, receiver: AcId, keep: MsgTypeSet) -> usize {
        let mut n = 0;
        for r in &mut self.records {
            if !r.revoked && r.grantee == grantee && r.receiver == receiver {
                let narrowed = r.types.intersect(keep);
                if narrowed != r.types {
                    r.types = narrowed;
                    n += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::MsgType;

    #[test]
    fn log_records_delegations_in_order() {
        let mut log = DelegationLog::new();
        let set = MsgTypeSet::of([MsgType::ACK]);
        log.delegate(AcId::new(100), AcId::new(101), AcId::new(102), set);
        log.delegate(AcId::new(101), AcId::new(103), AcId::new(102), set);
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.records[0].grantor, AcId::new(100));
        assert_eq!(log.records[1].grantee, AcId::new(103));
        assert!(!log.records[0].revoked);
        assert_eq!(log.clock, 0);
    }

    #[test]
    fn revoke_flips_matching_live_records_only() {
        let mut log = DelegationLog::new();
        let set = MsgTypeSet::of([MsgType::ACK]);
        log.delegate(AcId::new(100), AcId::new(101), AcId::new(102), set);
        log.delegate(AcId::new(100), AcId::new(103), AcId::new(102), set);
        assert_eq!(log.revoke(AcId::new(101), AcId::new(102)), 1);
        assert!(log.records[0].revoked);
        assert!(!log.records[1].revoked);
        // Already revoked: nothing left to flip.
        assert_eq!(log.revoke(AcId::new(101), AcId::new(102)), 0);
    }

    #[test]
    fn attenuate_narrows_live_records() {
        let mut log = DelegationLog::new();
        let set = MsgTypeSet::of([MsgType::ACK, MsgType::new(4)]);
        log.delegate(AcId::new(100), AcId::new(101), AcId::new(102), set);
        let keep = MsgTypeSet::of([MsgType::ACK]);
        assert_eq!(log.attenuate(AcId::new(101), AcId::new(102), keep), 1);
        assert_eq!(log.records[0].types, keep);
        // Idempotent: already at the narrowed set.
        assert_eq!(log.attenuate(AcId::new(101), AcId::new(102), keep), 0);
    }
}
