//! Access-control identities and message types.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The access-control identifier the paper adds to the MINIX 3 process
/// control block.
///
/// From §III-B: "Process IDs can change, so we needed this ac_id to assist
/// building definitions of IPC policy. We use the added ac_id field to
/// uniquely identify each process and enforce the control policy." An
/// `AcId` is assigned once at process-load time (`fork2`/`srv_fork2`) and is
/// immutable thereafter; unlike a pid it survives restarts of the same
/// logical component.
///
/// ```
/// use bas_acm::id::AcId;
/// let sensor = AcId::new(100);
/// assert_eq!(sensor.as_u32(), 100);
/// assert_eq!(format!("{sensor}"), "ac100");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AcId(u32);

impl AcId {
    /// Creates an identity from its raw number.
    pub const fn new(raw: u32) -> Self {
        AcId(raw)
    }

    /// The raw number.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for AcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ac{}", self.0)
    }
}

/// A message type, the unit at which the ACM authorizes communication.
///
/// From §III-B: "The message type is a number indicating what type of
/// communication is allowed. The interpretation of message type is reserved
/// for the individual processes [...] In our experiment, we use the message
/// type field to represent different remote procedure calls."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgType(u32);

impl MsgType {
    /// Type 0, reserved by convention for acknowledgments: "For all
    /// processes, message type 0 is reserved to indicate an acknowledgment
    /// to the caller."
    pub const ACK: MsgType = MsgType(0);

    /// Creates a message type from its raw number.
    pub const fn new(raw: u32) -> Self {
        MsgType(raw)
    }

    /// The raw number.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for MsgType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_is_type_zero() {
        assert_eq!(MsgType::ACK, MsgType::new(0));
        assert_eq!(MsgType::ACK.as_u32(), 0);
    }

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(AcId::new(100) < AcId::new(102));
        assert_eq!(format!("{}", AcId::new(7)), "ac7");
        assert_eq!(format!("{}", MsgType::new(3)), "m3");
    }
}
