//! The result of an ACM check.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Why a message was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DenyReason {
    /// No matrix entry exists for the (sender, receiver) pair at all — the
    /// processes may not communicate in this direction.
    NoChannel,
    /// A channel exists, but the message type is not in the permitted set.
    TypeNotAllowed,
    /// A per-syscall quota was exhausted (the paper's future-work
    /// extension; see [`crate::quota`]).
    QuotaExhausted,
}

impl fmt::Display for DenyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenyReason::NoChannel => write!(f, "no channel between sender and receiver"),
            DenyReason::TypeNotAllowed => write!(f, "message type not permitted on channel"),
            DenyReason::QuotaExhausted => write!(f, "syscall quota exhausted"),
        }
    }
}

/// The kernel's verdict on one IPC operation.
///
/// A denied message is dropped by the kernel — from the paper: "if the
/// message type is 1 the message will be denied and the request will be
/// dropped instead."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// The transfer may proceed.
    Allow,
    /// The transfer is refused for the given reason.
    Deny(DenyReason),
}

impl Decision {
    /// True if the transfer may proceed.
    pub fn is_allowed(self) -> bool {
        matches!(self, Decision::Allow)
    }

    /// The denial reason, if denied.
    pub fn deny_reason(self) -> Option<DenyReason> {
        match self {
            Decision::Allow => None,
            Decision::Deny(r) => Some(r),
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Allow => write!(f, "allow"),
            Decision::Deny(r) => write!(f, "deny ({r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(Decision::Allow.is_allowed());
        assert!(!Decision::Deny(DenyReason::NoChannel).is_allowed());
        assert_eq!(Decision::Allow.deny_reason(), None);
        assert_eq!(
            Decision::Deny(DenyReason::TypeNotAllowed).deny_reason(),
            Some(DenyReason::TypeNotAllowed)
        );
    }

    #[test]
    fn display_mentions_reason() {
        let s = format!("{}", Decision::Deny(DenyReason::NoChannel));
        assert!(s.contains("deny"));
        assert!(s.contains("no channel"));
        assert_eq!(format!("{}", Decision::Allow), "allow");
    }
}
