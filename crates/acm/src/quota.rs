//! Per-identity syscall quotas — the paper's proposed fork-bomb defense.
//!
//! §IV-D.2: "because web interface process has the privilege to fork
//! children processes, it can potentially launch a fork bomb to eat up
//! system resources. [...] This issue could be solved by using the ACM to
//! give each system call a quota. We will explore this in future research."
//!
//! The reproduction implements that extension so the `exp_ablation_acm`
//! experiment can show the fork bomb succeeding without quotas and being
//! contained with them.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::id::AcId;

/// Classes of system calls a quota can bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SyscallClass {
    /// Process creation (`fork`, `fork2`).
    Fork,
    /// Process termination requests against other processes (`kill`).
    Kill,
    /// Message sends (bounds flooding).
    Send,
    /// Device register writes.
    DeviceWrite,
}

impl fmt::Display for SyscallClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyscallClass::Fork => write!(f, "fork"),
            SyscallClass::Kill => write!(f, "kill"),
            SyscallClass::Send => write!(f, "send"),
            SyscallClass::DeviceWrite => write!(f, "device-write"),
        }
    }
}

/// Error returned when a charge would exceed the identity's quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuotaExceeded {
    /// The identity that hit its limit.
    pub ac_id: AcId,
    /// The syscall class that was limited.
    pub class: SyscallClass,
    /// The configured limit.
    pub limit: u64,
}

impl fmt::Display for QuotaExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} exceeded {} quota of {}",
            self.ac_id, self.class, self.limit
        )
    }
}

impl std::error::Error for QuotaExceeded {}

/// Mutable usage-accounting table over static limits.
///
/// Identities without a configured limit for a class are unlimited,
/// matching the opt-in character of the paper's proposal.
///
/// ```
/// use bas_acm::id::AcId;
/// use bas_acm::quota::{QuotaTable, SyscallClass};
///
/// let mut quotas = QuotaTable::new();
/// quotas.set_limit(AcId::new(104), SyscallClass::Fork, 2);
/// assert!(quotas.charge(AcId::new(104), SyscallClass::Fork).is_ok());
/// assert!(quotas.charge(AcId::new(104), SyscallClass::Fork).is_ok());
/// assert!(quotas.charge(AcId::new(104), SyscallClass::Fork).is_err());
/// // Other identities are unaffected.
/// assert!(quotas.charge(AcId::new(101), SyscallClass::Fork).is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuotaTable {
    limits: BTreeMap<(AcId, SyscallClass), u64>,
    used: BTreeMap<(AcId, SyscallClass), u64>,
}

impl QuotaTable {
    /// Creates a table with no limits (everything unlimited).
    pub fn new() -> Self {
        QuotaTable::default()
    }

    /// Sets the lifetime limit for one identity and class.
    pub fn set_limit(&mut self, ac_id: AcId, class: SyscallClass, limit: u64) {
        self.limits.insert((ac_id, class), limit);
    }

    /// The configured limit, if any.
    pub fn limit(&self, ac_id: AcId, class: SyscallClass) -> Option<u64> {
        self.limits.get(&(ac_id, class)).copied()
    }

    /// Usage charged so far.
    pub fn used(&self, ac_id: AcId, class: SyscallClass) -> u64 {
        self.used.get(&(ac_id, class)).copied().unwrap_or(0)
    }

    /// Attempts to charge one use.
    ///
    /// # Errors
    ///
    /// Returns [`QuotaExceeded`] (without charging) if the identity has a
    /// limit for `class` and has already used it up.
    pub fn charge(&mut self, ac_id: AcId, class: SyscallClass) -> Result<(), QuotaExceeded> {
        if let Some(&limit) = self.limits.get(&(ac_id, class)) {
            let used = self.used.entry((ac_id, class)).or_insert(0);
            if *used >= limit {
                return Err(QuotaExceeded {
                    ac_id,
                    class,
                    limit,
                });
            }
            *used += 1;
        }
        Ok(())
    }

    /// Clears usage counters (limits are kept).
    pub fn reset_usage(&mut self) {
        self.used.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ac(n: u32) -> AcId {
        AcId::new(n)
    }

    #[test]
    fn unlimited_by_default() {
        let mut q = QuotaTable::new();
        for _ in 0..10_000 {
            q.charge(ac(1), SyscallClass::Send).unwrap();
        }
        // Usage of unlimited classes is not tracked.
        assert_eq!(q.used(ac(1), SyscallClass::Send), 0);
    }

    #[test]
    fn limit_enforced_exactly() {
        let mut q = QuotaTable::new();
        q.set_limit(ac(5), SyscallClass::Fork, 3);
        for _ in 0..3 {
            q.charge(ac(5), SyscallClass::Fork).unwrap();
        }
        let err = q.charge(ac(5), SyscallClass::Fork).unwrap_err();
        assert_eq!(err.limit, 3);
        assert_eq!(err.class, SyscallClass::Fork);
        assert_eq!(
            q.used(ac(5), SyscallClass::Fork),
            3,
            "failed charge not counted"
        );
    }

    #[test]
    fn limits_are_per_identity_and_class() {
        let mut q = QuotaTable::new();
        q.set_limit(ac(1), SyscallClass::Fork, 0);
        assert!(q.charge(ac(1), SyscallClass::Fork).is_err());
        assert!(q.charge(ac(1), SyscallClass::Kill).is_ok());
        assert!(q.charge(ac(2), SyscallClass::Fork).is_ok());
    }

    #[test]
    fn reset_usage_restores_headroom() {
        let mut q = QuotaTable::new();
        q.set_limit(ac(1), SyscallClass::Kill, 1);
        q.charge(ac(1), SyscallClass::Kill).unwrap();
        assert!(q.charge(ac(1), SyscallClass::Kill).is_err());
        q.reset_usage();
        assert!(q.charge(ac(1), SyscallClass::Kill).is_ok());
        assert_eq!(q.limit(ac(1), SyscallClass::Kill), Some(1));
    }

    #[test]
    fn error_displays_context() {
        let e = QuotaExceeded {
            ac_id: ac(104),
            class: SyscallClass::Fork,
            limit: 2,
        };
        let s = format!("{e}");
        assert!(s.contains("ac104"));
        assert!(s.contains("fork"));
        assert!(s.contains('2'));
    }
}
