//! # bas-acm — the paper's mandatory IPC access-control matrix
//!
//! The central contribution of the reproduced paper is a fine-grained
//! mandatory access control mechanism for microkernel IPC, the *access
//! control matrix* (ACM). Quoting §III-B:
//!
//! > "Each row in the matrix defines which processes the sending process can
//! > communicate with through message passing, and what type of message is
//! > allowed. [...] The kernel now checks the ACM for each IPC to determine
//! > if the two processes are allowed to communicate."
//!
//! This crate implements that mechanism platform-independently:
//!
//! - [`id::AcId`] — the access-control identity the paper adds to the MINIX
//!   process control block (assigned via `fork2()`/`srv_fork2()`),
//! - [`matrix::MsgTypeSet`] — the per-cell bitmap of permitted message
//!   types (Fig. 3's `1101`-style entries),
//! - [`matrix::AccessControlMatrix`] — the sparse matrix itself with its
//!   kernel-side [`check`](matrix::AccessControlMatrix::check),
//! - [`delegation::DelegationLog`] — the audit trail of row delegations,
//!   consumed by the static capability-flow analyzer to rebuild and check
//!   the derivation forest behind the matrix,
//! - [`quota::QuotaTable`] — the paper's future-work extension ("This issue
//!   could be solved by using the ACM to give each system call a quota"),
//!   used by the fork-bomb ablation,
//! - [`fig3`] — the worked example of the paper's Figure 3, reused by the
//!   E2 experiment and the test suite.
//!
//! ```
//! use bas_acm::id::{AcId, MsgType};
//! use bas_acm::matrix::AccessControlMatrix;
//!
//! let mut acm = AccessControlMatrix::builder()
//!     .allow(AcId::new(100), AcId::new(101), [MsgType::ACK, MsgType::new(1)])
//!     .build();
//! assert!(acm.check(AcId::new(100), AcId::new(101), MsgType::new(1)).is_allowed());
//! assert!(!acm.check(AcId::new(101), AcId::new(100), MsgType::new(1)).is_allowed());
//! ```

pub mod decision;
pub mod delegation;
pub mod fig3;
pub mod id;
pub mod matrix;
pub mod quota;

pub use decision::{Decision, DenyReason};
pub use delegation::{Delegation, DelegationLog};
pub use id::{AcId, MsgType};
pub use matrix::{AccessControlMatrix, AcmBuilder, MsgTypeSet};
pub use quota::{QuotaExceeded, QuotaTable, SyscallClass};
