//! The CapDL data model.

use bas_sel4::rights::CapRights;
use bas_sim::device::DeviceId;
use serde::{Deserialize, Serialize};

use crate::text::{self, CapDlParseError};

/// Object kinds a spec can declare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecObjKind {
    /// An IPC endpoint.
    Endpoint,
    /// A notification object.
    Notification,
    /// A device frame for one simulated device.
    Device(DeviceId),
    /// An untyped-memory region of the given size in bytes.
    Untyped(usize),
}

/// A declared kernel object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjDecl {
    /// Spec-unique object name.
    pub name: String,
    /// The object's kind.
    pub kind: SpecObjKind,
}

/// A declared thread (its TCB object is implicit).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadDecl {
    /// Spec-unique thread name; also the program image name the realizer
    /// asks its loader for.
    pub name: String,
}

/// What a declared capability points at.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapTargetSpec {
    /// A declared object, by name.
    Object(String),
    /// The TCB of a declared thread, by thread name.
    Tcb(String),
}

/// One capability in some thread's CSpace after bootstrap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapDecl {
    /// The holding thread's name.
    pub holder: String,
    /// The CSpace slot.
    pub slot: u32,
    /// The capability's target.
    pub target: CapTargetSpec,
    /// Rights conveyed.
    pub rights: CapRights,
    /// Badge.
    pub badge: u64,
}

/// A recorded capability derivation: the cap in `child`'s slot was
/// derived (minted/attenuated) from the original capability to `origin`.
///
/// CapDL proper tracks the CDT implicitly through `maybe_original`
/// markers; this spec dialect records the provenance edge explicitly so
/// the static analyzer can rebuild the derivation forest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DerivationDecl {
    /// The derived capability, as `(holder, slot)`.
    pub child: (String, u32),
    /// The declared object whose original capability the child descends
    /// from.
    pub origin: String,
}

/// A complete capability-distribution specification.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CapDlSpec {
    /// Declared objects.
    pub objects: Vec<ObjDecl>,
    /// Declared threads.
    pub threads: Vec<ThreadDecl>,
    /// The full post-bootstrap capability layout.
    pub caps: Vec<CapDecl>,
    /// Recorded capability derivations (provenance edges for the CDT).
    pub derivations: Vec<DerivationDecl>,
}

impl CapDlSpec {
    /// Parses the concrete text syntax (see [`crate::text`]).
    ///
    /// # Errors
    ///
    /// Returns a [`CapDlParseError`] naming the offending line.
    pub fn parse(input: &str) -> Result<Self, CapDlParseError> {
        text::parse(input)
    }

    /// Prints the spec in its concrete syntax (parseable back).
    pub fn to_text(&self) -> String {
        text::print(self)
    }

    /// Looks up a declared object.
    pub fn object(&self, name: &str) -> Option<&ObjDecl> {
        self.objects.iter().find(|o| o.name == name)
    }

    /// Looks up a declared thread.
    pub fn thread(&self, name: &str) -> Option<&ThreadDecl> {
        self.threads.iter().find(|t| t.name == name)
    }

    /// All capabilities held by `holder`, in slot order.
    pub fn caps_of<'a>(&'a self, holder: &'a str) -> impl Iterator<Item = &'a CapDecl> + 'a {
        self.caps.iter().filter(move |c| c.holder == holder)
    }

    /// Structural validation: unique names, targets declared, slots unique
    /// per holder, holders declared.
    ///
    /// # Errors
    ///
    /// Returns one message per problem found.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        let mut names = std::collections::BTreeSet::new();
        for o in &self.objects {
            if !names.insert(o.name.as_str()) {
                problems.push(format!("duplicate object name '{}'", o.name));
            }
        }
        for t in &self.threads {
            if !names.insert(t.name.as_str()) {
                problems.push(format!("duplicate thread name '{}'", t.name));
            }
        }
        let mut slots = std::collections::BTreeSet::new();
        for c in &self.caps {
            if self.thread(&c.holder).is_none() {
                problems.push(format!(
                    "cap holder '{}' is not a declared thread",
                    c.holder
                ));
            }
            if !slots.insert((c.holder.clone(), c.slot)) {
                problems.push(format!("duplicate slot {}[{}]", c.holder, c.slot));
            }
            match &c.target {
                CapTargetSpec::Object(name) => {
                    if self.object(name).is_none() {
                        problems.push(format!("cap target object '{name}' not declared"));
                    }
                }
                CapTargetSpec::Tcb(name) => {
                    if self.thread(name).is_none() {
                        problems.push(format!("cap target thread '{name}' not declared"));
                    }
                }
            }
        }
        for d in &self.derivations {
            let (holder, slot) = &d.child;
            let Some(cap) = self
                .caps
                .iter()
                .find(|c| &c.holder == holder && c.slot == *slot)
            else {
                problems.push(format!(
                    "derivation child {holder}[{slot}] is not a declared cap"
                ));
                continue;
            };
            if self.object(&d.origin).is_none() {
                problems.push(format!(
                    "derivation origin object '{}' not declared",
                    d.origin
                ));
                continue;
            }
            if cap.target != CapTargetSpec::Object(d.origin.clone()) {
                problems.push(format!(
                    "derivation {holder}[{slot}] <- {}: cap does not target that object",
                    d.origin
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CapDlSpec {
        CapDlSpec {
            objects: vec![ObjDecl {
                name: "ep".into(),
                kind: SpecObjKind::Endpoint,
            }],
            threads: vec![
                ThreadDecl { name: "a".into() },
                ThreadDecl { name: "b".into() },
            ],
            caps: vec![
                CapDecl {
                    holder: "a".into(),
                    slot: 0,
                    target: CapTargetSpec::Object("ep".into()),
                    rights: CapRights::READ,
                    badge: 0,
                },
                CapDecl {
                    holder: "b".into(),
                    slot: 0,
                    target: CapTargetSpec::Object("ep".into()),
                    rights: CapRights::WRITE_GRANT,
                    badge: 5,
                },
            ],
            derivations: vec![DerivationDecl {
                child: ("b".into(), 0),
                origin: "ep".into(),
            }],
        }
    }

    #[test]
    fn valid_spec_validates() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn undeclared_target_caught() {
        let mut s = sample();
        s.caps.push(CapDecl {
            holder: "a".into(),
            slot: 1,
            target: CapTargetSpec::Object("ghost".into()),
            rights: CapRights::READ,
            badge: 0,
        });
        let problems = s.validate().unwrap_err();
        assert!(problems.iter().any(|p| p.contains("ghost")));
    }

    #[test]
    fn duplicate_slot_caught() {
        let mut s = sample();
        s.caps.push(s.caps[0].clone());
        let problems = s.validate().unwrap_err();
        assert!(problems.iter().any(|p| p.contains("duplicate slot")));
    }

    #[test]
    fn duplicate_names_caught() {
        let mut s = sample();
        s.threads.push(ThreadDecl { name: "a".into() });
        assert!(s.validate().is_err());
    }

    #[test]
    fn undeclared_holder_caught() {
        let mut s = sample();
        s.caps[0].holder = "nobody".into();
        let problems = s.validate().unwrap_err();
        assert!(problems.iter().any(|p| p.contains("nobody")));
    }

    #[test]
    fn derivation_child_must_exist_and_match_origin() {
        let mut s = sample();
        s.derivations.push(DerivationDecl {
            child: ("a".into(), 9),
            origin: "ep".into(),
        });
        let problems = s.validate().unwrap_err();
        assert!(problems.iter().any(|p| p.contains("a[9]")));

        let mut s = sample();
        s.derivations[0].origin = "ghost".into();
        let problems = s.validate().unwrap_err();
        assert!(problems.iter().any(|p| p.contains("ghost")));

        let mut s = sample();
        s.caps.push(CapDecl {
            holder: "a".into(),
            slot: 1,
            target: CapTargetSpec::Tcb("b".into()),
            rights: CapRights::READ,
            badge: 0,
        });
        s.derivations.push(DerivationDecl {
            child: ("a".into(), 1),
            origin: "ep".into(),
        });
        let problems = s.validate().unwrap_err();
        assert!(problems
            .iter()
            .any(|p| p.contains("does not target that object")));
    }

    #[test]
    fn caps_of_filters_by_holder() {
        let s = sample();
        assert_eq!(s.caps_of("a").count(), 1);
        assert_eq!(s.caps_of("b").count(), 1);
        assert_eq!(s.caps_of("zz").count(), 0);
    }
}
