//! Auditing a live kernel against its spec.
//!
//! §IV-D.3: "we expect this file to be correct (for high-assurance systems
//! this file can also be machine verified with the correlating source
//! code)." [`verify`] is that machine check for the simulated kernel: every
//! thread's CSpace must hold *exactly* the declared capabilities — nothing
//! missing, nothing extra, rights/badges/targets equal.

use std::fmt;

use bas_sel4::cap::CPtr;
use bas_sel4::kernel::Sel4Kernel;
use bas_sel4::objects::{KernelObject, ObjId};

use crate::realize::RealizedSystem;
use crate::spec::{CapDlSpec, CapTargetSpec, SpecObjKind};

/// One deviation between the spec and the live system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyIssue {
    /// A declared thread no longer exists.
    ThreadMissing {
        /// The thread's name.
        name: String,
    },
    /// A declared capability is absent or different.
    CapMismatch {
        /// Holder thread.
        holder: String,
        /// Slot.
        slot: u32,
        /// Human-readable difference.
        detail: String,
    },
    /// A capability exists in the live CSpace that the spec does not
    /// declare — capability *leakage*.
    ExtraCap {
        /// Holder thread.
        holder: String,
        /// Slot holding the undeclared capability.
        slot: u32,
        /// Description of the stray capability.
        detail: String,
    },
    /// A declared object's kernel kind differs from the spec.
    ObjectKindMismatch {
        /// Object name.
        name: String,
        /// Description of the difference.
        detail: String,
    },
}

impl fmt::Display for VerifyIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyIssue::ThreadMissing { name } => write!(f, "thread '{name}' missing"),
            VerifyIssue::CapMismatch {
                holder,
                slot,
                detail,
            } => {
                write!(f, "cap {holder}[{slot}] mismatch: {detail}")
            }
            VerifyIssue::ExtraCap {
                holder,
                slot,
                detail,
            } => {
                write!(f, "undeclared cap at {holder}[{slot}]: {detail}")
            }
            VerifyIssue::ObjectKindMismatch { name, detail } => {
                write!(f, "object '{name}' kind mismatch: {detail}")
            }
        }
    }
}

/// Audits `kernel` against `spec` using the name maps from bootstrap.
///
/// Returns every deviation found (empty = the live capability state is
/// exactly the declared one).
pub fn verify(spec: &CapDlSpec, kernel: &Sel4Kernel, sys: &RealizedSystem) -> Vec<VerifyIssue> {
    let mut issues = Vec::new();

    // Object kinds.
    for decl in &spec.objects {
        let Some(&obj) = sys.objects.get(&decl.name) else {
            issues.push(VerifyIssue::ObjectKindMismatch {
                name: decl.name.clone(),
                detail: "not in realized map".into(),
            });
            continue;
        };
        let live = kernel.object(obj);
        let matches = matches!(
            (decl.kind, live),
            (SpecObjKind::Endpoint, Some(KernelObject::Endpoint))
                | (
                    SpecObjKind::Notification,
                    Some(KernelObject::Notification { .. })
                )
        ) || matches!(
            (decl.kind, live),
            (SpecObjKind::Device(want), Some(KernelObject::Device { dev })) if want == *dev
        ) || matches!(
            (decl.kind, live),
            (SpecObjKind::Untyped(want), Some(KernelObject::Untyped { total, .. })) if want == *total
        );
        if !matches {
            issues.push(VerifyIssue::ObjectKindMismatch {
                name: decl.name.clone(),
                detail: format!("expected {:?}, live {:?}", decl.kind, live),
            });
        }
    }

    // Per-thread exact CSpace comparison.
    for thread in &spec.threads {
        let Some(&pid) = sys.threads.get(&thread.name) else {
            issues.push(VerifyIssue::ThreadMissing {
                name: thread.name.clone(),
            });
            continue;
        };
        let Some(cspace) = kernel.cspace_of(pid) else {
            issues.push(VerifyIssue::ThreadMissing {
                name: thread.name.clone(),
            });
            continue;
        };

        let declared: std::collections::BTreeMap<u32, &crate::spec::CapDecl> =
            spec.caps_of(&thread.name).map(|c| (c.slot, c)).collect();

        // Declared caps must be present and equal.
        for (slot, decl) in &declared {
            let want_obj: ObjId = match &decl.target {
                CapTargetSpec::Object(name) => sys.objects[name.as_str()],
                CapTargetSpec::Tcb(t) => match sys.threads.get(t.as_str()) {
                    Some(&p) => match kernel.tcb_of(p) {
                        Some(o) => o,
                        None => {
                            issues.push(VerifyIssue::CapMismatch {
                                holder: thread.name.clone(),
                                slot: *slot,
                                detail: format!("target thread '{t}' has no tcb (dead)"),
                            });
                            continue;
                        }
                    },
                    None => {
                        issues.push(VerifyIssue::CapMismatch {
                            holder: thread.name.clone(),
                            slot: *slot,
                            detail: format!("target thread '{t}' unknown"),
                        });
                        continue;
                    }
                },
            };
            match cspace.lookup(CPtr::new(*slot)) {
                Ok(cap) => {
                    if cap.object() != Some(want_obj) {
                        issues.push(VerifyIssue::CapMismatch {
                            holder: thread.name.clone(),
                            slot: *slot,
                            detail: format!("target {:?}, expected {want_obj}", cap.object()),
                        });
                    }
                    if cap.rights != decl.rights {
                        issues.push(VerifyIssue::CapMismatch {
                            holder: thread.name.clone(),
                            slot: *slot,
                            detail: format!("rights {}, expected {}", cap.rights, decl.rights),
                        });
                    }
                    if cap.badge != decl.badge {
                        issues.push(VerifyIssue::CapMismatch {
                            holder: thread.name.clone(),
                            slot: *slot,
                            detail: format!("badge {}, expected {}", cap.badge, decl.badge),
                        });
                    }
                }
                Err(_) => issues.push(VerifyIssue::CapMismatch {
                    holder: thread.name.clone(),
                    slot: *slot,
                    detail: "slot empty".into(),
                }),
            }
        }

        // No undeclared caps may exist.
        for (cptr, cap) in cspace.iter() {
            if !declared.contains_key(&cptr.slot()) {
                issues.push(VerifyIssue::ExtraCap {
                    holder: thread.name.clone(),
                    slot: cptr.slot(),
                    detail: format!("{cap}"),
                });
            }
        }
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realize::realize;
    use bas_sel4::cap::Capability;
    use bas_sel4::kernel::{Sel4Config, Sel4Thread};
    use bas_sel4::rights::CapRights;
    use bas_sel4::syscall::{Reply, Syscall};
    use bas_sim::script::Script;

    const SPEC: &str = "object ep endpoint\nthread a\nthread b\n\
                        cap a[0] = ep R-- badge=0\ncap b[0] = ep -WG badge=7";

    fn loader(_: &str) -> Option<Sel4Thread> {
        Some(Box::new(Script::<Syscall, Reply>::new(vec![])))
    }

    fn build() -> (CapDlSpec, Sel4Kernel, RealizedSystem) {
        let spec = CapDlSpec::parse(SPEC).unwrap();
        let mut k = Sel4Kernel::new(Sel4Config::default());
        let sys = realize(&spec, &mut k, &mut loader).unwrap();
        (spec, k, sys)
    }

    #[test]
    fn freshly_realized_system_verifies_clean() {
        let (spec, k, sys) = build();
        assert_eq!(verify(&spec, &k, &sys), vec![]);
    }

    #[test]
    fn extra_cap_detected() {
        let (spec, mut k, sys) = build();
        // Sneak an undeclared capability into b's cspace.
        let ep = sys.objects["ep"];
        k.grant_cap(
            sys.threads["b"],
            Capability::to_object(ep, CapRights::ALL, 99),
        )
        .unwrap();
        let issues = verify(&spec, &k, &sys);
        assert_eq!(issues.len(), 1);
        assert!(matches!(issues[0], VerifyIssue::ExtraCap { ref holder, .. } if holder == "b"));
    }

    #[test]
    fn missing_cap_detected() {
        let (mut spec, k, sys) = build();
        // Declare an extra cap the system doesn't have.
        spec.caps.push(crate::spec::CapDecl {
            holder: "a".into(),
            slot: 5,
            target: CapTargetSpec::Object("ep".into()),
            rights: CapRights::READ,
            badge: 0,
        });
        let issues = verify(&spec, &k, &sys);
        assert!(issues
            .iter()
            .any(|i| matches!(i, VerifyIssue::CapMismatch { slot: 5, .. })));
    }

    #[test]
    fn wrong_rights_detected() {
        let (mut spec, k, sys) = build();
        spec.caps[0].rights = CapRights::ALL; // live system has R--
        let issues = verify(&spec, &k, &sys);
        assert!(issues.iter().any(
            |i| matches!(i, VerifyIssue::CapMismatch { detail, .. } if detail.contains("rights"))
        ));
    }

    #[test]
    fn wrong_badge_detected() {
        let (mut spec, k, sys) = build();
        spec.caps[1].badge = 1;
        let issues = verify(&spec, &k, &sys);
        assert!(issues.iter().any(
            |i| matches!(i, VerifyIssue::CapMismatch { detail, .. } if detail.contains("badge"))
        ));
    }

    #[test]
    fn dead_thread_detected() {
        let (spec, mut k, sys) = build();
        // Threads were never started; suspend (kill) b directly via a cap.
        let b_tcb = k.tcb_of(sys.threads["b"]).unwrap();
        let killer = k.create_thread(
            "killer",
            Box::new(Script::<Syscall, Reply>::new(vec![Syscall::TcbSuspend {
                tcb: bas_sel4::cap::CPtr::new(0),
            }])),
        );
        k.grant_cap(killer, Capability::to_object(b_tcb, CapRights::ALL, 0))
            .unwrap();
        k.start_thread(killer);
        k.run_to_quiescence();
        let issues = verify(&spec, &k, &sys);
        assert!(issues
            .iter()
            .any(|i| matches!(i, VerifyIssue::ThreadMissing { name } if name == "b")));
    }
}
