//! # bas-capdl — capability-distribution specs (CapDL analogue)
//!
//! The paper (§III-D): "CapDL is a domain specific language used to
//! describe capability-based systems. For CAmkES, CapDL is used to describe
//! the state of all the capabilities after bootstrap. With this language,
//! then, a bootstrap process can be generated to implement the desired
//! architecture." And §IV-D.3: "for high-assurance systems this file can
//! also be machine verified with the correlating source code."
//!
//! This crate provides all three roles:
//!
//! - [`spec::CapDlSpec`] — the data model: objects, threads, and the exact
//!   capability layout of every thread's CSpace after bootstrap,
//! - [`text`] — a line-oriented concrete syntax with parser and printer,
//! - [`mod@realize`] — the generated-bootstrap analogue: builds the described
//!   system inside a [`bas_sel4::Sel4Kernel`],
//! - [`mod@verify`] — the machine-verification analogue: audits a *live*
//!   kernel against the spec and reports every deviation (missing caps,
//!   extra caps, wrong rights/badges/targets).
//!
//! ```
//! use bas_capdl::spec::CapDlSpec;
//!
//! let spec = CapDlSpec::parse(r"
//!     object ep_ctrl endpoint
//!     thread server
//!     thread client
//!     cap server[0] = ep_ctrl R-- badge=0
//!     cap client[0] = ep_ctrl -WG badge=7
//! ").unwrap();
//! assert_eq!(spec.objects.len(), 1);
//! assert_eq!(spec.caps.len(), 2);
//! // Round-trips through its own printer.
//! assert_eq!(CapDlSpec::parse(&spec.to_text()).unwrap(), spec);
//! ```

pub mod realize;
pub mod spec;
pub mod text;
pub mod verify;

pub use realize::{realize, RealizeError, RealizedSystem};
pub use spec::{
    CapDecl, CapDlSpec, CapTargetSpec, DerivationDecl, ObjDecl, SpecObjKind, ThreadDecl,
};
pub use text::CapDlParseError;
pub use verify::{verify, VerifyIssue};
