//! Concrete syntax for CapDL specs.
//!
//! Line-oriented; `#` starts a comment. Four statement forms:
//!
//! ```text
//! object <name> endpoint|notification|device <dev>|untyped <bytes>
//! thread <name>
//! cap <holder>[<slot>] = <target> <rights> badge=<n>
//! derive <holder>[<slot>] <- <object>
//! ```
//!
//! `<target>` is an object name or `tcb:<thread>`; `<rights>` is a
//! three-character `RWG` triple with `-` for absent rights (e.g. `-WG`);
//! `<dev>` is `temp-sensor`, `fan`, `alarm`, or a raw device number.
//! `derive` records that the cap in `<holder>[<slot>]` was derived from
//! the original capability to `<object>`.

use std::fmt;

use bas_sel4::rights::CapRights;
use bas_sim::device::DeviceId;

use crate::spec::{
    CapDecl, CapDlSpec, CapTargetSpec, DerivationDecl, ObjDecl, SpecObjKind, ThreadDecl,
};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapDlParseError {
    /// 1-based line of the offending statement.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CapDlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "capdl parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for CapDlParseError {}

fn err(line: usize, message: impl Into<String>) -> CapDlParseError {
    CapDlParseError {
        line,
        message: message.into(),
    }
}

fn parse_device(s: &str, line: usize) -> Result<DeviceId, CapDlParseError> {
    match s {
        "temp-sensor" => Ok(DeviceId::TEMP_SENSOR),
        "fan" => Ok(DeviceId::FAN),
        "alarm" => Ok(DeviceId::ALARM),
        other => other
            .parse::<u32>()
            .map(DeviceId::new)
            .map_err(|_| err(line, format!("unknown device '{other}'"))),
    }
}

fn device_name(dev: DeviceId) -> String {
    match dev {
        DeviceId::TEMP_SENSOR => "temp-sensor".into(),
        DeviceId::FAN => "fan".into(),
        DeviceId::ALARM => "alarm".into(),
        other => other.as_u32().to_string(),
    }
}

fn parse_holder_slot(s: &str, line: usize) -> Result<(String, u32), CapDlParseError> {
    let open = s
        .find('[')
        .ok_or_else(|| err(line, "missing '[' in holder[slot]"))?;
    if !s.ends_with(']') {
        return Err(err(line, "missing ']' in holder[slot]"));
    }
    let holder = s[..open].to_string();
    let slot: u32 = s[open + 1..s.len() - 1]
        .parse()
        .map_err(|_| err(line, "slot must be a number"))?;
    Ok((holder, slot))
}

fn parse_rights(s: &str, line: usize) -> Result<CapRights, CapDlParseError> {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() != 3 {
        return Err(err(
            line,
            format!("rights must be 3 chars (RWG/-), got '{s}'"),
        ));
    }
    let bit = |c: char, want: char| -> Result<bool, CapDlParseError> {
        if c == want {
            Ok(true)
        } else if c == '-' {
            Ok(false)
        } else {
            Err(err(
                line,
                format!("bad rights char '{c}' (expected '{want}' or '-')"),
            ))
        }
    };
    Ok(CapRights {
        read: bit(chars[0], 'R')?,
        write: bit(chars[1], 'W')?,
        grant: bit(chars[2], 'G')?,
    })
}

/// Parses a spec from text.
///
/// # Errors
///
/// Returns the first syntax error with its line number.
pub fn parse(input: &str) -> Result<CapDlSpec, CapDlParseError> {
    let mut spec = CapDlSpec::default();
    for (i, raw_line) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "object" => {
                if tokens.len() < 3 {
                    return Err(err(lineno, "object needs: object <name> <kind>"));
                }
                let kind = match tokens[2] {
                    "endpoint" => SpecObjKind::Endpoint,
                    "notification" => SpecObjKind::Notification,
                    "device" => {
                        let dev = tokens
                            .get(3)
                            .ok_or_else(|| err(lineno, "device object needs a device name"))?;
                        SpecObjKind::Device(parse_device(dev, lineno)?)
                    }
                    "untyped" => {
                        let bytes = tokens
                            .get(3)
                            .ok_or_else(|| err(lineno, "untyped object needs a size"))?
                            .parse::<usize>()
                            .map_err(|_| err(lineno, "untyped size must be a number"))?;
                        SpecObjKind::Untyped(bytes)
                    }
                    other => return Err(err(lineno, format!("unknown object kind '{other}'"))),
                };
                spec.objects.push(ObjDecl {
                    name: tokens[1].to_string(),
                    kind,
                });
            }
            "thread" => {
                if tokens.len() != 2 {
                    return Err(err(lineno, "thread needs: thread <name>"));
                }
                spec.threads.push(ThreadDecl {
                    name: tokens[1].to_string(),
                });
            }
            "cap" => {
                // cap holder[slot] = target RWG badge=n
                if tokens.len() != 6 || tokens[2] != "=" {
                    return Err(err(
                        lineno,
                        "cap needs: cap <holder>[<slot>] = <target> <rights> badge=<n>",
                    ));
                }
                let (holder, slot) = parse_holder_slot(tokens[1], lineno)?;
                let target = match tokens[3].strip_prefix("tcb:") {
                    Some(thread) => CapTargetSpec::Tcb(thread.to_string()),
                    None => CapTargetSpec::Object(tokens[3].to_string()),
                };
                let rights = parse_rights(tokens[4], lineno)?;
                let badge: u64 = tokens[5]
                    .strip_prefix("badge=")
                    .ok_or_else(|| err(lineno, "expected badge=<n>"))?
                    .parse()
                    .map_err(|_| err(lineno, "badge must be a number"))?;
                spec.caps.push(CapDecl {
                    holder,
                    slot,
                    target,
                    rights,
                    badge,
                });
            }
            "derive" => {
                // derive holder[slot] <- object
                if tokens.len() != 4 || tokens[2] != "<-" {
                    return Err(err(
                        lineno,
                        "derive needs: derive <holder>[<slot>] <- <object>",
                    ));
                }
                let child = parse_holder_slot(tokens[1], lineno)?;
                spec.derivations.push(DerivationDecl {
                    child,
                    origin: tokens[3].to_string(),
                });
            }
            other => return Err(err(lineno, format!("unknown statement '{other}'"))),
        }
    }
    Ok(spec)
}

/// Prints a spec in the concrete syntax accepted by [`parse`].
pub fn print(spec: &CapDlSpec) -> String {
    let mut out = String::new();
    for o in &spec.objects {
        match o.kind {
            SpecObjKind::Endpoint => out.push_str(&format!("object {} endpoint\n", o.name)),
            SpecObjKind::Notification => out.push_str(&format!("object {} notification\n", o.name)),
            SpecObjKind::Device(dev) => {
                out.push_str(&format!("object {} device {}\n", o.name, device_name(dev)))
            }
            SpecObjKind::Untyped(bytes) => {
                out.push_str(&format!("object {} untyped {bytes}\n", o.name))
            }
        }
    }
    for t in &spec.threads {
        out.push_str(&format!("thread {}\n", t.name));
    }
    for c in &spec.caps {
        let target = match &c.target {
            CapTargetSpec::Object(name) => name.clone(),
            CapTargetSpec::Tcb(name) => format!("tcb:{name}"),
        };
        out.push_str(&format!(
            "cap {}[{}] = {} {} badge={}\n",
            c.holder, c.slot, target, c.rights, c.badge
        ));
    }
    for d in &spec.derivations {
        out.push_str(&format!(
            "derive {}[{}] <- {}\n",
            d.child.0, d.child.1, d.origin
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
        # the scenario's control endpoint
        object ep_ctrl endpoint
        object ntfn notification
        object dev_fan device fan
        object dev_x device 42
        object pool untyped 4096
        thread ctrl
        thread web
        cap ctrl[0] = ep_ctrl R-- badge=0
        cap web[0] = ep_ctrl -WG badge=9
        cap ctrl[1] = dev_fan -W- badge=0
        cap ctrl[2] = tcb:web RW- badge=0
        derive web[0] <- ep_ctrl
    ";

    #[test]
    fn parses_sample() {
        let spec = parse(SAMPLE).unwrap();
        assert_eq!(spec.objects.len(), 5);
        assert!(matches!(spec.objects[4].kind, SpecObjKind::Untyped(4096)));
        assert_eq!(spec.threads.len(), 2);
        assert_eq!(spec.caps.len(), 4);
        assert_eq!(
            spec.derivations,
            vec![DerivationDecl {
                child: ("web".into(), 0),
                origin: "ep_ctrl".into(),
            }]
        );
        assert_eq!(spec.caps[1].rights, CapRights::WRITE_GRANT);
        assert_eq!(spec.caps[1].badge, 9);
        assert!(matches!(spec.caps[3].target, CapTargetSpec::Tcb(ref t) if t == "web"));
        assert!(matches!(
            spec.objects[3].kind,
            SpecObjKind::Device(d) if d == DeviceId::new(42)
        ));
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn roundtrips_through_printer() {
        let spec = parse(SAMPLE).unwrap();
        let printed = print(&spec);
        assert_eq!(parse(&printed).unwrap(), spec);
    }

    #[test]
    fn error_carries_line_number() {
        let input = "object a endpoint\nbogus statement\n";
        let e = parse(input).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn bad_rights_rejected() {
        let e = parse("thread t\ncap t[0] = x QWG badge=0\nobject x endpoint").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("rights") || e.message.contains("char"));
    }

    #[test]
    fn bad_badge_rejected() {
        let e = parse("object x endpoint\nthread t\ncap t[0] = x RWG badge=zz").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn unknown_device_rejected() {
        let e = parse("object d device warpdrive").unwrap_err();
        assert!(e.message.contains("warpdrive"));
    }

    #[test]
    fn malformed_derive_rejected() {
        let e = parse("object e endpoint\nthread t\ncap t[0] = e R-- badge=0\nderive t[0] e")
            .unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("derive"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = parse("# just a comment\n\n   \nobject e endpoint # trailing\n").unwrap();
        assert_eq!(spec.objects.len(), 1);
    }
}
