//! Realizing a spec: the generated-bootstrap analogue.
//!
//! §III-D: "a bootstrap process can be generated to implement the desired
//! architecture" — here, [`realize`] plays the bootstrap process: it holds
//! all authority, creates every object and thread, and distributes exactly
//! the declared capabilities before any user thread runs.

use std::collections::BTreeMap;
use std::fmt;

use bas_sel4::cap::{CPtr, Capability};
use bas_sel4::kernel::{Sel4Kernel, Sel4Thread};
use bas_sel4::objects::ObjId;
use bas_sim::process::Pid;

use crate::spec::{CapDlSpec, CapTargetSpec, SpecObjKind};

/// Name→id maps produced by a successful bootstrap.
#[derive(Debug, Clone, Default)]
pub struct RealizedSystem {
    /// Declared object name → kernel object id.
    pub objects: BTreeMap<String, ObjId>,
    /// Declared thread name → pid.
    pub threads: BTreeMap<String, Pid>,
}

/// Errors from [`realize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RealizeError {
    /// The spec failed structural validation.
    InvalidSpec(Vec<String>),
    /// The program loader had no image for a declared thread.
    MissingProgram(String),
    /// Installing a capability failed (slot conflict or CSpace overflow).
    CapInstall {
        /// The holder thread.
        holder: String,
        /// The slot that failed.
        slot: u32,
        /// The kernel error.
        error: bas_sel4::error::Sel4Error,
    },
}

impl fmt::Display for RealizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RealizeError::InvalidSpec(problems) => {
                write!(f, "invalid capdl spec: {}", problems.join("; "))
            }
            RealizeError::MissingProgram(name) => {
                write!(f, "no program image for thread '{name}'")
            }
            RealizeError::CapInstall {
                holder,
                slot,
                error,
            } => {
                write!(f, "failed to install cap {holder}[{slot}]: {error}")
            }
        }
    }
}

impl std::error::Error for RealizeError {}

/// Builds the system a spec describes inside `kernel`.
///
/// `loader` maps thread names to program logic (the "correct binaries" the
/// paper's loader supplies). Threads are created but **not started**; call
/// [`Sel4Kernel::start_thread`] on each (typically critical processes
/// first) after inspecting or verifying the layout.
///
/// # Errors
///
/// Returns a [`RealizeError`] and leaves the kernel partially constructed
/// (callers treat that kernel as disposable).
pub fn realize(
    spec: &CapDlSpec,
    kernel: &mut Sel4Kernel,
    loader: &mut dyn FnMut(&str) -> Option<Sel4Thread>,
) -> Result<RealizedSystem, RealizeError> {
    spec.validate().map_err(RealizeError::InvalidSpec)?;

    let mut sys = RealizedSystem::default();

    for obj in &spec.objects {
        let id = match obj.kind {
            SpecObjKind::Endpoint => kernel.create_endpoint(),
            SpecObjKind::Notification => kernel.create_notification(),
            SpecObjKind::Device(dev) => kernel.create_device(dev),
            SpecObjKind::Untyped(bytes) => kernel.create_untyped(bytes),
        };
        sys.objects.insert(obj.name.clone(), id);
    }

    for thread in &spec.threads {
        let logic = loader(&thread.name)
            .ok_or_else(|| RealizeError::MissingProgram(thread.name.clone()))?;
        let pid = kernel.create_thread(thread.name.clone(), logic);
        sys.threads.insert(thread.name.clone(), pid);
    }

    for cap in &spec.caps {
        let target_obj = match &cap.target {
            CapTargetSpec::Object(name) => sys.objects[name.as_str()],
            CapTargetSpec::Tcb(thread) => {
                let pid = sys.threads[thread.as_str()];
                kernel.tcb_of(pid).expect("thread just created has a tcb")
            }
        };
        let holder_pid = sys.threads[cap.holder.as_str()];
        kernel
            .grant_cap_at(
                holder_pid,
                CPtr::new(cap.slot),
                Capability::to_object(target_obj, cap.rights, cap.badge),
            )
            .map_err(|error| RealizeError::CapInstall {
                holder: cap.holder.clone(),
                slot: cap.slot,
                error,
            })?;
    }

    Ok(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_sel4::kernel::Sel4Config;
    use bas_sel4::rights::CapRights;
    use bas_sel4::syscall::{Reply, Syscall};
    use bas_sim::script::Script;

    fn loader(name: &str) -> Option<Sel4Thread> {
        let _ = name;
        Some(Box::new(Script::<Syscall, Reply>::new(vec![])))
    }

    #[test]
    fn realize_builds_declared_layout() {
        let spec = CapDlSpec::parse(
            "object ep endpoint\nthread a\nthread b\ncap a[0] = ep R-- badge=0\ncap b[3] = ep -WG badge=7",
        )
        .unwrap();
        let mut k = Sel4Kernel::new(Sel4Config::default());
        let sys = realize(&spec, &mut k, &mut loader).unwrap();
        assert_eq!(sys.threads.len(), 2);
        let b = sys.threads["b"];
        let cs = k.cspace_of(b).unwrap();
        let cap = cs.lookup(CPtr::new(3)).unwrap();
        assert_eq!(cap.rights, CapRights::WRITE_GRANT);
        assert_eq!(cap.badge, 7);
        assert_eq!(cap.object(), Some(sys.objects["ep"]));
        assert_eq!(cs.occupied(), 1, "no caps beyond the spec");
    }

    #[test]
    fn invalid_spec_rejected() {
        let spec = CapDlSpec::parse("thread a\ncap a[0] = ghost RWG badge=0").unwrap();
        let mut k = Sel4Kernel::new(Sel4Config::default());
        match realize(&spec, &mut k, &mut loader) {
            Err(RealizeError::InvalidSpec(problems)) => {
                assert!(problems.iter().any(|p| p.contains("ghost")));
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }

    #[test]
    fn missing_program_rejected() {
        let spec = CapDlSpec::parse("thread nobody").unwrap();
        let mut k = Sel4Kernel::new(Sel4Config::default());
        let mut no_loader = |_: &str| -> Option<Sel4Thread> { None };
        match realize(&spec, &mut k, &mut no_loader) {
            Err(RealizeError::MissingProgram(name)) => assert_eq!(name, "nobody"),
            other => panic!("expected MissingProgram, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn tcb_targets_resolve() {
        let spec = CapDlSpec::parse("thread a\nthread b\ncap a[0] = tcb:b RW- badge=0").unwrap();
        let mut k = Sel4Kernel::new(Sel4Config::default());
        let sys = realize(&spec, &mut k, &mut loader).unwrap();
        let cap = k
            .cspace_of(sys.threads["a"])
            .unwrap()
            .lookup(CPtr::new(0))
            .unwrap();
        assert_eq!(cap.object(), k.tcb_of(sys.threads["b"]));
    }

    #[test]
    fn slot_conflict_reported() {
        let spec = CapDlSpec::parse(
            "object ep endpoint\nthread a\ncap a[0] = ep R-- badge=0\ncap a[0] = ep -W- badge=0",
        )
        .unwrap();
        // validate() catches duplicate slots first.
        let mut k = Sel4Kernel::new(Sel4Config::default());
        assert!(matches!(
            realize(&spec, &mut k, &mut loader),
            Err(RealizeError::InvalidSpec(_))
        ));
    }
}
