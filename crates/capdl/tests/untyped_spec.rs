//! End-to-end CapDL coverage for untyped-memory declarations: parse →
//! realize → verify, and the audit catching size drift.

use bas_capdl::realize::realize;
use bas_capdl::spec::{CapDlSpec, SpecObjKind};
use bas_capdl::verify::{verify, VerifyIssue};
use bas_sel4::cap::CPtr;
use bas_sel4::kernel::{Sel4Config, Sel4Kernel, Sel4Thread};
use bas_sel4::syscall::{Reply, RetypeKind, Syscall};
use bas_sim::script::{replies, Script};

const SPEC: &str = "object pool untyped 48\nthread allocator\ncap allocator[0] = pool -W- badge=0";

fn loader(_: &str) -> Option<Sel4Thread> {
    Some(Box::new(Script::<Syscall, Reply>::new(vec![])))
}

#[test]
fn untyped_spec_realizes_and_verifies() {
    let spec = CapDlSpec::parse(SPEC).unwrap();
    assert!(matches!(spec.objects[0].kind, SpecObjKind::Untyped(48)));
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let sys = realize(&spec, &mut k, &mut loader).unwrap();
    assert_eq!(verify(&spec, &k, &sys), vec![]);
    // Round trip through the printer too.
    assert_eq!(CapDlSpec::parse(&spec.to_text()).unwrap(), spec);
}

#[test]
fn declared_untyped_is_actually_retypable_by_its_holder() {
    let spec = CapDlSpec::parse(SPEC).unwrap();
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let (alloc_script, log) = Script::<Syscall, Reply>::new(vec![
        Syscall::Retype {
            untyped: CPtr::new(0),
            kind: RetypeKind::Endpoint,
        },
        Syscall::Retype {
            untyped: CPtr::new(0),
            kind: RetypeKind::Endpoint,
        },
        Syscall::Retype {
            untyped: CPtr::new(0),
            kind: RetypeKind::Endpoint,
        },
        Syscall::Retype {
            untyped: CPtr::new(0),
            kind: RetypeKind::Endpoint,
        }, // exhausted
    ])
    .logged();
    let mut alloc_script = Some(alloc_script);
    let mut loader = |name: &str| -> Option<Sel4Thread> {
        (name == "allocator").then(|| alloc_script.take().map(|s| Box::new(s) as Sel4Thread))?
    };
    let sys = realize(&spec, &mut k, &mut loader).unwrap();
    k.start_thread(sys.threads["allocator"]);
    k.run_to_quiescence();
    let got = replies(&log);
    assert!(matches!(got[0], Reply::Slot(_)));
    assert!(matches!(got[1], Reply::Slot(_)));
    assert!(matches!(got[2], Reply::Slot(_)));
    assert_eq!(got[3], Reply::Err(bas_sel4::Sel4Error::OutOfMemory));
}

#[test]
fn size_drift_is_an_audit_issue() {
    let spec = CapDlSpec::parse(SPEC).unwrap();
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let sys = realize(&spec, &mut k, &mut loader).unwrap();
    // Mutate the *spec* (as if the file on disk changed after boot).
    let mut drifted = spec.clone();
    drifted.objects[0].kind = SpecObjKind::Untyped(4096);
    let issues = verify(&drifted, &k, &sys);
    assert!(issues
        .iter()
        .any(|i| matches!(i, VerifyIssue::ObjectKindMismatch { name, .. } if name == "pool")));
}
