//! The A3 recovery experiment, rebuilt on the fault layer.
//!
//! One plan — kill the heater driver three minutes in, while an
//! overheating episode ramps up — runs on *all three* platforms, so the
//! contrast the paper argues for is measured, not asserted: a
//! supervised MINIX stack re-forks the driver and rides out the
//! episode; Linux has no supervisor, so the driver stays dead and its
//! message queue backs up; seL4's static architecture leaves the
//! controller's blocking call to the dead driver wedged forever.

use bas_core::engine::{PlatformKernel, ScenarioEngine};
use bas_core::platform::linux::LinuxStack;
use bas_core::platform::minix::{MinixOverrides, MinixStack};
use bas_core::platform::sel4::Sel4Stack;
use bas_core::proto::names;
use bas_core::scenario::{critical_alive, Platform, Scenario, ScenarioConfig};
use bas_fleet::Json;
use bas_sim::time::SimDuration;

use crate::inject::install;
use crate::plan::{FaultEvent, FaultKind, FaultPlan};

/// The recovery schedule: one crash of `process` at `at`.
pub fn crash_plan(process: &str, at: SimDuration) -> FaultPlan {
    FaultPlan::new(
        format!("crash_{process}"),
        vec![FaultEvent::new(
            at,
            FaultKind::Crash {
                process: process.to_string(),
            },
        )],
    )
}

/// One point of the 3-minute-sampled temperature timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Virtual seconds since boot.
    pub t_s: u64,
    /// Room temperature.
    pub temp_c: f64,
    /// Fan commanded on.
    pub fan_on: bool,
    /// Alarm raised.
    pub alarm_on: bool,
}

/// What one recovery run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// The platform that actually ran (reports must name it).
    pub platform: Platform,
    /// Whether a supervisor watched the critical processes (MINIX only).
    pub supervised: bool,
    /// Fan actuations over the run.
    pub fan_switches: usize,
    /// Room temperature at the end.
    pub final_temp_c: f64,
    /// All critical processes alive at the end.
    pub critical_alive: bool,
    /// Processes created over the run (re-forks show up here).
    pub processes_created: u64,
    /// Safety oracle verdict.
    pub safe: bool,
    /// Temperature/actuator timeline, one point per 3 virtual minutes.
    pub timeline: Vec<TimelinePoint>,
}

impl RecoveryOutcome {
    /// JSON form (field order fixed).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("platform", Json::Str(self.platform.to_string())),
            ("supervised", Json::Bool(self.supervised)),
            ("fan_switches", Json::UInt(self.fan_switches as u64)),
            ("final_temp_c", Json::Num(self.final_temp_c)),
            ("critical_alive", Json::Bool(self.critical_alive)),
            ("processes_created", Json::UInt(self.processes_created)),
            ("safe", Json::Bool(self.safe)),
            (
                "timeline",
                Json::Arr(
                    self.timeline
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("t_s", Json::UInt(p.t_s)),
                                ("temp_c", Json::Num(p.temp_c)),
                                ("fan_on", Json::Bool(p.fan_on)),
                                ("alarm_on", Json::Bool(p.alarm_on)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn run_on<K: PlatformKernel>(
    overrides: K::Overrides,
    supervised: bool,
    quick: bool,
) -> RecoveryOutcome {
    let mut config = ScenarioConfig::quiet();
    // An overheating episode ramps up mid-run so the dead driver matters.
    config.plant.heat_schedule = vec![(
        SimDuration::from_secs(if quick { 600 } else { 1_200 }),
        150.0,
    )];
    let horizon = SimDuration::from_mins(if quick { 20 } else { 40 });

    let mut engine = ScenarioEngine::<K>::boot(&config, overrides);
    let plan = crash_plan(names::HEATER, SimDuration::from_secs(180));
    let log = install(&mut engine, &plan);
    engine.run_for(horizon);
    assert_eq!(log.fired_count(), 1, "the crash event must fire");

    let plant = engine.plant();
    let plant = plant.borrow();
    let mut timeline = Vec::new();
    let mut next_s = 0u64;
    for sample in plant.trace() {
        if sample.time.as_secs() >= next_s {
            timeline.push(TimelinePoint {
                t_s: sample.time.as_secs(),
                temp_c: sample.temp_c,
                fan_on: sample.fan_on,
                alarm_on: sample.alarm_on,
            });
            next_s += 180;
        }
    }

    RecoveryOutcome {
        platform: K::PLATFORM,
        supervised,
        fan_switches: plant.fan().switch_count(),
        final_temp_c: plant.temperature_c(),
        critical_alive: critical_alive(&engine),
        processes_created: engine.stack.metrics().processes_created,
        safe: plant.safety_report().is_safe(),
        timeline,
    }
}

/// Runs the heater-crash recovery experiment on the named platform.
///
/// `supervise` is only meaningful on MINIX (the reincarnation-server
/// model the paper leans on); asking for it elsewhere is a harness bug.
///
/// # Panics
///
/// Panics if `supervise` is requested on a platform without a
/// supervisor (anything but MINIX).
pub fn run_recovery(platform: Platform, supervise: bool, quick: bool) -> RecoveryOutcome {
    assert!(
        !supervise || platform == Platform::Minix,
        "supervised recovery only exists on MINIX; {platform} has no supervisor"
    );
    match platform {
        Platform::Minix => run_on::<MinixStack>(
            MinixOverrides {
                supervise,
                ..Default::default()
            },
            supervise,
            quick,
        ),
        Platform::Linux => run_on::<LinuxStack>(Default::default(), false, quick),
        Platform::Sel4 => run_on::<Sel4Stack>(Default::default(), false, quick),
    }
}
