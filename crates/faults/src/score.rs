//! The degradation scorecard: how badly did the plan hurt, and did the
//! platform come back?
//!
//! Scores are computed from the plant's sampled trace and the kernel's
//! end-of-run counters, so they are as deterministic as the run itself.

use bas_core::engine::{PlatformKernel, ScenarioEngine};
use bas_core::scenario::{critical_alive, Scenario};
use bas_fleet::Json;

use crate::inject::InjectionLog;

/// One cell of the campaign matrix: a (platform, plan) pair's measured
/// degradation.
#[derive(Debug, Clone, PartialEq)]
pub struct Scorecard {
    /// Platform label (`Platform`'s display form).
    pub platform: String,
    /// Plan name.
    pub plan: String,
    /// Seed the cell ran with.
    pub seed: u64,
    /// Safety oracle verdict for the whole run.
    pub safety_held: bool,
    /// Worst alarm latency observed, seconds (None: no alarm episodes).
    pub alarm_latency_worst_s: Option<f64>,
    /// Total virtual seconds the temperature sat outside the comfort
    /// band.
    pub out_of_band_seconds: f64,
    /// Seconds from the first injected fault to the last out-of-band
    /// sample — i.e. how long the disturbance took to die out. None if
    /// the run *ended* out of band (never recovered); Some(0.0) if the
    /// plan never pushed the plant out of band after the first fault.
    pub recovery_seconds: Option<f64>,
    /// Processes created after the first fault (supervised re-forks).
    pub processes_restarted: u64,
    /// Whether all critical processes were alive at the end.
    pub critical_alive: bool,
    /// Fault events that actually fired.
    pub events_fired: usize,
    /// Armed IPC faults the kernel consumed.
    pub ipc_faults_applied: u64,
}

impl Scorecard {
    /// JSON form (field order fixed for byte-stable reports).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("platform", Json::Str(self.platform.clone())),
            ("plan", Json::Str(self.plan.clone())),
            ("seed", Json::UInt(self.seed)),
            ("safety_held", Json::Bool(self.safety_held)),
            (
                "alarm_latency_worst_s",
                match self.alarm_latency_worst_s {
                    Some(s) => Json::Num(s),
                    None => Json::Null,
                },
            ),
            ("out_of_band_seconds", Json::Num(self.out_of_band_seconds)),
            (
                "recovery_seconds",
                match self.recovery_seconds {
                    Some(s) => Json::Num(s),
                    None => Json::Null,
                },
            ),
            ("processes_restarted", Json::UInt(self.processes_restarted)),
            ("critical_alive", Json::Bool(self.critical_alive)),
            ("events_fired", Json::UInt(self.events_fired as u64)),
            ("ipc_faults_applied", Json::UInt(self.ipc_faults_applied)),
        ])
    }
}

/// Grades a finished run: plant-trace degradation plus kernel counters.
///
/// `band_c` is the comfort half-band the run's plant was configured
/// with (`PlantConfig::band_c`).
pub fn grade<K: PlatformKernel>(
    plan_name: &str,
    seed: u64,
    engine: &ScenarioEngine<K>,
    log: &InjectionLog,
    band_c: f64,
) -> Scorecard {
    let plant = engine.plant();
    let plant = plant.borrow();
    let report = plant.safety_report();
    let trace = plant.trace();

    let alarm_latency_worst_s = report
        .alarm_latencies
        .iter()
        .map(|d| d.as_secs_f64())
        .fold(None, |worst: Option<f64>, s| {
            Some(worst.map_or(s, |w| w.max(s)))
        });

    // Integrate out-of-band residence time over the sampled trace: a
    // sample out of band charges the interval up to the next sample.
    let mut out_of_band_seconds = 0.0;
    for pair in trace.windows(2) {
        if (pair[0].temp_c - pair[0].setpoint_c).abs() > band_c {
            out_of_band_seconds += pair[1].time.as_secs_f64() - pair[0].time.as_secs_f64();
        }
    }

    let first_fault = log.first_fault_at();
    let recovery_seconds = match (first_fault, trace.last()) {
        (Some(t0), Some(last)) => {
            if (last.temp_c - last.setpoint_c).abs() > band_c {
                None // still out of band at end of run: no recovery
            } else {
                let last_bad = trace.iter().rfind(|s| {
                    s.time.as_nanos() >= t0.as_nanos() && (s.temp_c - s.setpoint_c).abs() > band_c
                });
                Some(match last_bad {
                    Some(s) => s.time.as_secs_f64() - t0.as_secs_f64(),
                    None => 0.0,
                })
            }
        }
        _ => Some(0.0), // no faults fired (baseline) or empty trace
    };

    let metrics = engine.stack.metrics();
    let processes_restarted = match log.baseline_metrics() {
        Some(base) => metrics
            .processes_created
            .saturating_sub(base.processes_created),
        None => 0,
    };

    Scorecard {
        platform: engine.platform().to_string(),
        plan: plan_name.to_string(),
        seed,
        safety_held: report.is_safe(),
        alarm_latency_worst_s,
        out_of_band_seconds,
        recovery_seconds,
        processes_restarted,
        critical_alive: critical_alive(engine),
        events_fired: log.fired_count(),
        ipc_faults_applied: engine.stack.ipc_faults_applied(),
    }
}
