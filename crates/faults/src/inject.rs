//! Installs a [`FaultPlan`] on a booted [`ScenarioEngine`].
//!
//! Sensor faults go in through `DeviceBus::interpose` — the real device
//! stays registered underneath a [`FaultyDevice`] wrapper whose mode the
//! injector flips at the scheduled times. Everything else (crashes, IPC
//! faults, clock skew) goes through the [`PlatformKernel`] fault hooks.
//! The engine's lockstep tick hook drives the schedule: an event pinned
//! to `at` fires at the first chunk boundary whose virtual time is at or
//! after `at`, so with the default 100 ms chunk the quantization error
//! is bounded by one chunk.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use bas_core::engine::{PlatformKernel, ScenarioEngine};
use bas_sim::device::DeviceId;
use bas_sim::fault::{
    sensor_fault_handle, FaultyDevice, IpcFault, SensorFaultHandle, SensorFaultMode,
};
use bas_sim::metrics::KernelMetrics;
use bas_sim::time::{SimDuration, SimTime};

use crate::plan::{FaultKind, FaultPlan};

/// One fault event that has fired.
#[derive(Debug, Clone)]
pub struct FiredEvent {
    /// Index into [`FaultPlan::events`].
    pub index: usize,
    /// The time the plan asked for.
    pub scheduled: SimDuration,
    /// The virtual time the injector actually applied it (first chunk
    /// boundary at or after `scheduled`).
    pub applied_at: SimTime,
    /// Human-readable fault label.
    pub label: String,
    /// Whether the fault landed (false e.g. for a crash aimed at a name
    /// that is not alive).
    pub hit: bool,
}

#[derive(Debug, Default)]
struct LogInner {
    fired: Vec<FiredEvent>,
    baseline: Option<KernelMetrics>,
}

/// Shared record of what the injector has done so far. Cloning is cheap
/// (it is a handle); the scorecard reads it after the run.
#[derive(Debug, Clone, Default)]
pub struct InjectionLog {
    inner: Rc<RefCell<LogInner>>,
}

impl InjectionLog {
    /// Events fired so far, in firing order.
    pub fn fired(&self) -> Vec<FiredEvent> {
        self.inner.borrow().fired.clone()
    }

    /// Number of events fired so far.
    pub fn fired_count(&self) -> usize {
        self.inner.borrow().fired.len()
    }

    /// Kernel metrics snapshotted immediately before the first fault was
    /// applied (None while the plan is still clean).
    pub fn baseline_metrics(&self) -> Option<KernelMetrics> {
        self.inner.borrow().baseline
    }

    /// Virtual time the first fault was applied, if any.
    pub fn first_fault_at(&self) -> Option<SimTime> {
        self.inner.borrow().fired.first().map(|f| f.applied_at)
    }
}

/// Wraps every plant device the plan's sensor faults reference and arms
/// the schedule on the engine's tick hook. Returns the log the campaign
/// scorecard reads after the run.
///
/// # Panics
///
/// Panics if the plan references a device the stack never registered —
/// a schedule aimed at nothing is a plan bug, not a degradation result.
pub fn install<K: PlatformKernel>(
    engine: &mut ScenarioEngine<K>,
    plan: &FaultPlan,
) -> InjectionLog {
    let mut handles: BTreeMap<DeviceId, SensorFaultHandle> = BTreeMap::new();
    for dev in plan.sensor_devices() {
        let handle = sensor_fault_handle();
        let for_device = handle.clone();
        engine
            .stack
            .devices_mut()
            .interpose(dev, move |inner| {
                Box::new(FaultyDevice::new(inner, for_device))
            })
            .unwrap_or_else(|e| panic!("plan {:?} targets unknown device: {e}", plan.name()));
        handles.insert(dev, handle);
    }

    let log = InjectionLog::default();
    let hook_log = log.clone();
    let events = plan.events().to_vec();
    let mut next = 0usize;
    engine.set_tick_hook(move |stack| {
        let now = stack.now();
        while next < events.len() && events[next].at.as_nanos() <= now.as_nanos() {
            let ev = &events[next];
            let mut inner = hook_log.inner.borrow_mut();
            if inner.baseline.is_none() {
                inner.baseline = Some(stack.metrics());
            }
            let hit = apply(stack, &handles, &ev.kind);
            inner.fired.push(FiredEvent {
                index: next,
                scheduled: ev.at,
                applied_at: now,
                label: ev.kind.label(),
                hit,
            });
            next += 1;
        }
    });
    log
}

fn apply<K: PlatformKernel>(
    stack: &mut K,
    handles: &BTreeMap<DeviceId, SensorFaultHandle>,
    kind: &FaultKind,
) -> bool {
    let set_mode = |device: &DeviceId, mode: SensorFaultMode| {
        handles
            .get(device)
            .expect("install() interposed every device the plan references")
            .set(mode);
        true
    };
    match kind {
        FaultKind::SensorStuckAt { device, raw } => {
            set_mode(device, SensorFaultMode::StuckAt(*raw))
        }
        FaultKind::SensorGlitch { device, offset } => {
            set_mode(device, SensorFaultMode::Glitch { offset: *offset })
        }
        FaultKind::SensorDropout { device } => set_mode(device, SensorFaultMode::Dropout),
        FaultKind::SensorRestore { device } => set_mode(device, SensorFaultMode::Nominal),
        FaultKind::IpcDrop { count } => {
            stack.arm_ipc_fault(IpcFault::Drop, *count);
            true
        }
        FaultKind::IpcDelay { count, delay } => {
            stack.arm_ipc_fault(IpcFault::Delay(*delay), *count);
            true
        }
        FaultKind::IpcDuplicate { count } => {
            stack.arm_ipc_fault(IpcFault::Duplicate, *count);
            true
        }
        FaultKind::Crash { process } => stack.inject_crash(process),
        FaultKind::ClockSkew { advance } => {
            stack.skew_clock(*advance);
            true
        }
        FaultKind::CapChurn {
            op,
            arm_after_checks,
        } => match arm_after_checks {
            // Arming always "lands": whether the window is ever entered
            // again is the measurement, not the injection.
            Some(n) => {
                stack.arm_cap_churn(op, *n);
                true
            }
            None => stack.apply_cap_churn(op),
        },
        FaultKind::CrashStorm { .. } => {
            unreachable!("FaultPlan::new expands crash storms into Crash events")
        }
    }
}
