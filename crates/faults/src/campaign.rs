//! The campaign runner: plans × platforms, deterministically parallel.
//!
//! Cells are indexed plan-major (`plan_idx * platforms + platform_idx`)
//! and scheduled through `bas_fleet::run_cells`, which preserves index
//! order in its output no matter how many workers claim tickets. Each
//! *plan* gets one SplitMix64-derived seed shared by all three
//! platforms, so a plan's rows differ only by platform behavior, never
//! by sensor noise. The report therefore renders byte-identically at
//! any worker count.

use bas_core::engine::{PlatformKernel, ScenarioEngine};
use bas_core::platform::linux::LinuxStack;
use bas_core::platform::minix::MinixStack;
use bas_core::platform::sel4::Sel4Stack;
use bas_core::scenario::{Platform, Scenario, ScenarioConfig};
use bas_fleet::{instance_seed, run_cells, Json};
use bas_sim::time::SimDuration;

use crate::inject::install;
use crate::plan::FaultPlan;
use crate::score::{grade, Scorecard};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Root seed; per-plan seeds derive from it via SplitMix64.
    pub root_seed: u64,
    /// Virtual run length per cell.
    pub horizon: SimDuration,
    /// Worker threads (results are identical at any count).
    pub workers: usize,
    /// Platforms to sweep, in report order.
    pub platforms: Vec<Platform>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            root_seed: 42,
            horizon: SimDuration::from_mins(30),
            workers: 1,
            platforms: vec![Platform::Linux, Platform::Minix, Platform::Sel4],
        }
    }
}

/// The finished matrix.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Root seed the campaign derived per-plan seeds from.
    pub root_seed: u64,
    /// Virtual run length per cell, seconds.
    pub horizon_s: u64,
    /// Platform labels, in cell order.
    pub platforms: Vec<String>,
    /// Plan names, in cell order.
    pub plan_names: Vec<String>,
    /// One scorecard per (plan, platform), plan-major.
    pub cells: Vec<Scorecard>,
}

impl CampaignReport {
    /// Deterministic JSON form (no wall-clock, no environment).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str("bas-faults/v1".to_string())),
            ("root_seed", Json::UInt(self.root_seed)),
            ("horizon_s", Json::UInt(self.horizon_s)),
            (
                "platforms",
                Json::Arr(
                    self.platforms
                        .iter()
                        .map(|p| Json::Str(p.clone()))
                        .collect(),
                ),
            ),
            (
                "plans",
                Json::Arr(
                    self.plan_names
                        .iter()
                        .map(|p| Json::Str(p.clone()))
                        .collect(),
                ),
            ),
            (
                "cells",
                Json::Arr(self.cells.iter().map(Scorecard::to_json).collect()),
            ),
        ])
    }
}

fn run_cell<K: PlatformKernel>(
    plan: &FaultPlan,
    seed: u64,
    horizon: SimDuration,
    overrides: K::Overrides,
) -> Scorecard {
    let mut config = ScenarioConfig::quiet();
    config.seed = seed;
    let band_c = config.plant.band_c;
    let mut engine = ScenarioEngine::<K>::boot(&config, overrides);
    let log = install(&mut engine, plan);
    engine.run_for(horizon);
    grade(plan.name(), seed, &engine, &log, band_c)
}

/// Runs every plan on every configured platform and assembles the
/// matrix. Deterministic: same plans + same config ⇒ byte-identical
/// [`CampaignReport::to_json`] regardless of `workers`.
pub fn run_campaign(plans: &[FaultPlan], config: &CampaignConfig) -> CampaignReport {
    let nplat = config.platforms.len();
    let cells = run_cells(plans.len() * nplat, config.workers, |index| {
        let plan = &plans[index / nplat];
        let platform = config.platforms[index % nplat];
        let seed = instance_seed(config.root_seed, index / nplat);
        match platform {
            // Each platform runs in its native availability posture:
            // MINIX with its reincarnation-style supervisor (the
            // self-repair story the paper leans on), Linux and seL4 with
            // nothing — they have no supervisor to turn on.
            Platform::Minix => run_cell::<MinixStack>(
                plan,
                seed,
                config.horizon,
                bas_core::platform::minix::MinixOverrides {
                    supervise: true,
                    ..Default::default()
                },
            ),
            Platform::Linux => {
                run_cell::<LinuxStack>(plan, seed, config.horizon, Default::default())
            }
            Platform::Sel4 => run_cell::<Sel4Stack>(plan, seed, config.horizon, Default::default()),
        }
    });
    CampaignReport {
        root_seed: config.root_seed,
        horizon_s: config.horizon.as_secs(),
        platforms: config.platforms.iter().map(|p| p.to_string()).collect(),
        plan_names: plans.iter().map(|p| p.name().to_string()).collect(),
        cells,
    }
}
