//! The fault-schedule DSL: named, time-pinned, platform-agnostic.
//!
//! A [`FaultPlan`] is pure data — no RNG, no platform types — so the
//! same plan replays bit-identically on every platform and under any
//! worker count. Randomized campaigns derive per-plan seeds *outside*
//! the plan (see `campaign`); the plan itself is always explicit.

use bas_sim::caps::{CapChurnOp, ChurnKind};
use bas_sim::device::DeviceId;
use bas_sim::time::SimDuration;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The device's reads freeze at a fixed raw value (milli-degrees for
    /// the temperature sensor).
    SensorStuckAt {
        /// Device to corrupt.
        device: DeviceId,
        /// Raw value every read returns.
        raw: i64,
    },
    /// The device's reads gain a constant raw offset.
    SensorGlitch {
        /// Device to corrupt.
        device: DeviceId,
        /// Raw offset added to every read.
        offset: i64,
    },
    /// The device's reads freeze at the last good value.
    SensorDropout {
        /// Device to corrupt.
        device: DeviceId,
    },
    /// Clears any active sensor fault on the device.
    SensorRestore {
        /// Device to restore.
        device: DeviceId,
    },
    /// The next `count` application IPC sends vanish in transit.
    IpcDrop {
        /// Number of sends affected.
        count: u32,
    },
    /// The next `count` application IPC sends pay `delay` extra latency.
    IpcDelay {
        /// Number of sends affected.
        count: u32,
        /// Added in-transit latency per send.
        delay: SimDuration,
    },
    /// The next `count` application IPC sends are delivered twice where
    /// the transport can queue (absorbed, but traced, on pure rendezvous).
    IpcDuplicate {
        /// Number of sends affected.
        count: u32,
    },
    /// Kills the named process/thread outright. What happens next is the
    /// platform's own restart semantics: a supervised MINIX stack
    /// re-forks it, Linux and seL4 leave it dead.
    Crash {
        /// Process name (see `bas_core::proto::names`).
        process: String,
    },
    /// `times` crashes of the same process, `period` apart — expanded
    /// into plain [`FaultKind::Crash`] events at plan construction so
    /// the injector only ever sees primitive kinds.
    CrashStorm {
        /// Process name.
        process: String,
        /// Number of crashes (>= 1).
        times: u32,
        /// Gap between consecutive crashes.
        period: SimDuration,
    },
    /// Jumps the kernel clock forward — ticks the platform *lost*.
    ClockSkew {
        /// How far the clock jumps.
        advance: SimDuration,
    },
    /// Mutates live authority through the platform's capability-churn
    /// hook: a MINIX ACM row edit, an seL4 CDT sweep, a Linux mq chmod.
    CapChurn {
        /// The churn operation (kind, actor, subject, object — subject
        /// and object are scenario instance names).
        op: CapChurnOp,
        /// `None` applies the op at the scheduled tick. `Some(n)` *arms*
        /// it at the scheduled tick, to fire immediately after the n-th
        /// subsequent successful admission check by `op.subject` toward
        /// `op.object` — deterministically inside the check→use window.
        arm_after_checks: Option<u32>,
    },
}

impl FaultKind {
    /// Short label used in logs and reports.
    pub fn label(&self) -> String {
        match self {
            FaultKind::SensorStuckAt { device, raw } => format!("sensor_stuck_at {device} {raw}"),
            FaultKind::SensorGlitch { device, offset } => {
                format!("sensor_glitch {device} {offset:+}")
            }
            FaultKind::SensorDropout { device } => format!("sensor_dropout {device}"),
            FaultKind::SensorRestore { device } => format!("sensor_restore {device}"),
            FaultKind::IpcDrop { count } => format!("ipc_drop x{count}"),
            FaultKind::IpcDelay { count, delay } => {
                format!("ipc_delay x{count} +{}ms", delay.as_millis())
            }
            FaultKind::IpcDuplicate { count } => format!("ipc_duplicate x{count}"),
            FaultKind::Crash { process } => format!("crash {process}"),
            FaultKind::CrashStorm {
                process,
                times,
                period,
            } => format!("crash_storm {process} x{times}/{}s", period.as_secs()),
            FaultKind::ClockSkew { advance } => format!("clock_skew +{}s", advance.as_secs()),
            FaultKind::CapChurn {
                op,
                arm_after_checks,
            } => match arm_after_checks {
                Some(n) => format!("{} armed@{n}", op.label()),
                None => op.label(),
            },
        }
    }

    /// The device a sensor-fault kind targets, if any.
    pub fn sensor_device(&self) -> Option<DeviceId> {
        match self {
            FaultKind::SensorStuckAt { device, .. }
            | FaultKind::SensorGlitch { device, .. }
            | FaultKind::SensorDropout { device }
            | FaultKind::SensorRestore { device } => Some(*device),
            _ => None,
        }
    }
}

/// One fault pinned to a virtual time measured from boot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires (virtual time since boot; events quantize to
    /// the engine's lockstep chunk, firing at the first tick at-or-after
    /// this time).
    pub at: SimDuration,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Creates an event.
    pub fn new(at: SimDuration, kind: FaultKind) -> FaultEvent {
        FaultEvent { at, kind }
    }
}

/// A named, ordered fault schedule.
///
/// Construction normalizes the schedule: [`FaultKind::CrashStorm`]
/// expands into its individual crashes and events are stable-sorted by
/// time, so two plans describing the same faults compare (and replay)
/// identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    name: String,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Builds a plan, expanding crash storms and sorting events by time
    /// (stable: simultaneous events keep their authoring order).
    pub fn new(name: impl Into<String>, events: Vec<FaultEvent>) -> FaultPlan {
        let mut expanded = Vec::with_capacity(events.len());
        for ev in events {
            match ev.kind {
                FaultKind::CrashStorm {
                    process,
                    times,
                    period,
                } => {
                    for k in 0..times.max(1) {
                        expanded.push(FaultEvent::new(
                            ev.at + SimDuration::from_nanos(period.as_nanos() * k as u64),
                            FaultKind::Crash {
                                process: process.clone(),
                            },
                        ));
                    }
                }
                kind => expanded.push(FaultEvent::new(ev.at, kind)),
            }
        }
        expanded.sort_by_key(|e| e.at.as_nanos());
        FaultPlan {
            name: name.into(),
            events: expanded,
        }
    }

    /// The plan's name (report key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The normalized events, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Devices referenced by sensor faults, deduplicated and ordered —
    /// the set the injector must interpose.
    pub fn sensor_devices(&self) -> Vec<DeviceId> {
        let mut devs: Vec<DeviceId> = self
            .events
            .iter()
            .filter_map(|e| e.kind.sensor_device())
            .collect();
        devs.sort();
        devs.dedup();
        devs
    }

    /// Time of the last scheduled event (zero for an empty plan). Runs
    /// shorter than this cannot fire the whole plan.
    pub fn last_event_at(&self) -> SimDuration {
        self.events
            .last()
            .map(|e| e.at)
            .unwrap_or(SimDuration::from_nanos(0))
    }
}

/// The standard campaign: one nominal control row plus seven fault plans
/// covering every injector family. All events fall inside the first ten
/// minutes so both the full (30 min) and `--quick` (12 min) horizons
/// fire every plan completely.
pub fn standard_plans() -> Vec<FaultPlan> {
    use bas_core::proto::names;
    let s = SimDuration::from_secs;
    vec![
        FaultPlan::new("baseline", vec![]),
        FaultPlan::new(
            "sensor_stuck_hot",
            vec![
                // The sensor reports a wedged 30.00 °C for five minutes.
                FaultEvent::new(
                    s(300),
                    FaultKind::SensorStuckAt {
                        device: DeviceId::TEMP_SENSOR,
                        raw: 30_000,
                    },
                ),
                FaultEvent::new(
                    s(600),
                    FaultKind::SensorRestore {
                        device: DeviceId::TEMP_SENSOR,
                    },
                ),
            ],
        ),
        FaultPlan::new(
            "sensor_glitch",
            vec![
                // +5 °C calibration drift for five minutes.
                FaultEvent::new(
                    s(300),
                    FaultKind::SensorGlitch {
                        device: DeviceId::TEMP_SENSOR,
                        offset: 5_000,
                    },
                ),
                FaultEvent::new(
                    s(600),
                    FaultKind::SensorRestore {
                        device: DeviceId::TEMP_SENSOR,
                    },
                ),
            ],
        ),
        FaultPlan::new(
            "sensor_dropout",
            vec![
                // The sensor bus dies for five minutes; reads go stale.
                FaultEvent::new(
                    s(300),
                    FaultKind::SensorDropout {
                        device: DeviceId::TEMP_SENSOR,
                    },
                ),
                FaultEvent::new(
                    s(600),
                    FaultKind::SensorRestore {
                        device: DeviceId::TEMP_SENSOR,
                    },
                ),
            ],
        ),
        FaultPlan::new(
            "ipc_storm",
            vec![
                FaultEvent::new(s(240), FaultKind::IpcDrop { count: 50 }),
                FaultEvent::new(
                    s(300),
                    FaultKind::IpcDelay {
                        count: 50,
                        delay: SimDuration::from_millis(5),
                    },
                ),
                FaultEvent::new(s(360), FaultKind::IpcDuplicate { count: 50 }),
            ],
        ),
        FaultPlan::new(
            "heater_crash",
            vec![FaultEvent::new(
                s(180),
                FaultKind::Crash {
                    process: names::HEATER.to_string(),
                },
            )],
        ),
        FaultPlan::new(
            "crash_storm",
            vec![FaultEvent::new(
                s(180),
                FaultKind::CrashStorm {
                    process: names::HEATER.to_string(),
                    times: 3,
                    period: s(120),
                },
            )],
        ),
        FaultPlan::new(
            "clock_skew",
            vec![
                FaultEvent::new(s(300), FaultKind::ClockSkew { advance: s(30) }),
                FaultEvent::new(s(600), FaultKind::ClockSkew { advance: s(30) }),
            ],
        ),
        // Capability churn: the web interface's path to the controller is
        // revoked for five minutes, then re-granted. Microkernels cut the
        // channel cleanly; Linux only edits mode bits, and already-open
        // descriptors keep working — the stale-authority contrast
        // `bas-analysis::races` measures.
        FaultPlan::new(
            "cap_churn",
            vec![
                FaultEvent::new(
                    s(300),
                    FaultKind::CapChurn {
                        op: CapChurnOp::new(ChurnKind::Revoke, names::WEB, names::CONTROL),
                        arm_after_checks: None,
                    },
                ),
                FaultEvent::new(
                    s(600),
                    FaultKind::CapChurn {
                        op: CapChurnOp::new(ChurnKind::Grant, names::WEB, names::CONTROL),
                        arm_after_checks: None,
                    },
                ),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_storm_expands_and_sorts() {
        let plan = FaultPlan::new(
            "storm",
            vec![
                FaultEvent::new(SimDuration::from_secs(500), FaultKind::IpcDrop { count: 1 }),
                FaultEvent::new(
                    SimDuration::from_secs(100),
                    FaultKind::CrashStorm {
                        process: "p".into(),
                        times: 3,
                        period: SimDuration::from_secs(60),
                    },
                ),
            ],
        );
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_secs()).collect();
        assert_eq!(times, vec![100, 160, 220, 500]);
        assert_eq!(
            plan.events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::Crash { .. }))
                .count(),
            3
        );
        assert_eq!(plan.last_event_at().as_secs(), 500);
    }

    #[test]
    fn sensor_devices_deduplicated() {
        let plan = FaultPlan::new(
            "s",
            vec![
                FaultEvent::new(
                    SimDuration::from_secs(1),
                    FaultKind::SensorDropout {
                        device: DeviceId::TEMP_SENSOR,
                    },
                ),
                FaultEvent::new(
                    SimDuration::from_secs(2),
                    FaultKind::SensorRestore {
                        device: DeviceId::TEMP_SENSOR,
                    },
                ),
            ],
        );
        assert_eq!(plan.sensor_devices(), vec![DeviceId::TEMP_SENSOR]);
    }

    #[test]
    fn standard_plans_fit_the_quick_horizon() {
        let plans = standard_plans();
        assert!(plans.len() >= 7, "at least 6 fault plans plus baseline");
        for p in &plans {
            assert!(
                p.last_event_at() <= SimDuration::from_mins(11),
                "{} schedules past the quick horizon",
                p.name()
            );
        }
        // Names are unique (they key the report).
        let mut names: Vec<&str> = plans.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), plans.len());
    }
}
