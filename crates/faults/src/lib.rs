//! # bas-faults — deterministic fault-schedule DSL and campaign runner
//!
//! The paper's availability argument (§IV-D, attackers A2/A3) rests on
//! how each platform *degrades and recovers* under component failure —
//! MINIX's reincarnation-server pedigree is why its authors chose it.
//! The HIL-testbed and OT-attack-survey literature both stress that a
//! realistic BAS evaluation needs *repeatable* sensor/actuator/comms
//! fault campaigns, not single hand-picked crashes. This crate supplies
//! them:
//!
//! - [`plan`] — the schedule DSL: a [`FaultPlan`] is a named list of
//!   [`FaultEvent`]s (sensor stuck-at/glitch/dropout, IPC
//!   drop/delay/duplication, process crash and crash-storm, clock-tick
//!   skew), each pinned to a virtual time from boot.
//! - [`inject`] — installs a plan on a booted
//!   [`ScenarioEngine`](bas_core::engine::ScenarioEngine): sensor faults
//!   via `DeviceBus::interpose` wrappers, everything else through the
//!   `PlatformKernel` fault hooks, all driven by the engine's lockstep
//!   tick hook. Every fired event lands in an [`InjectionLog`].
//! - [`score`] — the degradation [`Scorecard`]: safety held, worst
//!   alarm latency, out-of-band seconds, recovery time, processes
//!   restarted.
//! - [`campaign`] — sweeps plans × platforms through
//!   `bas_fleet::run_cells` with SplitMix64-derived per-plan seeds;
//!   the report is byte-identical at any worker count.
//! - [`recovery`] — the A3 recovery experiment (heater-driver crash)
//!   expressed as a plan, runnable on *all three* platforms.
//!
//! Faults are injected at the kernel-adapter boundary, after each
//! platform's access-control gate, so a fault can degrade authorized
//! interactions but can never manufacture authority (see `DESIGN.md`).

pub mod campaign;
pub mod inject;
pub mod plan;
pub mod recovery;
pub mod score;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use inject::{install, FiredEvent, InjectionLog};
pub use plan::{standard_plans, FaultEvent, FaultKind, FaultPlan};
pub use recovery::{crash_plan, run_recovery, RecoveryOutcome};
pub use score::Scorecard;
