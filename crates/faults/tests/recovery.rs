//! Regression tests for the multi-platform recovery experiment: the
//! platform argument must be honored (the old `exp_recovery` silently
//! ran MINIX whatever `--platform` said).

use bas_core::scenario::Platform;
use bas_faults::run_recovery;

#[test]
fn linux_run_reports_linux_and_differs_from_supervised_minix() {
    let linux = run_recovery(Platform::Linux, false, true);
    assert_eq!(linux.platform, Platform::Linux);
    assert!(!linux.supervised);
    // No supervisor: the crashed heater driver stays dead.
    assert!(!linux.critical_alive);

    let minix = run_recovery(Platform::Minix, true, true);
    assert_eq!(minix.platform, Platform::Minix);
    assert!(minix.supervised);
    // The supervisor re-forked the driver and the system recovered.
    assert!(minix.critical_alive);
    assert!(
        minix.processes_created > linux.processes_created,
        "re-fork must show up in process accounting"
    );
    assert_ne!(
        linux.timeline, minix.timeline,
        "a dead driver and a re-forked one cannot trace identically"
    );
}

#[test]
fn sel4_run_reports_sel4() {
    let sel4 = run_recovery(Platform::Sel4, false, true);
    assert_eq!(sel4.platform, Platform::Sel4);
    assert!(
        !sel4.critical_alive,
        "static system: nothing restarts the driver"
    );
}

#[test]
#[should_panic(expected = "supervised recovery only exists on MINIX")]
fn supervision_outside_minix_fails_fast() {
    let _ = run_recovery(Platform::Linux, true, true);
}
