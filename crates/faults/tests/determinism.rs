//! Campaign determinism: the rendered report is byte-identical no matter
//! how many workers claim cells, because cell order, per-plan seeds, and
//! every kernel are deterministic.

use bas_core::proto::names;
use bas_faults::campaign::{run_campaign, CampaignConfig};
use bas_faults::plan::{FaultEvent, FaultKind, FaultPlan};
use bas_sim::caps::{CapChurnOp, ChurnKind};
use bas_sim::device::DeviceId;
use bas_sim::time::SimDuration;

fn small_plans() -> Vec<FaultPlan> {
    let s = SimDuration::from_secs;
    vec![
        FaultPlan::new(
            "dropout",
            vec![
                FaultEvent::new(
                    s(60),
                    FaultKind::SensorDropout {
                        device: DeviceId::TEMP_SENSOR,
                    },
                ),
                FaultEvent::new(
                    s(120),
                    FaultKind::SensorRestore {
                        device: DeviceId::TEMP_SENSOR,
                    },
                ),
            ],
        ),
        FaultPlan::new(
            "ipc_mix",
            vec![
                FaultEvent::new(s(60), FaultKind::IpcDrop { count: 10 }),
                FaultEvent::new(s(90), FaultKind::IpcDuplicate { count: 10 }),
            ],
        ),
        FaultPlan::new(
            "crash",
            vec![FaultEvent::new(
                s(60),
                FaultKind::Crash {
                    process: names::HEATER.to_string(),
                },
            )],
        ),
        // Churn schedules must replay as deterministically as every other
        // fault family: a timed revoke, an armed revoke sitting inside
        // the admission window, and a regrant.
        FaultPlan::new(
            "cap_churn",
            vec![
                FaultEvent::new(
                    s(60),
                    FaultKind::CapChurn {
                        op: CapChurnOp::new(ChurnKind::Revoke, names::WEB, names::CONTROL),
                        arm_after_checks: None,
                    },
                ),
                FaultEvent::new(
                    s(90),
                    FaultKind::CapChurn {
                        op: CapChurnOp::new(ChurnKind::Grant, names::WEB, names::CONTROL),
                        arm_after_checks: None,
                    },
                ),
                FaultEvent::new(
                    s(120),
                    FaultKind::CapChurn {
                        op: CapChurnOp::new(ChurnKind::Revoke, names::SENSOR, names::CONTROL),
                        arm_after_checks: Some(2),
                    },
                ),
            ],
        ),
    ]
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let plans = small_plans();
    let render = |workers: usize| {
        let config = CampaignConfig {
            root_seed: 7,
            horizon: SimDuration::from_mins(4),
            workers,
            ..CampaignConfig::default()
        };
        run_campaign(&plans, &config).to_json().render()
    };
    let one = render(1);
    assert_eq!(one, render(2), "1 vs 2 workers");
    assert_eq!(one, render(4), "1 vs 4 workers");
    // Sanity: the report actually covers the full matrix.
    assert!(one.contains("\"cells\""));
    assert_eq!(one.matches("\"plan\"").count(), 4 * 3, "one per cell");
}

#[test]
fn per_plan_seeds_are_shared_across_platforms() {
    let plans = small_plans();
    let config = CampaignConfig {
        root_seed: 7,
        horizon: SimDuration::from_mins(2),
        workers: 2,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&plans, &config);
    let nplat = config.platforms.len();
    for (p, plan) in plans.iter().enumerate() {
        let row = &report.cells[p * nplat..(p + 1) * nplat];
        assert!(
            row.windows(2).all(|w| w[0].seed == w[1].seed),
            "plan {} rows must share one seed",
            plan.name()
        );
        assert!(row.iter().all(|c| c.plan == plan.name()));
    }
    // Different plans draw different seeds from the root.
    assert_ne!(report.cells[0].seed, report.cells[nplat].seed);
}
