//! Schedule fidelity: every event in a plan fires exactly once, in plan
//! order, at the first lockstep tick at or after its scheduled time —
//! on all three platforms.

use bas_core::engine::{PlatformKernel, ScenarioEngine};
use bas_core::platform::linux::LinuxStack;
use bas_core::platform::minix::MinixStack;
use bas_core::platform::sel4::Sel4Stack;
use bas_core::proto::names;
use bas_core::scenario::{Scenario, ScenarioConfig};
use bas_faults::inject::{install, FiredEvent};
use bas_faults::plan::{FaultEvent, FaultKind, FaultPlan};
use bas_sim::device::DeviceId;
use bas_sim::time::SimDuration;
use proptest::prelude::*;

fn run_plan<K: PlatformKernel>(plan: &FaultPlan, horizon: SimDuration) -> Vec<FiredEvent> {
    let config = ScenarioConfig::quiet();
    let mut engine = ScenarioEngine::<K>::boot(&config, Default::default());
    let log = install(&mut engine, plan);
    engine.run_for(horizon);
    log.fired()
}

/// Kinds that do not move the kernel clock, so the tick-quantization
/// bound below stays tight. Clock skew gets its own test.
fn arb_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        (20_000i64..30_000).prop_map(|raw| FaultKind::SensorStuckAt {
            device: DeviceId::TEMP_SENSOR,
            raw,
        }),
        (-3_000i64..3_000).prop_map(|offset| FaultKind::SensorGlitch {
            device: DeviceId::TEMP_SENSOR,
            offset,
        }),
        Just(FaultKind::SensorDropout {
            device: DeviceId::TEMP_SENSOR,
        }),
        Just(FaultKind::SensorRestore {
            device: DeviceId::TEMP_SENSOR,
        }),
        (1u32..5).prop_map(|count| FaultKind::IpcDrop { count }),
        (1u32..4).prop_map(|count| FaultKind::IpcDelay {
            count,
            delay: SimDuration::from_millis(2),
        }),
        (1u32..5).prop_map(|count| FaultKind::IpcDuplicate { count }),
        Just(FaultKind::Crash {
            process: names::HEATER.to_string(),
        }),
    ]
}

proptest! {
    /// Random plans replay with full fidelity everywhere: one firing per
    /// event, in order, within two lockstep chunks of the scheduled time.
    #[test]
    fn every_event_fires_exactly_once_on_every_platform(
        raw_events in prop::collection::vec((5u64..25, arb_kind()), 1..5),
    ) {
        let plan = FaultPlan::new(
            "random",
            raw_events
                .into_iter()
                .map(|(at_s, kind)| FaultEvent::new(SimDuration::from_secs(at_s), kind))
                .collect(),
        );
        let horizon = SimDuration::from_secs(30);
        let chunk = ScenarioConfig::quiet().lockstep_chunk;
        for (platform, fired) in [
            ("linux", run_plan::<LinuxStack>(&plan, horizon)),
            ("minix", run_plan::<MinixStack>(&plan, horizon)),
            ("sel4", run_plan::<Sel4Stack>(&plan, horizon)),
        ] {
            prop_assert_eq!(
                fired.len(),
                plan.events().len(),
                "{}: every event fires exactly once",
                platform
            );
            for (i, (f, ev)) in fired.iter().zip(plan.events()).enumerate() {
                prop_assert_eq!(f.index, i, "{}: plan order preserved", platform);
                prop_assert_eq!(f.scheduled, ev.at);
                let applied = f.applied_at.as_nanos();
                prop_assert!(applied >= ev.at.as_nanos(), "{}: fired early", platform);
                prop_assert!(
                    applied - ev.at.as_nanos() <= 2 * chunk.as_nanos(),
                    "{}: event {} drifted {}ns past its tick",
                    platform,
                    i,
                    applied - ev.at.as_nanos()
                );
            }
        }
    }
}

/// Clock skew fires once too, and events scheduled beyond the jump still
/// fire (the injector compares against the skewed clock).
#[test]
fn clock_skew_fires_once_and_later_events_survive() {
    let plan = FaultPlan::new(
        "skew",
        vec![
            FaultEvent::new(
                SimDuration::from_secs(5),
                FaultKind::ClockSkew {
                    advance: SimDuration::from_secs(10),
                },
            ),
            FaultEvent::new(
                SimDuration::from_secs(20),
                FaultKind::Crash {
                    process: names::HEATER.to_string(),
                },
            ),
        ],
    );
    for (platform, fired) in [
        (
            "linux",
            run_plan::<LinuxStack>(&plan, SimDuration::from_secs(30)),
        ),
        (
            "minix",
            run_plan::<MinixStack>(&plan, SimDuration::from_secs(30)),
        ),
        (
            "sel4",
            run_plan::<Sel4Stack>(&plan, SimDuration::from_secs(30)),
        ),
    ] {
        assert_eq!(fired.len(), 2, "{platform}: both events fire");
        assert!(fired[1].hit, "{platform}: post-skew crash still lands");
        assert!(
            fired[1].applied_at.as_nanos() >= SimDuration::from_secs(20).as_nanos(),
            "{platform}: post-skew event respects its schedule"
        );
    }
}

/// A crash aimed at a name nobody bears is reported as a miss, not an
/// error — the campaign scorecard records it as `hit: false`.
#[test]
fn crash_against_unknown_name_is_a_recorded_miss() {
    let plan = FaultPlan::new(
        "miss",
        vec![FaultEvent::new(
            SimDuration::from_secs(5),
            FaultKind::Crash {
                process: "no_such_process".to_string(),
            },
        )],
    );
    let fired = run_plan::<MinixStack>(&plan, SimDuration::from_secs(10));
    assert_eq!(fired.len(), 1);
    assert!(!fired[0].hit);
}
