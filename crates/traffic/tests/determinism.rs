//! The E18 determinism guard: the traffic report must be byte-identical
//! at any worker count — thread scheduling decides *when* an instance
//! computes, never *what* it computes.

use bas_core::logic::traffic::TrafficProfile;
use bas_core::scenario::Platform;
use bas_fleet::WorkerPool;
use bas_sim::time::{SimDuration, SimTime};
use bas_traffic::{run_traffic, TrafficConfig};

/// A small but non-trivial mixed run: 2-tenant sessions on six benign
/// instances plus a deterministic attacker slice, short horizons.
fn quick_config(platform: Platform, workers: usize) -> TrafficConfig {
    let mut config = TrafficConfig::new(platform, 8, workers);
    config.profile = TrafficProfile {
        duration: SimDuration::from_secs(60),
        tenants: 2,
        mean_interarrival_s: 3.0,
        ..TrafficProfile::default()
    };
    config.horizon = (config.profile.start - SimTime::ZERO)
        + config.profile.duration
        + SimDuration::from_secs(30);
    config.attacker_fraction = 0.3;
    config.attack_run.warmup = SimDuration::from_secs(60);
    config.attack_run.window = SimDuration::from_secs(120);
    config.attack_run.cooldown = SimDuration::from_secs(30);
    config
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let pool = WorkerPool::new(4);
    let mut reference: Option<String> = None;
    for workers in [1usize, 2, 4] {
        let run = run_traffic(&pool, &quick_config(Platform::Minix, workers));
        let json = run.report.to_json();
        match &reference {
            None => {
                // The run must actually exercise both halves of the
                // front-end, or byte-equality proves nothing.
                assert!(run.report.benign_instances > 0, "no benign instances");
                assert!(run.report.attacker_instances > 0, "no attacker instances");
                assert!(
                    run.report.fleet.totals.requests > 0,
                    "no requests completed"
                );
                reference = Some(json);
            }
            Some(reference) => assert_eq!(
                reference, &json,
                "traffic report must not depend on worker count ({workers} workers)"
            ),
        }
    }
}

#[test]
fn benign_traffic_completes_cleanly() {
    let pool = WorkerPool::new(2);
    let mut config = quick_config(Platform::Minix, 2);
    config.instances = 4;
    config.attacker_fraction = 0.0;
    let run = run_traffic(&pool, &config);
    let report = &run.report;
    assert_eq!(report.attacker_instances, 0);
    assert_eq!(report.benign_instances, 4);
    // In-band tenant traffic must neither fail nor trip the oracle.
    assert!(report.fleet.totals.requests > 0);
    assert_eq!(
        report.fleet.totals.requests,
        report.fleet.totals.requests_ok
    );
    assert_eq!(report.fleet.totals.safety_violations, 0);
    assert_eq!(report.fleet.totals.critical_losses, 0);
    // Percentiles are ordered and the histogram accounts every sample.
    let p50 = report.latency_percentile(0.50);
    let p99 = report.latency_percentile(0.99);
    assert!(p50 <= p99);
    let hist = &report.fleet.request_latency;
    assert_eq!(
        hist.counts.iter().sum::<u64>() + hist.overflow,
        hist.samples
    );
    assert_eq!(hist.invalid, 0);
    assert_eq!(hist.samples, report.fleet.totals.requests);
    // Attack lanes are present (all zero) so the JSON shape is stable.
    assert!(run.report.attacks.iter().all(|l| l.instances == 0));
}
