//! # bas-traffic — the E18 multi-tenant traffic front-end
//!
//! Replays heavy mixed traffic against a fleet of building controllers
//! and measures what the paper's §III performance remark only gestures
//! at: request latency, sustained throughput, and kernel backpressure
//! under multi-tenant load, with attack campaigns running on a slice of
//! the fleet at the same time.
//!
//! The pipeline is deterministic end to end:
//!
//! 1. **Role assignment** — each instance index is independently marked
//!    benign or attacker from its own SplitMix64 stream
//!    ([`assign_roles`]); attackers draw their attack from
//!    [`AttackId::TRAFFIC_MIX`] (weights grounded in dos Santos et al.,
//!    arXiv:1912.02480).
//! 2. **Benign sub-fleet** — the benign indices run through the fleet
//!    engine with [`TrafficProfile`] tenant sessions compiled into
//!    per-instance schedules (open loop: arrivals never depend on
//!    completions), on the snapshot/fork boot path.
//! 3. **Attacker sessions** — each attacker index runs its drawn attack
//!    through the `bas-attack` harness with a seed derived from the
//!    *original* fleet index.
//!
//! Every simulation outcome in the [`TrafficReport`] is a pure function
//! of `(config, root_seed)` — byte-identical JSON at any worker count —
//! while wall-clock throughput lives in [`TrafficWall`].

use std::time::Instant;

use bas_attack::harness::{run_attack, AttackRunConfig};
use bas_attack::model::{AttackId, AttackerModel};
use bas_core::logic::traffic::TrafficProfile;
use bas_core::scenario::Platform;
use bas_fleet::{
    instance_seed, run_cells, run_fleet_with, BootMode, FleetConfig, FleetReport, Json, WallStats,
    WorkerPool,
};
use bas_sim::rng::SimRng;
use bas_sim::time::SimDuration;

/// Decorrelates role assignment from the instance simulation streams.
const ROLE_SALT: u64 = 0x7e18_401e_5a17_0001;

/// Decorrelates attacker-session seeds from benign instance seeds.
const ATTACK_SALT: u64 = 0x7e18_a77a_c4ed_5eed;

/// What one fleet index does for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Runs tenant sessions from the traffic profile.
    Benign,
    /// Runs the drawn attack through the attack harness.
    Attacker(AttackId),
}

/// Configuration of one traffic run.
#[derive(Clone)]
pub struct TrafficConfig {
    /// Platform every instance runs on.
    pub platform: Platform,
    /// Total fleet size (benign + attacker instances).
    pub instances: usize,
    /// Worker threads for both the fleet and the attack sessions.
    pub workers: usize,
    /// Root seed; everything derives from it and the instance index.
    pub root_seed: u64,
    /// Simulated horizon per benign instance. Must cover
    /// `profile.start + profile.duration` plus drain time, or late
    /// arrivals never complete.
    pub horizon: SimDuration,
    /// The tenant population every benign instance carries.
    pub profile: TrafficProfile,
    /// Probability that an index is an attacker (0 = all benign).
    pub attacker_fraction: f64,
    /// Attacker model for every attack session.
    pub attacker: AttackerModel,
    /// Timing template for attack sessions (the scenario seed is
    /// overwritten per instance).
    pub attack_run: AttackRunConfig,
    /// How benign instances boot.
    pub boot: BootMode,
}

impl TrafficConfig {
    /// A benign-only run with the default four-tenant profile: horizon
    /// covers the sessions plus 60 s of drain.
    pub fn new(platform: Platform, instances: usize, workers: usize) -> TrafficConfig {
        let profile = TrafficProfile::default();
        let horizon = (profile.start - bas_sim::time::SimTime::ZERO)
            + profile.duration
            + SimDuration::from_secs(60);
        TrafficConfig {
            platform,
            instances,
            workers,
            root_seed: 42,
            horizon,
            profile,
            attacker_fraction: 0.0,
            attacker: AttackerModel::ArbitraryCode,
            attack_run: AttackRunConfig::default(),
            boot: BootMode::default(),
        }
    }
}

/// Draws one attack from [`AttackId::TRAFFIC_MIX`] by cumulative weight.
fn sample_mix(rng: &mut SimRng) -> AttackId {
    let total: f64 = AttackId::TRAFFIC_MIX.iter().map(|&(_, w)| w).sum();
    let mut u = rng.uniform() * total;
    for &(attack, w) in &AttackId::TRAFFIC_MIX {
        if u < w {
            return attack;
        }
        u -= w;
    }
    AttackId::TRAFFIC_MIX[AttackId::TRAFFIC_MIX.len() - 1].0
}

/// Assigns every fleet index a role, each from its own derived stream —
/// a pure function of `(root_seed, attacker_fraction, index)`, so the
/// split never depends on worker count or iteration order.
pub fn assign_roles(config: &TrafficConfig) -> Vec<Role> {
    (0..config.instances)
        .map(|index| {
            let mut rng = SimRng::seed_from(instance_seed(config.root_seed ^ ROLE_SALT, index));
            if rng.chance(config.attacker_fraction) {
                Role::Attacker(sample_mix(&mut rng))
            } else {
                Role::Benign
            }
        })
        .collect()
}

/// Per-attack aggregate over the attacker slice, in
/// [`AttackId::TRAFFIC_MIX`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackLane {
    /// The attack.
    pub attack: AttackId,
    /// Attacker instances that drew this attack.
    pub instances: usize,
    /// Runs where the kernel accepted the malicious operations.
    pub mechanism_succeeded: usize,
    /// Runs that violated safety or lost a critical process.
    pub compromised: usize,
}

/// The deterministic outcome of a traffic run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Platform every instance ran on.
    pub platform: Platform,
    /// Root seed of the run.
    pub root_seed: u64,
    /// Total fleet size.
    pub instances: usize,
    /// Indices assigned tenant sessions.
    pub benign_instances: usize,
    /// Indices assigned attack sessions.
    pub attacker_instances: usize,
    /// The tenant population profile.
    pub profile: TrafficProfile,
    /// Benign sub-fleet outcome (request stats ride in
    /// `fleet.totals.requests*` and `fleet.request_latency`).
    pub fleet: FleetReport,
    /// Attack outcomes, one lane per mix entry (zero-instance lanes
    /// included so the JSON shape is load-independent).
    pub attacks: Vec<AttackLane>,
}

impl TrafficReport {
    /// Request latency at quantile `p`, seconds (0 when no requests).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        self.fleet.request_latency.percentile(p)
    }

    /// Renders the report as deterministic JSON. The benign fleet's
    /// per-instance array is *not* embedded (a 1 000-instance run would
    /// drown the summary); its totals and merged latency histogram are.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The report as a [`Json`] tree.
    pub fn to_json_value(&self) -> Json {
        let arrival = match self.profile.arrival {
            bas_core::logic::traffic::ArrivalProcess::Poisson => "poisson",
            bas_core::logic::traffic::ArrivalProcess::Uniform => "uniform",
        };
        Json::obj(vec![
            ("schema", Json::Str("bas-traffic-report/v1".into())),
            ("platform", Json::Str(self.platform.to_string())),
            ("root_seed", Json::UInt(self.root_seed)),
            ("instances", Json::UInt(self.instances as u64)),
            ("benign_instances", Json::UInt(self.benign_instances as u64)),
            (
                "attacker_instances",
                Json::UInt(self.attacker_instances as u64),
            ),
            (
                "profile",
                Json::obj(vec![
                    ("tenants", Json::UInt(self.profile.tenants as u64)),
                    (
                        "mean_interarrival_s",
                        Json::Num(self.profile.mean_interarrival_s),
                    ),
                    ("arrival", Json::Str(arrival.into())),
                    ("write_fraction", Json::Num(self.profile.write_fraction)),
                    ("duration_s", Json::Num(self.profile.duration.as_secs_f64())),
                    (
                        "expected_requests_per_instance",
                        Json::Num(self.profile.expected_requests()),
                    ),
                ]),
            ),
            ("requests", Json::UInt(self.fleet.totals.requests)),
            ("requests_ok", Json::UInt(self.fleet.totals.requests_ok)),
            (
                "latency_ms",
                Json::obj(vec![
                    ("p50", Json::Num(self.latency_percentile(0.50) * 1e3)),
                    ("p95", Json::Num(self.latency_percentile(0.95) * 1e3)),
                    ("p99", Json::Num(self.latency_percentile(0.99) * 1e3)),
                    ("mean", Json::Num(self.fleet.request_latency.mean_s() * 1e3)),
                    ("max", Json::Num(self.fleet.request_latency.max_s * 1e3)),
                ]),
            ),
            ("ipc_waits", Json::UInt(self.fleet.totals.ipc_waits)),
            ("ipc_messages", Json::UInt(self.fleet.totals.ipc_messages)),
            (
                "safety_violations",
                Json::UInt(self.fleet.totals.safety_violations as u64),
            ),
            (
                "critical_losses",
                Json::UInt(self.fleet.totals.critical_losses as u64),
            ),
            ("request_latency", self.fleet.request_latency.to_json()),
            (
                "attacks",
                Json::Arr(
                    self.attacks
                        .iter()
                        .map(|lane| {
                            Json::obj(vec![
                                ("attack", Json::Str(lane.attack.to_string())),
                                ("instances", Json::UInt(lane.instances as u64)),
                                (
                                    "mechanism_succeeded",
                                    Json::UInt(lane.mechanism_succeeded as u64),
                                ),
                                ("compromised", Json::UInt(lane.compromised as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Wall-clock throughput of one traffic run (varies run to run; kept
/// out of [`TrafficReport`] so the report stays deterministic).
#[derive(Debug, Clone)]
pub struct TrafficWall {
    /// Benign sub-fleet wall stats ([`WallStats::requests_per_wall_second`]
    /// is the E18 headline).
    pub benign: WallStats,
    /// Wall seconds the attack sessions took (0 with no attackers).
    pub attack_wall_seconds: f64,
}

/// A completed traffic run.
#[derive(Debug, Clone)]
pub struct TrafficRun {
    /// Deterministic outcome.
    pub report: TrafficReport,
    /// Wall-clock throughput.
    pub wall: TrafficWall,
}

/// Runs the whole front-end: role split, benign sub-fleet under load,
/// attacker sessions, one merged report.
pub fn run_traffic(pool: &WorkerPool, config: &TrafficConfig) -> TrafficRun {
    let roles = assign_roles(config);
    let attackers: Vec<(usize, AttackId)> = roles
        .iter()
        .enumerate()
        .filter_map(|(i, r)| match r {
            Role::Benign => None,
            Role::Attacker(a) => Some((i, *a)),
        })
        .collect();
    let benign_instances = config.instances - attackers.len();

    // Benign sub-fleet: contiguous fleet indices 0..benign; the tenant
    // schedules derive from the fleet's own instance seeds, so the
    // sub-fleet is a pure function of (config, root_seed).
    let (fleet, benign_wall) = if benign_instances == 0 {
        (
            FleetReport::aggregate(config.platform, config.root_seed, None, Vec::new()),
            WallStats {
                workers: 0,
                batch_size: 0,
                wall_seconds: 0.0,
                sim_seconds_per_wall_second: 0.0,
                ipc_messages_per_wall_second: 0.0,
                requests_per_wall_second: 0.0,
                worker_utilization: Vec::new(),
            },
        )
    } else {
        let mut fleet_cfg = FleetConfig::benign(config.platform, benign_instances, config.workers);
        fleet_cfg.root_seed = config.root_seed;
        fleet_cfg.horizon = config.horizon;
        fleet_cfg.boot = config.boot;
        fleet_cfg.template.traffic = Some(config.profile.clone());
        let run = run_fleet_with(pool, &fleet_cfg);
        (run.report, run.wall)
    };

    // Attacker sessions: one attack run per attacker index, seeded from
    // the original index so adding/removing benign instances elsewhere
    // never reshuffles an attacker's stream.
    let t0 = Instant::now();
    let outcomes = run_cells(attackers.len(), config.workers.max(1), |j| {
        let (index, attack) = attackers[j];
        let mut run = config.attack_run.clone();
        run.scenario.seed = instance_seed(config.root_seed ^ ATTACK_SALT, index);
        let outcome = run_attack(config.platform, config.attacker, attack, &run);
        (attack, outcome.mechanism.succeeded(), outcome.compromised())
    });
    let attack_wall_seconds = if attackers.is_empty() {
        0.0
    } else {
        t0.elapsed().as_secs_f64()
    };

    let mut attacks: Vec<AttackLane> = AttackId::TRAFFIC_MIX
        .iter()
        .map(|&(attack, _)| AttackLane {
            attack,
            instances: 0,
            mechanism_succeeded: 0,
            compromised: 0,
        })
        .collect();
    for (attack, mech, comp) in outcomes {
        let lane = attacks
            .iter_mut()
            .find(|l| l.attack == attack)
            .expect("every drawn attack is in the mix");
        lane.instances += 1;
        if mech {
            lane.mechanism_succeeded += 1;
        }
        if comp {
            lane.compromised += 1;
        }
    }

    TrafficRun {
        report: TrafficReport {
            platform: config.platform,
            root_seed: config.root_seed,
            instances: config.instances,
            benign_instances,
            attacker_instances: attackers.len(),
            profile: config.profile.clone(),
            fleet,
            attacks,
        },
        wall: TrafficWall {
            benign: benign_wall,
            attack_wall_seconds,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_are_deterministic_and_track_the_fraction() {
        let mut config = TrafficConfig::new(Platform::Minix, 400, 2);
        config.attacker_fraction = 0.25;
        let roles = assign_roles(&config);
        assert_eq!(roles, assign_roles(&config));
        let attackers = roles
            .iter()
            .filter(|r| matches!(r, Role::Attacker(_)))
            .count();
        assert!(
            (50..=150).contains(&attackers),
            "{attackers} attackers out of 400 at fraction 0.25"
        );
        // Every drawn attack must come from the mix.
        for r in &roles {
            if let Role::Attacker(a) = r {
                assert!(AttackId::TRAFFIC_MIX.iter().any(|&(m, _)| m == *a));
            }
        }
    }

    #[test]
    fn role_salt_decorrelates_roles_from_benign_seeds() {
        let mut config = TrafficConfig::new(Platform::Minix, 64, 1);
        config.attacker_fraction = 0.5;
        config.root_seed = 7;
        let a = assign_roles(&config);
        config.root_seed = 8;
        let b = assign_roles(&config);
        assert_ne!(a, b, "root seed must reshuffle the role split");
    }

    #[test]
    fn mix_sampler_covers_every_lane() {
        let mut rng = SimRng::seed_from(0xfeed);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..2000 {
            seen.insert(format!("{}", sample_mix(&mut rng)));
        }
        assert_eq!(seen.len(), AttackId::TRAFFIC_MIX.len());
    }
}
