//! The seL4 system-call interface.
//!
//! §III-C: "The pair seL4_Send and seL4_Recv will send and receive
//! messages, but they will block if no other process is ready [...]
//! seL4_NBSend and seL4_NBRecv are non-blocking variants [...] If a thread
//! is given grant access to an endpoint it can use seL4_Call [...] The
//! receiving thread of a message with a reply capability can use
//! seL4_Reply to send a reply message."

use bas_sim::time::{SimDuration, SimTime};

use crate::cap::CPtr;
use crate::error::Sel4Error;
use crate::message::{DeliveredMessage, IpcMessage};
use crate::objects::ObjKind;
use serde::{Deserialize, Serialize};

/// Object kinds creatable from untyped memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetypeKind {
    /// An IPC endpoint (16 modeled bytes).
    Endpoint,
    /// A notification object (16 modeled bytes).
    Notification,
}

impl RetypeKind {
    /// Modeled size charged against the untyped region.
    pub const fn size_bytes(self) -> usize {
        16
    }
}

/// A system call trapped to the seL4 kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// `seL4_Send`: blocking send through an endpoint capability.
    Send {
        /// Endpoint capability (needs `write`).
        ep: CPtr,
        /// The message.
        msg: IpcMessage,
    },
    /// `seL4_NBSend`: non-blocking send; silently *dropped* by real seL4
    /// when nobody is waiting — the model returns [`Sel4Error::NotReady`]
    /// so tests can observe the distinction, but no rendezvous occurs.
    NBSend {
        /// Endpoint capability (needs `write`).
        ep: CPtr,
        /// The message.
        msg: IpcMessage,
    },
    /// `seL4_Recv`: blocking receive through an endpoint capability
    /// (needs `read`).
    Recv {
        /// Endpoint capability.
        ep: CPtr,
    },
    /// `seL4_NBRecv`: non-blocking receive.
    NBRecv {
        /// Endpoint capability.
        ep: CPtr,
    },
    /// `seL4_Call`: atomic send + attach one-shot reply capability +
    /// await reply. Needs `write` and `grant`.
    Call {
        /// Endpoint capability.
        ep: CPtr,
        /// The request message.
        msg: IpcMessage,
    },
    /// `seL4_Reply`: consume the implicit reply capability and answer the
    /// last `Call` received.
    Reply {
        /// The reply message.
        msg: IpcMessage,
    },
    /// `seL4_Signal` on a notification capability (needs `write`).
    Signal {
        /// Notification capability.
        ntfn: CPtr,
    },
    /// `seL4_Wait` on a notification capability (needs `read`).
    Wait {
        /// Notification capability.
        ntfn: CPtr,
    },
    /// `seL4_CNode_Mint`-style derivation: copy the capability at `src`
    /// into a free slot with diminished rights and a new badge.
    Mint {
        /// Source slot in the caller's own CSpace.
        src: CPtr,
        /// Rights for the derived capability (must be a subset).
        rights: crate::rights::CapRights,
        /// New badge.
        badge: u64,
    },
    /// `seL4_CNode_Delete`: clear one of the caller's own slots.
    Delete {
        /// Slot to clear.
        slot: CPtr,
    },
    /// Probe a slot: returns the object kind if a capability is present.
    /// (Models `seL4_CNode` introspection; the §IV-D.3 brute-force program
    /// uses this plus invocation attempts.)
    Identify {
        /// Slot to probe.
        slot: CPtr,
    },
    /// `seL4_TCB_Suspend`: stop a thread. Needs a TCB capability with
    /// `write` — the reason the compromised web interface "never could
    /// [...] kill any other processes".
    TcbSuspend {
        /// TCB capability.
        tcb: CPtr,
    },
    /// Sleep on the timer driver (the paper's seL4 system adds timer
    /// driver processes; the model folds them into a kernel timer).
    Sleep {
        /// How long to sleep.
        duration: SimDuration,
    },
    /// Read the virtual clock.
    GetTime,
    /// Read a device register through a device capability (needs `read`).
    DevRead {
        /// Device capability.
        dev: CPtr,
    },
    /// Write a device register through a device capability (needs
    /// `write`).
    DevWrite {
        /// Device capability.
        dev: CPtr,
        /// The value to write.
        value: i64,
    },
    /// `seL4_Untyped_Retype`: carve a new kernel object out of an untyped
    /// region the caller holds a (write) capability to. The caller
    /// receives a full-rights capability to the new object.
    Retype {
        /// Untyped capability.
        untyped: CPtr,
        /// What to create.
        kind: RetypeKind,
    },
}

/// The kernel's reply to a system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Completed without data.
    Ok,
    /// A message was delivered.
    Msg(DeliveredMessage),
    /// A capability slot was allocated (mint).
    Slot(CPtr),
    /// Probe result: the object kind behind a slot, or `None` for a reply
    /// capability.
    Identified(Option<ObjKind>),
    /// Current virtual time.
    Time(SimTime),
    /// Device register value.
    DevValue(i64),
    /// The call failed.
    Err(Sel4Error),
}

impl Reply {
    /// Extracts the delivered message, if any.
    pub fn message(&self) -> Option<&DeliveredMessage> {
        match self {
            Reply::Msg(m) => Some(m),
            _ => None,
        }
    }

    /// Extracts the error, if this is one.
    pub fn err(&self) -> Option<Sel4Error> {
        match self {
            Reply::Err(e) => Some(*e),
            _ => None,
        }
    }

    /// True if the reply is not an error.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Reply::Err(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_accessors() {
        assert!(Reply::Ok.is_ok());
        assert!(!Reply::Err(Sel4Error::NotReady).is_ok());
        assert_eq!(
            Reply::Err(Sel4Error::NoReplyCap).err(),
            Some(Sel4Error::NoReplyCap)
        );
        assert_eq!(Reply::Ok.message(), None);
        let m = DeliveredMessage {
            badge: 1,
            label: 2,
            words: vec![],
            received_caps: vec![],
            reply_expected: false,
        };
        assert_eq!(Reply::Msg(m.clone()).message(), Some(&m));
    }
}
