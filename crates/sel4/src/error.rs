//! seL4-style error codes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors returned by the simulated seL4 kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sel4Error {
    /// The capability pointer names an empty or out-of-range slot. The
    /// kernel deliberately does not distinguish the two cases, so probing
    /// leaks nothing about CSpace layout.
    InvalidCapability,
    /// The capability exists but lacks the required right.
    InsufficientRights,
    /// The capability designates an object of the wrong type for this
    /// invocation.
    WrongObjectType,
    /// Non-blocking send found no waiting receiver.
    NotReady,
    /// `seL4_Reply` invoked with no reply capability present.
    NoReplyCap,
    /// No free CSpace slot to receive a transferred capability.
    NoFreeSlot,
    /// Bootstrap-time: explicit slot already occupied.
    SlotOccupied,
    /// Rights amplification attempted during mint/transfer.
    RightsViolation,
    /// The kernel's object or thread table is exhausted.
    OutOfMemory,
}

impl fmt::Display for Sel4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sel4Error::InvalidCapability => "invalid capability",
            Sel4Error::InsufficientRights => "insufficient rights",
            Sel4Error::WrongObjectType => "wrong object type",
            Sel4Error::NotReady => "no receiver ready",
            Sel4Error::NoReplyCap => "no reply capability",
            Sel4Error::NoFreeSlot => "no free cspace slot",
            Sel4Error::SlotOccupied => "cspace slot occupied",
            Sel4Error::RightsViolation => "rights may only be diminished",
            Sel4Error::OutOfMemory => "kernel object memory exhausted",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Sel4Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let all = [
            Sel4Error::InvalidCapability,
            Sel4Error::InsufficientRights,
            Sel4Error::WrongObjectType,
            Sel4Error::NotReady,
            Sel4Error::NoReplyCap,
            Sel4Error::NoFreeSlot,
            Sel4Error::SlotOccupied,
            Sel4Error::RightsViolation,
            Sel4Error::OutOfMemory,
        ];
        for e in all {
            let s = format!("{e}");
            assert!(!s.is_empty());
            assert_eq!(s, s.to_lowercase());
        }
    }
}
