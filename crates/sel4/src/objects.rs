//! Kernel objects.
//!
//! §III-C: "These kernel objects could be page tables, thread control
//! blocks, IPC endpoints, or many other types." The reproduction models the
//! object kinds the scenario exercises: TCBs, endpoints, notifications and
//! device frames.

use std::fmt;

use bas_sim::device::DeviceId;
use bas_sim::process::Pid;
use serde::{Deserialize, Serialize};

/// Index of a kernel object in the kernel's object table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjId(u32);

impl ObjId {
    /// Creates an object id from its raw index.
    pub const fn new(raw: u32) -> Self {
        ObjId(raw)
    }

    /// Raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Raw index as usize, for table addressing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Discriminates object kinds (also what `CapIdentify` reveals to a
/// brute-forcing probe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjKind {
    /// A thread control block.
    Tcb,
    /// An IPC endpoint ("implemented as wait queues", per the paper's
    /// footnote).
    Endpoint,
    /// A notification object (binary semaphore).
    Notification,
    /// A device frame mapping one simulated device.
    Device,
    /// A region of untyped memory, retypable into kernel objects.
    Untyped,
}

impl fmt::Display for ObjKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjKind::Tcb => write!(f, "tcb"),
            ObjKind::Endpoint => write!(f, "endpoint"),
            ObjKind::Notification => write!(f, "notification"),
            ObjKind::Device => write!(f, "device"),
            ObjKind::Untyped => write!(f, "untyped"),
        }
    }
}

/// A kernel object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelObject {
    /// Thread control block bound to a simulated thread.
    Tcb {
        /// The thread this TCB controls.
        pid: Pid,
    },
    /// An IPC endpoint. Wait queues are represented implicitly by thread
    /// states (deterministic lowest-pid-first service order).
    Endpoint,
    /// A notification object with its signal state.
    Notification {
        /// Pending (unconsumed) signal bits, ORed together.
        word: u64,
    },
    /// A device frame.
    Device {
        /// The simulated device behind the frame.
        dev: DeviceId,
    },
    /// Untyped memory: the root of all object allocation in seL4. A
    /// thread can only create kernel objects by *retyping* untyped memory
    /// it holds a capability to — which is why the compromised web
    /// interface cannot mount a fork bomb on seL4: thread/object creation
    /// is explicit, transferable authority, not an ambient right.
    Untyped {
        /// Total bytes in the region.
        total: usize,
        /// Bytes already consumed by retypes.
        consumed: usize,
    },
}

impl KernelObject {
    /// The object's kind tag.
    pub fn kind(&self) -> ObjKind {
        match self {
            KernelObject::Tcb { .. } => ObjKind::Tcb,
            KernelObject::Endpoint => ObjKind::Endpoint,
            KernelObject::Notification { .. } => ObjKind::Notification,
            KernelObject::Device { .. } => ObjKind::Device,
            KernelObject::Untyped { .. } => ObjKind::Untyped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_variants() {
        assert_eq!(KernelObject::Tcb { pid: Pid::new(1) }.kind(), ObjKind::Tcb);
        assert_eq!(KernelObject::Endpoint.kind(), ObjKind::Endpoint);
        assert_eq!(
            KernelObject::Notification { word: 0 }.kind(),
            ObjKind::Notification
        );
        assert_eq!(
            KernelObject::Device { dev: DeviceId::FAN }.kind(),
            ObjKind::Device
        );
        assert_eq!(
            KernelObject::Untyped {
                total: 64,
                consumed: 0
            }
            .kind(),
            ObjKind::Untyped
        );
    }

    #[test]
    fn obj_id_roundtrip_and_display() {
        let id = ObjId::new(9);
        assert_eq!(id.as_u32(), 9);
        assert_eq!(id.as_usize(), 9);
        assert_eq!(format!("{id}"), "obj9");
        assert_eq!(format!("{}", ObjKind::Endpoint), "endpoint");
    }
}
