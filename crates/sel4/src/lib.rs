//! # bas-sel4 — seL4 capability-kernel model
//!
//! A functional model of the seL4 microkernel as the paper uses it
//! (§III-C/D): "all access control policy, including IPC policy, is managed
//! with capabilities. At a high level, a capability is a token which allows
//! access to special kernel objects. [...] the kernel enforces that no
//! thread without the proper capability can access the corresponding
//! object."
//!
//! Modeled faithfully:
//!
//! - **Kernel objects** ([`objects`]): TCBs, endpoints (wait queues),
//!   notifications, and device objects.
//! - **Capabilities** ([`cap`]): object reference + [`rights::CapRights`]
//!   (`read`/`write`/`grant`) + a badge; held in per-thread
//!   [`cspace::CSpace`]s and addressed by slot ([`cap::CPtr`]).
//! - **IPC syscalls** ([`syscall`]): `seL4_Send`, `seL4_NBSend`,
//!   `seL4_Recv`, `seL4_NBRecv`, `seL4_Call` (which attaches a one-shot
//!   reply capability) and `seL4_Reply`, as described in the paper.
//! - **Capability transfer**: sending capabilities in a message requires
//!   the `grant` right on the endpoint, the only way independent processes
//!   share capabilities — the basis of the paper's argument that "if an
//!   untrusted process can only send away capabilities to trusted
//!   processes, the untrusted process could never gain more capabilities."
//! - **Confinement**: a thread can only name objects via its own CSpace;
//!   the brute-force attack of §IV-D.3 (enumerate every slot) is
//!   implemented in `bas-attack` against exactly this interface.
//!
//! There is deliberately no user/root concept: "the seL4 kernel and
//! CAmkES generated code have no concept of user or root, the attack
//! surface is limited to system calls into the seL4 kernel and
//! communication to other processes."
//!
//! ```
//! use bas_sel4::kernel::{Sel4Config, Sel4Kernel};
//! use bas_sel4::message::IpcMessage;
//! use bas_sel4::rights::CapRights;
//! use bas_sel4::syscall::{Reply, Syscall};
//! use bas_sim::script::Script;
//!
//! let mut k = Sel4Kernel::new(Sel4Config::default());
//! let ep = k.create_endpoint();
//! let server = k.create_thread("server", Box::new(Script::new(vec![
//!     Syscall::Recv { ep: bas_sel4::cap::CPtr::new(0) },
//! ])));
//! let client = k.create_thread("client", Box::new(Script::new(vec![
//!     Syscall::Send { ep: bas_sel4::cap::CPtr::new(0), msg: IpcMessage::with_label(7) },
//! ])));
//! k.grant_endpoint(server, ep, CapRights::READ, 0);
//! k.grant_endpoint(client, ep, CapRights::WRITE, 42);
//! k.start_thread(server);
//! k.start_thread(client);
//! k.run_to_quiescence();
//! assert_eq!(k.metrics().ipc_messages, 1);
//! ```

pub mod cap;
pub mod cspace;
pub mod error;
pub mod kernel;
pub mod message;
pub mod objects;
pub mod rights;
pub mod syscall;

pub use cap::{CPtr, Capability};
pub use cspace::CSpace;
pub use error::Sel4Error;
pub use kernel::{Sel4Config, Sel4Kernel};
pub use message::IpcMessage;
pub use objects::{KernelObject, ObjId};
pub use rights::CapRights;
pub use syscall::{Reply, Syscall};
