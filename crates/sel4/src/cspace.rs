//! Per-thread capability spaces.
//!
//! A CSpace is the *only* naming context a thread has: if a capability is
//! not in a thread's CSpace, the corresponding object does not exist for
//! that thread. This is the confinement property the paper's brute-force
//! experiment probes.

use serde::{Deserialize, Serialize};

use crate::cap::{CPtr, Capability};
use crate::error::Sel4Error;

/// A fixed-size capability space (a flattened, single-level CNode).
///
/// ```
/// use bas_sel4::cap::{Capability, CPtr};
/// use bas_sel4::cspace::CSpace;
/// use bas_sel4::objects::ObjId;
/// use bas_sel4::rights::CapRights;
///
/// let mut cs = CSpace::new(8);
/// let slot = cs.insert(Capability::to_object(ObjId::new(1), CapRights::RW, 0)).unwrap();
/// assert!(cs.lookup(slot).is_ok());
/// assert!(cs.lookup(CPtr::new(7)).is_err(), "empty slot");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CSpace {
    slots: Vec<Option<Capability>>,
}

impl CSpace {
    /// Creates a CSpace with `size` empty slots.
    pub fn new(size: usize) -> Self {
        CSpace {
            slots: vec![None; size],
        }
    }

    /// Number of slots (occupied or not).
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Looks up the capability at `cptr`.
    ///
    /// # Errors
    ///
    /// Returns [`Sel4Error::InvalidCapability`] if the slot is out of range
    /// or empty — the kernel never reveals which.
    pub fn lookup(&self, cptr: CPtr) -> Result<Capability, Sel4Error> {
        self.slots
            .get(cptr.as_usize())
            .copied()
            .flatten()
            .ok_or(Sel4Error::InvalidCapability)
    }

    /// Installs a capability in the first free slot.
    ///
    /// # Errors
    ///
    /// Returns [`Sel4Error::NoFreeSlot`] when the CSpace is full.
    pub fn insert(&mut self, cap: Capability) -> Result<CPtr, Sel4Error> {
        let idx = self
            .slots
            .iter()
            .position(|s| s.is_none())
            .ok_or(Sel4Error::NoFreeSlot)?;
        self.slots[idx] = Some(cap);
        Ok(CPtr::new(idx as u32))
    }

    /// Installs a capability at an explicit slot (bootstrap-time layout).
    ///
    /// # Errors
    ///
    /// Returns [`Sel4Error::InvalidCapability`] if the slot is out of
    /// range, or [`Sel4Error::SlotOccupied`] if already in use.
    pub fn insert_at(&mut self, cptr: CPtr, cap: Capability) -> Result<(), Sel4Error> {
        let slot = self
            .slots
            .get_mut(cptr.as_usize())
            .ok_or(Sel4Error::InvalidCapability)?;
        if slot.is_some() {
            return Err(Sel4Error::SlotOccupied);
        }
        *slot = Some(cap);
        Ok(())
    }

    /// Overwrites the capability at an *occupied* slot (in-place rights
    /// attenuation during churn sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`Sel4Error::InvalidCapability`] if out of range or empty.
    pub fn replace(&mut self, cptr: CPtr, cap: Capability) -> Result<(), Sel4Error> {
        let slot = self
            .slots
            .get_mut(cptr.as_usize())
            .ok_or(Sel4Error::InvalidCapability)?;
        if slot.is_none() {
            return Err(Sel4Error::InvalidCapability);
        }
        *slot = Some(cap);
        Ok(())
    }

    /// Removes and returns the capability at `cptr`.
    ///
    /// # Errors
    ///
    /// Returns [`Sel4Error::InvalidCapability`] if out of range or empty.
    pub fn remove(&mut self, cptr: CPtr) -> Result<Capability, Sel4Error> {
        let slot = self
            .slots
            .get_mut(cptr.as_usize())
            .ok_or(Sel4Error::InvalidCapability)?;
        slot.take().ok_or(Sel4Error::InvalidCapability)
    }

    /// Iterates over `(cptr, capability)` for occupied slots.
    pub fn iter(&self) -> impl Iterator<Item = (CPtr, Capability)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|c| (CPtr::new(i as u32), c)))
    }

    /// Number of occupied slots.
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::ObjId;
    use crate::rights::CapRights;

    fn cap(obj: u32) -> Capability {
        Capability::to_object(ObjId::new(obj), CapRights::RW, 0)
    }

    #[test]
    fn insert_fills_lowest_free_slot() {
        let mut cs = CSpace::new(4);
        assert_eq!(cs.insert(cap(1)).unwrap(), CPtr::new(0));
        assert_eq!(cs.insert(cap(2)).unwrap(), CPtr::new(1));
        cs.remove(CPtr::new(0)).unwrap();
        assert_eq!(
            cs.insert(cap(3)).unwrap(),
            CPtr::new(0),
            "reuses freed slot"
        );
    }

    #[test]
    fn full_cspace_rejects_insert() {
        let mut cs = CSpace::new(1);
        cs.insert(cap(1)).unwrap();
        assert_eq!(cs.insert(cap(2)), Err(Sel4Error::NoFreeSlot));
    }

    #[test]
    fn out_of_range_and_empty_look_identical() {
        let cs = CSpace::new(2);
        assert_eq!(cs.lookup(CPtr::new(0)), Err(Sel4Error::InvalidCapability));
        assert_eq!(cs.lookup(CPtr::new(99)), Err(Sel4Error::InvalidCapability));
    }

    #[test]
    fn insert_at_respects_occupancy() {
        let mut cs = CSpace::new(3);
        cs.insert_at(CPtr::new(2), cap(1)).unwrap();
        assert_eq!(
            cs.insert_at(CPtr::new(2), cap(2)),
            Err(Sel4Error::SlotOccupied)
        );
        assert_eq!(
            cs.insert_at(CPtr::new(9), cap(2)),
            Err(Sel4Error::InvalidCapability)
        );
        assert_eq!(cs.occupied(), 1);
    }

    #[test]
    fn iter_lists_occupied_in_slot_order() {
        let mut cs = CSpace::new(4);
        cs.insert_at(CPtr::new(3), cap(3)).unwrap();
        cs.insert_at(CPtr::new(1), cap(1)).unwrap();
        let slots: Vec<u32> = cs.iter().map(|(p, _)| p.slot()).collect();
        assert_eq!(slots, vec![1, 3]);
    }
}
