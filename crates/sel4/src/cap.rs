//! Capabilities and capability pointers.

use std::fmt;

use bas_sim::process::Pid;
use serde::{Deserialize, Serialize};

use crate::objects::ObjId;
use crate::rights::CapRights;

/// A capability pointer: the slot index of a capability in the invoking
/// thread's CSpace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CPtr(u32);

impl CPtr {
    /// Creates a capability pointer to the given slot.
    pub const fn new(slot: u32) -> Self {
        CPtr(slot)
    }

    /// The slot index.
    pub const fn slot(self) -> u32 {
        self.0
    }

    /// The slot index as usize.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cptr{}", self.0)
    }
}

/// What a capability designates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CapTarget {
    /// An ordinary kernel object.
    Object(ObjId),
    /// A one-shot reply capability to a thread blocked in `seL4_Call`.
    /// "This system call invokes the kernel to attach a one-time reply
    /// capability to the message."
    Reply(Pid),
}

/// A capability: an unforgeable token granting rights over a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Capability {
    /// What the capability designates.
    pub target: CapTarget,
    /// The rights it conveys.
    pub rights: CapRights,
    /// The badge: an immutable word stamped into messages sent through an
    /// endpoint capability, letting servers identify clients.
    pub badge: u64,
}

impl Capability {
    /// A capability to a kernel object.
    pub fn to_object(obj: ObjId, rights: CapRights, badge: u64) -> Self {
        Capability {
            target: CapTarget::Object(obj),
            rights,
            badge,
        }
    }

    /// A one-shot reply capability to `pid` (write + grant, as in seL4).
    pub fn reply_to(pid: Pid) -> Self {
        Capability {
            target: CapTarget::Reply(pid),
            rights: CapRights::WRITE_GRANT,
            badge: 0,
        }
    }

    /// The designated object, if this is an object capability.
    pub fn object(&self) -> Option<ObjId> {
        match self.target {
            CapTarget::Object(o) => Some(o),
            CapTarget::Reply(_) => None,
        }
    }

    /// Derives a copy with diminished rights and a (possibly new) badge —
    /// the `mint` operation. Rights may only shrink.
    ///
    /// # Errors
    ///
    /// Returns `None` if `rights` is not a subset of the source rights.
    pub fn mint(&self, rights: CapRights, badge: u64) -> Option<Capability> {
        if !self.rights.covers(rights) {
            return None;
        }
        Some(Capability {
            target: self.target,
            rights,
            badge,
        })
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.target {
            CapTarget::Object(o) => write!(f, "cap({o}, {}, badge={})", self.rights, self.badge),
            CapTarget::Reply(p) => write!(f, "replycap({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_cannot_amplify_rights() {
        let c = Capability::to_object(ObjId::new(1), CapRights::WRITE, 0);
        assert!(c.mint(CapRights::WRITE, 5).is_some());
        assert!(c.mint(CapRights::NONE, 5).is_some());
        assert!(c.mint(CapRights::RW, 5).is_none(), "adding read must fail");
        assert!(
            c.mint(CapRights::WRITE_GRANT, 5).is_none(),
            "adding grant must fail"
        );
    }

    #[test]
    fn mint_rebadges() {
        let c = Capability::to_object(ObjId::new(1), CapRights::ALL, 1);
        let m = c.mint(CapRights::WRITE, 99).unwrap();
        assert_eq!(m.badge, 99);
        assert_eq!(m.target, c.target);
    }

    #[test]
    fn reply_cap_shape() {
        let r = Capability::reply_to(Pid::new(3));
        assert_eq!(r.object(), None);
        assert_eq!(r.rights, CapRights::WRITE_GRANT);
        assert!(format!("{r}").contains("replycap"));
    }

    #[test]
    fn object_accessor() {
        let c = Capability::to_object(ObjId::new(4), CapRights::READ, 0);
        assert_eq!(c.object(), Some(ObjId::new(4)));
        assert!(format!("{c}").contains("obj4"));
    }
}
