//! Capability access rights.
//!
//! §III-C: "read, write and grant are the three rights allowed, and they
//! can be used to regulate IPC communication. For instance, if a process
//! has a read-only capability to an endpoint, it can only receive messages
//! from that endpoint. The inverse is true for a write-only capability."

use std::fmt;

use serde::{Deserialize, Serialize};

/// The rights attached to a capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct CapRights {
    /// May receive from the object.
    pub read: bool,
    /// May send to the object.
    pub write: bool,
    /// May transfer capabilities through the object (and, via `seL4_Call`,
    /// receive a reply capability).
    pub grant: bool,
}

impl CapRights {
    /// No rights at all.
    pub const NONE: CapRights = CapRights {
        read: false,
        write: false,
        grant: false,
    };
    /// Read only.
    pub const READ: CapRights = CapRights {
        read: true,
        write: false,
        grant: false,
    };
    /// Write only.
    pub const WRITE: CapRights = CapRights {
        read: false,
        write: true,
        grant: false,
    };
    /// Read + write.
    pub const RW: CapRights = CapRights {
        read: true,
        write: true,
        grant: false,
    };
    /// Write + grant (the rights a CAmkES RPC client holds).
    pub const WRITE_GRANT: CapRights = CapRights {
        read: false,
        write: true,
        grant: true,
    };
    /// All rights.
    pub const ALL: CapRights = CapRights {
        read: true,
        write: true,
        grant: true,
    };

    /// True if `self` has every right `other` has (i.e. `other ⊆ self`).
    /// Capability derivation may only shrink rights.
    pub fn covers(self, other: CapRights) -> bool {
        (!other.read || self.read) && (!other.write || self.write) && (!other.grant || self.grant)
    }

    /// The intersection of two rights sets.
    pub fn intersect(self, other: CapRights) -> CapRights {
        CapRights {
            read: self.read && other.read,
            write: self.write && other.write,
            grant: self.grant && other.grant,
        }
    }
}

impl fmt::Display for CapRights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { "R" } else { "-" },
            if self.write { "W" } else { "-" },
            if self.grant { "G" } else { "-" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_is_subset_check() {
        assert!(CapRights::ALL.covers(CapRights::RW));
        assert!(CapRights::RW.covers(CapRights::READ));
        assert!(!CapRights::READ.covers(CapRights::WRITE));
        assert!(CapRights::NONE.covers(CapRights::NONE));
        assert!(!CapRights::WRITE_GRANT.covers(CapRights::READ));
    }

    #[test]
    fn intersect_shrinks() {
        let i = CapRights::ALL.intersect(CapRights::WRITE_GRANT);
        assert_eq!(i, CapRights::WRITE_GRANT);
        assert_eq!(CapRights::READ.intersect(CapRights::WRITE), CapRights::NONE);
    }

    #[test]
    fn display_is_rwg_triple() {
        assert_eq!(format!("{}", CapRights::ALL), "RWG");
        assert_eq!(format!("{}", CapRights::READ), "R--");
        assert_eq!(format!("{}", CapRights::WRITE_GRANT), "-WG");
        assert_eq!(format!("{}", CapRights::NONE), "---");
    }
}
