//! The simulated seL4 kernel.
//!
//! The kernel's entire access-control state is the set of capabilities in
//! thread CSpaces; there is no ambient authority, no uid, no name service.
//! "The designers of seL4 wanted a minimal kernel where all access-control
//! policy was specified in user space. To do this, the kernel simply hands
//! over all capabilities to the bootstrap process" — the bootstrap path
//! here is the `create_*`/`grant_*` API used by `bas-capdl`'s realizer.

use bas_sim::arena::{MsgArena, MsgRef};
use bas_sim::caps::{CapLog, CapOp, CapTrace, ChurnKind};
use bas_sim::clock::{CostModel, VirtualClock};
use bas_sim::device::DeviceBus;
use bas_sim::device::DeviceId;
use bas_sim::fault::{IpcFault, IpcFaultState};
use bas_sim::metrics::KernelMetrics;
use bas_sim::process::{Action, Pid, ProcState};
use bas_sim::sched::RunQueue;
use bas_sim::time::{SimDuration, SimTime};
use bas_sim::timer::TimerQueue;
use bas_sim::trace::TraceLog;

use crate::cap::{CPtr, CapTarget, Capability};
use crate::cspace::CSpace;
use crate::error::Sel4Error;
use crate::message::{DeliveredMessage, IpcMessage};
use crate::objects::{KernelObject, ObjId};
use crate::rights::CapRights;
use crate::syscall::{Reply, RetypeKind, Syscall};

/// A boxed seL4 user thread.
pub type Sel4Thread = Box<dyn bas_sim::process::Process<Syscall = Syscall, Reply = Reply>>;

/// Why a thread is blocked.
#[derive(Debug)]
enum Block {
    SendingOn { ep: ObjId, queued: QueuedSend },
    ReceivingOn { ep: ObjId },
    WaitingNtfn { ntfn: ObjId },
    AwaitingReply,
}

#[derive(Debug)]
struct QueuedSend {
    badge: u64,
    label: u64,
    /// Arena handle to the staged message registers (owns one slot
    /// reference; freed when the transfer completes or aborts).
    words: MsgRef,
    /// Capabilities to transfer, each paired with its source slot in the
    /// sender's CSpace (the receiver's copy becomes its CDT child).
    caps: Vec<(Capability, CPtr)>,
    is_call: bool,
}

struct ThreadEntry {
    name: String,
    cspace: CSpace,
    state: ProcState<Block>,
    logic: Option<Sel4Thread>,
    pending_reply: Option<Reply>,
    /// The one-shot reply capability installed by a received `Call`.
    reply_slot: Option<Capability>,
    started: bool,
}

/// Kernel construction parameters.
#[derive(Debug, Clone)]
pub struct Sel4Config {
    /// Maximum number of threads.
    pub max_threads: usize,
    /// CSpace size per thread.
    pub cspace_slots: usize,
    /// Virtual-time cost model.
    pub cost_model: CostModel,
    /// Trace capacity in events.
    pub trace_capacity: usize,
}

impl Default for Sel4Config {
    fn default() -> Self {
        Sel4Config {
            max_threads: 32,
            cspace_slots: 64,
            cost_model: CostModel::default(),
            trace_capacity: TraceLog::DEFAULT_CAPACITY,
        }
    }
}

/// The simulated seL4 kernel.
pub struct Sel4Kernel {
    config: Sel4Config,
    objects: Vec<KernelObject>,
    threads: Vec<Option<ThreadEntry>>,
    run_queue: RunQueue,
    timers: TimerQueue,
    clock: VirtualClock,
    metrics: KernelMetrics,
    trace: TraceLog,
    devices: DeviceBus,
    last_run: Option<Pid>,
    ipc_faults: IpcFaultState,
    /// Fixed-slot message arena: staged message registers live here while
    /// a send is parked; queues and PCB states move 8-byte handles.
    arena: MsgArena,
    /// Capability-operation event stream (disabled by default).
    cap_log: CapLog,
    /// Armed churn sweeps: each fires after its matching successful send
    /// admission check count reaches zero — inside the check→delivery
    /// TOCTOU window by construction.
    armed_churn: Vec<(ChurnSweep, u32)>,
    /// Lightweight capability derivation tree: `(holder, slot)` of a
    /// derived capability → `(holder, slot)` it was minted or transferred
    /// from. Roots (bootstrap grants) have no entry. Revoke sweeps walk
    /// this to delete descendants, as seL4's CDT-based `revoke` does.
    cdt: std::collections::BTreeMap<(u32, u32), (u32, u32)>,
}

/// A resolved mid-run capability mutation on the seL4 platform: act on
/// every capability `holder` has over the listed endpoint objects (plus
/// CDT descendants for revoke/attenuate). The platform layer resolves
/// abstract `CapChurnOp` subject/object names to this form, since only it
/// knows which realized endpoints serve which process.
#[derive(Debug, Clone)]
pub struct ChurnSweep {
    /// The mutation.
    pub kind: ChurnKind,
    /// Acting subject recorded in the event stream.
    pub actor: String,
    /// The thread whose capabilities change.
    pub holder: Pid,
    /// The endpoint objects in scope.
    pub objs: Vec<ObjId>,
    /// Granted rights (grant) or the keep-mask (attenuate).
    pub rights: CapRights,
    /// Badge for newly granted capabilities.
    pub badge: u64,
}

impl std::fmt::Debug for Sel4Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sel4Kernel")
            .field("now", &self.clock.now())
            .field("objects", &self.objects.len())
            .field("threads", &self.thread_count())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl Sel4Kernel {
    /// Boots an empty kernel.
    pub fn new(config: Sel4Config) -> Self {
        Sel4Kernel {
            objects: Vec::new(),
            threads: Vec::new(),
            run_queue: RunQueue::new(),
            timers: TimerQueue::new(),
            clock: VirtualClock::new(config.cost_model),
            metrics: KernelMetrics::default(),
            trace: TraceLog::with_capacity(config.trace_capacity),
            devices: DeviceBus::new(),
            last_run: None,
            ipc_faults: IpcFaultState::default(),
            // One parked send per thread bounds the slot working set.
            arena: MsgArena::with_capacity(config.max_threads),
            cap_log: CapLog::new(),
            armed_churn: Vec::new(),
            cdt: std::collections::BTreeMap::new(),
            config,
        }
    }

    /// Returns the kernel to the state it had immediately after
    /// [`Self::new`] — the snapshot-fork boot path. Installed bus devices
    /// survive (boot-template state); kernel objects, threads, the CDT and
    /// every other mutable structure are emptied in place, reusing live
    /// allocations. The caller re-runs the realizer over the (shared)
    /// CapDL spec afterwards, which re-creates objects and threads in the
    /// same order a cold boot would — so object ids, CSpace layouts and
    /// the whole subsequent run are byte-identical.
    pub fn reset_to_boot(&mut self) {
        self.objects.clear();
        self.threads.clear();
        self.run_queue.clear();
        self.timers.clear();
        self.clock.reset();
        self.metrics = KernelMetrics::default();
        self.trace.clear();
        self.last_run = None;
        self.ipc_faults = IpcFaultState::default();
        self.arena.reset_to_capacity(self.config.max_threads);
        self.cap_log = CapLog::new();
        self.armed_churn.clear();
        self.cdt.clear();
    }

    // ----- bootstrap API ----------------------------------------------------

    /// Allocates an endpoint object.
    pub fn create_endpoint(&mut self) -> ObjId {
        self.alloc_object(KernelObject::Endpoint)
    }

    /// Allocates a notification object.
    pub fn create_notification(&mut self) -> ObjId {
        self.alloc_object(KernelObject::Notification { word: 0 })
    }

    /// Allocates a device object mapping a simulated device.
    pub fn create_device(&mut self, dev: DeviceId) -> ObjId {
        self.alloc_object(KernelObject::Device { dev })
    }

    /// Allocates an untyped-memory region of `total` bytes.
    pub fn create_untyped(&mut self, total: usize) -> ObjId {
        self.alloc_object(KernelObject::Untyped { total, consumed: 0 })
    }

    /// Creates a thread (initially suspended) and its TCB object; returns
    /// the thread's pid.
    ///
    /// # Panics
    ///
    /// Panics if the thread table is full.
    pub fn create_thread(&mut self, name: impl Into<String>, logic: Sel4Thread) -> Pid {
        assert!(
            self.threads.len() < self.config.max_threads,
            "thread table full"
        );
        let pid = Pid::new(self.threads.len() as u32);
        self.threads.push(Some(ThreadEntry {
            name: name.into(),
            cspace: CSpace::new(self.config.cspace_slots),
            state: ProcState::Runnable,
            logic: Some(logic),
            pending_reply: None,
            reply_slot: None,
            started: false,
        }));
        let tcb = self.alloc_object(KernelObject::Tcb { pid });
        let _ = tcb;
        self.metrics.processes_created += 1;
        pid
    }

    /// The TCB object backing `pid`, if the thread exists.
    pub fn tcb_of(&self, pid: Pid) -> Option<ObjId> {
        self.objects.iter().enumerate().find_map(|(i, o)| match o {
            KernelObject::Tcb { pid: p } if *p == pid => Some(ObjId::new(i as u32)),
            _ => None,
        })
    }

    /// Installs an arbitrary capability into a thread's next free slot.
    ///
    /// # Errors
    ///
    /// Returns [`Sel4Error::InvalidCapability`] for an unknown thread, or
    /// [`Sel4Error::NoFreeSlot`] if the CSpace is full.
    pub fn grant_cap(&mut self, pid: Pid, cap: Capability) -> Result<CPtr, Sel4Error> {
        let entry = self.entry_mut(pid).ok_or(Sel4Error::InvalidCapability)?;
        let slot = entry.cspace.insert(cap)?;
        // A fresh grant is a CDT root: clear any stale derivation record
        // left by a previously revoked occupant of the slot.
        self.cdt.remove(&(pid.as_u32(), slot.slot()));
        Ok(slot)
    }

    /// Installs a capability at an explicit slot (CapDL layouts).
    ///
    /// # Errors
    ///
    /// Propagates CSpace insertion errors.
    pub fn grant_cap_at(&mut self, pid: Pid, slot: CPtr, cap: Capability) -> Result<(), Sel4Error> {
        let entry = self.entry_mut(pid).ok_or(Sel4Error::InvalidCapability)?;
        entry.cspace.insert_at(slot, cap)?;
        self.cdt.remove(&(pid.as_u32(), slot.slot()));
        Ok(())
    }

    /// Convenience: grants an endpoint capability.
    ///
    /// # Errors
    ///
    /// Propagates [`Sel4Kernel::grant_cap`] errors.
    pub fn grant_endpoint(
        &mut self,
        pid: Pid,
        ep: ObjId,
        rights: CapRights,
        badge: u64,
    ) -> Result<CPtr, Sel4Error> {
        self.grant_cap(pid, Capability::to_object(ep, rights, badge))
    }

    /// Makes a created thread runnable.
    pub fn start_thread(&mut self, pid: Pid) {
        if let Some(entry) = self.entry_mut(pid) {
            if !entry.started {
                entry.started = true;
                entry.state = ProcState::Runnable;
            }
        }
        self.run_queue.enqueue(pid);
        self.trace
            .record(self.clock.now(), Some(pid), "thread.start", String::new());
    }

    /// Mutable access to the device bus, for installing plant devices.
    pub fn devices_mut(&mut self) -> &mut DeviceBus {
        &mut self.devices
    }

    // ----- fault injection ----------------------------------------------------

    /// Armed one-shot IPC faults, consumed by endpoint sends *after* the
    /// capability rights checks pass.
    pub fn ipc_faults_mut(&mut self) -> &mut IpcFaultState {
        &mut self.ipc_faults
    }

    /// Read access to the IPC fault queue (applied/pending counters).
    pub fn ipc_faults(&self) -> &IpcFaultState {
        &self.ipc_faults
    }

    /// Kills the named thread outright (a simulated crash). Returns false
    /// if no live thread bears the name. seL4 systems here are static:
    /// nothing restarts the thread, and callers blocked on its endpoints
    /// stay blocked — exactly the degradation the recovery experiment
    /// measures.
    pub fn kill_named(&mut self, name: &str) -> bool {
        let Some(pid) = self.thread_named(name) else {
            return false;
        };
        self.trace
            .record_with(self.clock.now(), Some(pid), "fault.crash", || {
                format!("killed {name}")
            });
        self.terminate(pid);
        true
    }

    /// Jumps the kernel clock forward by `d` without running anyone — a
    /// tick-skew fault.
    pub fn skew_clock(&mut self, d: SimDuration) {
        self.clock.advance(d);
        self.trace
            .record_with(self.clock.now(), None, "fault.clock", || {
                format!("skewed +{}ms", d.as_millis())
            });
    }

    // ----- introspection ------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Kernel counters.
    pub fn metrics(&self) -> &KernelMetrics {
        &self.metrics
    }

    /// The event trace.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Disables tracing (throughput benchmarks).
    pub fn disable_trace(&mut self) {
        self.trace.disable();
    }

    /// Enables capability-operation recording (idempotent).
    pub fn enable_cap_trace(&mut self) {
        self.cap_log.enable();
    }

    /// Snapshots the capability-operation stream.
    pub fn cap_trace(&self) -> CapTrace {
        self.cap_log.trace()
    }

    /// Applies a resolved churn sweep immediately. Returns `true` if any
    /// capability actually changed (a revoke of an absent capability or an
    /// attenuation already in effect returns `false`).
    pub fn apply_churn_sweep(&mut self, sweep: &ChurnSweep) -> bool {
        let holder_name = self
            .entry_ref(sweep.holder)
            .map(|e| e.name.clone())
            .unwrap_or_default();
        let mut any = false;
        for &obj in &sweep.objs {
            let changed = match sweep.kind {
                ChurnKind::Grant => self
                    .grant_cap(
                        sweep.holder,
                        Capability::to_object(obj, sweep.rights, sweep.badge),
                    )
                    .is_ok(),
                ChurnKind::Attenuate => {
                    let slots = self.matching_slots(sweep.holder, obj);
                    let mut n = 0;
                    for slot in slots {
                        n += self.attenuate_cap_and_descendants(sweep.holder, slot, sweep.rights);
                    }
                    n > 0
                }
                ChurnKind::Revoke => {
                    let slots = self.matching_slots(sweep.holder, obj);
                    let mut n = 0;
                    for slot in slots {
                        n += self.remove_cap_and_descendants(sweep.holder, slot);
                    }
                    n > 0
                }
            };
            let op = match sweep.kind {
                ChurnKind::Grant => CapOp::Grant,
                ChurnKind::Attenuate => CapOp::Attenuate,
                ChurnKind::Revoke => CapOp::Revoke,
            };
            self.cap_log.record_with(self.clock.now(), op, changed, || {
                (
                    sweep.actor.clone(),
                    format!("{holder_name}:{obj}"),
                    format!("{obj}"),
                )
            });
            self.trace
                .record_with(self.clock.now(), None, "cap.churn", || {
                    format!(
                        "{}: {} {holder_name} caps on {obj}",
                        sweep.actor,
                        sweep.kind.label()
                    )
                });
            any |= changed;
        }
        any
    }

    /// Arms `sweep` to fire right after the `after_checks`-th successful
    /// send admission check by `sweep.holder` on any endpoint in
    /// `sweep.objs` (`0` fires on the next matching check) — landing the
    /// mutation deterministically inside the check→delivery window.
    pub fn arm_churn_sweep(&mut self, sweep: ChurnSweep, after_checks: u32) {
        self.armed_churn.push((sweep, after_checks));
    }

    /// Slots in `holder`'s CSpace holding capabilities to `obj`.
    fn matching_slots(&self, holder: Pid, obj: ObjId) -> Vec<CPtr> {
        self.entry_ref(holder)
            .map(|e| {
                e.cspace
                    .iter()
                    .filter(|(_, c)| c.object() == Some(obj))
                    .map(|(p, _)| p)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Deletes the capability at `(holder, slot)` and every CDT descendant
    /// (mints and transfers derived from it), as seL4's `revoke` does.
    /// Returns how many capabilities were deleted.
    fn remove_cap_and_descendants(&mut self, holder: Pid, slot: CPtr) -> usize {
        let mut queue = vec![(holder.as_u32(), slot.slot())];
        let mut removed = 0;
        while let Some(key) = queue.pop() {
            let children: Vec<(u32, u32)> = self
                .cdt
                .iter()
                .filter(|(_, parent)| **parent == key)
                .map(|(child, _)| *child)
                .collect();
            queue.extend(children);
            if let Some(entry) = self.entry_mut(Pid::new(key.0)) {
                if entry.cspace.remove(CPtr::new(key.1)).is_ok() {
                    removed += 1;
                }
            }
            self.cdt.remove(&key);
        }
        removed
    }

    /// Narrows the rights of the capability at `(holder, slot)` and every
    /// CDT descendant to their intersection with `keep`. Returns how many
    /// capabilities actually changed.
    fn attenuate_cap_and_descendants(&mut self, holder: Pid, slot: CPtr, keep: CapRights) -> usize {
        let mut queue = vec![(holder.as_u32(), slot.slot())];
        let mut changed = 0;
        while let Some(key) = queue.pop() {
            let children: Vec<(u32, u32)> = self
                .cdt
                .iter()
                .filter(|(_, parent)| **parent == key)
                .map(|(child, _)| *child)
                .collect();
            queue.extend(children);
            if let Some(entry) = self.entry_mut(Pid::new(key.0)) {
                let cptr = CPtr::new(key.1);
                if let Ok(cap) = entry.cspace.lookup(cptr) {
                    let narrowed = Capability {
                        target: cap.target,
                        rights: cap.rights.intersect(keep),
                        badge: cap.badge,
                    };
                    if narrowed.rights != cap.rights && entry.cspace.replace(cptr, narrowed).is_ok()
                    {
                        changed += 1;
                    }
                }
            }
        }
        changed
    }

    /// Fires any armed churn sweep matching a successful admission check
    /// by `caller` on endpoint `ep`.
    fn fire_armed_churn(&mut self, caller: Pid, ep: ObjId) {
        if self.armed_churn.is_empty() {
            return;
        }
        let mut due = Vec::new();
        self.armed_churn.retain_mut(|(sweep, remaining)| {
            if sweep.holder == caller && sweep.objs.contains(&ep) {
                if *remaining == 0 {
                    due.push(sweep.clone());
                    return false;
                }
                *remaining -= 1;
            }
            true
        });
        for sweep in due {
            self.apply_churn_sweep(&sweep);
        }
    }

    /// A thread's CSpace (CapDL verification reads this).
    pub fn cspace_of(&self, pid: Pid) -> Option<&CSpace> {
        self.entry_ref(pid).map(|e| &e.cspace)
    }

    /// The kernel object behind an id.
    pub fn object(&self, obj: ObjId) -> Option<&KernelObject> {
        self.objects.get(obj.as_usize())
    }

    /// Finds a live thread by name.
    pub fn thread_named(&self, name: &str) -> Option<Pid> {
        self.threads.iter().enumerate().find_map(|(i, t)| {
            t.as_ref()
                .filter(|e| e.name == name)
                .map(|_| Pid::new(i as u32))
        })
    }

    /// True if the thread exists and has not been suspended/terminated.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.entry_ref(pid).is_some()
    }

    /// Number of live threads.
    pub fn thread_count(&self) -> usize {
        self.threads.iter().filter(|t| t.is_some()).count()
    }

    /// Names of live threads, sorted.
    pub fn alive_thread_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .threads
            .iter()
            .filter_map(|t| t.as_ref().map(|e| e.name.clone()))
            .collect();
        v.sort();
        v
    }

    // ----- execution ------------------------------------------------------------

    /// Runs until virtual time reaches `t`.
    pub fn run_until(&mut self, t: SimTime) {
        loop {
            self.fire_due_timers();
            if self.clock.now() >= t {
                return;
            }
            if let Some(pid) = self.run_queue.dequeue() {
                self.dispatch(pid);
            } else {
                match self.timers.next_deadline() {
                    Some(d) if d <= t => self.clock.advance_to(d),
                    _ => {
                        self.clock.advance_to(t);
                        return;
                    }
                }
            }
        }
    }

    /// Runs until nothing is runnable and no timer is armed.
    pub fn run_to_quiescence(&mut self) -> usize {
        let mut steps = 0;
        loop {
            self.fire_due_timers();
            let Some(pid) = self.run_queue.dequeue() else {
                match self.timers.next_deadline() {
                    Some(d) => {
                        self.clock.advance_to(d);
                        continue;
                    }
                    None => return steps,
                }
            };
            self.dispatch(pid);
            steps += 1;
            assert!(steps < 5_000_000, "kernel failed to quiesce");
        }
    }

    fn fire_due_timers(&mut self) {
        for pid in self.timers.pop_due(self.clock.now()) {
            if let Some(entry) = self.entry_mut(pid) {
                if matches!(entry.state, ProcState::Sleeping) {
                    entry.state = ProcState::Runnable;
                    entry.pending_reply = Some(Reply::Ok);
                    self.run_queue.enqueue(pid);
                }
            }
        }
    }

    fn dispatch(&mut self, pid: Pid) {
        let Some(entry) = self.entry_mut(pid) else {
            return;
        };
        if !entry.state.is_runnable() {
            return;
        }
        let mut logic = entry.logic.take().expect("runnable thread has logic");
        let reply = entry.pending_reply.take();

        if self.last_run != Some(pid) {
            self.clock.charge_context_switch();
            self.metrics.context_switches += 1;
            self.last_run = Some(pid);
        }
        self.clock.charge_user_compute();

        let action = logic.resume(reply);
        if let Some(entry) = self.entry_mut(pid) {
            entry.logic = Some(logic);
        }

        match action {
            Action::Syscall(sys) => {
                self.metrics.kernel_entries += 1;
                self.clock.charge_kernel_entry();
                self.clock.charge_syscall_dispatch();
                self.handle_syscall(pid, sys);
            }
            Action::Yield => self.run_queue.enqueue(pid),
            Action::Exit(code) => {
                self.trace
                    .record_with(self.clock.now(), Some(pid), "thread.exit", || {
                        format!("code={code}")
                    });
                self.terminate(pid);
            }
        }
    }

    // ----- syscalls --------------------------------------------------------------

    fn handle_syscall(&mut self, pid: Pid, sys: Syscall) {
        match sys {
            Syscall::Send { ep, msg } => self.do_send(pid, ep, msg, true, false),
            Syscall::NBSend { ep, msg } => self.do_send(pid, ep, msg, false, false),
            Syscall::Call { ep, msg } => self.do_send(pid, ep, msg, true, true),
            Syscall::Recv { ep } => self.do_recv(pid, ep, true),
            Syscall::NBRecv { ep } => self.do_recv(pid, ep, false),
            Syscall::Reply { msg } => self.do_reply(pid, msg),
            Syscall::Signal { ntfn } => self.do_signal(pid, ntfn),
            Syscall::Wait { ntfn } => self.do_wait(pid, ntfn),
            Syscall::Mint { src, rights, badge } => self.do_mint(pid, src, rights, badge),
            Syscall::Delete { slot } => {
                let r = match self
                    .entry_mut(pid)
                    .expect("caller alive")
                    .cspace
                    .remove(slot)
                {
                    Ok(_) => Reply::Ok,
                    Err(e) => Reply::Err(e),
                };
                self.ready_with(pid, r);
            }
            Syscall::Identify { slot } => {
                let r = match self
                    .entry_ref(pid)
                    .expect("caller alive")
                    .cspace
                    .lookup(slot)
                {
                    Ok(cap) => match cap.target {
                        CapTarget::Object(obj) => {
                            Reply::Identified(self.object(obj).map(KernelObject::kind))
                        }
                        CapTarget::Reply(_) => Reply::Identified(None),
                    },
                    Err(e) => Reply::Err(e),
                };
                self.ready_with(pid, r);
            }
            Syscall::TcbSuspend { tcb } => self.do_tcb_suspend(pid, tcb),
            Syscall::Sleep { duration } => {
                let deadline = self.clock.now() + duration;
                self.timers.arm(deadline, pid);
                if let Some(entry) = self.entry_mut(pid) {
                    entry.state = ProcState::Sleeping;
                }
            }
            Syscall::GetTime => {
                let now = self.clock.now();
                self.ready_with(pid, Reply::Time(now));
            }
            Syscall::DevRead { dev } => self.do_device(pid, dev, None),
            Syscall::DevWrite { dev, value } => self.do_device(pid, dev, Some(value)),
            Syscall::Retype { untyped, kind } => self.do_retype(pid, untyped, kind),
        }
    }

    fn do_retype(&mut self, caller: Pid, untyped_ptr: CPtr, kind: RetypeKind) {
        let cap = match self
            .entry_ref(caller)
            .expect("caller alive")
            .cspace
            .lookup(untyped_ptr)
        {
            Ok(c) => c,
            Err(e) => return self.deny(caller, e, "retype"),
        };
        let Some(obj) = cap.object() else {
            return self.deny(caller, Sel4Error::WrongObjectType, "retype via reply cap");
        };
        if !matches!(self.object(obj), Some(KernelObject::Untyped { .. })) {
            return self.deny(caller, Sel4Error::WrongObjectType, "retype of non-untyped");
        }
        if !cap.rights.write {
            return self.deny(
                caller,
                Sel4Error::InsufficientRights,
                "retype without write",
            );
        }
        // Charge the region; creation is bounded by explicit authority.
        let size = kind.size_bytes();
        {
            let Some(KernelObject::Untyped { total, consumed }) =
                self.objects.get_mut(obj.as_usize())
            else {
                unreachable!("checked above");
            };
            if *consumed + size > *total {
                self.ready_with(caller, Reply::Err(Sel4Error::OutOfMemory));
                return;
            }
            *consumed += size;
        }
        let new_obj = match kind {
            RetypeKind::Endpoint => self.alloc_object(KernelObject::Endpoint),
            RetypeKind::Notification => self.alloc_object(KernelObject::Notification { word: 0 }),
        };
        let r = match self
            .entry_mut(caller)
            .expect("caller alive")
            .cspace
            .insert(Capability::to_object(new_obj, CapRights::ALL, 0))
        {
            Ok(slot) => Reply::Slot(slot),
            Err(e) => Reply::Err(e),
        };
        self.trace
            .record_with(self.clock.now(), Some(caller), "untyped.retype", || {
                format!("{kind:?} from {obj}")
            });
        self.ready_with(caller, r);
    }

    fn lookup_ep_cap(&self, pid: Pid, cptr: CPtr) -> Result<(ObjId, Capability), Sel4Error> {
        let cap = self
            .entry_ref(pid)
            .ok_or(Sel4Error::InvalidCapability)?
            .cspace
            .lookup(cptr)?;
        match cap.target {
            CapTarget::Object(obj) => match self.object(obj) {
                Some(KernelObject::Endpoint) => Ok((obj, cap)),
                _ => Err(Sel4Error::WrongObjectType),
            },
            CapTarget::Reply(_) => Err(Sel4Error::WrongObjectType),
        }
    }

    fn deny(&mut self, pid: Pid, err: Sel4Error, what: &str) {
        self.metrics.access_denied += 1;
        self.trace
            .record_with(self.clock.now(), Some(pid), "cap.deny", || {
                format!("{what}: {err}")
            });
        self.ready_with(pid, Reply::Err(err));
    }

    fn do_send(
        &mut self,
        caller: Pid,
        ep_ptr: CPtr,
        msg: IpcMessage,
        blocking: bool,
        is_call: bool,
    ) {
        let (ep, cap) = match self.lookup_ep_cap(caller, ep_ptr) {
            Ok(v) => v,
            Err(e) => return self.deny(caller, e, "send"),
        };
        // Capability-stream instrumentation: one admission-check event per
        // send attempt that *found* a capability (a revoked capability
        // fails the lookup above and never reaches this gate). A
        // successful check may trip an armed churn sweep: the mutation
        // then lands between this check and the delivery that trusts it.
        let rights_ok = cap.rights.write
            && (!is_call || cap.rights.grant)
            && (msg.caps.is_empty() || cap.rights.grant);
        if self.cap_log.enabled() || !self.armed_churn.is_empty() {
            let caller_name = self
                .entry_ref(caller)
                .map(|e| e.name.clone())
                .unwrap_or_default();
            self.cap_log
                .record_with(self.clock.now(), CapOp::Check, rights_ok, || {
                    (
                        caller_name.clone(),
                        format!("{caller_name}:{ep}"),
                        format!("{ep}"),
                    )
                });
            if rights_ok {
                self.fire_armed_churn(caller, ep);
            }
        }
        if !cap.rights.write {
            return self.deny(caller, Sel4Error::InsufficientRights, "send without write");
        }
        if is_call && !cap.rights.grant {
            // Paper: "If a thread is given grant access to an endpoint it
            // can use seL4_Call."
            return self.deny(caller, Sel4Error::InsufficientRights, "call without grant");
        }
        if !msg.caps.is_empty() && !cap.rights.grant {
            return self.deny(
                caller,
                Sel4Error::InsufficientRights,
                "cap transfer without grant",
            );
        }

        // Resolve capabilities to transfer from the sender's CSpace,
        // keeping the source slot so the receiver's copy can be linked
        // into the derivation tree.
        let mut caps = Vec::with_capacity(msg.caps.len());
        for src in &msg.caps {
            match self
                .entry_ref(caller)
                .expect("caller alive")
                .cspace
                .lookup(*src)
            {
                Ok(c) => caps.push((c, *src)),
                Err(e) => return self.deny(caller, e, "transfer source missing"),
            }
        }

        // Scheduled IPC fault (`bas-faults` campaigns). Consumed only
        // *after* every capability rights check passed, so an injected
        // fault can disturb authorized IPC but cannot bypass the
        // capability gate.
        if let Some(fault) = self.ipc_faults.pop() {
            match fault {
                IpcFault::Drop => {
                    self.trace
                        .record_with(self.clock.now(), Some(caller), "fault.ipc", || {
                            format!("drop {caller} ep={ep:?} label={}", msg.label)
                        });
                    // A Call aborts (the reply can never come); a one-way
                    // send looks delivered.
                    if is_call {
                        self.ready_with(caller, Reply::Err(Sel4Error::NotReady));
                    } else {
                        self.ready_with(caller, Reply::Ok);
                    }
                    return;
                }
                IpcFault::Delay(d) => {
                    // The transfer stalls in the kernel: pay the latency,
                    // then rendezvous normally.
                    self.clock.advance(d);
                    self.trace
                        .record_with(self.clock.now(), Some(caller), "fault.ipc", || {
                            format!("delay {caller} ep={ep:?} +{}ms", d.as_millis())
                        });
                }
                IpcFault::Duplicate => {
                    // Rendezvous IPC has no queue to double-enqueue into
                    // and the one-shot reply capability absorbs a replayed
                    // Call, so the duplicate is absorbed (and recorded).
                    self.trace
                        .record_with(self.clock.now(), Some(caller), "fault.ipc", || {
                            format!("duplicate absorbed {caller} ep={ep:?}")
                        });
                }
            }
        }

        // Stage the message registers into the arena: the one user→kernel
        // copy. The parked send and the endpoint queue move the handle.
        let queued = QueuedSend {
            badge: cap.badge,
            label: msg.label,
            words: self.arena.alloc_words(&msg.words),
            caps,
            is_call,
        };

        if let Some(receiver) = self.find_receiver(ep) {
            self.rendezvous(caller, receiver, ep, queued);
        } else if blocking {
            self.metrics.ipc_waits += 1;
            if let Some(entry) = self.entry_mut(caller) {
                entry.state = ProcState::Blocked(Block::SendingOn { ep, queued });
            }
        } else {
            self.ready_with(caller, Reply::Err(Sel4Error::NotReady));
        }
    }

    fn do_recv(&mut self, caller: Pid, ep_ptr: CPtr, blocking: bool) {
        let (ep, cap) = match self.lookup_ep_cap(caller, ep_ptr) {
            Ok(v) => v,
            Err(e) => return self.deny(caller, e, "recv"),
        };
        if !cap.rights.read {
            return self.deny(caller, Sel4Error::InsufficientRights, "recv without read");
        }

        // Lowest-pid sender blocked on this endpoint.
        let sender = self.threads.iter().enumerate().find_map(|(i, t)| {
            let e = t.as_ref()?;
            match &e.state {
                ProcState::Blocked(Block::SendingOn { ep: s_ep, .. }) if *s_ep == ep => {
                    Some(Pid::new(i as u32))
                }
                _ => None,
            }
        });

        match sender {
            Some(sender_pid) => {
                let queued = {
                    let entry = self.entry_mut(sender_pid).expect("sender alive");
                    match std::mem::replace(&mut entry.state, ProcState::Runnable) {
                        ProcState::Blocked(Block::SendingOn { queued, .. }) => queued,
                        _ => unreachable!("sender was sending"),
                    }
                };
                self.rendezvous_with_waiting_receiver(sender_pid, caller, ep, queued);
            }
            None if blocking => {
                if let Some(entry) = self.entry_mut(caller) {
                    entry.state = ProcState::Blocked(Block::ReceivingOn { ep });
                }
            }
            None => self.ready_with(caller, Reply::Err(Sel4Error::NotReady)),
        }
    }

    /// Completes a rendezvous where the receiver was found blocked.
    fn rendezvous(&mut self, sender: Pid, receiver: Pid, ep: ObjId, queued: QueuedSend) {
        // Receiver was blocked ReceivingOn; clear its state first.
        if let Some(entry) = self.entry_mut(receiver) {
            entry.state = ProcState::Runnable;
        }
        self.complete_transfer(sender, receiver, ep, queued);
    }

    /// Completes a rendezvous where the sender was found blocked (receiver
    /// just called recv).
    fn rendezvous_with_waiting_receiver(
        &mut self,
        sender: Pid,
        receiver: Pid,
        ep: ObjId,
        queued: QueuedSend,
    ) {
        self.complete_transfer(sender, receiver, ep, queued);
    }

    fn complete_transfer(&mut self, sender: Pid, receiver: Pid, ep: ObjId, queued: QueuedSend) {
        let QueuedSend {
            badge,
            label,
            words: words_ref,
            caps,
            is_call,
        } = queued;
        // The one kernel→user copy: unpack the registers and recycle the
        // slot before handing the message to the receiver.
        let words = self.arena.get_words(words_ref);
        self.arena.free(words_ref);
        self.metrics.hot_path_allocs = self.arena.heap_events();

        // Install transferred caps into the receiver's CSpace; drops on
        // overflow (with a trace record), as real seL4 truncates. Each
        // installed copy is a CDT child of the sender's source slot, so a
        // later revoke sweep on the sender reaps it too.
        let mut received_caps = Vec::new();
        for (c, src_slot) in caps {
            match self
                .entry_mut(receiver)
                .expect("receiver alive")
                .cspace
                .insert(c)
            {
                Ok(slot) => {
                    self.cdt.insert(
                        (receiver.as_u32(), slot.slot()),
                        (sender.as_u32(), src_slot.slot()),
                    );
                    received_caps.push(slot);
                }
                Err(_) => self.trace.record(
                    self.clock.now(),
                    Some(receiver),
                    "cap.dropped",
                    "transfer overflowed receiver cspace".into(),
                ),
            }
        }

        let bytes = 8 + words.len() * 8;
        self.metrics.ipc_messages += 1;
        self.metrics.ipc_bytes += bytes as u64;
        self.clock.charge_ipc_copy(bytes);
        self.trace
            .record_with(self.clock.now(), Some(receiver), "ipc.deliver", || {
                format!("{sender} -> {receiver} label={label} badge={badge}")
            });

        // Capability-stream instrumentation: the delivery *uses* the
        // admission decision made at send time without re-checking — real
        // seL4 behavior. `ok` is an observer-only recheck against the
        // sender's *current* CSpace; `ok = false` on a delivered message
        // is the stale-handle use the race detector flags.
        if self.cap_log.enabled() {
            let sender_name = self
                .entry_ref(sender)
                .map(|e| e.name.clone())
                .unwrap_or_default();
            let receiver_name = self
                .entry_ref(receiver)
                .map(|e| e.name.clone())
                .unwrap_or_default();
            let still_ok = self
                .entry_ref(sender)
                .map(|e| {
                    e.cspace
                        .iter()
                        .any(|(_, c)| c.object() == Some(ep) && c.rights.write)
                })
                .unwrap_or(false);
            let now = self.clock.now();
            let use_seq = self.cap_log.record_with(now, CapOp::Use, still_ok, || {
                (
                    sender_name.clone(),
                    format!("{sender_name}:{ep}"),
                    format!("{ep}"),
                )
            });
            let recv_seq = self.cap_log.record_with(now, CapOp::Recv, true, || {
                (
                    receiver_name.clone(),
                    format!("{sender_name}:{ep}"),
                    format!("{ep}"),
                )
            });
            self.cap_log.edge(use_seq, recv_seq);
        }

        if is_call {
            if let Some(entry) = self.entry_mut(receiver) {
                entry.reply_slot = Some(Capability::reply_to(sender));
            }
            if let Some(entry) = self.entry_mut(sender) {
                entry.state = ProcState::Blocked(Block::AwaitingReply);
            }
        } else {
            self.ready_with(sender, Reply::Ok);
        }

        self.ready_with(
            receiver,
            Reply::Msg(DeliveredMessage {
                badge,
                label,
                words,
                received_caps,
                reply_expected: is_call,
            }),
        );
    }

    fn do_reply(&mut self, caller: Pid, msg: IpcMessage) {
        let reply_cap = match self.entry_mut(caller).and_then(|e| e.reply_slot.take()) {
            Some(c) => c,
            None => return self.deny(caller, Sel4Error::NoReplyCap, "reply"),
        };
        let CapTarget::Reply(target) = reply_cap.target else {
            return self.deny(caller, Sel4Error::WrongObjectType, "reply slot corrupt");
        };

        // Resolve transferred caps (a reply cap carries grant).
        let mut caps = Vec::with_capacity(msg.caps.len());
        for src in &msg.caps {
            match self
                .entry_ref(caller)
                .expect("caller alive")
                .cspace
                .lookup(*src)
            {
                Ok(c) => caps.push(c),
                Err(e) => return self.deny(caller, e, "reply transfer source missing"),
            }
        }

        let target_waiting = matches!(
            self.entry_ref(target).map(|e| &e.state),
            Some(ProcState::Blocked(Block::AwaitingReply))
        );
        if !target_waiting {
            // Reply caps are one-shot: if the caller died or was restarted
            // the reply is silently dropped (seL4 semantics).
            self.trace
                .record_with(self.clock.now(), Some(caller), "ipc.reply_dropped", || {
                    format!("target {target} not awaiting reply")
                });
            self.ready_with(caller, Reply::Ok);
            return;
        }

        let mut received_caps = Vec::new();
        for c in caps {
            if let Ok(slot) = self
                .entry_mut(target)
                .expect("target alive")
                .cspace
                .insert(c)
            {
                received_caps.push(slot);
            }
        }

        let bytes = 8 + msg.words.len() * 8;
        self.metrics.ipc_messages += 1;
        self.metrics.ipc_bytes += bytes as u64;
        self.clock.charge_ipc_copy(bytes);

        self.ready_with(
            target,
            Reply::Msg(DeliveredMessage {
                badge: 0,
                label: msg.label,
                words: msg.words,
                received_caps,
                reply_expected: false,
            }),
        );
        self.ready_with(caller, Reply::Ok);
    }

    fn do_signal(&mut self, caller: Pid, ntfn_ptr: CPtr) {
        let cap = match self
            .entry_ref(caller)
            .expect("caller alive")
            .cspace
            .lookup(ntfn_ptr)
        {
            Ok(c) => c,
            Err(e) => return self.deny(caller, e, "signal"),
        };
        let Some(obj) = cap.object() else {
            return self.deny(caller, Sel4Error::WrongObjectType, "signal on reply cap");
        };
        if !matches!(self.object(obj), Some(KernelObject::Notification { .. })) {
            return self.deny(
                caller,
                Sel4Error::WrongObjectType,
                "signal on non-notification",
            );
        }
        if !cap.rights.write {
            return self.deny(
                caller,
                Sel4Error::InsufficientRights,
                "signal without write",
            );
        }

        let waiter = self.threads.iter().enumerate().find_map(|(i, t)| {
            let e = t.as_ref()?;
            match &e.state {
                ProcState::Blocked(Block::WaitingNtfn { ntfn }) if *ntfn == obj => {
                    Some(Pid::new(i as u32))
                }
                _ => None,
            }
        });

        let signal_bits = if cap.badge == 0 { 1 } else { cap.badge };
        match waiter {
            Some(w) => {
                self.ready_with(
                    w,
                    Reply::Msg(DeliveredMessage {
                        badge: signal_bits,
                        label: 0,
                        words: vec![],
                        received_caps: vec![],
                        reply_expected: false,
                    }),
                );
            }
            None => {
                if let Some(KernelObject::Notification { word }) =
                    self.objects.get_mut(obj.as_usize())
                {
                    *word |= signal_bits;
                }
            }
        }
        self.ready_with(caller, Reply::Ok);
    }

    fn do_wait(&mut self, caller: Pid, ntfn_ptr: CPtr) {
        let cap = match self
            .entry_ref(caller)
            .expect("caller alive")
            .cspace
            .lookup(ntfn_ptr)
        {
            Ok(c) => c,
            Err(e) => return self.deny(caller, e, "wait"),
        };
        let Some(obj) = cap.object() else {
            return self.deny(caller, Sel4Error::WrongObjectType, "wait on reply cap");
        };
        if !cap.rights.read {
            return self.deny(caller, Sel4Error::InsufficientRights, "wait without read");
        }
        match self.objects.get_mut(obj.as_usize()) {
            Some(KernelObject::Notification { word }) => {
                if *word != 0 {
                    let bits = std::mem::take(word);
                    self.ready_with(
                        caller,
                        Reply::Msg(DeliveredMessage {
                            badge: bits,
                            label: 0,
                            words: vec![],
                            received_caps: vec![],
                            reply_expected: false,
                        }),
                    );
                } else if let Some(entry) = self.entry_mut(caller) {
                    entry.state = ProcState::Blocked(Block::WaitingNtfn { ntfn: obj });
                }
            }
            _ => self.deny(
                caller,
                Sel4Error::WrongObjectType,
                "wait on non-notification",
            ),
        }
    }

    fn do_mint(&mut self, caller: Pid, src: CPtr, rights: CapRights, badge: u64) {
        let entry = self.entry_mut(caller).expect("caller alive");
        let cap = match entry.cspace.lookup(src) {
            Ok(c) => c,
            Err(e) => return self.deny(caller, e, "mint source"),
        };
        let Some(derived) = cap.mint(rights, badge) else {
            return self.deny(caller, Sel4Error::RightsViolation, "mint amplification");
        };
        let r = match self
            .entry_mut(caller)
            .expect("caller alive")
            .cspace
            .insert(derived)
        {
            Ok(slot) => {
                // A minted copy is a CDT child of its source: revoking the
                // source sweeps it away.
                self.cdt.insert(
                    (caller.as_u32(), slot.slot()),
                    (caller.as_u32(), src.slot()),
                );
                Reply::Slot(slot)
            }
            Err(e) => Reply::Err(e),
        };
        self.ready_with(caller, r);
    }

    fn do_tcb_suspend(&mut self, caller: Pid, tcb_ptr: CPtr) {
        let cap = match self
            .entry_ref(caller)
            .expect("caller alive")
            .cspace
            .lookup(tcb_ptr)
        {
            Ok(c) => c,
            Err(e) => return self.deny(caller, e, "tcb suspend"),
        };
        let Some(obj) = cap.object() else {
            return self.deny(caller, Sel4Error::WrongObjectType, "suspend via reply cap");
        };
        let target = match self.object(obj) {
            Some(KernelObject::Tcb { pid }) => *pid,
            _ => return self.deny(caller, Sel4Error::WrongObjectType, "suspend non-tcb"),
        };
        if !cap.rights.write {
            return self.deny(
                caller,
                Sel4Error::InsufficientRights,
                "suspend without write",
            );
        }
        self.trace
            .record_with(self.clock.now(), Some(caller), "tcb.suspend", || {
                format!("{caller} suspended {target}")
            });
        self.terminate(target);
        if target != caller {
            self.ready_with(caller, Reply::Ok);
        }
    }

    fn do_device(&mut self, caller: Pid, dev_ptr: CPtr, write: Option<i64>) {
        let cap = match self
            .entry_ref(caller)
            .expect("caller alive")
            .cspace
            .lookup(dev_ptr)
        {
            Ok(c) => c,
            Err(e) => return self.deny(caller, e, "device"),
        };
        let Some(obj) = cap.object() else {
            return self.deny(caller, Sel4Error::WrongObjectType, "device via reply cap");
        };
        let dev = match self.object(obj) {
            Some(KernelObject::Device { dev }) => *dev,
            _ => return self.deny(caller, Sel4Error::WrongObjectType, "not a device frame"),
        };
        match write {
            Some(value) => {
                if !cap.rights.write {
                    return self.deny(caller, Sel4Error::InsufficientRights, "device write");
                }
                match self.devices.write(dev, value) {
                    Ok(()) => {
                        self.trace
                            .record_with(self.clock.now(), Some(caller), "dev.write", || {
                                format!("{dev} <- {value}")
                            });
                        self.ready_with(caller, Reply::Ok);
                    }
                    Err(_) => self.ready_with(caller, Reply::Err(Sel4Error::WrongObjectType)),
                }
            }
            None => {
                if !cap.rights.read {
                    return self.deny(caller, Sel4Error::InsufficientRights, "device read");
                }
                match self.devices.read(dev) {
                    Ok(v) => self.ready_with(caller, Reply::DevValue(v)),
                    Err(_) => self.ready_with(caller, Reply::Err(Sel4Error::WrongObjectType)),
                }
            }
        }
    }

    // ----- internals -------------------------------------------------------------

    fn find_receiver(&self, ep: ObjId) -> Option<Pid> {
        self.threads.iter().enumerate().find_map(|(i, t)| {
            let e = t.as_ref()?;
            match &e.state {
                ProcState::Blocked(Block::ReceivingOn { ep: r_ep }) if *r_ep == ep => {
                    Some(Pid::new(i as u32))
                }
                _ => None,
            }
        })
    }

    fn alloc_object(&mut self, obj: KernelObject) -> ObjId {
        let id = ObjId::new(self.objects.len() as u32);
        self.objects.push(obj);
        id
    }

    fn terminate(&mut self, pid: Pid) {
        let Some(entry) = self.threads.get_mut(pid.as_usize()).and_then(Option::take) else {
            return;
        };
        // A thread parked in a send owns a staged arena slot; recycle it.
        if let ProcState::Blocked(Block::SendingOn { ref queued, .. }) = entry.state {
            self.arena.free(queued.words);
        }
        self.run_queue.remove(pid);
        self.timers.cancel(pid);
        // The dead thread's CSpace is gone; drop its derivation records
        // (entries derived *from* them become roots, which is harmless:
        // sweeps start from live holders).
        self.cdt.retain(|child, _| child.0 != pid.as_u32());
        self.metrics.processes_reaped += 1;
        if self.last_run == Some(pid) {
            self.last_run = None;
        }
        // If the dead thread owed someone a reply, wake the caller with an
        // aborted-IPC error.
        if let Some(Capability {
            target: CapTarget::Reply(waiter),
            ..
        }) = entry.reply_slot
        {
            if matches!(
                self.entry_ref(waiter).map(|e| &e.state),
                Some(ProcState::Blocked(Block::AwaitingReply))
            ) {
                self.ready_with(waiter, Reply::Err(Sel4Error::InvalidCapability));
            }
        }
    }

    fn ready_with(&mut self, pid: Pid, reply: Reply) {
        if let Some(entry) = self.entry_mut(pid) {
            entry.pending_reply = Some(reply);
            entry.state = ProcState::Runnable;
            self.run_queue.enqueue(pid);
        }
    }

    fn entry_ref(&self, pid: Pid) -> Option<&ThreadEntry> {
        self.threads.get(pid.as_usize()).and_then(Option::as_ref)
    }

    fn entry_mut(&mut self, pid: Pid) -> Option<&mut ThreadEntry> {
        self.threads
            .get_mut(pid.as_usize())
            .and_then(Option::as_mut)
    }
}
