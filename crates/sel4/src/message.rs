//! IPC message format.
//!
//! seL4 messages are a label plus a bounded number of message registers;
//! capabilities can ride along if the endpoint capability carries `grant`.

use serde::{Deserialize, Serialize};

use crate::cap::CPtr;

/// Maximum number of data words in a message (seL4's `seL4_MsgMaxLength`
/// is 120; the scenario never needs more than a handful).
pub const MAX_MSG_WORDS: usize = 64;

/// Maximum number of capabilities transferable in one message (seL4
/// allows 3 `extraCaps`).
pub const MAX_MSG_CAPS: usize = 3;

/// An outgoing IPC message.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IpcMessage {
    /// The message label (analogous to a method/selector id).
    pub label: u64,
    /// Data words.
    pub words: Vec<u64>,
    /// CSpace slots (in the *sender's* CSpace) of capabilities to
    /// transfer. Requires `grant` on the endpoint capability.
    pub caps: Vec<CPtr>,
}

impl IpcMessage {
    /// An empty message with the given label.
    pub fn with_label(label: u64) -> Self {
        IpcMessage {
            label,
            words: Vec::new(),
            caps: Vec::new(),
        }
    }

    /// A message with label and data words.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_MSG_WORDS`] words are supplied.
    pub fn with_data(label: u64, words: impl Into<Vec<u64>>) -> Self {
        let words = words.into();
        assert!(
            words.len() <= MAX_MSG_WORDS,
            "message too long: {} words",
            words.len()
        );
        IpcMessage {
            label,
            words,
            caps: Vec::new(),
        }
    }

    /// Adds a capability to transfer.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_MSG_CAPS`] capabilities are attached.
    pub fn with_cap(mut self, cap: CPtr) -> Self {
        assert!(self.caps.len() < MAX_MSG_CAPS, "too many caps in message");
        self.caps.push(cap);
        self
    }
}

/// A message as delivered to a receiver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredMessage {
    /// The badge of the capability the *sender* invoked — the receiver's
    /// only information about the sender's identity, and unforgeable.
    pub badge: u64,
    /// The message label.
    pub label: u64,
    /// Data words.
    pub words: Vec<u64>,
    /// Slots in the *receiver's* CSpace where transferred capabilities
    /// were installed.
    pub received_caps: Vec<CPtr>,
    /// True if the sender used `seL4_Call` and a reply capability is now
    /// in the receiver's reply slot.
    pub reply_expected: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let m = IpcMessage::with_data(7, vec![1, 2, 3]).with_cap(CPtr::new(4));
        assert_eq!(m.label, 7);
        assert_eq!(m.words, vec![1, 2, 3]);
        assert_eq!(m.caps, vec![CPtr::new(4)]);
    }

    #[test]
    #[should_panic(expected = "message too long")]
    fn oversized_message_rejected() {
        let _ = IpcMessage::with_data(0, vec![0u64; MAX_MSG_WORDS + 1]);
    }

    #[test]
    #[should_panic(expected = "too many caps")]
    fn too_many_caps_rejected() {
        let mut m = IpcMessage::with_label(0);
        for i in 0..=MAX_MSG_CAPS {
            m = m.with_cap(CPtr::new(i as u32));
        }
    }
}
