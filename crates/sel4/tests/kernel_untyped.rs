//! Untyped memory and retype: object creation in seL4 is explicit,
//! transferable authority — the reason resource-exhaustion attacks need a
//! capability grant to even begin, and are bounded by the region size
//! when they do.

use bas_sel4::cap::{CPtr, Capability};
use bas_sel4::error::Sel4Error;
use bas_sel4::kernel::{Sel4Config, Sel4Kernel};
use bas_sel4::message::IpcMessage;
use bas_sel4::objects::ObjKind;
use bas_sel4::rights::CapRights;
use bas_sel4::syscall::{Reply, RetypeKind, Syscall};
use bas_sim::script::{replies, Script};

type S = Script<Syscall, Reply>;

#[test]
fn retype_creates_a_usable_endpoint() {
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let ut = k.create_untyped(64);

    // The holder retypes an endpoint (lands in slot 1), receives on it;
    // a partner minted a cap from... simpler: holder retypes then sends
    // to itself is impossible — use two threads: holder retypes and
    // *identifies* the new object, then receives on it after handing a
    // cap to the sender via bootstrap is impossible post-boot... so just
    // verify the new cap is full-rights and invocable.
    let (holder, log) = S::new(vec![
        Syscall::Retype {
            untyped: CPtr::new(0),
            kind: RetypeKind::Endpoint,
        },
        Syscall::Identify { slot: CPtr::new(1) },
        Syscall::NBRecv { ep: CPtr::new(1) }, // valid invocation; empty queue
    ])
    .logged();
    let pid = k.create_thread("holder", Box::new(holder));
    k.grant_cap(pid, Capability::to_object(ut, CapRights::RW, 0))
        .unwrap();
    k.start_thread(pid);
    k.run_to_quiescence();

    let got = replies(&log);
    assert_eq!(got[0], Reply::Slot(CPtr::new(1)));
    assert_eq!(got[1], Reply::Identified(Some(ObjKind::Endpoint)));
    assert_eq!(
        got[2],
        Reply::Err(Sel4Error::NotReady),
        "fully invocable endpoint"
    );
    assert_eq!(k.trace().events_in("untyped.retype").count(), 1);
}

#[test]
fn retype_is_bounded_by_the_region_size() {
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let ut = k.create_untyped(48); // room for exactly 3 × 16-byte objects
    let steps: Vec<Syscall> = (0..5)
        .map(|_| Syscall::Retype {
            untyped: CPtr::new(0),
            kind: RetypeKind::Notification,
        })
        .collect();
    let (t, log) = S::new(steps).logged();
    let pid = k.create_thread("t", Box::new(t));
    k.grant_cap(pid, Capability::to_object(ut, CapRights::RW, 0))
        .unwrap();
    k.start_thread(pid);
    k.run_to_quiescence();

    let got = replies(&log);
    let created = got.iter().filter(|r| matches!(r, Reply::Slot(_))).count();
    let exhausted = got
        .iter()
        .filter(|r| **r == Reply::Err(Sel4Error::OutOfMemory))
        .count();
    assert_eq!(created, 3, "authority bounds allocation");
    assert_eq!(exhausted, 2);
}

#[test]
fn retype_without_a_capability_is_impossible() {
    // The fork-bomb cell on seL4, concretely: the web interface holds no
    // untyped capability, so it cannot create even one object.
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let _ut = k.create_untyped(1 << 20); // exists, but nobody granted it
    let steps: Vec<Syscall> = (0..16)
        .map(|i| Syscall::Retype {
            untyped: CPtr::new(i),
            kind: RetypeKind::Endpoint,
        })
        .collect();
    let (t, log) = S::new(steps).logged();
    let pid = k.create_thread("attacker", Box::new(t));
    k.start_thread(pid);
    k.run_to_quiescence();
    assert!(replies(&log)
        .iter()
        .all(|r| *r == Reply::Err(Sel4Error::InvalidCapability)));
}

#[test]
fn read_only_untyped_cap_cannot_retype() {
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let ut = k.create_untyped(64);
    let (t, log) = S::new(vec![Syscall::Retype {
        untyped: CPtr::new(0),
        kind: RetypeKind::Endpoint,
    }])
    .logged();
    let pid = k.create_thread("t", Box::new(t));
    k.grant_cap(pid, Capability::to_object(ut, CapRights::READ, 0))
        .unwrap();
    k.start_thread(pid);
    k.run_to_quiescence();
    assert_eq!(
        replies(&log),
        vec![Reply::Err(Sel4Error::InsufficientRights)]
    );
}

#[test]
fn retype_of_non_untyped_object_rejected() {
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let ep = k.create_endpoint();
    let (t, log) = S::new(vec![Syscall::Retype {
        untyped: CPtr::new(0),
        kind: RetypeKind::Endpoint,
    }])
    .logged();
    let pid = k.create_thread("t", Box::new(t));
    k.grant_endpoint(pid, ep, CapRights::ALL, 0).unwrap();
    k.start_thread(pid);
    k.run_to_quiescence();
    assert_eq!(replies(&log), vec![Reply::Err(Sel4Error::WrongObjectType)]);
}

#[test]
fn retyped_endpoint_carries_full_ipc_semantics() {
    // End-to-end: dynamically created endpoint used for a Call/Reply
    // round trip after its cap is transferred to a partner via grant.
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let ut = k.create_untyped(64);
    let boot_ep = k.create_endpoint();

    // Creator: retype (slot 2), then send the new cap to the partner
    // through the boot endpoint (cap transfer requires grant), then serve
    // one request on the new endpoint.
    struct Creator;
    impl bas_sim::process::Process for Creator {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, reply: Option<Reply>) -> bas_sim::process::Action<Syscall> {
            use bas_sim::process::Action;
            match reply {
                None => Action::Syscall(Syscall::Retype {
                    untyped: CPtr::new(0),
                    kind: RetypeKind::Endpoint,
                }),
                Some(Reply::Slot(slot)) => Action::Syscall(Syscall::Send {
                    ep: CPtr::new(1), // boot endpoint (write+grant)
                    msg: IpcMessage::with_label(0).with_cap(slot),
                }),
                Some(Reply::Ok) => Action::Syscall(Syscall::Recv { ep: CPtr::new(2) }),
                Some(Reply::Msg(m)) => Action::Syscall(Syscall::Reply {
                    msg: IpcMessage::with_data(0, vec![m.words[0] * 3]),
                }),
                Some(_) => Action::Exit(1),
            }
        }
    }

    // Partner: receive the cap, then Call through it.
    struct Partner;
    impl bas_sim::process::Process for Partner {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, reply: Option<Reply>) -> bas_sim::process::Action<Syscall> {
            use bas_sim::process::Action;
            match reply {
                None => Action::Syscall(Syscall::Recv { ep: CPtr::new(0) }),
                Some(Reply::Msg(m)) if !m.received_caps.is_empty() => {
                    Action::Syscall(Syscall::Call {
                        ep: m.received_caps[0],
                        msg: IpcMessage::with_data(1, vec![14]),
                    })
                }
                Some(Reply::Msg(m)) => {
                    assert_eq!(m.words, vec![42], "3 × 14 through the dynamic endpoint");
                    Action::Exit(0)
                }
                Some(_) => Action::Exit(1),
            }
        }
    }

    let creator = k.create_thread("creator", Box::new(Creator));
    let partner = k.create_thread("partner", Box::new(Partner));
    k.grant_cap(creator, Capability::to_object(ut, CapRights::RW, 0))
        .unwrap();
    k.grant_endpoint(creator, boot_ep, CapRights::WRITE_GRANT, 0)
        .unwrap();
    k.grant_endpoint(partner, boot_ep, CapRights::READ, 0)
        .unwrap();
    k.start_thread(creator);
    k.start_thread(partner);
    k.run_to_quiescence();
    assert_eq!(
        k.metrics().processes_reaped,
        1,
        "partner exited 0 after the round trip"
    );
}
