//! Churn sweeps and the CapEvent stream on the seL4 kernel: CDT-tracked
//! revoke/attenuate, armed sweeps firing inside the check→delivery
//! window, and the emitted TOCTOU evidence.

use bas_sel4::cap::CPtr;
use bas_sel4::error::Sel4Error;
use bas_sel4::kernel::{ChurnSweep, Sel4Config, Sel4Kernel};
use bas_sel4::message::IpcMessage;
use bas_sel4::rights::CapRights;
use bas_sel4::syscall::{Reply, Syscall};
use bas_sim::caps::{CapOp, ChurnKind};
use bas_sim::process::Pid;
use bas_sim::script::{replies, Script};

type S = Script<Syscall, Reply>;

fn kernel() -> Sel4Kernel {
    Sel4Kernel::new(Sel4Config::default())
}

fn revoke_sweep(holder: Pid, objs: Vec<bas_sel4::objects::ObjId>) -> ChurnSweep {
    ChurnSweep {
        kind: ChurnKind::Revoke,
        actor: "churn-sched".into(),
        holder,
        objs,
        rights: CapRights::NONE,
        badge: 0,
    }
}

#[test]
fn revoke_sweep_removes_cap_and_denies_next_send() {
    let mut k = kernel();
    k.enable_cap_trace();
    let ep = k.create_endpoint();
    let (client, log) = S::new(vec![Syscall::Send {
        ep: CPtr::new(0),
        msg: IpcMessage::with_label(1),
    }])
    .logged();
    let pid = k.create_thread("client", Box::new(client));
    k.grant_endpoint(pid, ep, CapRights::WRITE, 0).unwrap();

    assert!(k.apply_churn_sweep(&revoke_sweep(pid, vec![ep])));
    assert_eq!(k.cspace_of(pid).unwrap().occupied(), 0);
    k.start_thread(pid);
    k.run_to_quiescence();

    // The capability is simply gone: the lookup itself fails.
    assert_eq!(
        replies(&log),
        vec![Reply::Err(Sel4Error::InvalidCapability)]
    );
    let trace = k.cap_trace();
    assert_eq!(trace.events.len(), 1);
    assert_eq!(trace.events[0].op, CapOp::Revoke);
    assert!(trace.events[0].ok);
    // Revoking again is a no-op.
    assert!(!k.apply_churn_sweep(&revoke_sweep(pid, vec![ep])));
}

#[test]
fn revoke_sweep_reaps_cdt_descendants_in_other_cspaces() {
    // client holds a grant-capable endpoint cap and transfers a copy to
    // peer; revoking the client's cap must also reap peer's derived copy.
    let mut k = kernel();
    let ep = k.create_endpoint();
    let transfer_ep = k.create_endpoint();

    // Both scripts end in a blocking Recv so the threads (and their
    // CSpaces) survive past the transfer.
    let (peer, _peer_log) = S::new(vec![
        Syscall::Recv { ep: CPtr::new(0) },
        Syscall::Recv { ep: CPtr::new(0) },
    ])
    .logged();
    let peer_pid = k.create_thread("peer", Box::new(peer));
    let (client, client_log) = S::new(vec![
        Syscall::Send {
            ep: CPtr::new(1),
            msg: IpcMessage::with_label(5).with_cap(CPtr::new(0)),
        },
        Syscall::Recv { ep: CPtr::new(1) },
    ])
    .logged();
    let client_pid = k.create_thread("client", Box::new(client));

    // Slot 0: the cap being copied. Slot 1: the transfer channel.
    k.grant_endpoint(client_pid, ep, CapRights::ALL, 7).unwrap();
    k.grant_endpoint(client_pid, transfer_ep, CapRights::ALL, 0)
        .unwrap();
    k.grant_endpoint(peer_pid, transfer_ep, CapRights::READ, 0)
        .unwrap();
    k.start_thread(peer_pid);
    k.start_thread(client_pid);
    k.run_to_quiescence();

    assert_eq!(replies(&client_log), vec![Reply::Ok]);
    assert_eq!(k.cspace_of(peer_pid).unwrap().occupied(), 2);

    // Revoke the client's cap on `ep`: the transferred copy dies with it.
    assert!(k.apply_churn_sweep(&revoke_sweep(client_pid, vec![ep])));
    let peer_objs: Vec<_> = k
        .cspace_of(peer_pid)
        .unwrap()
        .iter()
        .filter_map(|(_, c)| c.object())
        .collect();
    assert_eq!(peer_objs, vec![transfer_ep], "derived copy of ep reaped");
}

#[test]
fn armed_revoke_fires_inside_the_toctou_window() {
    let mut k = kernel();
    k.enable_cap_trace();
    let ep = k.create_endpoint();
    let (server, server_log) = S::new(vec![Syscall::Recv { ep: CPtr::new(0) }]).logged();
    let server_pid = k.create_thread("server", Box::new(server));
    let (client, client_log) = S::new(vec![Syscall::Send {
        ep: CPtr::new(0),
        msg: IpcMessage::with_label(9),
    }])
    .logged();
    let client_pid = k.create_thread("client", Box::new(client));
    k.grant_endpoint(server_pid, ep, CapRights::READ, 0)
        .unwrap();
    k.grant_endpoint(client_pid, ep, CapRights::WRITE, 0)
        .unwrap();

    k.arm_churn_sweep(revoke_sweep(client_pid, vec![ep]), 0);
    k.start_thread(server_pid);
    k.start_thread(client_pid);
    k.run_to_quiescence();

    // Delivered anyway: the rights check passed, the revoke landed, and
    // the transfer trusted the stale admission.
    assert_eq!(replies(&client_log), vec![Reply::Ok]);
    assert_eq!(replies(&server_log).len(), 1);

    let trace = k.cap_trace();
    let ops: Vec<(CapOp, bool)> = trace.events.iter().map(|e| (e.op, e.ok)).collect();
    assert_eq!(
        ops,
        vec![
            (CapOp::Check, true),
            (CapOp::Revoke, true),
            (CapOp::Use, false),
            (CapOp::Recv, true),
        ]
    );
    assert_eq!(
        trace.edges,
        vec![(trace.events[2].seq, trace.events[3].seq)]
    );
    assert_eq!(trace.events[0].subject, "client");
    assert_eq!(trace.events[3].subject, "server");
}

#[test]
fn attenuate_sweep_strips_write_right() {
    let mut k = kernel();
    let ep = k.create_endpoint();
    let (client, log) = S::new(vec![Syscall::Send {
        ep: CPtr::new(0),
        msg: IpcMessage::with_label(1),
    }])
    .logged();
    let pid = k.create_thread("client", Box::new(client));
    k.grant_endpoint(pid, ep, CapRights::RW, 0).unwrap();

    let sweep = ChurnSweep {
        kind: ChurnKind::Attenuate,
        actor: "churn-sched".into(),
        holder: pid,
        objs: vec![ep],
        rights: CapRights::READ,
        badge: 0,
    };
    assert!(k.apply_churn_sweep(&sweep));
    // Second application is a no-op (already narrowed).
    assert!(!k.apply_churn_sweep(&sweep));

    k.start_thread(pid);
    k.run_to_quiescence();
    assert_eq!(
        replies(&log),
        vec![Reply::Err(Sel4Error::InsufficientRights)]
    );
}
