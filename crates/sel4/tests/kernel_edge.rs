//! Edge-case semantics of the seL4 model: non-blocking receives, deletion,
//! badge derivation via mint, self-suspension, and notification pending
//! words.

use bas_sel4::cap::{CPtr, Capability};
use bas_sel4::error::Sel4Error;
use bas_sel4::kernel::{Sel4Config, Sel4Kernel};
use bas_sel4::message::IpcMessage;
use bas_sel4::rights::CapRights;
use bas_sel4::syscall::{Reply, Syscall};
use bas_sim::script::{replies, Script};

type S = Script<Syscall, Reply>;

#[test]
fn nbrecv_returns_not_ready_when_nothing_queued() {
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let ep = k.create_endpoint();
    let (t, log) = S::new(vec![Syscall::NBRecv { ep: CPtr::new(0) }]).logged();
    let pid = k.create_thread("t", Box::new(t));
    k.grant_endpoint(pid, ep, CapRights::READ, 0).unwrap();
    k.start_thread(pid);
    k.run_to_quiescence();
    assert_eq!(replies(&log), vec![Reply::Err(Sel4Error::NotReady)]);
}

#[test]
fn nbsend_fails_cleanly_and_blocking_pair_still_works_after() {
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let ep = k.create_endpoint();
    let (sender, log) = S::new(vec![
        Syscall::NBSend {
            ep: CPtr::new(0),
            msg: IpcMessage::with_label(1),
        }, // nobody waiting
        Syscall::Send {
            ep: CPtr::new(0),
            msg: IpcMessage::with_label(2),
        }, // blocks, then pairs
    ])
    .logged();
    let sender_pid = k.create_thread("sender", Box::new(sender));
    k.grant_endpoint(sender_pid, ep, CapRights::WRITE, 0)
        .unwrap();
    k.start_thread(sender_pid);
    k.run_to_quiescence(); // NBSend fails, Send parks

    let (receiver, rlog) = S::new(vec![Syscall::Recv { ep: CPtr::new(0) }]).logged();
    let receiver_pid = k.create_thread("receiver", Box::new(receiver));
    k.grant_endpoint(receiver_pid, ep, CapRights::READ, 0)
        .unwrap();
    k.start_thread(receiver_pid);
    k.run_to_quiescence();

    let s = replies(&log);
    assert_eq!(s[0], Reply::Err(Sel4Error::NotReady));
    assert_eq!(s[1], Reply::Ok);
    assert_eq!(
        replies(&rlog)[0].message().unwrap().label,
        2,
        "only the blocking send arrived"
    );
    // The failed NBSend does not count as backpressure; the parked
    // blocking send counts exactly once.
    assert_eq!(k.metrics().ipc_waits, 1);
}

#[test]
fn deleted_capability_is_gone_for_good() {
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let ep = k.create_endpoint();
    let (t, log) = S::new(vec![
        Syscall::Delete { slot: CPtr::new(0) },
        Syscall::NBSend {
            ep: CPtr::new(0),
            msg: IpcMessage::with_label(0),
        },
        Syscall::Delete { slot: CPtr::new(0) }, // double delete
    ])
    .logged();
    let pid = k.create_thread("t", Box::new(t));
    k.grant_endpoint(pid, ep, CapRights::ALL, 0).unwrap();
    k.start_thread(pid);
    k.run_to_quiescence();
    assert_eq!(
        replies(&log),
        vec![
            Reply::Ok,
            Reply::Err(Sel4Error::InvalidCapability),
            Reply::Err(Sel4Error::InvalidCapability),
        ]
    );
}

#[test]
fn minted_badges_identify_distinct_clients_of_one_cap() {
    // A server-side pattern: mint differently-badged children of one
    // endpoint cap and observe each badge on delivery.
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let ep = k.create_endpoint();

    // The minter derives badge-7 and badge-9 copies, then sends through
    // each; a receiver observes the badges.
    let (minter, mlog) = S::new(vec![
        Syscall::Mint {
            src: CPtr::new(0),
            rights: CapRights::WRITE,
            badge: 7,
        },
        Syscall::Mint {
            src: CPtr::new(0),
            rights: CapRights::WRITE,
            badge: 9,
        },
        Syscall::Send {
            ep: CPtr::new(1),
            msg: IpcMessage::with_label(1),
        },
        Syscall::Send {
            ep: CPtr::new(2),
            msg: IpcMessage::with_label(2),
        },
    ])
    .logged();
    let minter_pid = k.create_thread("minter", Box::new(minter));
    k.grant_endpoint(minter_pid, ep, CapRights::WRITE, 0)
        .unwrap();

    let (receiver, rlog) = S::new(vec![
        Syscall::Recv { ep: CPtr::new(0) },
        Syscall::Recv { ep: CPtr::new(0) },
    ])
    .logged();
    let receiver_pid = k.create_thread("receiver", Box::new(receiver));
    k.grant_endpoint(receiver_pid, ep, CapRights::READ, 0)
        .unwrap();

    k.start_thread(minter_pid);
    k.start_thread(receiver_pid);
    k.run_to_quiescence();

    let mint_replies = replies(&mlog);
    assert_eq!(mint_replies[0], Reply::Slot(CPtr::new(1)));
    assert_eq!(mint_replies[1], Reply::Slot(CPtr::new(2)));
    let badges: Vec<u64> = replies(&rlog)
        .iter()
        .filter_map(|r| r.message().map(|m| m.badge))
        .collect();
    assert_eq!(badges, vec![7, 9]);
}

#[test]
fn self_suspension_terminates_the_caller() {
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let pid = k.create_thread(
        "kamikaze",
        Box::new(S::new(vec![
            Syscall::TcbSuspend { tcb: CPtr::new(0) },
            Syscall::GetTime, // unreachable
        ])),
    );
    let tcb = k.tcb_of(pid).unwrap();
    k.grant_cap(pid, Capability::to_object(tcb, CapRights::ALL, 0))
        .unwrap();
    k.start_thread(pid);
    k.run_to_quiescence();
    assert!(!k.is_alive(pid));
    assert_eq!(k.metrics().processes_reaped, 1);
}

#[test]
fn wait_consumes_pending_word_without_blocking() {
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let ntfn = k.create_notification();
    let signaler = k.create_thread(
        "signaler",
        Box::new(S::new(vec![Syscall::Signal { ntfn: CPtr::new(0) }])),
    );
    k.grant_cap(
        signaler,
        Capability::to_object(ntfn, CapRights::WRITE, 0b101),
    )
    .unwrap();
    k.start_thread(signaler);
    k.run_to_quiescence();

    let (waiter, log) = S::new(vec![
        Syscall::Wait { ntfn: CPtr::new(0) },
        Syscall::NBRecv { ep: CPtr::new(0) }, // word consumed; this is a type error probe
    ])
    .logged();
    let waiter_pid = k.create_thread("waiter", Box::new(waiter));
    k.grant_cap(waiter_pid, Capability::to_object(ntfn, CapRights::READ, 0))
        .unwrap();
    k.start_thread(waiter_pid);
    k.run_to_quiescence();
    let got = replies(&log);
    assert_eq!(got[0].message().unwrap().badge, 0b101);
    assert_eq!(got[1], Reply::Err(Sel4Error::WrongObjectType));
}

#[test]
fn signal_without_write_and_wait_without_read_denied() {
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let ntfn = k.create_notification();
    let (t, log) = S::new(vec![
        Syscall::Signal { ntfn: CPtr::new(0) }, // read-only cap
        Syscall::Wait { ntfn: CPtr::new(1) },   // write-only cap
    ])
    .logged();
    let pid = k.create_thread("t", Box::new(t));
    k.grant_cap(pid, Capability::to_object(ntfn, CapRights::READ, 0))
        .unwrap();
    k.grant_cap(pid, Capability::to_object(ntfn, CapRights::WRITE, 0))
        .unwrap();
    k.start_thread(pid);
    k.run_to_quiescence();
    assert_eq!(
        replies(&log),
        vec![
            Reply::Err(Sel4Error::InsufficientRights),
            Reply::Err(Sel4Error::InsufficientRights),
        ]
    );
}
