//! The paper's seL4 system "added two additional timer driver processes
//! for demonstration purposes" (§IV-B). This test builds that pattern: a
//! timer driver thread paces a worker through a notification object,
//! demonstrating Signal/Wait as the timing mechanism rather than a kernel
//! sleep in the worker itself.

use bas_sel4::cap::{CPtr, Capability};
use bas_sel4::kernel::{Sel4Config, Sel4Kernel};
use bas_sel4::rights::CapRights;
use bas_sel4::syscall::{Reply, Syscall};
use bas_sim::process::{Action, Process};
use bas_sim::time::{SimDuration, SimTime};

/// Timer driver: sleeps one period, signals the notification, repeats.
struct TimerDriver {
    ntfn: CPtr,
    period: SimDuration,
    ticks_left: u32,
    sleeping: bool,
}

impl Process for TimerDriver {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
        if self.ticks_left == 0 {
            return Action::Exit(0);
        }
        if self.sleeping {
            self.sleeping = false;
            self.ticks_left -= 1;
            Action::Syscall(Syscall::Signal { ntfn: self.ntfn })
        } else {
            self.sleeping = true;
            Action::Syscall(Syscall::Sleep {
                duration: self.period,
            })
        }
    }

    fn name(&self) -> &str {
        "timer_driver"
    }
}

/// Worker: waits on the notification each cycle and records the virtual
/// time of each tick.
struct PacedWorker {
    ntfn: CPtr,
    tick_times: std::rc::Rc<std::cell::RefCell<Vec<SimTime>>>,
    awaiting_time: bool,
}

impl Process for PacedWorker {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        if self.awaiting_time {
            self.awaiting_time = false;
            if let Some(Reply::Time(t)) = reply {
                self.tick_times.borrow_mut().push(t);
            }
            return Action::Syscall(Syscall::Wait { ntfn: self.ntfn });
        }
        match reply {
            Some(Reply::Msg(_)) => {
                self.awaiting_time = true;
                Action::Syscall(Syscall::GetTime)
            }
            _ => Action::Syscall(Syscall::Wait { ntfn: self.ntfn }),
        }
    }

    fn name(&self) -> &str {
        "paced_worker"
    }
}

#[test]
fn notification_timer_paces_worker_at_the_period() {
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let ntfn = k.create_notification();

    let ticks = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let worker = k.create_thread(
        "worker",
        Box::new(PacedWorker {
            ntfn: CPtr::new(0),
            tick_times: ticks.clone(),
            awaiting_time: false,
        }),
    );
    let timer = k.create_thread(
        "timer",
        Box::new(TimerDriver {
            ntfn: CPtr::new(0),
            period: SimDuration::from_secs(1),
            ticks_left: 10,
            sleeping: false,
        }),
    );
    k.grant_cap(worker, Capability::to_object(ntfn, CapRights::READ, 0))
        .unwrap();
    k.grant_cap(timer, Capability::to_object(ntfn, CapRights::WRITE, 1))
        .unwrap();
    k.start_thread(worker);
    k.start_thread(timer);
    k.run_to_quiescence();

    let times = ticks.borrow();
    assert_eq!(times.len(), 10, "one wakeup per signal");
    for pair in times.windows(2) {
        let gap = pair[1].saturating_since(pair[0]);
        let gap_ms = gap.as_millis();
        assert!(
            (990..=1_010).contains(&gap_ms),
            "tick spacing {gap_ms}ms should be ~1000ms"
        );
    }
}

#[test]
fn signals_coalesce_when_worker_is_busy() {
    // Notifications are binary semaphores: several signals arriving while
    // nobody waits collapse into one pending word (bits ORed).
    let mut k = Sel4Kernel::new(Sel4Config::default());
    let ntfn = k.create_notification();

    // Signal three times before anyone waits.
    let signaler = k.create_thread(
        "signaler",
        Box::new(bas_sim::script::Script::<Syscall, Reply>::new(vec![
            Syscall::Signal { ntfn: CPtr::new(0) },
            Syscall::Signal { ntfn: CPtr::new(0) },
            Syscall::Signal { ntfn: CPtr::new(0) },
        ])),
    );
    k.grant_cap(
        signaler,
        Capability::to_object(ntfn, CapRights::WRITE, 0b10),
    )
    .unwrap();
    k.start_thread(signaler);
    k.run_to_quiescence();

    // Now a waiter arrives: it consumes the coalesced word at once...
    let (waiter, log) = bas_sim::script::Script::<Syscall, Reply>::new(vec![
        Syscall::Wait { ntfn: CPtr::new(0) },
        Syscall::NBRecv { ep: CPtr::new(0) }, // wrong type probe (fails; shows nothing pending)
    ])
    .logged();
    let waiter_pid = k.create_thread("waiter", Box::new(waiter));
    k.grant_cap(waiter_pid, Capability::to_object(ntfn, CapRights::READ, 0))
        .unwrap();
    k.start_thread(waiter_pid);
    k.run_to_quiescence();

    let got = bas_sim::script::replies(&log);
    let first = got[0].message().expect("coalesced signal delivered");
    assert_eq!(first.badge, 0b10, "signal bits from the badge, ORed once");
}
