//! Integration tests for seL4 kernel semantics: rendezvous, rights
//! checking, Call/Reply with one-shot reply capabilities, badges, cap
//! transfer under grant, confinement, and TCB suspension.

use bas_sel4::cap::{CPtr, Capability};
use bas_sel4::error::Sel4Error;
use bas_sel4::kernel::{Sel4Config, Sel4Kernel};
use bas_sel4::message::IpcMessage;
use bas_sel4::objects::ObjKind;
use bas_sel4::rights::CapRights;
use bas_sel4::syscall::{Reply, Syscall};
use bas_sim::process::Pid;
use bas_sim::script::{replies, Script};

type S = Script<Syscall, Reply>;

fn kernel() -> Sel4Kernel {
    Sel4Kernel::new(Sel4Config::default())
}

#[test]
fn send_recv_rendezvous_with_badge() {
    let mut k = kernel();
    let ep = k.create_endpoint();
    let (server, server_log) = S::new(vec![Syscall::Recv { ep: CPtr::new(0) }]).logged();
    let server_pid = k.create_thread("server", Box::new(server));
    let (client, client_log) = S::new(vec![Syscall::Send {
        ep: CPtr::new(0),
        msg: IpcMessage::with_data(9, vec![1, 2]),
    }])
    .logged();
    let client_pid = k.create_thread("client", Box::new(client));
    k.grant_endpoint(server_pid, ep, CapRights::READ, 0)
        .unwrap();
    k.grant_endpoint(client_pid, ep, CapRights::WRITE, 77)
        .unwrap();
    k.start_thread(server_pid);
    k.start_thread(client_pid);
    k.run_to_quiescence();

    assert_eq!(replies(&client_log), vec![Reply::Ok]);
    let got = replies(&server_log);
    let msg = got[0].message().expect("delivered");
    assert_eq!(msg.badge, 77, "badge identifies the sender's capability");
    assert_eq!(msg.label, 9);
    assert_eq!(msg.words, vec![1, 2]);
    assert!(!msg.reply_expected);
    assert_eq!(k.metrics().ipc_messages, 1);
}

#[test]
fn send_without_write_right_denied() {
    let mut k = kernel();
    let ep = k.create_endpoint();
    let (client, log) = S::new(vec![Syscall::Send {
        ep: CPtr::new(0),
        msg: IpcMessage::with_label(1),
    }])
    .logged();
    let pid = k.create_thread("client", Box::new(client));
    k.grant_endpoint(pid, ep, CapRights::READ, 0).unwrap(); // read-only!
    k.start_thread(pid);
    k.run_to_quiescence();
    assert_eq!(
        replies(&log),
        vec![Reply::Err(Sel4Error::InsufficientRights)]
    );
    assert_eq!(k.metrics().access_denied, 1);
}

#[test]
fn recv_without_read_right_denied() {
    let mut k = kernel();
    let ep = k.create_endpoint();
    let (t, log) = S::new(vec![Syscall::Recv { ep: CPtr::new(0) }]).logged();
    let pid = k.create_thread("t", Box::new(t));
    k.grant_endpoint(pid, ep, CapRights::WRITE, 0).unwrap(); // write-only!
    k.start_thread(pid);
    k.run_to_quiescence();
    assert_eq!(
        replies(&log),
        vec![Reply::Err(Sel4Error::InsufficientRights)]
    );
}

#[test]
fn invoking_empty_slot_is_invalid_capability() {
    let mut k = kernel();
    let (t, log) = S::new(vec![
        Syscall::Send {
            ep: CPtr::new(5),
            msg: IpcMessage::with_label(0),
        },
        Syscall::Recv { ep: CPtr::new(63) },
        Syscall::TcbSuspend { tcb: CPtr::new(7) },
        Syscall::Identify { slot: CPtr::new(9) },
    ])
    .logged();
    let pid = k.create_thread("prober", Box::new(t));
    k.start_thread(pid);
    k.run_to_quiescence();
    assert_eq!(
        replies(&log),
        vec![
            Reply::Err(Sel4Error::InvalidCapability),
            Reply::Err(Sel4Error::InvalidCapability),
            Reply::Err(Sel4Error::InvalidCapability),
            Reply::Err(Sel4Error::InvalidCapability),
        ],
        "an empty CSpace is an empty world"
    );
}

#[test]
fn call_reply_roundtrip_with_reply_cap() {
    let mut k = kernel();
    let ep = k.create_endpoint();

    // Server: Recv, then Reply with the doubled word.
    struct Server;
    impl bas_sim::process::Process for Server {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, reply: Option<Reply>) -> bas_sim::process::Action<Syscall> {
            match reply {
                None => bas_sim::process::Action::Syscall(Syscall::Recv { ep: CPtr::new(0) }),
                Some(Reply::Msg(m)) => {
                    assert!(m.reply_expected, "Call must attach a reply cap");
                    bas_sim::process::Action::Syscall(Syscall::Reply {
                        msg: IpcMessage::with_data(100, vec![m.words[0] * 2]),
                    })
                }
                Some(_) => bas_sim::process::Action::Exit(0),
            }
        }
    }
    let server_pid = k.create_thread("server", Box::new(Server));
    let (client, client_log) = S::new(vec![Syscall::Call {
        ep: CPtr::new(0),
        msg: IpcMessage::with_data(5, vec![21]),
    }])
    .logged();
    let client_pid = k.create_thread("client", Box::new(client));
    k.grant_endpoint(server_pid, ep, CapRights::READ, 0)
        .unwrap();
    k.grant_endpoint(client_pid, ep, CapRights::WRITE_GRANT, 3)
        .unwrap();
    k.start_thread(server_pid);
    k.start_thread(client_pid);
    k.run_to_quiescence();

    let got = replies(&client_log);
    let msg = got[0].message().expect("reply delivered");
    assert_eq!(msg.label, 100);
    assert_eq!(msg.words, vec![42]);
    assert_eq!(k.metrics().ipc_messages, 2, "request + reply");
}

#[test]
fn call_without_grant_denied() {
    let mut k = kernel();
    let ep = k.create_endpoint();
    let (client, log) = S::new(vec![Syscall::Call {
        ep: CPtr::new(0),
        msg: IpcMessage::with_label(1),
    }])
    .logged();
    let pid = k.create_thread("client", Box::new(client));
    k.grant_endpoint(pid, ep, CapRights::WRITE, 0).unwrap(); // no grant
    k.start_thread(pid);
    k.run_to_quiescence();
    assert_eq!(
        replies(&log),
        vec![Reply::Err(Sel4Error::InsufficientRights)]
    );
}

#[test]
fn reply_cap_is_one_shot() {
    let mut k = kernel();
    let ep = k.create_endpoint();
    struct DoubleReplyServer;
    impl bas_sim::process::Process for DoubleReplyServer {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, reply: Option<Reply>) -> bas_sim::process::Action<Syscall> {
            match reply {
                None => bas_sim::process::Action::Syscall(Syscall::Recv { ep: CPtr::new(0) }),
                Some(Reply::Msg(_)) => bas_sim::process::Action::Syscall(Syscall::Reply {
                    msg: IpcMessage::with_label(1),
                }),
                Some(Reply::Ok) => {
                    // Second Reply attempt: reply cap already consumed.
                    bas_sim::process::Action::Syscall(Syscall::Reply {
                        msg: IpcMessage::with_label(2),
                    })
                }
                Some(Reply::Err(e)) => {
                    assert_eq!(e, Sel4Error::NoReplyCap);
                    bas_sim::process::Action::Exit(0)
                }
                _ => bas_sim::process::Action::Exit(1),
            }
        }
    }
    let server = k.create_thread("server", Box::new(DoubleReplyServer));
    let (client, client_log) = S::new(vec![Syscall::Call {
        ep: CPtr::new(0),
        msg: IpcMessage::with_label(0),
    }])
    .logged();
    let client_pid = k.create_thread("client", Box::new(client));
    k.grant_endpoint(server, ep, CapRights::READ, 0).unwrap();
    k.grant_endpoint(client_pid, ep, CapRights::WRITE_GRANT, 0)
        .unwrap();
    k.start_thread(server);
    k.start_thread(client_pid);
    k.run_to_quiescence();
    // Client got exactly one reply.
    assert_eq!(
        replies(&client_log)
            .iter()
            .filter(|r| r.message().is_some())
            .count(),
        1
    );
}

#[test]
fn cap_transfer_requires_grant() {
    let mut k = kernel();
    let ep = k.create_endpoint();
    let secret = k.create_endpoint();
    let (sender, log) = S::new(vec![Syscall::Send {
        ep: CPtr::new(0),
        msg: IpcMessage::with_label(0).with_cap(CPtr::new(1)),
    }])
    .logged();
    let sender_pid = k.create_thread("sender", Box::new(sender));
    let receiver_pid = k.create_thread(
        "receiver",
        Box::new(S::new(vec![Syscall::Recv { ep: CPtr::new(0) }])),
    );
    k.grant_endpoint(sender_pid, ep, CapRights::WRITE, 0)
        .unwrap(); // no grant
    k.grant_endpoint(sender_pid, secret, CapRights::ALL, 0)
        .unwrap();
    k.grant_endpoint(receiver_pid, ep, CapRights::READ, 0)
        .unwrap();
    k.start_thread(sender_pid);
    k.start_thread(receiver_pid);
    k.run_to_quiescence();
    assert_eq!(
        replies(&log),
        vec![Reply::Err(Sel4Error::InsufficientRights)]
    );
}

#[test]
fn cap_transfer_with_grant_installs_in_receiver() {
    let mut k = kernel();
    let ep = k.create_endpoint();
    let gift = k.create_endpoint();
    let (sender, _) = S::new(vec![Syscall::Send {
        ep: CPtr::new(0),
        msg: IpcMessage::with_label(0).with_cap(CPtr::new(1)),
    }])
    .logged();
    let sender_pid = k.create_thread("sender", Box::new(sender));
    let (receiver, receiver_log) = S::new(vec![
        Syscall::Recv { ep: CPtr::new(0) },
        // Block again so the thread (and its CSpace) survives for the
        // post-run inspection below.
        Syscall::Recv { ep: CPtr::new(0) },
    ])
    .logged();
    let receiver_pid = k.create_thread("receiver", Box::new(receiver));
    k.grant_endpoint(sender_pid, ep, CapRights::WRITE_GRANT, 0)
        .unwrap();
    k.grant_endpoint(sender_pid, gift, CapRights::RW, 5)
        .unwrap();
    k.grant_endpoint(receiver_pid, ep, CapRights::READ, 0)
        .unwrap();
    k.start_thread(sender_pid);
    k.start_thread(receiver_pid);
    k.run_to_quiescence();

    let got = replies(&receiver_log);
    let msg = got[0].message().unwrap();
    assert_eq!(msg.received_caps.len(), 1);
    let slot = msg.received_caps[0];
    let cs = k.cspace_of(receiver_pid).unwrap();
    let cap = cs.lookup(slot).unwrap();
    assert_eq!(cap.object().unwrap(), gift);
    assert_eq!(cap.rights, CapRights::RW);
    assert_eq!(cap.badge, 5, "transferred cap keeps its badge");
}

#[test]
fn mint_diminishes_never_amplifies() {
    let mut k = kernel();
    let ep = k.create_endpoint();
    let (t, log) = S::new(vec![
        Syscall::Mint {
            src: CPtr::new(0),
            rights: CapRights::WRITE,
            badge: 9,
        },
        Syscall::Mint {
            src: CPtr::new(0),
            rights: CapRights::ALL,
            badge: 9,
        },
    ])
    .logged();
    let pid = k.create_thread("minter", Box::new(t));
    k.grant_endpoint(pid, ep, CapRights::RW, 0).unwrap();
    k.start_thread(pid);
    k.run_to_quiescence();
    let got = replies(&log);
    assert!(matches!(got[0], Reply::Slot(_)), "shrinking mint succeeds");
    assert_eq!(
        got[1],
        Reply::Err(Sel4Error::RightsViolation),
        "amplifying mint fails"
    );
}

#[test]
fn tcb_suspend_with_cap_kills_thread() {
    let mut k = kernel();
    let victim_pid = k.create_thread(
        "victim",
        Box::new(S::new(vec![Syscall::Sleep {
            duration: bas_sim::time::SimDuration::from_secs(1000),
        }])),
    );
    let victim_tcb = k.tcb_of(victim_pid).unwrap();
    let (killer, log) = S::new(vec![Syscall::TcbSuspend { tcb: CPtr::new(0) }]).logged();
    let killer_pid = k.create_thread("killer", Box::new(killer));
    k.grant_cap(
        killer_pid,
        Capability::to_object(victim_tcb, CapRights::ALL, 0),
    )
    .unwrap();
    k.start_thread(victim_pid);
    k.start_thread(killer_pid);
    k.run_to_quiescence();
    assert_eq!(replies(&log), vec![Reply::Ok]);
    assert!(!k.is_alive(victim_pid));
    assert_eq!(k.trace().events_in("tcb.suspend").count(), 1);
}

#[test]
fn tcb_suspend_without_cap_impossible() {
    // The paper's kill attack on seL4: no TCB capability, no kill.
    let mut k = kernel();
    let victim_pid = k.create_thread(
        "victim",
        Box::new(S::new(vec![Syscall::Sleep {
            duration: bas_sim::time::SimDuration::from_millis(1),
        }])),
    );
    let (attacker, log) = S::new(
        // Try every slot in the attacker's own cspace.
        (0..64)
            .map(|i| Syscall::TcbSuspend { tcb: CPtr::new(i) })
            .collect(),
    )
    .logged();
    let attacker_pid = k.create_thread("attacker", Box::new(attacker));
    k.start_thread(victim_pid);
    k.start_thread(attacker_pid);
    k.run_to_quiescence();
    assert!(replies(&log)
        .iter()
        .all(|r| *r == Reply::Err(Sel4Error::InvalidCapability)));
    // victim ran its sleep and exited on its own terms (not suspended).
    assert_eq!(k.metrics().processes_reaped, 2, "both exited normally");
}

#[test]
fn identify_reveals_only_own_caps() {
    let mut k = kernel();
    let ep = k.create_endpoint();
    let (t, log) = S::new(vec![
        Syscall::Identify { slot: CPtr::new(0) },
        Syscall::Identify { slot: CPtr::new(1) },
    ])
    .logged();
    let pid = k.create_thread("prober", Box::new(t));
    k.grant_endpoint(pid, ep, CapRights::WRITE, 0).unwrap();
    k.start_thread(pid);
    k.run_to_quiescence();
    let got = replies(&log);
    assert_eq!(got[0], Reply::Identified(Some(ObjKind::Endpoint)));
    assert_eq!(got[1], Reply::Err(Sel4Error::InvalidCapability));
}

#[test]
fn notification_signal_wait_roundtrip() {
    let mut k = kernel();
    let ntfn = k.create_notification();
    let (waiter, waiter_log) = S::new(vec![Syscall::Wait { ntfn: CPtr::new(0) }]).logged();
    let waiter_pid = k.create_thread("waiter", Box::new(waiter));
    let signaler_pid = k.create_thread(
        "signaler",
        Box::new(S::new(vec![Syscall::Signal { ntfn: CPtr::new(0) }])),
    );
    k.grant_cap(waiter_pid, Capability::to_object(ntfn, CapRights::READ, 0))
        .unwrap();
    k.grant_cap(
        signaler_pid,
        Capability::to_object(ntfn, CapRights::WRITE, 0b100),
    )
    .unwrap();
    k.start_thread(waiter_pid);
    k.start_thread(signaler_pid);
    k.run_to_quiescence();
    let got = replies(&waiter_log);
    assert_eq!(
        got[0].message().unwrap().badge,
        0b100,
        "signal bits from badge"
    );
}

#[test]
fn dying_server_aborts_pending_caller() {
    let mut k = kernel();
    let ep = k.create_endpoint();
    // Server receives the call then exits without replying.
    let server_pid = k.create_thread(
        "server",
        Box::new(S::new(vec![Syscall::Recv { ep: CPtr::new(0) }])),
    );
    let (client, log) = S::new(vec![Syscall::Call {
        ep: CPtr::new(0),
        msg: IpcMessage::with_label(1),
    }])
    .logged();
    let client_pid = k.create_thread("client", Box::new(client));
    k.grant_endpoint(server_pid, ep, CapRights::READ, 0)
        .unwrap();
    k.grant_endpoint(client_pid, ep, CapRights::WRITE_GRANT, 0)
        .unwrap();
    k.start_thread(server_pid);
    k.start_thread(client_pid);
    k.run_to_quiescence();
    assert_eq!(
        replies(&log),
        vec![Reply::Err(Sel4Error::InvalidCapability)],
        "caller must not hang when the reply cap is destroyed"
    );
}

#[test]
fn confinement_cspace_never_grows_without_explicit_transfer() {
    // Run an attacker that tries everything unilateral: sends, mints of
    // its own cap, identifies, deletes+reinserts. Its reachable object set
    // must never exceed what it started with.
    let mut k = kernel();
    let ep = k.create_endpoint();
    let mut steps = Vec::new();
    for i in 0..16 {
        steps.push(Syscall::Identify { slot: CPtr::new(i) });
        steps.push(Syscall::Mint {
            src: CPtr::new(i),
            rights: CapRights::ALL,
            badge: i as u64,
        });
        steps.push(Syscall::NBSend {
            ep: CPtr::new(i),
            msg: IpcMessage::with_label(0),
        });
        steps.push(Syscall::NBRecv { ep: CPtr::new(i) });
    }
    let pid = k.create_thread("attacker", Box::new(S::new(steps)));
    k.grant_endpoint(pid, ep, CapRights::WRITE_GRANT, 1)
        .unwrap();
    k.start_thread(pid);
    // Snapshot reachable objects before.
    let before: std::collections::BTreeSet<_> = k
        .cspace_of(pid)
        .unwrap()
        .iter()
        .filter_map(|(_, c)| c.object())
        .collect();
    k.run_until(bas_sim::time::SimTime::from_nanos(u64::MAX / 2));
    let after: std::collections::BTreeSet<_> = match k.cspace_of(pid) {
        Some(cs) => cs.iter().filter_map(|(_, c)| c.object()).collect(),
        None => std::collections::BTreeSet::new(), // attacker exited
    };
    assert!(
        after.is_subset(&before),
        "attacker gained objects: before={before:?} after={after:?}"
    );
}

#[test]
fn thread_names_and_counts() {
    let mut k = kernel();
    let a = k.create_thread("a", Box::new(S::new(vec![])));
    let _b = k.create_thread("b", Box::new(S::new(vec![Syscall::GetTime])));
    assert_eq!(k.thread_count(), 2);
    assert_eq!(k.thread_named("a"), Some(a));
    assert_eq!(k.thread_named("zz"), None);
    assert_eq!(
        k.alive_thread_names(),
        vec!["a".to_string(), "b".to_string()]
    );
    assert_eq!(k.tcb_of(Pid::new(99)), None);
}
