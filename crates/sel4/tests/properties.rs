//! Property-based tests for the capability system's security invariants —
//! the properties seL4's formal proofs establish, checked here by
//! randomized adversarial execution.

use bas_sel4::cap::{CPtr, Capability};
use bas_sel4::cspace::CSpace;
use bas_sel4::kernel::{Sel4Config, Sel4Kernel};
use bas_sel4::message::IpcMessage;
use bas_sel4::objects::ObjId;
use bas_sel4::rights::CapRights;
use bas_sel4::syscall::{Reply, Syscall};
use bas_sim::script::Script;
use proptest::prelude::*;

fn arb_rights() -> impl Strategy<Value = CapRights> {
    (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(read, write, grant)| CapRights {
        read,
        write,
        grant,
    })
}

proptest! {
    /// Mint never amplifies: the derived rights are always a subset.
    #[test]
    fn mint_output_is_subset(src in arb_rights(), want in arb_rights(), badge in any::<u64>()) {
        let cap = Capability::to_object(ObjId::new(1), src, 0);
        match cap.mint(want, badge) {
            Some(derived) => {
                prop_assert!(src.covers(derived.rights));
                prop_assert_eq!(derived.rights, want);
                prop_assert_eq!(derived.badge, badge);
            }
            None => prop_assert!(!src.covers(want)),
        }
    }

    /// `covers` is a partial order: reflexive and transitive.
    #[test]
    fn covers_is_a_partial_order(a in arb_rights(), b in arb_rights(), c in arb_rights()) {
        prop_assert!(a.covers(a));
        if a.covers(b) && b.covers(c) {
            prop_assert!(a.covers(c));
        }
        if a.covers(b) && b.covers(a) {
            prop_assert_eq!(a, b);
        }
    }

    /// CSpace occupancy accounting stays consistent under random
    /// insert/remove sequences.
    #[test]
    fn cspace_occupancy_consistent(ops in prop::collection::vec((any::<bool>(), 0u32..16), 0..64)) {
        let mut cs = CSpace::new(16);
        let mut model: std::collections::BTreeMap<u32, Capability> = Default::default();
        for (i, (insert, slot)) in ops.into_iter().enumerate() {
            if insert {
                let cap = Capability::to_object(ObjId::new(i as u32), CapRights::RW, i as u64);
                if let Ok(ptr) = cs.insert(cap) {
                    model.insert(ptr.slot(), cap);
                }
            } else {
                let removed = cs.remove(CPtr::new(slot)).ok();
                prop_assert_eq!(removed, model.remove(&slot));
            }
            prop_assert_eq!(cs.occupied(), model.len());
            for (s, c) in &model {
                prop_assert_eq!(cs.lookup(CPtr::new(*s)).ok(), Some(*c));
            }
        }
    }

    /// Confinement under adversarial execution: a thread that holds one
    /// endpoint capability and performs arbitrary unilateral syscalls
    /// never ends up with capabilities to new objects.
    #[test]
    fn unilateral_execution_never_gains_objects(
        ops in prop::collection::vec((0u8..6, 0u32..16, any::<u64>()), 0..40),
    ) {
        let mut k = Sel4Kernel::new(Sel4Config::default());
        let ep = k.create_endpoint();
        let steps: Vec<Syscall> = ops
            .into_iter()
            .map(|(kind, slot, badge)| match kind {
                0 => Syscall::NBSend { ep: CPtr::new(slot), msg: IpcMessage::with_label(badge) },
                1 => Syscall::NBRecv { ep: CPtr::new(slot) },
                2 => Syscall::Mint {
                    src: CPtr::new(slot),
                    rights: CapRights::ALL,
                    badge,
                },
                3 => Syscall::Identify { slot: CPtr::new(slot) },
                4 => Syscall::Delete { slot: CPtr::new(slot) },
                _ => Syscall::TcbSuspend { tcb: CPtr::new(slot) },
            })
            .collect();
        let pid = k.create_thread("adversary", Box::new(Script::<Syscall, Reply>::new(steps)));
        k.grant_endpoint(pid, ep, CapRights::WRITE_GRANT, 1).unwrap();

        let before: std::collections::BTreeSet<ObjId> =
            k.cspace_of(pid).unwrap().iter().filter_map(|(_, c)| c.object()).collect();
        k.start_thread(pid);
        k.run_to_quiescence();
        let after: std::collections::BTreeSet<ObjId> = match k.cspace_of(pid) {
            Some(cs) => cs.iter().filter_map(|(_, c)| c.object()).collect(),
            None => Default::default(),
        };
        prop_assert!(after.is_subset(&before), "gained: {:?}", after.difference(&before));
    }

    /// Rights confinement: minted copies in the adversary's own CSpace
    /// never exceed the rights of the original grant.
    #[test]
    fn unilateral_mints_never_exceed_granted_rights(
        grant in arb_rights(),
        mints in prop::collection::vec(arb_rights(), 0..10),
    ) {
        let mut k = Sel4Kernel::new(Sel4Config::default());
        let ep = k.create_endpoint();
        let steps: Vec<Syscall> = mints
            .iter()
            .enumerate()
            .map(|(i, r)| Syscall::Mint { src: CPtr::new(0), rights: *r, badge: i as u64 })
            .collect();
        let pid = k.create_thread("minter", Box::new(Script::<Syscall, Reply>::new(steps)));
        k.grant_endpoint(pid, ep, grant, 0).unwrap();
        k.start_thread(pid);
        k.run_to_quiescence();
        if let Some(cs) = k.cspace_of(pid) {
            for (_, cap) in cs.iter() {
                prop_assert!(grant.covers(cap.rights),
                    "cap {cap} exceeds granted {grant}");
            }
        }
    }
}
