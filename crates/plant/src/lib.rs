//! # bas-plant — simulated physical world for the BAS scenario
//!
//! The paper's testbed (its Fig. 4) is a BeagleBone Black wired to a BMP180
//! temperature sensor, a fan actuator and an on-board LED alarm, placed in a
//! manually heated enclosure. This crate substitutes a deterministic
//! lumped-parameter simulation for that hardware:
//!
//! - [`thermal::RoomThermalModel`] — first-order room thermal dynamics with
//!   an external heat source (the "manual heating") and a fan that increases
//!   the loss coefficient toward ambient,
//! - [`sensor::TemperatureSensor`] — a BMP180-like sensor with Gaussian
//!   noise and 0.1 °C quantization,
//! - [`actuator::OnOffActuator`] — fan and alarm actuators that record their
//!   switching history,
//! - [`safety::SafetyMonitor`] — the paper's physical safety property: if
//!   the temperature leaves the allowed band around the setpoint for longer
//!   than the deadline ("e.g. 5 minutes"), the alarm must be raised,
//! - [`world::PlantWorld`] — the composition, stepped on the kernels'
//!   virtual clock, plus [`devices`] adapters exposing the plant on a
//!   [`bas_sim::DeviceBus`].
//!
//! ```
//! use bas_plant::world::{PlantConfig, PlantWorld};
//! use bas_sim::time::{SimDuration, SimTime};
//!
//! let mut world = PlantWorld::new(PlantConfig::default(), 42);
//! world.set_fan(true);
//! world.step_to(SimTime::ZERO + SimDuration::from_secs(60));
//! assert!(world.temperature_c() < PlantConfig::default().initial_temp_c);
//! ```

pub mod actuator;
pub mod devices;
pub mod safety;
pub mod sensor;
pub mod thermal;
pub mod units;
pub mod world;

pub use actuator::OnOffActuator;
pub use devices::{install_devices, SharedPlant};
pub use safety::{SafetyMonitor, SafetyReport, SafetyViolation};
pub use sensor::TemperatureSensor;
pub use thermal::RoomThermalModel;
pub use units::MilliCelsius;
pub use world::{PlantConfig, PlantSample, PlantWorld};
