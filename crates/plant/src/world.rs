//! Composition of room, sensor, actuators and safety monitor, stepped on
//! the kernels' virtual clock.

use bas_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::actuator::OnOffActuator;
use crate::safety::{SafetyMonitor, SafetyReport};
use crate::sensor::TemperatureSensor;
use crate::thermal::RoomThermalModel;
use crate::units::MilliCelsius;

/// One row of the plant trace (the data behind the paper's Fig. 2-style
/// time-series plots).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantSample {
    /// Virtual time of the sample.
    pub time: SimTime,
    /// True enclosure temperature, °C.
    pub temp_c: f64,
    /// Fan state.
    pub fan_on: bool,
    /// Alarm state.
    pub alarm_on: bool,
    /// Reference setpoint at sample time, °C.
    pub setpoint_c: f64,
}

/// Configuration of the physical world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantConfig {
    /// Temperature at boot, °C.
    pub initial_temp_c: f64,
    /// Room physics.
    pub room: RoomThermalModel,
    /// Sensor noise standard deviation, °C.
    pub sensor_noise_std_c: f64,
    /// Sensor quantization step, °C.
    pub sensor_quantization_c: f64,
    /// Initial reference setpoint, °C.
    pub setpoint_c: f64,
    /// Allowed band half-width around the setpoint, °C.
    pub band_c: f64,
    /// Alarm deadline: maximum continuous excursion without an alarm.
    pub alarm_deadline: SimDuration,
    /// Interval between recorded trace samples.
    pub sample_period: SimDuration,
    /// Integration sub-step.
    pub integration_step: SimDuration,
    /// Scheduled changes to the external heat source, as
    /// `(time since boot, watts)` — models the paper's manual heating.
    pub heat_schedule: Vec<(SimDuration, f64)>,
}

impl Default for PlantConfig {
    fn default() -> Self {
        PlantConfig {
            initial_temp_c: 22.0,
            room: RoomThermalModel::default(),
            sensor_noise_std_c: 0.05,
            sensor_quantization_c: 0.1,
            setpoint_c: 22.0,
            band_c: 1.0,
            alarm_deadline: SimDuration::from_mins(5),
            sample_period: SimDuration::from_secs(1),
            integration_step: SimDuration::from_millis(100),
            heat_schedule: Vec::new(),
        }
    }
}

/// The simulated physical world.
///
/// The world only advances when [`PlantWorld::step_to`] is called; the
/// scenario runner drives it in lockstep with the simulated kernel so that
/// control latency shows up as physical effect.
///
/// ```
/// use bas_plant::world::{PlantConfig, PlantWorld};
/// use bas_sim::time::{SimDuration, SimTime};
///
/// let mut w = PlantWorld::new(PlantConfig::default(), 1);
/// w.step_to(SimTime::ZERO + SimDuration::from_secs(10));
/// let reading = w.sample_sensor();
/// assert!((reading.as_celsius() - w.temperature_c()).abs() < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct PlantWorld {
    config: PlantConfig,
    room: RoomThermalModel,
    sensor: TemperatureSensor,
    fan: OnOffActuator,
    alarm: OnOffActuator,
    monitor: SafetyMonitor,
    trace: Vec<PlantSample>,
    now: SimTime,
    next_sample_at: SimTime,
    next_heat_idx: usize,
}

impl PlantWorld {
    /// Builds a world from `config`, seeding the sensor from `seed`.
    pub fn new(config: PlantConfig, seed: u64) -> Self {
        let mut room = config.room.clone();
        room.set_temperature_c(config.initial_temp_c);
        let mut heat_schedule = config.heat_schedule.clone();
        heat_schedule.sort_by_key(|(t, _)| *t);
        let config = PlantConfig {
            heat_schedule,
            ..config
        };
        PlantWorld {
            sensor: TemperatureSensor::new(
                config.sensor_noise_std_c,
                config.sensor_quantization_c,
                seed,
            ),
            fan: OnOffActuator::new("fan"),
            alarm: OnOffActuator::new("alarm"),
            monitor: SafetyMonitor::new(config.setpoint_c, config.band_c, config.alarm_deadline),
            trace: Vec::new(),
            room,
            now: SimTime::ZERO,
            next_sample_at: SimTime::ZERO,
            next_heat_idx: 0,
            config,
        }
    }

    /// Current virtual time the world has been advanced to.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// True enclosure temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.room.temperature_c()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PlantConfig {
        &self.config
    }

    /// Advances physics, the heat schedule, the safety monitor and the
    /// trace up to time `t`. Times in the past are ignored.
    pub fn step_to(&mut self, t: SimTime) {
        while self.now < t {
            // Apply any scheduled heat change due now.
            while let Some((at, watts)) = self.config.heat_schedule.get(self.next_heat_idx) {
                if SimTime::ZERO + *at <= self.now {
                    self.room.external_heat_w = *watts;
                    self.next_heat_idx += 1;
                } else {
                    break;
                }
            }

            let step = self.config.integration_step.min(t - self.now);
            self.room.step(step.as_secs_f64(), self.fan.is_on());
            self.now += step;

            self.monitor
                .observe(self.now, self.room.temperature_c(), self.alarm.is_on());

            if self.now >= self.next_sample_at {
                self.trace.push(PlantSample {
                    time: self.now,
                    temp_c: self.room.temperature_c(),
                    fan_on: self.fan.is_on(),
                    alarm_on: self.alarm.is_on(),
                    setpoint_c: self.monitor.setpoint_c(),
                });
                self.next_sample_at = self.now + self.config.sample_period;
            }
        }
    }

    /// Draws one (noisy, quantized) sensor reading of the current
    /// temperature.
    pub fn sample_sensor(&mut self) -> MilliCelsius {
        self.sensor.sample(self.room.temperature_c())
    }

    /// Commands the fan actuator.
    pub fn set_fan(&mut self, on: bool) {
        self.fan.set(self.now, on);
    }

    /// Commands the alarm actuator.
    pub fn set_alarm(&mut self, on: bool) {
        self.alarm.set(self.now, on);
    }

    /// Fan actuator state and history.
    pub fn fan(&self) -> &OnOffActuator {
        &self.fan
    }

    /// Alarm actuator state and history.
    pub fn alarm(&self) -> &OnOffActuator {
        &self.alarm
    }

    /// Informs the safety oracle of an *authorized* setpoint change (i.e.
    /// one the administrator actually issued — the attack harness
    /// deliberately does not call this for forged updates).
    pub fn set_reference(&mut self, setpoint_c: f64) {
        self.monitor.set_setpoint(self.now, setpoint_c);
    }

    /// The recorded time-series trace.
    pub fn trace(&self) -> &[PlantSample] {
        &self.trace
    }

    /// End-of-run safety verdict.
    pub fn safety_report(&self) -> SafetyReport {
        self.monitor.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn fan_off_drifts_toward_hot_equilibrium() {
        let mut w = PlantWorld::new(PlantConfig::default(), 1);
        w.step_to(at(3_600));
        assert!((w.temperature_c() - 33.0).abs() < 0.1);
    }

    #[test]
    fn fan_on_holds_near_cool_equilibrium() {
        let mut w = PlantWorld::new(PlantConfig::default(), 1);
        w.set_fan(true);
        w.step_to(at(3_600));
        assert!((w.temperature_c() - 21.0).abs() < 0.1);
    }

    #[test]
    fn heat_schedule_changes_apply_in_order() {
        let config = PlantConfig {
            heat_schedule: vec![
                (SimDuration::from_secs(100), 0.0),
                (SimDuration::from_secs(10), 600.0),
            ],
            ..PlantConfig::default()
        };
        let mut w = PlantWorld::new(config, 1);
        w.step_to(at(60));
        let hot = w.temperature_c();
        assert!(hot > 22.5, "600 W burst should heat: {hot}");
        w.step_to(at(1_200));
        // With the source off, the room cools toward ambient (18 °C).
        assert!(w.temperature_c() < 19.0);
    }

    #[test]
    fn trace_samples_at_configured_period() {
        let mut w = PlantWorld::new(PlantConfig::default(), 1);
        w.step_to(at(10));
        // One sample at t≈0 plus one per second.
        let n = w.trace().len();
        assert!((10..=12).contains(&n), "unexpected sample count {n}");
        for pair in w.trace().windows(2) {
            assert!(pair[1].time > pair[0].time);
        }
    }

    #[test]
    fn unattended_overheating_violates_safety() {
        // Nobody runs the fan or the alarm: temperature rises to 33 °C and
        // stays out of the 22±1 band past the 5-minute deadline.
        let mut w = PlantWorld::new(PlantConfig::default(), 1);
        w.step_to(at(1_800));
        let report = w.safety_report();
        assert!(!report.is_safe());
        assert!(report.max_deviation_c > 5.0);
    }

    #[test]
    fn alarm_on_keeps_run_safe_even_when_hot() {
        let mut w = PlantWorld::new(PlantConfig::default(), 1);
        w.set_alarm(true);
        w.step_to(at(1_800));
        assert!(w.safety_report().is_safe());
        assert_eq!(w.alarm().first_on(), Some(SimTime::ZERO));
    }

    #[test]
    fn step_to_past_time_is_noop() {
        let mut w = PlantWorld::new(PlantConfig::default(), 1);
        w.step_to(at(5));
        let t = w.temperature_c();
        w.step_to(at(1));
        assert_eq!(w.temperature_c(), t);
        assert_eq!(w.now(), at(5));
    }

    #[test]
    fn sensor_reading_tracks_true_temperature() {
        let mut w = PlantWorld::new(PlantConfig::default(), 7);
        w.step_to(at(120));
        let true_t = w.temperature_c();
        let reading = w.sample_sensor().as_celsius();
        assert!((reading - true_t).abs() < 0.5);
    }
}
