//! On/off actuators (fan, alarm) with switching history.

use bas_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// A two-state actuator that records every state transition.
///
/// The attack experiments use the transition log as ground truth: a forged
/// actuator command shows up here regardless of what any process claims.
///
/// ```
/// use bas_plant::actuator::OnOffActuator;
/// use bas_sim::time::SimTime;
///
/// let mut fan = OnOffActuator::new("fan");
/// fan.set(SimTime::from_nanos(10), true);
/// fan.set(SimTime::from_nanos(10), true); // no-op: already on
/// fan.set(SimTime::from_nanos(20), false);
/// assert_eq!(fan.transitions().len(), 2);
/// assert!(!fan.is_on());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnOffActuator {
    name: String,
    on: bool,
    transitions: Vec<(SimTime, bool)>,
}

impl OnOffActuator {
    /// Creates an actuator, initially off.
    pub fn new(name: impl Into<String>) -> Self {
        OnOffActuator {
            name: name.into(),
            on: false,
            transitions: Vec::new(),
        }
    }

    /// The actuator's name ("fan", "alarm").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current state.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Commands the actuator. Repeated commands to the current state are
    /// not recorded as transitions.
    pub fn set(&mut self, now: SimTime, on: bool) {
        if self.on != on {
            self.on = on;
            self.transitions.push((now, on));
        }
    }

    /// Every recorded transition as `(time, new_state)`.
    pub fn transitions(&self) -> &[(SimTime, bool)] {
        &self.transitions
    }

    /// The time the actuator first switched on, if it ever did.
    pub fn first_on(&self) -> Option<SimTime> {
        self.transitions.iter().find(|(_, s)| *s).map(|(t, _)| *t)
    }

    /// Total number of on/off switches (wear metric used by ablations).
    pub fn switch_count(&self) -> usize {
        self.transitions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_record_edges_only() {
        let mut a = OnOffActuator::new("alarm");
        a.set(SimTime::from_nanos(1), false); // already off: no edge
        a.set(SimTime::from_nanos(2), true);
        a.set(SimTime::from_nanos(3), true); // no edge
        a.set(SimTime::from_nanos(4), false);
        assert_eq!(
            a.transitions(),
            &[
                (SimTime::from_nanos(2), true),
                (SimTime::from_nanos(4), false)
            ]
        );
        assert_eq!(a.switch_count(), 2);
    }

    #[test]
    fn first_on_finds_earliest_activation() {
        let mut a = OnOffActuator::new("alarm");
        assert_eq!(a.first_on(), None);
        a.set(SimTime::from_nanos(5), true);
        a.set(SimTime::from_nanos(9), false);
        a.set(SimTime::from_nanos(12), true);
        assert_eq!(a.first_on(), Some(SimTime::from_nanos(5)));
    }

    #[test]
    fn name_is_kept() {
        assert_eq!(OnOffActuator::new("fan").name(), "fan");
    }
}
