//! Device-bus adapters exposing the plant to driver processes.
//!
//! The kernels never touch [`crate::world::PlantWorld`] directly; drivers
//! issue device syscalls which the kernel routes to a
//! [`bas_sim::DeviceBus`]. These adapters connect the three scenario
//! devices (sensor, fan, alarm) to a shared plant instance.

use std::cell::RefCell;
use std::rc::Rc;

use bas_sim::device::{Device, DeviceBus, DeviceId};

use crate::world::PlantWorld;

/// Shared handle to the plant used by devices and the scenario runner.
///
/// The simulation is single-threaded, so `Rc<RefCell<_>>` suffices.
pub type SharedPlant = Rc<RefCell<PlantWorld>>;

/// The temperature sensor device: reads return the current (noisy,
/// quantized) reading in raw milli-degrees Celsius; writes are ignored.
#[derive(Debug)]
pub struct SensorDevice(pub SharedPlant);

impl Device for SensorDevice {
    fn read(&mut self) -> i64 {
        i64::from(self.0.borrow_mut().sample_sensor().raw())
    }

    fn write(&mut self, _value: i64) {
        // A physical sensor has no control register in this scenario.
    }
}

/// The fan actuator device: nonzero writes switch it on; reads return the
/// current state (0/1).
#[derive(Debug)]
pub struct FanDevice(pub SharedPlant);

impl Device for FanDevice {
    fn read(&mut self) -> i64 {
        i64::from(self.0.borrow().fan().is_on())
    }

    fn write(&mut self, value: i64) {
        self.0.borrow_mut().set_fan(value != 0);
    }
}

/// The alarm actuator device: nonzero writes switch it on; reads return the
/// current state (0/1).
#[derive(Debug)]
pub struct AlarmDevice(pub SharedPlant);

impl Device for AlarmDevice {
    fn read(&mut self) -> i64 {
        i64::from(self.0.borrow().alarm().is_on())
    }

    fn write(&mut self, value: i64) {
        self.0.borrow_mut().set_alarm(value != 0);
    }
}

/// Registers the three scenario devices on `bus`, all backed by `plant`.
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use bas_plant::devices::install_devices;
/// use bas_plant::world::{PlantConfig, PlantWorld};
/// use bas_sim::device::{DeviceBus, DeviceId};
///
/// let plant = Rc::new(RefCell::new(PlantWorld::new(PlantConfig::default(), 1)));
/// let mut bus = DeviceBus::new();
/// install_devices(&plant, &mut bus);
/// bus.write(DeviceId::FAN, 1).unwrap();
/// assert!(plant.borrow().fan().is_on());
/// ```
pub fn install_devices(plant: &SharedPlant, bus: &mut DeviceBus) {
    bus.register(DeviceId::TEMP_SENSOR, Box::new(SensorDevice(plant.clone())));
    bus.register(DeviceId::FAN, Box::new(FanDevice(plant.clone())));
    bus.register(DeviceId::ALARM, Box::new(AlarmDevice(plant.clone())));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::PlantConfig;

    fn setup() -> (SharedPlant, DeviceBus) {
        let plant = Rc::new(RefCell::new(PlantWorld::new(PlantConfig::default(), 5)));
        let mut bus = DeviceBus::new();
        install_devices(&plant, &mut bus);
        (plant, bus)
    }

    #[test]
    fn sensor_device_reads_milli_celsius() {
        let (plant, mut bus) = setup();
        let raw = bus.read(DeviceId::TEMP_SENSOR).unwrap();
        let true_c = plant.borrow().temperature_c();
        assert!(
            (raw as f64 / 1000.0 - true_c).abs() < 0.5,
            "raw={raw} true={true_c}"
        );
    }

    #[test]
    fn fan_device_drives_actuator() {
        let (plant, mut bus) = setup();
        bus.write(DeviceId::FAN, 1).unwrap();
        assert!(plant.borrow().fan().is_on());
        assert_eq!(bus.read(DeviceId::FAN).unwrap(), 1);
        bus.write(DeviceId::FAN, 0).unwrap();
        assert!(!plant.borrow().fan().is_on());
    }

    #[test]
    fn alarm_device_drives_actuator() {
        let (plant, mut bus) = setup();
        bus.write(DeviceId::ALARM, 7).unwrap(); // any nonzero = on
        assert!(plant.borrow().alarm().is_on());
        assert_eq!(bus.read(DeviceId::ALARM).unwrap(), 1);
    }

    #[test]
    fn sensor_writes_are_ignored() {
        let (plant, mut bus) = setup();
        let before = plant.borrow().temperature_c();
        bus.write(DeviceId::TEMP_SENSOR, 99_999).unwrap();
        assert_eq!(plant.borrow().temperature_c(), before);
    }

    #[test]
    fn all_three_devices_registered() {
        let (_, bus) = setup();
        for id in [DeviceId::TEMP_SENSOR, DeviceId::FAN, DeviceId::ALARM] {
            assert!(bus.contains(id));
        }
    }
}
