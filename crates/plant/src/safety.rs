//! The scenario's physical safety property.
//!
//! From the paper (§II): "The goal of this controller is to maintain the
//! room temperature within a predefined range. [...] If the controller fails
//! to achieve the desired temperature within certain time interval (e.g., 5
//! minutes), the alarm will be triggered to alert the occupants."
//!
//! [`SafetyMonitor`] checks exactly that: whenever the temperature stays
//! outside the allowed band around the setpoint continuously for longer than
//! the alarm deadline, the alarm must be on. The monitor is an *oracle* —
//! it watches the true plant state, not any process's belief — so a
//! compromised platform cannot hide a violation from it.

use bas_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One recorded violation of the safety property.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyViolation {
    /// When the violation was detected.
    pub time: SimTime,
    /// When the temperature excursion began.
    pub excursion_start: SimTime,
    /// Temperature at detection, °C.
    pub temp_c: f64,
    /// Setpoint at detection, °C.
    pub setpoint_c: f64,
}

/// Summary produced at the end of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyReport {
    /// All detected violations, in time order.
    pub violations: Vec<SafetyViolation>,
    /// Largest observed |temperature − setpoint|, °C.
    pub max_deviation_c: f64,
    /// Fraction of observations inside the band.
    pub in_band_fraction: f64,
    /// For each excursion during which the alarm fired: time from excursion
    /// start to alarm-on.
    pub alarm_latencies: Vec<SimDuration>,
}

impl SafetyReport {
    /// True if the property held for the whole run.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Online checker for the alarm-deadline safety property.
///
/// ```
/// use bas_plant::safety::SafetyMonitor;
/// use bas_sim::time::{SimDuration, SimTime};
///
/// let mut m = SafetyMonitor::new(22.0, 1.0, SimDuration::from_mins(5));
/// // In band: fine.
/// m.observe(SimTime::ZERO, 22.3, false);
/// // Excursion begins but alarm fires inside the deadline: still safe.
/// m.observe(SimTime::ZERO + SimDuration::from_secs(10), 25.0, false);
/// m.observe(SimTime::ZERO + SimDuration::from_secs(70), 25.0, true);
/// assert!(m.report().is_safe());
/// ```
#[derive(Debug, Clone)]
pub struct SafetyMonitor {
    setpoint_c: f64,
    band_c: f64,
    deadline: SimDuration,
    excursion_start: Option<SimTime>,
    alarm_seen_this_excursion: bool,
    violated_this_excursion: bool,
    violations: Vec<SafetyViolation>,
    alarm_latencies: Vec<SimDuration>,
    max_deviation_c: f64,
    observations: u64,
    in_band_observations: u64,
}

impl SafetyMonitor {
    /// Creates a monitor for `setpoint_c ± band_c` with the given alarm
    /// deadline.
    ///
    /// # Panics
    ///
    /// Panics if `band_c` is not positive.
    pub fn new(setpoint_c: f64, band_c: f64, deadline: SimDuration) -> Self {
        assert!(band_c > 0.0, "band must be positive");
        SafetyMonitor {
            setpoint_c,
            band_c,
            deadline,
            excursion_start: None,
            alarm_seen_this_excursion: false,
            violated_this_excursion: false,
            violations: Vec::new(),
            alarm_latencies: Vec::new(),
            max_deviation_c: 0.0,
            observations: 0,
            in_band_observations: 0,
        }
    }

    /// The current reference setpoint, °C.
    pub fn setpoint_c(&self) -> f64 {
        self.setpoint_c
    }

    /// Updates the reference when an authorized setpoint change occurs.
    /// The current excursion window (if any) is restarted, since the target
    /// moved.
    pub fn set_setpoint(&mut self, now: SimTime, setpoint_c: f64) {
        self.setpoint_c = setpoint_c;
        self.excursion_start = Some(now);
        self.alarm_seen_this_excursion = false;
        self.violated_this_excursion = false;
    }

    /// Feeds one observation of the true plant state.
    pub fn observe(&mut self, now: SimTime, temp_c: f64, alarm_on: bool) {
        self.observations += 1;
        let deviation = (temp_c - self.setpoint_c).abs();
        if deviation > self.max_deviation_c {
            self.max_deviation_c = deviation;
        }

        if deviation <= self.band_c {
            self.in_band_observations += 1;
            self.excursion_start = None;
            self.alarm_seen_this_excursion = false;
            self.violated_this_excursion = false;
            return;
        }

        let start = *self.excursion_start.get_or_insert(now);

        if alarm_on && !self.alarm_seen_this_excursion {
            self.alarm_seen_this_excursion = true;
            self.alarm_latencies.push(now.saturating_since(start));
        }

        let overdue = now.saturating_since(start) > self.deadline;
        if overdue && !alarm_on && !self.violated_this_excursion {
            self.violated_this_excursion = true;
            self.violations.push(SafetyViolation {
                time: now,
                excursion_start: start,
                temp_c,
                setpoint_c: self.setpoint_c,
            });
        }
    }

    /// Produces the end-of-run summary.
    pub fn report(&self) -> SafetyReport {
        SafetyReport {
            violations: self.violations.clone(),
            max_deviation_c: self.max_deviation_c,
            in_band_fraction: if self.observations == 0 {
                1.0
            } else {
                self.in_band_observations as f64 / self.observations as f64
            },
            alarm_latencies: self.alarm_latencies.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn monitor() -> SafetyMonitor {
        SafetyMonitor::new(22.0, 1.0, SimDuration::from_mins(5))
    }

    #[test]
    fn in_band_run_is_safe() {
        let mut m = monitor();
        for s in 0..600 {
            m.observe(t(s), 22.0 + 0.5 * ((s % 3) as f64 - 1.0), false);
        }
        let r = m.report();
        assert!(r.is_safe());
        assert_eq!(r.in_band_fraction, 1.0);
    }

    #[test]
    fn missed_alarm_after_deadline_is_violation() {
        let mut m = monitor();
        for s in 0..400 {
            m.observe(t(s), 26.0, false); // excursion, alarm never fires
        }
        let r = m.report();
        assert_eq!(r.violations.len(), 1, "exactly one violation per excursion");
        let v = &r.violations[0];
        assert_eq!(v.excursion_start, t(0));
        assert!(v.time > t(300));
    }

    #[test]
    fn alarm_inside_deadline_prevents_violation() {
        let mut m = monitor();
        for s in 0..250 {
            m.observe(t(s), 26.0, s >= 100);
        }
        let r = m.report();
        assert!(r.is_safe());
        assert_eq!(r.alarm_latencies, vec![SimDuration::from_secs(100)]);
    }

    #[test]
    fn alarm_after_deadline_still_records_violation_and_latency() {
        let mut m = monitor();
        for s in 0..400 {
            m.observe(t(s), 26.0, s >= 350);
        }
        let r = m.report();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.alarm_latencies, vec![SimDuration::from_secs(350)]);
    }

    #[test]
    fn return_to_band_resets_excursion() {
        let mut m = monitor();
        // Two short excursions separated by an in-band interval: no alarm
        // needed because neither excursion exceeds the deadline.
        for s in 0..200 {
            m.observe(t(s), 26.0, false);
        }
        for s in 200..260 {
            m.observe(t(s), 22.0, false);
        }
        for s in 260..460 {
            m.observe(t(s), 26.0, false);
        }
        assert!(m.report().is_safe());
    }

    #[test]
    fn setpoint_change_restarts_window() {
        let mut m = monitor();
        for s in 0..290 {
            m.observe(t(s), 26.0, false);
        }
        // Administrator raises the setpoint to 26: now in band.
        m.set_setpoint(t(290), 26.0);
        for s in 290..900 {
            m.observe(t(s), 26.0, false);
        }
        assert!(m.report().is_safe());
        assert_eq!(m.setpoint_c(), 26.0);
    }

    #[test]
    fn max_deviation_tracks_peak() {
        let mut m = monitor();
        m.observe(t(0), 22.0, false);
        m.observe(t(1), 27.5, false);
        m.observe(t(2), 23.0, false);
        assert!((m.report().max_deviation_c - 5.5).abs() < 1e-9);
    }

    #[test]
    fn empty_run_reports_safe() {
        let r = monitor().report();
        assert!(r.is_safe());
        assert_eq!(r.in_band_fraction, 1.0);
    }
}
