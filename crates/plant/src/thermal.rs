//! First-order lumped thermal model of the test enclosure.
//!
//! The enclosure exchanges heat with ambient through a loss coefficient `k`
//! (W/°C); an external heat source `q_ext` (W) models the paper's manually
//! heated environment; the fan, when on, adds forced-convection losses
//! `k_fan` (W/°C). Temperature evolves by explicit Euler integration:
//!
//! ```text
//! dT/dt = ( q_ext − (k + fan·k_fan) · (T − T_ambient) ) / C
//! ```

use serde::{Deserialize, Serialize};

/// Parameters and state of the room model.
///
/// ```
/// use bas_plant::thermal::RoomThermalModel;
///
/// let mut room = RoomThermalModel::default();
/// let t0 = room.temperature_c();
/// room.step(60.0, false); // one minute, fan off: external heat wins
/// assert!(room.temperature_c() > t0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoomThermalModel {
    /// Current enclosure temperature, °C.
    temp_c: f64,
    /// Ambient (outside-enclosure) temperature, °C.
    pub ambient_c: f64,
    /// Thermal mass, J/°C.
    pub thermal_mass_j_per_c: f64,
    /// Passive loss coefficient toward ambient, W/°C.
    pub base_loss_w_per_c: f64,
    /// Additional loss coefficient while the fan runs, W/°C.
    pub fan_loss_w_per_c: f64,
    /// External heat input (the "manual heating"), W.
    pub external_heat_w: f64,
}

impl Default for RoomThermalModel {
    /// A small chamber: ~50 s fan time-constant, equilibria at 33 °C
    /// (fan off) and 21 °C (fan on) with the default 300 W source.
    fn default() -> Self {
        RoomThermalModel {
            temp_c: 22.0,
            ambient_c: 18.0,
            thermal_mass_j_per_c: 5_000.0,
            base_loss_w_per_c: 20.0,
            fan_loss_w_per_c: 80.0,
            external_heat_w: 300.0,
        }
    }
}

impl RoomThermalModel {
    /// Creates a model at `initial_temp_c` with otherwise default physics.
    pub fn with_initial_temp(initial_temp_c: f64) -> Self {
        RoomThermalModel {
            temp_c: initial_temp_c,
            ..RoomThermalModel::default()
        }
    }

    /// Current enclosure temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Overrides the current temperature (used by tests and scenario setup).
    pub fn set_temperature_c(&mut self, temp_c: f64) {
        self.temp_c = temp_c;
    }

    /// The temperature this model converges to for a fixed fan state.
    pub fn equilibrium_c(&self, fan_on: bool) -> f64 {
        let k = self.loss_coefficient(fan_on);
        self.ambient_c + self.external_heat_w / k
    }

    /// The effective loss coefficient for a fan state, W/°C.
    pub fn loss_coefficient(&self, fan_on: bool) -> f64 {
        self.base_loss_w_per_c + if fan_on { self.fan_loss_w_per_c } else { 0.0 }
    }

    /// Advances the model by `dt_s` seconds with the given fan state.
    ///
    /// Large steps are internally subdivided so explicit Euler stays stable
    /// and accurate (sub-step ≤ 1/50 of the current time constant).
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is negative or non-finite.
    pub fn step(&mut self, dt_s: f64, fan_on: bool) {
        assert!(dt_s.is_finite() && dt_s >= 0.0, "invalid dt: {dt_s}");
        let k = self.loss_coefficient(fan_on);
        let tau = self.thermal_mass_j_per_c / k;
        let max_sub = tau / 50.0;
        let mut remaining = dt_s;
        while remaining > 0.0 {
            let h = remaining.min(max_sub);
            let d_t = (self.external_heat_w - k * (self.temp_c - self.ambient_c))
                / self.thermal_mass_j_per_c;
            self.temp_c += d_t * h;
            remaining -= h;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_fan_off_equilibrium() {
        let mut room = RoomThermalModel::default();
        let eq = room.equilibrium_c(false);
        room.step(3_600.0, false);
        assert!(
            (room.temperature_c() - eq).abs() < 0.01,
            "{} vs {eq}",
            room.temperature_c()
        );
    }

    #[test]
    fn converges_to_fan_on_equilibrium() {
        let mut room = RoomThermalModel::default();
        let eq = room.equilibrium_c(true);
        room.step(3_600.0, true);
        assert!((room.temperature_c() - eq).abs() < 0.01);
    }

    #[test]
    fn fan_cools_relative_to_fan_off() {
        let mut hot = RoomThermalModel::with_initial_temp(30.0);
        let mut cool = hot.clone();
        hot.step(120.0, false);
        cool.step(120.0, true);
        assert!(cool.temperature_c() < hot.temperature_c());
    }

    #[test]
    fn subdivided_steps_match_many_small_steps() {
        let mut coarse = RoomThermalModel::default();
        let mut fine = RoomThermalModel::default();
        coarse.step(100.0, true);
        for _ in 0..1_000 {
            fine.step(0.1, true);
        }
        assert!((coarse.temperature_c() - fine.temperature_c()).abs() < 0.05);
    }

    #[test]
    fn equilibrium_formula() {
        let room = RoomThermalModel::default();
        assert!((room.equilibrium_c(false) - 33.0).abs() < 1e-9);
        assert!((room.equilibrium_c(true) - 21.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid dt")]
    fn negative_dt_rejected() {
        RoomThermalModel::default().step(-1.0, false);
    }

    #[test]
    fn zero_dt_is_identity() {
        let mut room = RoomThermalModel::default();
        let t = room.temperature_c();
        room.step(0.0, true);
        assert_eq!(room.temperature_c(), t);
    }
}
