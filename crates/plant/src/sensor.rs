//! BMP180-like temperature sensor model.

use bas_sim::rng::SimRng;

use crate::units::MilliCelsius;

/// A temperature sensor with Gaussian noise and output quantization.
///
/// The paper's testbed samples a Bosch BMP180, which reports temperature in
/// 0.1 °C steps with roughly ±0.1 °C short-term noise; those are the default
/// parameters here.
///
/// ```
/// use bas_plant::sensor::TemperatureSensor;
///
/// let mut s = TemperatureSensor::new(0.0, 0.1, 1); // noiseless
/// assert_eq!(s.sample(21.55).as_celsius(), 21.6);  // quantized to 0.1°C
/// ```
#[derive(Debug, Clone)]
pub struct TemperatureSensor {
    noise_std_c: f64,
    quantization_c: f64,
    rng: SimRng,
    samples_taken: u64,
}

impl TemperatureSensor {
    /// Creates a sensor with the given noise standard deviation and
    /// quantization step (both in °C), seeded for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `noise_std_c` is negative or `quantization_c` is not
    /// positive.
    pub fn new(noise_std_c: f64, quantization_c: f64, seed: u64) -> Self {
        assert!(noise_std_c >= 0.0, "negative noise std: {noise_std_c}");
        assert!(
            quantization_c > 0.0,
            "non-positive quantization: {quantization_c}"
        );
        TemperatureSensor {
            noise_std_c,
            quantization_c,
            rng: SimRng::seed_from(seed),
            samples_taken: 0,
        }
    }

    /// A BMP180-like sensor: 0.1 °C quantization, 0.05 °C noise std.
    pub fn bmp180(seed: u64) -> Self {
        TemperatureSensor::new(0.05, 0.1, seed)
    }

    /// Samples the sensor given the true enclosure temperature.
    pub fn sample(&mut self, true_temp_c: f64) -> MilliCelsius {
        self.samples_taken += 1;
        let noisy = self.rng.normal(true_temp_c, self.noise_std_c);
        let quantized = (noisy / self.quantization_c).round() * self.quantization_c;
        MilliCelsius::from_celsius(quantized)
    }

    /// Number of samples produced so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_sensor_quantizes_exactly() {
        let mut s = TemperatureSensor::new(0.0, 0.5, 7);
        assert_eq!(s.sample(21.2).as_celsius(), 21.0);
        assert_eq!(s.sample(21.3).as_celsius(), 21.5);
    }

    #[test]
    fn noisy_sensor_is_unbiased() {
        let mut s = TemperatureSensor::bmp180(11);
        let n = 5_000;
        let mean: f64 = (0..n).map(|_| s.sample(22.0).as_celsius()).sum::<f64>() / n as f64;
        assert!((mean - 22.0).abs() < 0.01, "biased mean {mean}");
        assert_eq!(s.samples_taken(), n);
    }

    #[test]
    fn same_seed_reproduces_stream() {
        let mut a = TemperatureSensor::bmp180(3);
        let mut b = TemperatureSensor::bmp180(3);
        for _ in 0..50 {
            assert_eq!(a.sample(20.0), b.sample(20.0));
        }
    }

    #[test]
    fn outputs_land_on_quantization_grid() {
        let mut s = TemperatureSensor::bmp180(9);
        for _ in 0..200 {
            let raw = s.sample(23.456).raw();
            assert_eq!(raw % 100, 0, "not on 0.1°C grid: {raw}");
        }
    }

    #[test]
    #[should_panic(expected = "non-positive quantization")]
    fn rejects_zero_quantization() {
        let _ = TemperatureSensor::new(0.1, 0.0, 1);
    }
}
