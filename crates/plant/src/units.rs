//! Temperature units shared between the plant and the control protocol.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A temperature in thousandths of a degree Celsius.
///
/// This is the wire representation used by the BAS message protocol: an
/// `i32` fits in every platform's message payload, avoids floating point in
/// kernel-crossing data, and gives 0.001 °C resolution, far below sensor
/// noise.
///
/// ```
/// use bas_plant::units::MilliCelsius;
///
/// let t = MilliCelsius::from_celsius(21.5);
/// assert_eq!(t.raw(), 21_500);
/// assert!((t.as_celsius() - 21.5).abs() < 1e-9);
/// assert_eq!(format!("{t}"), "21.500°C");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MilliCelsius(i32);

impl MilliCelsius {
    /// Creates a value from raw milli-degrees.
    pub const fn new(raw: i32) -> Self {
        MilliCelsius(raw)
    }

    /// Converts from degrees Celsius, rounding to the nearest milli-degree.
    pub fn from_celsius(c: f64) -> Self {
        MilliCelsius((c * 1000.0).round() as i32)
    }

    /// Raw milli-degrees.
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// Value in degrees Celsius.
    pub fn as_celsius(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Absolute difference between two temperatures.
    pub fn abs_diff(self, other: MilliCelsius) -> MilliCelsius {
        MilliCelsius((self.0 - other.0).abs())
    }
}

impl fmt::Display for MilliCelsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}°C", self.as_celsius())
    }
}

impl From<MilliCelsius> for f64 {
    fn from(t: MilliCelsius) -> f64 {
        t.as_celsius()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_roundtrip() {
        for c in [-40.0, 0.0, 21.537, 85.0] {
            let t = MilliCelsius::from_celsius(c);
            assert!((t.as_celsius() - c).abs() < 0.0005, "{c}");
        }
    }

    #[test]
    fn rounding_to_nearest_millidegree() {
        assert_eq!(MilliCelsius::from_celsius(0.0004999).raw(), 0);
        assert_eq!(MilliCelsius::from_celsius(0.0006).raw(), 1);
        assert_eq!(MilliCelsius::from_celsius(-0.0006).raw(), -1);
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = MilliCelsius::new(21_000);
        let b = MilliCelsius::new(23_500);
        assert_eq!(a.abs_diff(b), MilliCelsius::new(2_500));
        assert_eq!(b.abs_diff(a), MilliCelsius::new(2_500));
    }

    #[test]
    fn ordering_matches_magnitude() {
        assert!(MilliCelsius::from_celsius(20.0) < MilliCelsius::from_celsius(20.001));
    }
}
