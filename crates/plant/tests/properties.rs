//! Property-based tests for the physical model.

use bas_plant::safety::SafetyMonitor;
use bas_plant::thermal::RoomThermalModel;
use bas_plant::units::MilliCelsius;
use bas_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// The room temperature always stays within the envelope spanned by
    /// its initial value and the active equilibrium (first-order system:
    /// no overshoot).
    #[test]
    fn thermal_model_never_overshoots(
        initial in 0.0f64..50.0,
        heat_w in 0.0f64..1_000.0,
        fan_on in any::<bool>(),
        steps in 1usize..200,
    ) {
        let mut room = RoomThermalModel::with_initial_temp(initial);
        room.external_heat_w = heat_w;
        let eq = room.equilibrium_c(fan_on);
        let lo = initial.min(eq) - 1e-9;
        let hi = initial.max(eq) + 1e-9;
        for _ in 0..steps {
            room.step(10.0, fan_on);
            prop_assert!(room.temperature_c() >= lo && room.temperature_c() <= hi,
                "temp {} escaped [{lo}, {hi}]", room.temperature_c());
        }
    }

    /// Temperature moves monotonically toward the equilibrium.
    #[test]
    fn thermal_model_is_monotone_toward_equilibrium(
        initial in 0.0f64..50.0,
        fan_on in any::<bool>(),
    ) {
        let mut room = RoomThermalModel::with_initial_temp(initial);
        let eq = room.equilibrium_c(fan_on);
        let mut prev_dist = (room.temperature_c() - eq).abs();
        for _ in 0..100 {
            room.step(5.0, fan_on);
            let dist = (room.temperature_c() - eq).abs();
            prop_assert!(dist <= prev_dist + 1e-9);
            prev_dist = dist;
        }
    }

    /// Splitting a step into pieces gives (nearly) the same result as one
    /// big step: the integrator is consistent.
    #[test]
    fn thermal_step_is_consistent_under_splitting(
        initial in 10.0f64..40.0,
        total_s in 1.0f64..300.0,
        pieces in 1usize..20,
    ) {
        let mut one = RoomThermalModel::with_initial_temp(initial);
        let mut many = RoomThermalModel::with_initial_temp(initial);
        one.step(total_s, true);
        for _ in 0..pieces {
            many.step(total_s / pieces as f64, true);
        }
        prop_assert!((one.temperature_c() - many.temperature_c()).abs() < 0.1);
    }

    /// MilliCelsius conversion round-trips within half a milli-degree.
    #[test]
    fn milli_celsius_roundtrip(c in -80.0f64..120.0) {
        let mc = MilliCelsius::from_celsius(c);
        prop_assert!((mc.as_celsius() - c).abs() <= 0.0005);
    }

    /// Safety-monitor invariant: a violation is reported iff some
    /// observation window kept the temperature out of band past the
    /// deadline with the alarm off. Cross-checked against a direct
    /// reference implementation over a random observation sequence.
    #[test]
    fn safety_monitor_matches_reference(
        temps in prop::collection::vec(15.0f64..30.0, 1..400),
        alarm_from in 0usize..400,
    ) {
        let setpoint = 22.0;
        let band = 1.0;
        let deadline_s = 60u64;
        let mut monitor = SafetyMonitor::new(setpoint, band, SimDuration::from_secs(deadline_s));

        // Reference: scan with explicit state.
        let mut excursion_start: Option<u64> = None;
        let mut reference_violation = false;
        for (i, t) in temps.iter().enumerate() {
            let now_s = i as u64;
            let alarm_on = i >= alarm_from;
            let out = (t - setpoint).abs() > band;
            if out {
                let start = *excursion_start.get_or_insert(now_s);
                if now_s - start > deadline_s && !alarm_on {
                    reference_violation = true;
                }
            } else {
                excursion_start = None;
            }
            monitor.observe(
                SimTime::ZERO + SimDuration::from_secs(now_s),
                *t,
                alarm_on,
            );
        }
        prop_assert_eq!(!monitor.report().is_safe(), reference_violation);
    }
}
