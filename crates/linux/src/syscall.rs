//! The Linux system-call surface used by the scenario and the attacks.

use bas_sim::device::DeviceId;
use bas_sim::process::Pid;
use bas_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::error::LinuxError;
use crate::kernel::MqCreate;

/// Access intents for `mq_open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MqAccess {
    /// `O_RDONLY`-style read intent.
    pub read: bool,
    /// `O_WRONLY`-style write intent.
    pub write: bool,
}

impl MqAccess {
    /// Read only.
    pub const READ: MqAccess = MqAccess {
        read: true,
        write: false,
    };
    /// Write only.
    pub const WRITE: MqAccess = MqAccess {
        read: false,
        write: true,
    };
    /// Read + write.
    pub const RW: MqAccess = MqAccess {
        read: true,
        write: true,
    };
}

/// Signals the model delivers. Both terminate the target; they differ only
/// in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Signal {
    /// `SIGKILL`.
    Kill,
    /// `SIGTERM` (uncaught, so also fatal here).
    Term,
}

/// A system call trapped to the Linux kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// `mq_open(name, flags[, mode, attr])`.
    MqOpen {
        /// Queue name (by convention starts with `/`).
        name: String,
        /// Read/write intents (checked against DAC at open time).
        access: MqAccess,
        /// `O_CREAT` attributes, if creating.
        create: Option<MqCreate>,
    },
    /// `mq_send(qd, data, prio)`.
    MqSend {
        /// Queue descriptor from `MqOpen`.
        qd: u32,
        /// Payload bytes.
        data: Vec<u8>,
        /// Priority (higher = delivered first).
        priority: u32,
        /// `O_NONBLOCK` behaviour on a full queue.
        nonblocking: bool,
    },
    /// `mq_receive(qd)`.
    MqReceive {
        /// Queue descriptor.
        qd: u32,
        /// `O_NONBLOCK` behaviour on an empty queue.
        nonblocking: bool,
    },
    /// `mq_unlink(name)`.
    MqUnlink {
        /// Queue name.
        name: String,
    },
    /// `kill(pid, sig)`.
    Kill {
        /// Target process.
        pid: Pid,
        /// Signal to deliver.
        signal: Signal,
    },
    /// `fork()+exec()` of a registered program image; the child inherits
    /// the caller's uid.
    Fork {
        /// Registered program name.
        program: String,
    },
    /// `setuid(uid)` — root only (models the privilege-escalation end
    /// state: the attacker already *is* root and can become anyone).
    SetUid {
        /// New uid.
        uid: u32,
    },
    /// Look up a process id by name (`pidof`-style; models the attacker's
    /// recon via /proc).
    PidOf {
        /// Process name.
        name: String,
    },
    /// `getpid()`.
    GetPid,
    /// `getuid()`.
    GetUid,
    /// `nanosleep`.
    Sleep {
        /// How long to sleep.
        duration: SimDuration,
    },
    /// `clock_gettime`.
    GetTime,
    /// Read a device register via its `/dev` node (DAC-checked).
    DevRead {
        /// The device.
        dev: DeviceId,
    },
    /// Write a device register via its `/dev` node (DAC-checked).
    DevWrite {
        /// The device.
        dev: DeviceId,
        /// Value to write.
        value: i64,
    },
}

/// The kernel's reply to a system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Completed without data.
    Ok,
    /// A queue descriptor (`MqOpen`).
    Qd(u32),
    /// A received message (`MqReceive`). Note: no sender identity.
    Data {
        /// Payload bytes.
        data: Vec<u8>,
        /// Sender-chosen priority.
        priority: u32,
    },
    /// A pid (`GetPid`, `PidOf`, `Fork` returns the child pid).
    Pid(Pid),
    /// A uid (`GetUid`).
    Uid(u32),
    /// Current time (`GetTime`).
    Time(SimTime),
    /// Device register value (`DevRead`).
    DevValue(i64),
    /// The call failed.
    Err(LinuxError),
}

impl Reply {
    /// Extracts received data, if any.
    pub fn data(&self) -> Option<&[u8]> {
        match self {
            Reply::Data { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Extracts the error, if this is one.
    pub fn err(&self) -> Option<LinuxError> {
        match self {
            Reply::Err(e) => Some(*e),
            _ => None,
        }
    }

    /// True if the reply is not an error.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Reply::Err(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn access_constants() {
        assert!(MqAccess::READ.read && !MqAccess::READ.write);
        assert!(!MqAccess::WRITE.read && MqAccess::WRITE.write);
        assert!(MqAccess::RW.read && MqAccess::RW.write);
    }

    #[test]
    fn reply_accessors() {
        assert_eq!(
            Reply::Data {
                data: vec![1],
                priority: 0
            }
            .data(),
            Some(&[1u8][..])
        );
        assert_eq!(Reply::Ok.data(), None);
        assert_eq!(
            Reply::Err(LinuxError::NoEntry).err(),
            Some(LinuxError::NoEntry)
        );
        assert!(Reply::Ok.is_ok());
        assert!(!Reply::Err(LinuxError::WouldBlock).is_ok());
    }
}
