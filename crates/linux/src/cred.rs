//! Credentials and discretionary access control.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A user id. Uid 0 is root and bypasses every DAC check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Uid(u32);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);

    /// Creates a uid.
    pub const fn new(raw: u32) -> Self {
        Uid(raw)
    }

    /// Raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// True for uid 0.
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid{}", self.0)
    }
}

/// Unix-style permission bits (owner/group/other × rwx), octal as usual.
///
/// Only the read and write bits are consulted; group is treated like
/// "other" (the scenario runs every process in its own implicit group).
///
/// ```
/// use bas_linux::cred::{Mode, Uid};
///
/// let m = Mode::new(0o620); // owner rw, group w, other -
/// let owner = Uid::new(1000);
/// assert!(m.allows(owner, owner, true, true));
/// assert!(m.allows(Uid::new(1001), owner, false, true), "group write applies to others here");
/// assert!(!m.allows(Uid::new(1001), owner, true, false));
/// assert!(m.allows(Uid::ROOT, owner, true, true), "root bypasses DAC");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mode(u16);

impl Mode {
    /// Creates a mode from octal-style bits.
    pub const fn new(bits: u16) -> Self {
        Mode(bits)
    }

    /// The raw bits.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// DAC check: may `who` access a node owned by `owner` with the
    /// requested read/write intents? Root always may. Equivalent to
    /// [`Mode::allows_with_group`] with no group.
    pub fn allows(self, who: Uid, owner: Uid, read: bool, write: bool) -> bool {
        self.allows_with_group(who, owner, None, read, write)
    }

    /// DAC check with a group uid: the middle permission triple applies to
    /// `group` (modeling one-member Unix groups, which is how the paper's
    /// "specifically configured" queues would separate a single writer
    /// from a single reader). Root always passes.
    pub fn allows_with_group(
        self,
        who: Uid,
        owner: Uid,
        group: Option<Uid>,
        read: bool,
        write: bool,
    ) -> bool {
        if who.is_root() {
            return true;
        }
        let (r_bit, w_bit) = if who == owner {
            (0o400, 0o200)
        } else if group == Some(who) {
            (0o040, 0o020)
        } else if group.is_some() {
            (0o004, 0o002)
        } else {
            // No group on the node: non-owners get the union of the group
            // and other triples (backward-compatible loose check).
            (0o044, 0o022)
        };
        (!read || self.0 & r_bit != 0) && (!write || self.0 & w_bit != 0)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04o}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_bits_apply_to_owner() {
        let m = Mode::new(0o600);
        let owner = Uid::new(5);
        assert!(m.allows(owner, owner, true, true));
        assert!(!m.allows(Uid::new(6), owner, true, false));
        assert!(!m.allows(Uid::new(6), owner, false, true));
    }

    #[test]
    fn other_bits_apply_to_non_owner() {
        let m = Mode::new(0o604);
        let owner = Uid::new(5);
        assert!(m.allows(Uid::new(6), owner, true, false));
        assert!(!m.allows(Uid::new(6), owner, false, true));
    }

    #[test]
    fn root_bypasses_everything() {
        let m = Mode::new(0o000);
        assert!(m.allows(Uid::ROOT, Uid::new(5), true, true));
        assert!(Uid::ROOT.is_root());
        assert!(!Uid::new(1).is_root());
    }

    #[test]
    fn no_intent_always_allowed() {
        let m = Mode::new(0o000);
        assert!(m.allows(Uid::new(9), Uid::new(5), false, false));
    }

    #[test]
    fn group_triple_applies_to_group_uid_only() {
        // owner rw, group w, other nothing — the "specifically
        // configured" single-writer queue shape.
        let m = Mode::new(0o620);
        let owner = Uid::new(10);
        let group = Some(Uid::new(20));
        assert!(m.allows_with_group(owner, owner, group, true, true));
        assert!(m.allows_with_group(Uid::new(20), owner, group, false, true));
        assert!(!m.allows_with_group(Uid::new(20), owner, group, true, false));
        assert!(
            !m.allows_with_group(Uid::new(30), owner, group, false, true),
            "stranger denied"
        );
        assert!(
            m.allows_with_group(Uid::ROOT, owner, group, true, true),
            "root bypasses"
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Mode::new(0o644)), "0644");
        assert_eq!(format!("{}", Uid::new(7)), "uid7");
    }
}
