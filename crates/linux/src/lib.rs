//! # bas-linux — monolithic-kernel baseline
//!
//! The comparison platform of the paper's §IV-C: a Unix-like monolithic
//! kernel where the five scenario processes communicate over **POSIX
//! message queues** protected only by discretionary access control, and
//! where root is omnipotent.
//!
//! Modeled at the same enforcement points the attacks exploit:
//!
//! - [`mq`] — named message queues in a virtual filesystem namespace,
//!   guarded by owner/mode bits checked at *open* time. A delivered message
//!   carries **no kernel-verified sender identity** — any process that can
//!   open the queue for writing can claim to be anyone in the payload,
//!   which is exactly how the paper spoofs the sensor: "We successfully
//!   used the web interface process to impersonate the temperature sensor
//!   process."
//! - [`cred`] — uids with full root bypass of every DAC check ("it cannot
//!   prevent attacks with root privilege").
//! - Signals — `kill(pid)` succeeds whenever uids match or the caller is
//!   root: "the attacker can kill the temperature control process to
//!   incapacitate the whole control scenario."
//! - Devices — `/dev`-style nodes guarded by the same DAC bits, so a root
//!   attacker can even drive actuators directly.
//!
//! ```
//! use bas_linux::kernel::{LinuxConfig, LinuxKernel, MqCreate};
//! use bas_linux::syscall::{MqAccess, Reply, Syscall};
//! use bas_sim::script::Script;
//!
//! let mut k = LinuxKernel::new(LinuxConfig::default());
//! k.spawn("writer", 1000, Box::new(Script::new(vec![
//!     Syscall::MqOpen {
//!         name: "/q".into(),
//!         access: MqAccess::WRITE,
//!         create: Some(MqCreate { mode: 0o622, capacity: 8 }),
//!     },
//!     Syscall::MqSend { qd: 0, data: vec![1, 2, 3], priority: 0, nonblocking: false },
//! ]))).unwrap();
//! k.run_to_quiescence();
//! assert_eq!(k.metrics().ipc_messages, 1);
//! ```

pub mod cred;
pub mod error;
pub mod kernel;
pub mod mq;
pub mod syscall;

pub use cred::{Mode, Uid};
pub use error::LinuxError;
pub use kernel::{LinuxConfig, LinuxKernel, MqCreate};
pub use mq::MqMessage;
pub use syscall::{MqAccess, Reply, Signal, Syscall};
