//! POSIX message queues.
//!
//! §IV-C: "On Linux, message queues are first in first out. They are
//! implemented through the virtual file system" — hence each queue lives
//! under a name with an owner and mode bits, and *that* is the entire
//! security boundary. Priorities order delivery (highest first, FIFO
//! within a priority), matching `mq_send(3)`.

use std::collections::VecDeque;

use bas_sim::arena::MsgRef;
use serde::{Deserialize, Serialize};

use crate::cred::{Mode, Uid};

/// Maximum message size accepted by queues in this model.
pub const MQ_MSG_MAX: usize = 256;

/// One queued message. Note what is *absent*: any kernel-verified sender
/// identity. The receiver sees only bytes and a priority.
///
/// The payload itself lives in the kernel's [`bas_sim::arena::MsgArena`];
/// the queue holds only the 8-byte slot handle, so messages move through
/// full/blocked/unblocked transitions without copying bytes. Whoever pops
/// the message (or tears the queue down) owns the slot reference and must
/// free it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MqMessage {
    /// Sender-chosen priority (higher delivered first).
    pub priority: u32,
    /// Arena handle to the payload bytes.
    pub msg: MsgRef,
    /// Seq of the `CapOp::Use` event recorded when this message entered
    /// the kernel, if capability tracing is on. Travels with the message
    /// so delivery can record the matching `Recv` and happens-before
    /// edge.
    pub use_seq: Option<u64>,
}

impl MqMessage {
    /// A message with no capability-trace provenance.
    pub fn new(priority: u32, msg: MsgRef) -> Self {
        MqMessage {
            priority,
            msg,
            use_seq: None,
        }
    }

    /// Attaches the sender-side `Use` event seq (builder style).
    pub fn with_use_seq(mut self, use_seq: Option<u64>) -> Self {
        self.use_seq = use_seq;
        self
    }
}

/// A named message queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageQueue {
    /// VFS name (e.g. `/mq_sensor_data`).
    pub name: String,
    /// Owning uid (the creator).
    pub owner: Uid,
    /// Group uid the mode's middle triple applies to, if any.
    pub group: Option<Uid>,
    /// Permission bits.
    pub mode: Mode,
    /// Maximum queued messages (`mq_maxmsg`).
    pub capacity: usize,
    queue: VecDeque<MqMessage>,
    seq: u64,
    // (priority, insertion seq) keyed alongside messages for stable order.
    order: VecDeque<(u32, u64)>,
}

impl MessageQueue {
    /// Creates an empty queue with no group.
    pub fn new(name: impl Into<String>, owner: Uid, mode: Mode, capacity: usize) -> Self {
        MessageQueue {
            name: name.into(),
            owner,
            group: None,
            mode,
            capacity,
            queue: VecDeque::new(),
            seq: 0,
            order: VecDeque::new(),
        }
    }

    /// Sets the group uid (builder style).
    pub fn with_group(mut self, group: Uid) -> Self {
        self.group = Some(group);
        self
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no message is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True if the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Enqueues a message in priority order (FIFO within equal priority).
    ///
    /// # Panics
    ///
    /// Panics if called on a full queue (callers check [`Self::is_full`]
    /// and block or fail first).
    pub fn push(&mut self, msg: MqMessage) {
        assert!(!self.is_full(), "push on full queue");
        let key = (msg.priority, self.seq);
        self.seq += 1;
        // Find the first position whose priority is strictly lower; equal
        // priorities keep insertion order.
        let pos = self
            .order
            .iter()
            .position(|&(p, _)| p < msg.priority)
            .unwrap_or(self.order.len());
        self.order.insert(pos, key);
        self.queue.insert(pos, msg);
    }

    /// Dequeues the highest-priority (oldest within priority) message.
    /// The caller takes over the popped message's arena slot reference.
    pub fn pop(&mut self) -> Option<MqMessage> {
        self.order.pop_front();
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use bas_sim::arena::MsgArena;

    use super::*;

    fn q() -> MessageQueue {
        MessageQueue::new("/q", Uid::new(1), Mode::new(0o600), 4)
    }

    fn msg(arena: &mut MsgArena, p: u32, b: u8) -> MqMessage {
        MqMessage::new(p, arena.alloc(&[b]))
    }

    fn byte(arena: &MsgArena, m: &MqMessage) -> u8 {
        arena.get(m.msg)[0]
    }

    #[test]
    fn fifo_within_priority() {
        let mut arena = MsgArena::default();
        let mut q = q();
        q.push(msg(&mut arena, 0, 1));
        q.push(msg(&mut arena, 0, 2));
        q.push(msg(&mut arena, 0, 3));
        assert_eq!(byte(&arena, &q.pop().unwrap()), 1);
        assert_eq!(byte(&arena, &q.pop().unwrap()), 2);
        assert_eq!(byte(&arena, &q.pop().unwrap()), 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn higher_priority_jumps_queue() {
        let mut arena = MsgArena::default();
        let mut q = q();
        q.push(msg(&mut arena, 0, 1));
        q.push(msg(&mut arena, 5, 2));
        q.push(msg(&mut arena, 0, 3));
        q.push(msg(&mut arena, 5, 4));
        let order: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|m| byte(&arena, &m))
            .collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn capacity_tracked() {
        let mut arena = MsgArena::default();
        let mut q = q();
        for i in 0..4 {
            assert!(!q.is_full());
            q.push(msg(&mut arena, 0, i));
        }
        assert!(q.is_full());
        assert_eq!(q.len(), 4);
        q.pop();
        assert!(!q.is_full());
    }

    #[test]
    #[should_panic(expected = "push on full queue")]
    fn push_on_full_panics() {
        let mut arena = MsgArena::default();
        let mut q = q();
        for i in 0..5 {
            q.push(msg(&mut arena, 0, i));
        }
    }
}
