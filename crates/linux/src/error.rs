//! Linux errno-style errors.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors returned by the simulated Linux kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinuxError {
    /// No such file, queue or device (`ENOENT`).
    NoEntry,
    /// DAC refused the access (`EACCES`).
    AccessDenied,
    /// Operation not permitted — signal permission, setuid (`EPERM`).
    NotPermitted,
    /// Would block and `O_NONBLOCK` was set (`EAGAIN`).
    WouldBlock,
    /// No such process (`ESRCH`).
    NoSuchProcess,
    /// Process table full (`EAGAIN` on fork; distinct code here for
    /// observability).
    ProcessTableFull,
    /// Unknown program image for fork.
    NoSuchProgram,
    /// Bad queue descriptor (`EBADF`).
    BadDescriptor,
    /// Message too long for the queue (`EMSGSIZE`).
    MessageTooLong,
    /// Queue already exists with `O_EXCL` semantics (`EEXIST`).
    AlreadyExists,
    /// Invalid argument (`EINVAL`).
    InvalidArgument,
}

impl fmt::Display for LinuxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinuxError::NoEntry => "no such file or queue",
            LinuxError::AccessDenied => "access denied",
            LinuxError::NotPermitted => "operation not permitted",
            LinuxError::WouldBlock => "operation would block",
            LinuxError::NoSuchProcess => "no such process",
            LinuxError::ProcessTableFull => "process table full",
            LinuxError::NoSuchProgram => "no such program image",
            LinuxError::BadDescriptor => "bad queue descriptor",
            LinuxError::MessageTooLong => "message too long",
            LinuxError::AlreadyExists => "queue already exists",
            LinuxError::InvalidArgument => "invalid argument",
        };
        f.write_str(s)
    }
}

impl std::error::Error for LinuxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_lowercase() {
        for e in [
            LinuxError::NoEntry,
            LinuxError::AccessDenied,
            LinuxError::NotPermitted,
            LinuxError::WouldBlock,
            LinuxError::NoSuchProcess,
            LinuxError::ProcessTableFull,
            LinuxError::NoSuchProgram,
            LinuxError::BadDescriptor,
            LinuxError::MessageTooLong,
            LinuxError::AlreadyExists,
            LinuxError::InvalidArgument,
        ] {
            let s = format!("{e}");
            assert!(!s.is_empty());
            assert_eq!(s, s.to_lowercase());
        }
    }
}
