//! The simulated monolithic Linux kernel.
//!
//! Contrast with `bas-minix`: IPC objects (message queues) are *globally
//! named* and guarded only by DAC mode bits at open time; delivered
//! messages carry no kernel identity; `kill` is a direct syscall gated by
//! uid comparison with a root bypass. Every attack in §IV-D.1 flows
//! through one of those three facts.

use std::collections::BTreeMap;

use bas_sim::clock::{CostModel, VirtualClock};
use bas_sim::device::{DeviceBus, DeviceId};
use bas_sim::fault::{IpcFault, IpcFaultState};
use bas_sim::metrics::KernelMetrics;
use bas_sim::process::{Action, Pid, ProcState, ProgramFactory};
use bas_sim::sched::RunQueue;
use bas_sim::time::{SimDuration, SimTime};
use bas_sim::timer::TimerQueue;
use bas_sim::trace::TraceLog;

use crate::cred::{Mode, Uid};
use crate::error::LinuxError;
use crate::mq::{MessageQueue, MqMessage, MQ_MSG_MAX};
use crate::syscall::{MqAccess, Reply, Signal, Syscall};

/// A boxed Linux user process.
pub type LinuxProcess = Box<dyn bas_sim::process::Process<Syscall = Syscall, Reply = Reply>>;

/// `O_CREAT` attributes for `mq_open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MqCreate {
    /// Permission bits for the new queue.
    pub mode: u16,
    /// Maximum number of queued messages.
    pub capacity: usize,
}

/// Kernel construction parameters.
pub struct LinuxConfig {
    /// Maximum process count.
    pub max_procs: usize,
    /// Virtual-time cost model. The monolithic kernel performs mq
    /// operations in a single kernel entry with no extra context switches
    /// — the paper's performance contrast with the microkernels.
    pub cost_model: CostModel,
    /// `/dev` node ownership: device → (owner uid, mode).
    pub device_nodes: BTreeMap<DeviceId, (Uid, Mode)>,
    /// Trace capacity in events.
    pub trace_capacity: usize,
}

impl Default for LinuxConfig {
    fn default() -> Self {
        LinuxConfig {
            max_procs: 64,
            cost_model: CostModel::default(),
            device_nodes: BTreeMap::new(),
            trace_capacity: TraceLog::DEFAULT_CAPACITY,
        }
    }
}

#[derive(Debug, Clone)]
struct OpenQueue {
    qname: String,
    access: MqAccess,
}

#[derive(Debug)]
enum Block {
    MqSendWait {
        qname: String,
        data: Vec<u8>,
        priority: u32,
    },
    MqRecvWait {
        qname: String,
    },
}

struct ProcEntry {
    name: String,
    uid: Uid,
    fds: Vec<Option<OpenQueue>>,
    state: ProcState<Block>,
    logic: Option<LinuxProcess>,
    pending_reply: Option<Reply>,
}

/// The simulated Linux kernel.
pub struct LinuxKernel {
    procs: Vec<Option<ProcEntry>>,
    queues: BTreeMap<String, MessageQueue>,
    programs: Vec<(String, ProgramFactory<Syscall, Reply>)>,
    names: BTreeMap<String, Pid>,
    run_queue: RunQueue,
    timers: TimerQueue,
    clock: VirtualClock,
    metrics: KernelMetrics,
    trace: TraceLog,
    devices: DeviceBus,
    device_nodes: BTreeMap<DeviceId, (Uid, Mode)>,
    max_procs: usize,
    last_run: Option<Pid>,
    ipc_faults: IpcFaultState,
}

impl std::fmt::Debug for LinuxKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinuxKernel")
            .field("now", &self.clock.now())
            .field("processes", &self.process_count())
            .field("queues", &self.queues.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl LinuxKernel {
    /// Boots an empty kernel.
    pub fn new(config: LinuxConfig) -> Self {
        LinuxKernel {
            procs: Vec::new(),
            queues: BTreeMap::new(),
            programs: Vec::new(),
            names: BTreeMap::new(),
            run_queue: RunQueue::new(),
            timers: TimerQueue::new(),
            clock: VirtualClock::new(config.cost_model),
            metrics: KernelMetrics::default(),
            trace: TraceLog::with_capacity(config.trace_capacity),
            devices: DeviceBus::new(),
            device_nodes: config.device_nodes,
            max_procs: config.max_procs,
            last_run: None,
            ipc_faults: IpcFaultState::default(),
        }
    }

    // ----- construction ------------------------------------------------------

    /// Registers a program image for `Fork`; returns nothing (forks refer
    /// to programs by name).
    pub fn register_program(
        &mut self,
        name: impl Into<String>,
        factory: ProgramFactory<Syscall, Reply>,
    ) {
        self.programs.push((name.into(), factory));
    }

    /// Spawns a process directly (init path).
    ///
    /// # Errors
    ///
    /// Returns [`LinuxError::ProcessTableFull`] when at capacity.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        uid: u32,
        logic: LinuxProcess,
    ) -> Result<Pid, LinuxError> {
        if self.process_count() >= self.max_procs {
            return Err(LinuxError::ProcessTableFull);
        }
        let name = name.into();
        let slot = self
            .procs
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.procs.push(None);
                self.procs.len() - 1
            });
        let pid = Pid::new(slot as u32);
        self.procs[slot] = Some(ProcEntry {
            name: name.clone(),
            uid: Uid::new(uid),
            fds: Vec::new(),
            state: ProcState::Runnable,
            logic: Some(logic),
            pending_reply: None,
        });
        self.names.insert(name.clone(), pid);
        self.run_queue.enqueue(pid);
        self.metrics.processes_created += 1;
        self.trace.record(
            self.clock.now(),
            Some(pid),
            "proc.spawn",
            format!("{name} uid={uid}"),
        );
        Ok(pid)
    }

    /// Mutable access to the device bus, for installing plant devices.
    pub fn devices_mut(&mut self) -> &mut DeviceBus {
        &mut self.devices
    }

    // ----- fault injection ---------------------------------------------------

    /// Armed one-shot IPC faults, consumed by `mq_send` calls *after* the
    /// descriptor and DAC checks pass.
    pub fn ipc_faults_mut(&mut self) -> &mut IpcFaultState {
        &mut self.ipc_faults
    }

    /// Read access to the IPC fault queue (applied/pending counters).
    pub fn ipc_faults(&self) -> &IpcFaultState {
        &self.ipc_faults
    }

    /// Kills the named process outright (a simulated crash — distinct
    /// from `kill(2)`, which is subject to DAC). Returns false if no live
    /// process bears the name. There is no supervisor: nothing restarts it.
    pub fn kill_named(&mut self, name: &str) -> bool {
        let Some(pid) = self.pid_of(name) else {
            return false;
        };
        self.trace.record(
            self.clock.now(),
            Some(pid),
            "fault.crash",
            format!("killed {name}"),
        );
        self.terminate(pid);
        true
    }

    /// Jumps the kernel clock forward by `d` without running anyone — a
    /// tick-skew fault.
    pub fn skew_clock(&mut self, d: SimDuration) {
        self.clock.advance(d);
        self.trace.record(
            self.clock.now(),
            None,
            "fault.clock",
            format!("skewed +{}ms", d.as_millis()),
        );
    }

    /// Pre-creates a message queue owned by `owner` (scenario-loader
    /// path, mirroring the paper's "scenario process [...] creates 6
    /// message queues").
    pub fn create_queue(
        &mut self,
        name: impl Into<String>,
        owner: Uid,
        mode: Mode,
        capacity: usize,
    ) {
        let name = name.into();
        self.queues
            .insert(name.clone(), MessageQueue::new(name, owner, mode, capacity));
    }

    /// Pre-creates a message queue whose mode's group triple applies to
    /// `group` — the "specifically configured to only allow the correct
    /// user account" setup the paper discusses.
    pub fn create_queue_grouped(
        &mut self,
        name: impl Into<String>,
        owner: Uid,
        group: Uid,
        mode: Mode,
        capacity: usize,
    ) {
        let name = name.into();
        self.queues.insert(
            name.clone(),
            MessageQueue::new(name, owner, mode, capacity).with_group(group),
        );
    }

    // ----- introspection -------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Kernel counters.
    pub fn metrics(&self) -> &KernelMetrics {
        &self.metrics
    }

    /// The event trace.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Disables tracing (throughput benchmarks).
    pub fn disable_trace(&mut self) {
        self.trace.disable();
    }

    /// True if the process is alive.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.entry_ref(pid).is_some()
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.procs.iter().filter(|p| p.is_some()).count()
    }

    /// Looks up a live process by name.
    pub fn pid_of(&self, name: &str) -> Option<Pid> {
        self.names.get(name).copied().filter(|&p| self.is_alive(p))
    }

    /// Names of live processes, sorted.
    pub fn alive_process_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .procs
            .iter()
            .filter_map(|p| p.as_ref().map(|e| e.name.clone()))
            .collect();
        v.sort();
        v
    }

    /// Live queue names, for diagnostics.
    pub fn queue_names(&self) -> Vec<String> {
        self.queues.keys().cloned().collect()
    }

    /// Depth of a queue, if it exists.
    pub fn queue_len(&self, name: &str) -> Option<usize> {
        self.queues.get(name).map(MessageQueue::len)
    }

    // ----- execution -------------------------------------------------------------

    /// Runs until virtual time reaches `t`.
    pub fn run_until(&mut self, t: SimTime) {
        loop {
            self.fire_due_timers();
            if self.clock.now() >= t {
                return;
            }
            if let Some(pid) = self.run_queue.dequeue() {
                self.dispatch(pid);
            } else {
                match self.timers.next_deadline() {
                    Some(d) if d <= t => self.clock.advance_to(d),
                    _ => {
                        self.clock.advance_to(t);
                        return;
                    }
                }
            }
        }
    }

    /// Runs until nothing is runnable and no timer is armed.
    pub fn run_to_quiescence(&mut self) -> usize {
        let mut steps = 0;
        loop {
            self.fire_due_timers();
            let Some(pid) = self.run_queue.dequeue() else {
                match self.timers.next_deadline() {
                    Some(d) => {
                        self.clock.advance_to(d);
                        continue;
                    }
                    None => return steps,
                }
            };
            self.dispatch(pid);
            steps += 1;
            assert!(steps < 5_000_000, "kernel failed to quiesce");
        }
    }

    fn fire_due_timers(&mut self) {
        for pid in self.timers.pop_due(self.clock.now()) {
            if let Some(entry) = self.entry_mut(pid) {
                if matches!(entry.state, ProcState::Sleeping) {
                    entry.state = ProcState::Runnable;
                    entry.pending_reply = Some(Reply::Ok);
                    self.run_queue.enqueue(pid);
                }
            }
        }
    }

    fn dispatch(&mut self, pid: Pid) {
        let Some(entry) = self.entry_mut(pid) else {
            return;
        };
        if !entry.state.is_runnable() {
            return;
        }
        let mut logic = entry.logic.take().expect("runnable process has logic");
        let reply = entry.pending_reply.take();

        if self.last_run != Some(pid) {
            self.clock.charge_context_switch();
            self.metrics.context_switches += 1;
            self.last_run = Some(pid);
        }
        self.clock.charge_user_compute();

        let action = logic.resume(reply);
        if let Some(entry) = self.entry_mut(pid) {
            entry.logic = Some(logic);
        }

        match action {
            Action::Syscall(sys) => {
                self.metrics.kernel_entries += 1;
                self.clock.charge_kernel_entry();
                self.clock.charge_syscall_dispatch();
                self.handle_syscall(pid, sys);
            }
            Action::Yield => self.run_queue.enqueue(pid),
            Action::Exit(code) => {
                self.trace.record(
                    self.clock.now(),
                    Some(pid),
                    "proc.exit",
                    format!("code={code}"),
                );
                self.terminate(pid);
            }
        }
    }

    // ----- syscalls ---------------------------------------------------------------

    fn handle_syscall(&mut self, pid: Pid, sys: Syscall) {
        match sys {
            Syscall::MqOpen {
                name,
                access,
                create,
            } => self.do_mq_open(pid, name, access, create),
            Syscall::MqSend {
                qd,
                data,
                priority,
                nonblocking,
            } => self.do_mq_send(pid, qd, data, priority, nonblocking),
            Syscall::MqReceive { qd, nonblocking } => self.do_mq_receive(pid, qd, nonblocking),
            Syscall::MqUnlink { name } => self.do_mq_unlink(pid, name),
            Syscall::Kill {
                pid: target,
                signal,
            } => self.do_kill(pid, target, signal),
            Syscall::Fork { program } => self.do_fork(pid, program),
            Syscall::SetUid { uid } => {
                let caller_uid = self.entry_ref(pid).expect("caller").uid;
                let r = if caller_uid.is_root() {
                    self.entry_mut(pid).expect("caller").uid = Uid::new(uid);
                    Reply::Ok
                } else {
                    Reply::Err(LinuxError::NotPermitted)
                };
                self.ready_with(pid, r);
            }
            Syscall::PidOf { name } => {
                let r = match self.pid_of(&name) {
                    Some(p) => Reply::Pid(p),
                    None => Reply::Err(LinuxError::NoSuchProcess),
                };
                self.ready_with(pid, r);
            }
            Syscall::GetPid => self.ready_with(pid, Reply::Pid(pid)),
            Syscall::GetUid => {
                let uid = self.entry_ref(pid).expect("caller").uid.as_u32();
                self.ready_with(pid, Reply::Uid(uid));
            }
            Syscall::Sleep { duration } => {
                let deadline = self.clock.now() + duration;
                self.timers.arm(deadline, pid);
                if let Some(entry) = self.entry_mut(pid) {
                    entry.state = ProcState::Sleeping;
                }
            }
            Syscall::GetTime => {
                let now = self.clock.now();
                self.ready_with(pid, Reply::Time(now));
            }
            Syscall::DevRead { dev } => self.do_device(pid, dev, None),
            Syscall::DevWrite { dev, value } => self.do_device(pid, dev, Some(value)),
        }
    }

    fn do_mq_open(&mut self, pid: Pid, name: String, access: MqAccess, create: Option<MqCreate>) {
        let uid = self.entry_ref(pid).expect("caller").uid;
        let exists = self.queues.contains_key(&name);
        if !exists {
            match create {
                Some(attr) => {
                    self.queues.insert(
                        name.clone(),
                        MessageQueue::new(name.clone(), uid, Mode::new(attr.mode), attr.capacity),
                    );
                    self.trace.record(
                        self.clock.now(),
                        Some(pid),
                        "mq.create",
                        format!("{name} mode={:04o}", attr.mode),
                    );
                }
                None => {
                    self.ready_with(pid, Reply::Err(LinuxError::NoEntry));
                    return;
                }
            }
        } else {
            let q = &self.queues[&name];
            if !q
                .mode
                .allows_with_group(uid, q.owner, q.group, access.read, access.write)
            {
                self.metrics.access_denied += 1;
                self.trace.record(
                    self.clock.now(),
                    Some(pid),
                    "dac.deny",
                    format!("{uid} denied {name}"),
                );
                self.ready_with(pid, Reply::Err(LinuxError::AccessDenied));
                return;
            }
        }
        let entry = self.entry_mut(pid).expect("caller");
        let fd = entry
            .fds
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                entry.fds.push(None);
                entry.fds.len() - 1
            });
        entry.fds[fd] = Some(OpenQueue {
            qname: name,
            access,
        });
        self.ready_with(pid, Reply::Qd(fd as u32));
    }

    fn open_queue(&self, pid: Pid, qd: u32) -> Result<OpenQueue, LinuxError> {
        self.entry_ref(pid)
            .and_then(|e| e.fds.get(qd as usize))
            .and_then(|f| f.clone())
            .ok_or(LinuxError::BadDescriptor)
    }

    fn do_mq_send(&mut self, pid: Pid, qd: u32, data: Vec<u8>, priority: u32, nonblocking: bool) {
        let oq = match self.open_queue(pid, qd) {
            Ok(o) => o,
            Err(e) => return self.ready_with(pid, Reply::Err(e)),
        };
        if !oq.access.write {
            return self.ready_with(pid, Reply::Err(LinuxError::BadDescriptor));
        }
        if data.len() > MQ_MSG_MAX {
            return self.ready_with(pid, Reply::Err(LinuxError::MessageTooLong));
        }
        if !self.queues.contains_key(&oq.qname) {
            return self.ready_with(pid, Reply::Err(LinuxError::NoEntry));
        }

        // Scheduled IPC fault (`bas-faults` campaigns). Consumed only
        // after the descriptor checks pass, so an injected fault disturbs
        // authorized traffic but cannot widen authority.
        let fault = self.ipc_faults.pop();
        match fault {
            Some(IpcFault::Drop) => {
                self.trace.record(
                    self.clock.now(),
                    Some(pid),
                    "fault.ipc",
                    format!("drop {pid} -> {}", oq.qname),
                );
                // mq_send reports success; the message never lands.
                return self.ready_with(pid, Reply::Ok);
            }
            Some(IpcFault::Delay(d)) => {
                // The message sits in transit: the kernel pays the
                // latency, then enqueues normally.
                self.clock.advance(d);
                self.trace.record(
                    self.clock.now(),
                    Some(pid),
                    "fault.ipc",
                    format!("delay {pid} -> {} +{}ms", oq.qname, d.as_millis()),
                );
            }
            Some(IpcFault::Duplicate) | None => {}
        }

        let q = self.queues.get_mut(&oq.qname).expect("checked above");
        if q.is_full() {
            if nonblocking {
                return self.ready_with(pid, Reply::Err(LinuxError::WouldBlock));
            }
            if let Some(entry) = self.entry_mut(pid) {
                entry.state = ProcState::Blocked(Block::MqSendWait {
                    qname: oq.qname.clone(),
                    data,
                    priority,
                });
            }
            return;
        }
        let duplicate = matches!(fault, Some(IpcFault::Duplicate)).then(|| data.clone());
        q.push(MqMessage { priority, data });
        self.note_ipc(&oq.qname, pid);
        if let Some(data) = duplicate {
            // The queue absorbs a duplicate only while it has room; a
            // full buffer loses the transport's re-presented copy.
            let q = self.queues.get_mut(&oq.qname).expect("checked above");
            if !q.is_full() {
                q.push(MqMessage { priority, data });
                self.trace.record(
                    self.clock.now(),
                    Some(pid),
                    "fault.ipc",
                    format!("duplicate {pid} -> {}", oq.qname),
                );
                self.note_ipc(&oq.qname, pid);
            }
        }
        self.ready_with(pid, Reply::Ok);
        self.pump_queue(&oq.qname);
    }

    fn do_mq_receive(&mut self, pid: Pid, qd: u32, nonblocking: bool) {
        let oq = match self.open_queue(pid, qd) {
            Ok(o) => o,
            Err(e) => return self.ready_with(pid, Reply::Err(e)),
        };
        if !oq.access.read {
            return self.ready_with(pid, Reply::Err(LinuxError::BadDescriptor));
        }
        let Some(q) = self.queues.get_mut(&oq.qname) else {
            return self.ready_with(pid, Reply::Err(LinuxError::NoEntry));
        };
        match q.pop() {
            Some(msg) => {
                self.ready_with(
                    pid,
                    Reply::Data {
                        data: msg.data,
                        priority: msg.priority,
                    },
                );
                self.pump_queue(&oq.qname);
            }
            None if nonblocking => self.ready_with(pid, Reply::Err(LinuxError::WouldBlock)),
            None => {
                if let Some(entry) = self.entry_mut(pid) {
                    entry.state = ProcState::Blocked(Block::MqRecvWait {
                        qname: oq.qname.clone(),
                    });
                }
            }
        }
    }

    fn do_mq_unlink(&mut self, pid: Pid, name: String) {
        let uid = self.entry_ref(pid).expect("caller").uid;
        match self.queues.get(&name) {
            None => self.ready_with(pid, Reply::Err(LinuxError::NoEntry)),
            Some(q) => {
                if uid.is_root() || uid == q.owner {
                    self.queues.remove(&name);
                    // Processes blocked on the queue get ENOENT.
                    let blocked: Vec<Pid> = self.blocked_on_queue(&name);
                    for p in blocked {
                        self.ready_with(p, Reply::Err(LinuxError::NoEntry));
                    }
                    self.ready_with(pid, Reply::Ok);
                } else {
                    self.ready_with(pid, Reply::Err(LinuxError::AccessDenied));
                }
            }
        }
    }

    fn do_kill(&mut self, caller: Pid, target: Pid, signal: Signal) {
        let caller_uid = self.entry_ref(caller).expect("caller").uid;
        let Some((target_uid, target_name)) =
            self.entry_ref(target).map(|e| (e.uid, e.name.clone()))
        else {
            return self.ready_with(caller, Reply::Err(LinuxError::NoSuchProcess));
        };
        // The entire permission model: same uid or root.
        if !caller_uid.is_root() && caller_uid != target_uid {
            self.metrics.access_denied += 1;
            self.trace.record(
                self.clock.now(),
                Some(caller),
                "signal.deny",
                format!("{caller_uid} may not signal {target_uid}"),
            );
            return self.ready_with(caller, Reply::Err(LinuxError::NotPermitted));
        }
        self.trace.record(
            self.clock.now(),
            Some(caller),
            "signal.kill",
            format!("{caller} sent {signal:?} to {target} ({target_name})"),
        );
        self.terminate(target);
        if target != caller {
            self.ready_with(caller, Reply::Ok);
        }
    }

    fn do_fork(&mut self, caller: Pid, program: String) {
        let uid = self.entry_ref(caller).expect("caller").uid;
        let Some((name, factory)) = self.programs.iter().find(|(n, _)| *n == program) else {
            return self.ready_with(caller, Reply::Err(LinuxError::NoSuchProgram));
        };
        let child_logic = factory();
        let child_name = format!("{name}#{}", self.metrics.processes_created + 1);
        match self.spawn(child_name, uid.as_u32(), child_logic) {
            Ok(child) => self.ready_with(caller, Reply::Pid(child)),
            Err(e) => self.ready_with(caller, Reply::Err(e)),
        }
    }

    fn do_device(&mut self, pid: Pid, dev: DeviceId, write: Option<i64>) {
        let uid = self.entry_ref(pid).expect("caller").uid;
        let Some(&(owner, mode)) = self.device_nodes.get(&dev) else {
            return self.ready_with(pid, Reply::Err(LinuxError::NoEntry));
        };
        let (want_read, want_write) = (write.is_none(), write.is_some());
        if !mode.allows(uid, owner, want_read, want_write) {
            self.metrics.access_denied += 1;
            self.trace.record(
                self.clock.now(),
                Some(pid),
                "dac.deny",
                format!("{uid} denied {dev}"),
            );
            return self.ready_with(pid, Reply::Err(LinuxError::AccessDenied));
        }
        match write {
            Some(value) => match self.devices.write(dev, value) {
                Ok(()) => {
                    self.trace.record(
                        self.clock.now(),
                        Some(pid),
                        "dev.write",
                        format!("{dev} <- {value}"),
                    );
                    self.ready_with(pid, Reply::Ok);
                }
                Err(_) => self.ready_with(pid, Reply::Err(LinuxError::NoEntry)),
            },
            None => match self.devices.read(dev) {
                Ok(v) => self.ready_with(pid, Reply::DevValue(v)),
                Err(_) => self.ready_with(pid, Reply::Err(LinuxError::NoEntry)),
            },
        }
    }

    // ----- queue wake-ups -----------------------------------------------------------

    fn blocked_on_queue(&self, qname: &str) -> Vec<Pid> {
        self.procs
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let e = p.as_ref()?;
                let hit = match &e.state {
                    ProcState::Blocked(Block::MqSendWait { qname: q, .. })
                    | ProcState::Blocked(Block::MqRecvWait { qname: q }) => q == qname,
                    _ => false,
                };
                hit.then(|| Pid::new(i as u32))
            })
            .collect()
    }

    /// Drains wake-up opportunities on a queue until no progress: deliver
    /// to waiting receivers while messages exist; admit waiting senders
    /// while space exists.
    fn pump_queue(&mut self, qname: &str) {
        loop {
            let mut progressed = false;

            // Wake one receiver if a message is available.
            if self.queues.get(qname).is_some_and(|q| !q.is_empty()) {
                let receiver = self.procs.iter().enumerate().find_map(|(i, p)| {
                    let e = p.as_ref()?;
                    matches!(
                        &e.state,
                        ProcState::Blocked(Block::MqRecvWait { qname: q }) if q == qname
                    )
                    .then(|| Pid::new(i as u32))
                });
                if let Some(r) = receiver {
                    let msg = self
                        .queues
                        .get_mut(qname)
                        .expect("exists")
                        .pop()
                        .expect("nonempty");
                    self.ready_with(
                        r,
                        Reply::Data {
                            data: msg.data,
                            priority: msg.priority,
                        },
                    );
                    progressed = true;
                }
            }

            // Admit one sender if space is available.
            if self.queues.get(qname).is_some_and(|q| !q.is_full()) {
                let sender = self.procs.iter().enumerate().find_map(|(i, p)| {
                    let e = p.as_ref()?;
                    matches!(
                        &e.state,
                        ProcState::Blocked(Block::MqSendWait { qname: q, .. }) if q == qname
                    )
                    .then(|| Pid::new(i as u32))
                });
                if let Some(s) = sender {
                    let (data, priority) = {
                        let entry = self.entry_mut(s).expect("sender alive");
                        match std::mem::replace(&mut entry.state, ProcState::Runnable) {
                            ProcState::Blocked(Block::MqSendWait { data, priority, .. }) => {
                                (data, priority)
                            }
                            _ => unreachable!("sender was send-waiting"),
                        }
                    };
                    self.queues
                        .get_mut(qname)
                        .expect("exists")
                        .push(MqMessage { priority, data });
                    self.note_ipc(qname, s);
                    self.ready_with(s, Reply::Ok);
                    progressed = true;
                }
            }

            if !progressed {
                return;
            }
        }
    }

    fn note_ipc(&mut self, qname: &str, sender: Pid) {
        self.metrics.ipc_messages += 1;
        self.clock.charge_ipc_copy(64);
        self.metrics.ipc_bytes += 64;
        self.trace.record(
            self.clock.now(),
            Some(sender),
            "mq.send",
            format!("{sender} -> {qname}"),
        );
    }

    // ----- termination ----------------------------------------------------------------

    fn terminate(&mut self, pid: Pid) {
        let Some(entry) = self.procs.get_mut(pid.as_usize()).and_then(Option::take) else {
            return;
        };
        self.run_queue.remove(pid);
        self.timers.cancel(pid);
        self.names.retain(|_, p| *p != pid);
        self.metrics.processes_reaped += 1;
        if self.last_run == Some(pid) {
            self.last_run = None;
        }
        drop(entry);
    }

    fn ready_with(&mut self, pid: Pid, reply: Reply) {
        if let Some(entry) = self.entry_mut(pid) {
            entry.pending_reply = Some(reply);
            entry.state = ProcState::Runnable;
            self.run_queue.enqueue(pid);
        }
    }

    fn entry_ref(&self, pid: Pid) -> Option<&ProcEntry> {
        self.procs.get(pid.as_usize()).and_then(Option::as_ref)
    }

    fn entry_mut(&mut self, pid: Pid) -> Option<&mut ProcEntry> {
        self.procs.get_mut(pid.as_usize()).and_then(Option::as_mut)
    }
}
